//! The JPEG pipeline end to end: the *functional* layer (real 2D-DCT,
//! quantisation and zig-zag over an 8×8 block, built from this crate's DSP
//! kernels) next to the *selection* layer (Table 3's IP/interface choices,
//! including the hierarchical IMP-flatten model).
//!
//! Run with `cargo run --release --example jpeg_pipeline`.

use partita::core::{RequiredGains, SolveOptions, Solver};
use partita::ip::func::{dct2d, idct2d, quantize_table, zigzag_inverse, zigzag_scan};
use partita::mop::Cycles;
use partita::workloads::jpeg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- functional layer: one 8x8 block through DCT -> quant -> zig-zag ----
    let block: Vec<f64> = (0..64)
        .map(|i| {
            let (r, c) = (i / 8, i % 8);
            128.0 + 40.0 * ((r as f64) * 0.7).sin() + 25.0 * ((c as f64) * 0.9).cos()
        })
        .collect();
    let freq = dct2d(&block, 8, 8);
    let quantized: Vec<i32> = quantize_table(
        &freq.iter().map(|v| v.round() as i32).collect::<Vec<_>>(),
        &vec![16; 64],
    );
    let scanned = zigzag_scan(&quantized, 8);
    let trailing_zeros = scanned.iter().rev().take_while(|&&v| v == 0).count();
    println!(
        "8x8 block: {} trailing zeros after zig-zag (energy compaction)",
        trailing_zeros
    );

    // Round-trip sanity: dequantise and invert.
    let dequant: Vec<f64> = zigzag_inverse(&scanned, 8)
        .into_iter()
        .map(|v| f64::from(v * 16))
        .collect();
    let restored = idct2d(&dequant, 8, 8);
    let max_err = block
        .iter()
        .zip(&restored)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    println!("reconstruction error after 16x quantisation: {max_err:.1} (bounded by the step)");
    assert!(max_err < 48.0);

    // ---- selection layer: Table 3 ----
    let w = jpeg::encoder();
    println!("\nTable 3 sweep (IP1: 2D-DCT, IP2: 1D-DCT, IP3: FFT, IP4: C-MUL, IP5: ZIG_ZAG):");
    for &rg in &w.rg_sweep {
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))?;
        let picks: Vec<String> = sel.chosen().iter().map(|i| i.to_string()).collect();
        println!(
            "    RG {:>9}: gain {:>9}, area {:>5} -> {}",
            rg.get(),
            sel.total_gain().get(),
            sel.total_area(),
            picks.join(" | ")
        );
    }

    // ---- the hierarchical model (Fig. 11) ----
    let h = jpeg::encoder_hierarchical();
    let sel = Solver::new(&h.instance)
        .with_imps(h.imps.clone())
        .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
            30_000_000,
        ))))?;
    println!(
        "\nhierarchical model: IMP flatten produced {} 2D-DCT alternatives; \
         RG 30M met with area {}",
        h.imps.for_scall(partita::mop::CallSiteId(1)).len(),
        sel.total_area()
    );
    Ok(())
}
