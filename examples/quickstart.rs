//! Quickstart: select IPs and interfaces for a small DSP application.
//!
//! Run with `cargo run --example quickstart`.

use partita::core::{Instance, RequiredGains, SCall, SolveOptions, Solver};
use partita::interface::TransferJob;
use partita::ip::{IpBlock, IpFunction};
use partita::mop::{AreaTenths, Cycles};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the IP library: two accelerators with different
    //    port/rate/latency/area trade-offs.
    let mut instance = Instance::new("quickstart");
    instance.library.add(
        IpBlock::builder("fir16")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(8)
            .area(AreaTenths::from_units(3))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("dct8")
            .function(IpFunction::Dct1d)
            .ports(2, 2)
            .rates(2, 2)
            .latency(24)
            .area(AreaTenths::from_units(8))
            .build(),
    );

    // 2. Describe the application's s-calls: software cycle counts from the
    //    profiler, data volumes, frequencies and available parallel code.
    let fir = instance.add_scall(
        SCall::new(
            "fir",
            IpFunction::Fir,
            Cycles(12_000),
            TransferJob::new(320, 320),
        )
        .with_freq(4)
        .with_plain_pc(Cycles(150)),
    );
    let dct = instance.add_scall(
        SCall::new(
            "dct",
            IpFunction::Dct1d,
            Cycles(30_000),
            TransferJob::new(128, 128),
        )
        .with_freq(2),
    );
    instance.add_path(vec![fir, dct]);

    // 3. Solve for increasing performance requirements and watch the
    //    selection escalate.
    for rg in [20_000u64, 60_000, 100_000] {
        let selection = Solver::new(&instance)
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(rg))))?;
        println!(
            "RG {rg:>7}: gain {:>7}, area {:>5}, {} S-instruction(s)",
            selection.total_gain().get(),
            selection.total_area(),
            selection.s_instruction_count()
        );
        for imp in selection.chosen() {
            println!("    {imp}");
        }
    }
    Ok(())
}
