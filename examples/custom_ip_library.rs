//! Bring your own application and IP library: the full Partita flow from
//! C-like source to S-instruction selection.
//!
//! 1. compile Partita-C to µ-code,
//! 2. sample-execute on the kernel simulator to profile it,
//! 3. analyse parallel code on the CDFG,
//! 4. generate the IMP database against a custom IP library,
//! 5. solve for the cheapest IP/interface selection.
//!
//! Run with `cargo run --release --example custom_ip_library`.

use partita::asip::{ExecOptions, Kernel};
use partita::core::{
    instance_from_compiled, parallel_code, RequiredGains, SCallBinding, SolveOptions, Solver,
};
use partita::frontend::{compile, profile};
use partita::interface::TransferJob;
use partita::ip::{IpBlock, IpFunction};
use partita::mop::{AreaTenths, Cycles};

const SOURCE: &str = "
    xmem samples[64] @ 0;
    ymem band_a[64] @ 0;
    ymem band_b[64] @ 64;

    fn split_low() reads samples writes band_a {
        let acc = 0; let i = 0;
        while (i < 64) { acc = acc + samples[i]; band_a[i] = acc; i = i + 1; }
    }
    fn split_high() reads samples writes band_b {
        let prev = 0; let i = 0;
        while (i < 64) { band_b[i] = samples[i] - prev; prev = samples[i]; i = i + 1; }
    }
    fn main() {
        split_low();
        split_high();
    }
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Compile and profile with typical input data.
    let mut compiled = compile(SOURCE)?;
    let mut kernel = Kernel::new(256, 256);
    let samples: Vec<i32> = (0..64).map(|i| ((i * 13) % 31) - 15).collect();
    kernel.xdm.load(0, &samples)?;
    let report = profile(&mut compiled, &mut kernel, &ExecOptions::default())?;
    println!(
        "profile: {} cycles, {} µ-operations retired",
        report.cycles.get(),
        report.mops_retired
    );

    // Parallel-code analysis: the two filters touch disjoint regions, so
    // each is the other's software-parallel-code candidate.
    let main_id = compiled
        .program
        .function_by_name("main")
        .expect("main exists");
    let infos = parallel_code::analyze_function(&compiled, main_id)?;
    for (i, (_, info)) in infos.iter().enumerate() {
        println!(
            "call #{i}: plain PC = {} µ-ops, {} independent s-call(s)",
            info.cycles.get(),
            info.sw_candidate_mops.len()
        );
    }

    // Build the instance straight from the compiled program: profiled
    // software times, frequencies, parallel-code data and execution paths
    // all come from the analysis above.
    let bindings = [
        SCallBinding::new("split_low", IpFunction::Fir, TransferJob::new(64, 64)),
        SCallBinding::new("split_high", IpFunction::Iir, TransferJob::new(64, 64)),
    ];
    let mut instance = instance_from_compiled(&compiled, main_id, &bindings, "subband_splitter")?;
    instance.library.add(
        IpBlock::builder("accumulator_fir")
            .function(IpFunction::Fir)
            .rates(4, 4)
            .latency(6)
            .area(AreaTenths::from_units(2))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("differencer")
            .function(IpFunction::Iir)
            .rates(2, 2)
            .latency(4)
            .area(AreaTenths::from_tenths(15))
            .build(),
    );

    for rg_frac in [4u64, 2] {
        let max: u64 = instance.scalls.iter().map(|s| s.sw_cycles.get()).sum();
        let rg = Cycles(max / rg_frac / 2);
        let sel =
            Solver::new(&instance).solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))?;
        println!("\nRG {}: area {}, selections:", rg.get(), sel.total_area());
        for imp in sel.chosen() {
            println!("    {imp}  [{:?}]", imp.parallel);
        }
    }
    Ok(())
}
