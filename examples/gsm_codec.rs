//! The paper's headline evaluation: the GSM(TDMA) encoder and decoder with
//! their published required-gain sweeps (Tables 1 and 2), plus the
//! prior-approach baseline for contrast.
//!
//! Run with `cargo run --release --example gsm_codec`.

use partita::core::report::render_table;
use partita::core::{baseline, report::TableRow, RequiredGains, SolveOptions, Solver};
use partita::workloads::{gsm, gsm_func};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // ---- functional layer: one speech-like frame through the mini codec ----
    let frame: Vec<i32> = (0..gsm_func::FRAME as i32)
        .map(|n| {
            let pitch = if n % 40 == 0 { 3000 } else { 0 };
            pitch + ((f64::from(n) * 0.21).sin() * 1200.0) as i32
        })
        .collect();
    let encoded = gsm_func::encode(&frame);
    let decoded = gsm_func::decode(&encoded);
    println!(
        "functional codec: {} reflection coeffs, lags {:?}, {} residual samples, \
         decoded {} samples",
        encoded.reflection_q15.len(),
        encoded.ltp_lags,
        encoded.residual.len(),
        decoded.len()
    );

    for (title, workload) in [
        ("GSM encoder", gsm::encoder()),
        ("GSM decoder", gsm::decoder()),
    ] {
        println!(
            "{title}: {} s-calls, {} IPs, {} implementation methods",
            workload.instance.scalls.len() - 1,
            workload.instance.library.len(),
            workload.imps.len()
        );
        let mut rows = Vec::new();
        for &rg in &workload.rg_sweep {
            let sel = Solver::new(&workload.instance)
                .with_imps(workload.imps.clone())
                .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))?;
            rows.push(TableRow::from_selection(rg, &sel));
        }
        println!("{}", render_table(title, &rows));

        // The prior approach (no interface model, no parallel execution)
        // cannot reach the top of the sweep.
        let top = *workload.rg_sweep.last().expect("sweep non-empty");
        match baseline::solve_no_interface(
            &workload.instance,
            &workload.imps,
            &RequiredGains::uniform(top),
        ) {
            Ok(sel) => println!(
                "no-interface baseline @ RG {}: area {}\n",
                top.get(),
                sel.total_area()
            ),
            Err(e) => println!(
                "no-interface baseline @ RG {}: {e} — the paper's motivating gap\n",
                top.get()
            ),
        }
    }
    Ok(())
}
