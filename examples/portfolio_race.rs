//! Race the exact backends against each other on the JPEG encoder.
//!
//! The portfolio backend runs branch-and-bound, conflict enumeration and
//! the Lagrangian enumerator concurrently on the same model, sharing every
//! incumbent through a common bound. The first racer whose result is
//! proven optimal *and* audit-clean cancels the rest. Whichever racer wins,
//! the selection is byte-identical — the determinism contract documented in
//! `docs/BACKENDS.md` — so racing changes latency, never answers.
//!
//! Run with `cargo run --example portfolio_race`.

use std::sync::Arc;

use partita::core::telemetry::{RecordingSink, Redaction, TelemetrySink};
use partita::core::{Backend, RequiredGains, SolveOptions, Solver};
use partita::workloads::jpeg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let w = jpeg::encoder();
    for &rg in &w.rg_sweep {
        let sink = Arc::new(RecordingSink::new());
        let options = SolveOptions::problem2(RequiredGains::uniform(rg))
            .backend(Backend::Portfolio)
            .budget(Default::default());
        let selection = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .with_sink(sink.clone() as Arc<dyn TelemetrySink>)
            .solve(&options)?;
        println!(
            "RG {:>6}: gain {:>6}, area {:>5}, status {}",
            rg.get(),
            selection.total_gain().get(),
            selection.total_area(),
            selection.status,
        );
        // The race reports one `backend_finished` line per racer and a
        // closing `race_won` line naming the winner.
        for line in sink.lines(Redaction::None) {
            if line.contains("backend_finished") || line.contains("race_won") {
                println!("    {line}");
            }
        }
    }
    Ok(())
}
