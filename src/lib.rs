//! **partita** — a reproduction of *"Exploiting Intellectual Properties in
//! ASIP Designs for Embedded DSP Software"* (Choi, Yi, Lee, Park, Kyung —
//! DAC 1999).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mop`] — µ-operation IR, CDFG, execution paths, call hierarchy.
//! * [`frontend`] — C-like DSL, profiler, lowering to MOP lists.
//! * [`asip`] — cycle-accurate pipelined DSP kernel simulator.
//! * [`ip`] — hardware IP models and bit-true DSP kernels.
//! * [`interface`] — the four kernel↔IP interface types, timing/area models.
//! * [`ilp`] — 0/1 integer linear programming (simplex + branch-and-bound).
//! * [`core`] — optimal S-instruction generation (the paper's contribution).
//! * [`workloads`] — GSM(TDMA), JPEG and synthetic workload models.
//! * [`service`] — the multi-tenant solve daemon behind the versioned
//!   request API of [`core::api`].
//!
//! # Blessed surface
//!
//! The [`prelude`] is the supported way in: the solver entrypoints, the
//! versioned request/response envelope, and the daemon core. Anything
//! else re-exported by the sub-crates is reachable but may move;
//! anything in the prelude follows the compatibility policy of
//! `docs/SERVICE.md` (additive within an `api_version`).
//!
//! # Quickstart — library
//!
//! ```
//! use partita::prelude::*;
//! use partita::workloads::gsm;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = gsm::encoder();
//! let rg = workload.rg_sweep[0];
//! let solution = Solver::new(&workload.instance)
//!     .with_imps(workload.imps.clone())
//!     .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))?;
//! assert!(solution.total_gain() >= rg);
//! # Ok(())
//! # }
//! ```
//!
//! # Quickstart — service
//!
//! The same solve, phrased as one request envelope against an in-process
//! daemon core (the `serviced` binary speaks exactly this, one JSON
//! object per line):
//!
//! ```
//! use partita::prelude::*;
//!
//! let core = ServiceCore::new(ServiceConfig::default());
//! let reply = core.handle_line(
//!     r#"{"api_version":1,"id":"q1","tenant":"docs",
//!         "method":"solve","instance":"synth-micro-0000"}"#,
//! );
//! assert!(reply.contains("\"status\":\"optimal\""), "{reply}");
//! ```
//!
//! # Telemetry, not ad-hoc JSON
//!
//! Rendering a [`core::SolveTrace`] with its deprecated `to_json` method
//! is superseded by constructing the telemetry event, which emits the
//! same bytes and composes with sinks and redaction:
//!
//! ```
//! use partita::core::telemetry::Event;
//! # let trace = partita::core::SolveTrace::default();
//! let line = Event::SolveFinished { trace }.to_json();
//! assert!(line.starts_with("{\"schema\":1,\"event\":\"solve_finished\""));
//! ```

#![forbid(unsafe_code)]

pub use partita_asip as asip;
pub use partita_core as core;
pub use partita_frontend as frontend;
pub use partita_ilp as ilp;
pub use partita_interface as interface;
pub use partita_ip as ip;
pub use partita_mop as mop;
pub use partita_service as service;
pub use partita_workloads as workloads;

/// The blessed public surface: solver, envelope, daemon.
///
/// Everything here is stable under the versioning policy in
/// `docs/SERVICE.md`: within one [`ApiError`](partita_core::api::ApiError)
/// / `api_version` generation,
/// changes are additive (new optional fields, new methods, new error
/// codes) and existing meanings never shift.
pub mod prelude {
    pub use partita_core::api::{
        ApiError, BatchItem, Payload, Request, RequestBody, Response, SolveResult, SolveSpec,
        StatsSnapshot, API_VERSION,
    };
    pub use partita_core::{
        Backend, OptimalityStatus, Redaction, RequiredGains, Selection, SolveBudget, SolveOptions,
        Solver,
    };
    pub use partita_service::{ServiceConfig, ServiceCore, TenantPolicy};
}
