//! **partita** — a reproduction of *"Exploiting Intellectual Properties in
//! ASIP Designs for Embedded DSP Software"* (Choi, Yi, Lee, Park, Kyung —
//! DAC 1999).
//!
//! This facade crate re-exports the whole workspace:
//!
//! * [`mop`] — µ-operation IR, CDFG, execution paths, call hierarchy.
//! * [`frontend`] — C-like DSL, profiler, lowering to MOP lists.
//! * [`asip`] — cycle-accurate pipelined DSP kernel simulator.
//! * [`ip`] — hardware IP models and bit-true DSP kernels.
//! * [`interface`] — the four kernel↔IP interface types, timing/area models.
//! * [`ilp`] — 0/1 integer linear programming (simplex + branch-and-bound).
//! * [`core`] — optimal S-instruction generation (the paper's contribution).
//! * [`workloads`] — GSM(TDMA) and JPEG workload models.
//!
//! # Quickstart
//!
//! ```
//! use partita::workloads::gsm;
//! use partita::core::{RequiredGains, Solver, SolveOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let workload = gsm::encoder();
//! let rg = workload.rg_sweep[0];
//! let solution = Solver::new(&workload.instance)
//!     .with_imps(workload.imps.clone())
//!     .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))?;
//! assert!(solution.total_gain() >= rg);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use partita_asip as asip;
pub use partita_core as core;
pub use partita_frontend as frontend;
pub use partita_ilp as ilp;
pub use partita_interface as interface;
pub use partita_ip as ip;
pub use partita_mop as mop;
pub use partita_workloads as workloads;
