//! Schema-level contracts of the telemetry subsystem: every emitted line is
//! well-formed and documented, streams are reproducible under redaction,
//! and degraded solves (budget exhaustion, injected faults) still produce
//! valid streams.

use std::sync::Arc;

use partita::core::telemetry::json::JsonValue;
use partita::core::telemetry::{EventKind, JsonLinesSink, RecordingSink, Redaction, TelemetrySink};
use partita::core::{
    BatchJob, FaultPlan, RequiredGains, Selection, SolveBudget, SolveOptions, Solver, SweepSession,
};
use partita::workloads::{jpeg, Workload};

/// Asserts one rendered line is a complete JSON object carrying the schema
/// tag and a documented event kind, and returns the kind name.
fn check_line(line: &str) -> String {
    let doc = JsonValue::parse(line).unwrap_or_else(|e| panic!("bad line {line:?}: {e}"));
    assert_eq!(
        doc.get("schema").and_then(JsonValue::as_u64),
        Some(1),
        "{line}"
    );
    let kind = doc
        .get("event")
        .and_then(JsonValue::as_str)
        .unwrap_or_else(|| panic!("no event tag: {line}"))
        .to_string();
    assert!(
        EventKind::ALL.iter().any(|k| k.name() == kind),
        "undocumented event kind {kind}"
    );
    kind
}

fn solve_recorded(w: &Workload, options: &SolveOptions) -> (Arc<RecordingSink>, Selection) {
    let sink = Arc::new(RecordingSink::new());
    let sel = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .with_sink(sink.clone() as Arc<dyn TelemetrySink>)
        .solve(options)
        .expect("workload point feasible");
    (sink, sel)
}

#[test]
fn solve_stream_is_schema_valid_and_complete() {
    let w = jpeg::encoder();
    let rg = w.rg_sweep[0];
    let opts = SolveOptions::problem2(RequiredGains::uniform(rg)).audit(true);
    let (sink, _) = solve_recorded(&w, &opts);
    let lines = sink.lines(Redaction::None);
    assert!(!lines.is_empty());
    let kinds: Vec<String> = lines.iter().map(|l| check_line(l)).collect();
    for expected in [
        "solve_started",
        "phase_finished",
        "worker_finished",
        "audit_finished",
        "solve_finished",
    ] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "missing {expected} in {kinds:?}"
        );
    }
    // The pipeline runs four timed phases.
    assert_eq!(kinds.iter().filter(|k| *k == "phase_finished").count(), 4);
}

#[test]
fn serial_streams_are_byte_identical_under_timing_redaction() {
    let w = jpeg::encoder();
    let opts = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[1]))
        .budget(SolveBudget::default().with_threads(1));
    let (a, _) = solve_recorded(&w, &opts);
    let (b, _) = solve_recorded(&w, &opts);
    assert_eq!(
        a.lines(Redaction::Timing),
        b.lines(Redaction::Timing),
        "single-threaded event streams must be byte-identical once timing is redacted"
    );
}

#[test]
fn parallel_streams_are_set_identical_under_effort_redaction() {
    let w = jpeg::encoder();
    let opts = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[1]))
        .budget(SolveBudget::default().with_threads(4));
    let (a, _) = solve_recorded(&w, &opts);
    let (b, _) = solve_recorded(&w, &opts);
    let mut la = a.lines(Redaction::Effort);
    let mut lb = b.lines(Redaction::Effort);
    assert_eq!(
        la.len(),
        lb.len(),
        "same event count at a fixed thread count"
    );
    la.sort();
    lb.sort();
    assert_eq!(
        la, lb,
        "4-thread event streams must be set-identical once effort is redacted"
    );
    for line in &la {
        check_line(line);
    }
}

#[test]
fn budget_exhausted_stream_is_schema_valid() {
    let w = jpeg::encoder();
    // A one-node budget exhausts immediately; the default budget falls back
    // to the greedy backend, so the solve still completes.
    let opts = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[0]))
        .budget(SolveBudget::default().with_max_nodes(1));
    let (sink, sel) = solve_recorded(&w, &opts);
    let lines = sink.lines(Redaction::None);
    let kinds: Vec<String> = lines.iter().map(|l| check_line(l)).collect();
    assert!(kinds.iter().any(|k| k == "solve_finished"));
    let finished = lines
        .iter()
        .find(|l| l.contains("\"event\":\"solve_finished\""))
        .expect("solve_finished line");
    let doc = JsonValue::parse(finished).expect("valid solve_finished");
    assert_eq!(
        doc.get("status").and_then(JsonValue::as_str),
        Some(sel.status.to_string()).as_deref(),
        "event status must match the returned selection"
    );
}

#[test]
fn fault_injected_stream_is_schema_valid() {
    let w = jpeg::encoder();
    let base = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[0]));
    // Poison the warm-start hint and cap the search; distort() bakes the
    // faults into the options so the telemetry path sees a hostile run.
    let plan = FaultPlan::new()
        .node_cap(1)
        .poisoned_hint(vec![])
        .without_fallback();
    let distorted = plan.distort(&base);
    let sink = Arc::new(RecordingSink::new());
    // The distorted solve may legitimately fail (no fallback, 1-node cap);
    // either way every emitted line must stay schema-valid.
    let _ = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .with_sink(sink.clone() as Arc<dyn TelemetrySink>)
        .solve(&distorted);
    let lines = sink.lines(Redaction::None);
    assert!(!lines.is_empty(), "faulted runs still announce themselves");
    let kinds: Vec<String> = lines.iter().map(|l| check_line(l)).collect();
    assert_eq!(kinds[0], "solve_started");
}

#[test]
fn concurrent_batch_emits_no_torn_lines() {
    let w = jpeg::encoder();
    let jobs: Vec<BatchJob<'_>> = w
        .rg_sweep
        .iter()
        .map(|&rg| BatchJob {
            instance: &w.instance,
            db: &w.imps,
            options: SolveOptions::problem2(RequiredGains::uniform(rg)),
        })
        .collect();
    let sink = Arc::new(JsonLinesSink::new(Vec::new()));
    let mut session = SweepSession::new().with_sink(sink.clone() as Arc<dyn TelemetrySink>);
    for result in session.solve_batch(&jobs, 4) {
        result.expect("published sweep point feasible");
    }
    drop(session);
    let bytes = Arc::try_unwrap(sink)
        .expect("session dropped its sink handle")
        .into_inner();
    let text = String::from_utf8(bytes).expect("stream is valid UTF-8");
    assert!(text.ends_with('\n'), "stream ends with a complete line");
    let mut saw_batch = false;
    let mut solves = 0usize;
    for line in text.lines() {
        let kind = check_line(line);
        saw_batch |= kind == "batch_started";
        solves += usize::from(kind == "solve_finished");
    }
    assert!(saw_batch, "batch fan-out must announce itself");
    assert_eq!(
        solves,
        jobs.len(),
        "every unique job's solve_finished arrives intact"
    );
}

#[test]
fn sweep_stream_covers_cache_and_chain_events() {
    let w = jpeg::encoder();
    let sink = Arc::new(RecordingSink::new());
    let mut session = SweepSession::new().with_sink(sink.clone() as Arc<dyn TelemetrySink>);
    session
        .sweep(&w.instance, &w.imps, &SolveOptions::default(), &w.rg_sweep)
        .expect("published sweep feasible");
    // Replay: answered from the cache, so more cache_lookup hits appear.
    session
        .sweep(&w.instance, &w.imps, &SolveOptions::default(), &w.rg_sweep)
        .expect("cached replay feasible");
    let lines = sink.lines(Redaction::None);
    let kinds: Vec<String> = lines.iter().map(|l| check_line(l)).collect();
    for expected in ["cache_lookup", "chain_decision", "sweep_point"] {
        assert!(
            kinds.iter().any(|k| k == expected),
            "missing {expected} in {kinds:?}"
        );
    }
    assert!(
        lines
            .iter()
            .any(|l| l.contains("\"cache\":\"solve\",\"hit\":true")),
        "replayed sweep must hit the solve cache"
    );
}

#[test]
fn portfolio_stream_reports_every_racer_and_the_winner() {
    use partita::core::Backend;
    let w = jpeg::encoder();
    let opts =
        SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[0])).backend(Backend::Portfolio);
    let (sink, sel) = solve_recorded(&w, &opts);
    assert!(sel.status.is_optimal(), "ample budget: the race concludes");
    let lines = sink.lines(Redaction::None);
    for line in &lines {
        check_line(line);
    }
    let finished: Vec<&String> = lines
        .iter()
        .filter(|l| l.contains("\"event\":\"backend_finished\""))
        .collect();
    assert_eq!(
        finished.len(),
        3,
        "one backend_finished per default racer: {lines:?}"
    );
    // Racer reports arrive in line-up order, whatever the race timing.
    for (line, backend) in finished
        .iter()
        .zip(["branch_bound", "conflict_enum", "lagrangian"])
    {
        let doc = JsonValue::parse(line).expect("valid backend_finished");
        assert_eq!(
            doc.get("backend").and_then(JsonValue::as_str),
            Some(backend),
            "racer order must match the configured line-up"
        );
    }
    let won = lines
        .iter()
        .find(|l| l.contains("\"event\":\"race_won\""))
        .expect("race_won line");
    let doc = JsonValue::parse(won).expect("valid race_won");
    let winner = doc
        .get("winner")
        .and_then(JsonValue::as_str)
        .expect("a concluded race names its winner")
        .to_string();
    assert!(
        finished.iter().any(|l| {
            let d = JsonValue::parse(l).expect("valid backend_finished");
            d.get("backend").and_then(JsonValue::as_str) == Some(winner.as_str())
                && d.get("outcome").and_then(JsonValue::as_str) == Some("optimal")
        }),
        "the winner must be a racer that reported an optimal outcome"
    );
    assert_eq!(doc.get("racers").and_then(JsonValue::as_u64), Some(3));
}

#[test]
fn docs_cover_every_event_kind() {
    let doc = include_str!("../docs/TELEMETRY.md");
    for kind in EventKind::ALL {
        assert!(
            doc.contains(&format!("### `{}`", kind.name())),
            "docs/TELEMETRY.md has no section for event kind `{}`",
            kind.name()
        );
    }
    // And nothing documented that the code no longer emits.
    for line in doc.lines() {
        if let Some(name) = line.strip_prefix("### `").and_then(|l| l.strip_suffix('`')) {
            assert!(
                EventKind::ALL.iter().any(|k| k.name() == name),
                "docs/TELEMETRY.md documents unknown event kind `{name}`"
            );
        }
    }
    assert!(
        doc.contains("PARTITA_TRACE") && doc.contains("PARTITA_TRACE_PATH"),
        "sink configuration must be documented"
    );
}
