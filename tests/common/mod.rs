//! Helpers shared by the root integration gates (differential, determinism,
//! corpus, fuzz, end-to-end). Each gate binary compiles its own copy via
//! `mod common;` — not every binary uses every helper.
#![allow(dead_code)]

use partita::core::{
    Backend, RequiredGains, Selection, SelectionAuditor, SolveBudget, SolveOptions, Solver,
};
use partita::mop::Cycles;
use partita::workloads::corpus::{self, ManifestEntry};
use partita::workloads::Workload;

/// Serializes everything reproducible about a selection — the chosen IMPs,
/// objective, totals and per-path gains — excluding the trace (wall times
/// and per-worker node counts legitimately vary between runs). Byte equality
/// of these strings is the determinism contract across thread counts, cache
/// layers and corpus replays.
pub fn serialize_selection(sel: &Selection) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "objective={};area={};gain={};status={}\n",
        sel.objective,
        sel.total_area(),
        sel.total_gain().get(),
        sel.status
    ));
    for imp in sel.chosen() {
        out.push_str(&format!("{imp:?}\n"));
    }
    for (path, gain) in &sel.gain_per_path {
        out.push_str(&format!("{path:?}={}\n", gain.get()));
    }
    out
}

/// The backend the gates run, overridable via `PARTITA_BACKEND` (any
/// canonical [`Backend::name`], e.g. the CI matrix's `portfolio` leg).
/// Unset or unknown values fall back to the default backend, so the
/// always-on gates keep their historical meaning.
pub fn gate_backend() -> Backend {
    std::env::var("PARTITA_BACKEND")
        .ok()
        .and_then(|v| Backend::ALL.into_iter().find(|b| b.name() == v.trim()))
        .unwrap_or_default()
}

/// Solves one sweep point with an explicit branch-and-bound thread count,
/// on the gate backend (see [`gate_backend`]).
pub fn solve_with_threads(w: &Workload, rg: Cycles, threads: usize) -> Selection {
    Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(
            &SolveOptions::problem2(RequiredGains::uniform(rg))
                .backend(gate_backend())
                .budget(SolveBudget::default().with_threads(threads)),
        )
        .expect("sweep point feasible")
}

/// Runs the independent auditor over a selection and asserts a clean report.
pub fn assert_audit_clean(w: &Workload, sel: &Selection, opts: &SolveOptions, ctx: &str) {
    let report = SelectionAuditor::new(&w.instance, &w.imps).audit(sel, opts);
    assert!(
        report.is_clean(),
        "audit oracle rejected the solution at {ctx}: {}",
        report.to_json()
    );
}

/// The committed corpus manifest; parse failures are a gate failure, not a
/// skip.
pub fn manifest() -> Vec<ManifestEntry> {
    corpus::manifest().expect("tests/corpus/manifest.json parses")
}

/// Manifest entries the always-on gates iterate (everything not env-gated).
pub fn ungated_entries() -> Vec<ManifestEntry> {
    manifest().into_iter().filter(|e| !e.gated).collect()
}

/// Scale entries behind `PARTITA_CORPUS_X100=1`.
pub fn gated_entries() -> Vec<ManifestEntry> {
    manifest().into_iter().filter(|e| e.gated).collect()
}

/// Whether the env-gated scale leg is enabled for this run.
pub fn x100_enabled() -> bool {
    std::env::var("PARTITA_CORPUS_X100").is_ok_and(|v| v == "1")
}

/// Ungated entries of one family (and, for synth, one preset).
pub fn entries_for(family: &str, preset: &str) -> Vec<ManifestEntry> {
    ungated_entries()
        .into_iter()
        .filter(|e| e.family == family && e.preset == preset)
        .collect()
}

/// Rebuilds a manifest entry and checks its pinned content digest — any
/// silent generator drift fails here with a regeneration hint.
pub fn verified_workload(entry: &ManifestEntry) -> Workload {
    entry.verify().expect("corpus entry rebuilds to its digest")
}

/// The middle of a workload's RG sweep — the canonical single probe point
/// when iterating a corpus too large to solve at every sweep value.
pub fn mid_rg(w: &Workload) -> Cycles {
    w.rg_sweep[w.rg_sweep.len() / 2]
}
