//! The manifest-driven corpus gate: every committed corpus instance must
//! rebuild to its pinned digest, solve at its mid-sweep requirement, pass
//! the independent audit, and — for the optimally-solvable presets —
//! decode byte-identically at 1 and 4 branch-and-bound worker threads.
//!
//! The corpus splits into three legs by scale:
//!
//! * **optimal leg** — `micro`/`small` synth entries plus all four DSP
//!   families (250 of the 274 ungated entries): full branch-and-bound,
//!   thread-count byte-identity, audit oracle;
//! * **heuristic leg** — `table`/`x10` entries, where worst-case optimal
//!   solves are minutes, not milliseconds: the deterministic greedy
//!   baseline plus the audit oracle;
//! * **gated scale leg** — `x100` entries, skipped unless
//!   `PARTITA_CORPUS_X100=1` (the nightly matrix sets it): generation,
//!   digest, greedy and audit at three orders of magnitude.

mod common;

use partita::core::{Backend, RequiredGains, SolveOptions, Solver};

/// Families/presets cheap enough to solve to proven optimality everywhere.
fn optimal_leg(entry: &partita::workloads::corpus::ManifestEntry) -> bool {
    match entry.family.as_str() {
        "synth" => matches!(entry.preset.as_str(), "micro" | "small"),
        _ => true,
    }
}

/// Every ungated entry rebuilds to its manifest digest — the drift lock
/// that makes the other gates' results attributable to committed inputs.
#[test]
fn all_ungated_entries_rebuild_to_their_digests() {
    let entries = common::ungated_entries();
    assert!(entries.len() >= 200, "{} ungated entries", entries.len());
    for entry in &entries {
        common::verified_workload(entry);
    }
}

/// The optimal leg: mid-sweep solve at 1 and 4 threads must serialize
/// byte-identically and audit clean, over at least 200 corpus instances.
#[test]
fn corpus_selections_byte_identical_across_threads_and_audit_clean() {
    let entries: Vec<_> = common::ungated_entries()
        .into_iter()
        .filter(optimal_leg)
        .collect();
    assert!(
        entries.len() >= 200,
        "optimal leg shrank to {} entries",
        entries.len()
    );
    for entry in &entries {
        let w = common::verified_workload(entry);
        let rg = common::mid_rg(&w);
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
        let serial = common::solve_with_threads(&w, rg, 1);
        common::assert_audit_clean(&w, &serial, &opts, &entry.id);
        let reference = common::serialize_selection(&serial);
        let parallel = common::serialize_selection(&common::solve_with_threads(&w, rg, 4));
        assert_eq!(
            reference, parallel,
            "{}: 4-thread selection diverged from serial",
            entry.id
        );
    }
}

/// The heuristic leg: `table`/`x10` entries run the deterministic greedy
/// baseline (worst-case optimal solves at this scale are minutes); the
/// selection must still re-derive cleanly under the independent audit and
/// replay byte-identically.
#[test]
fn large_preset_greedy_solutions_audit_clean() {
    let entries: Vec<_> = common::ungated_entries()
        .into_iter()
        .filter(|e| !optimal_leg(e))
        .collect();
    assert!(!entries.is_empty(), "table/x10 entries missing");
    for entry in &entries {
        let w = common::verified_workload(entry);
        let rg = common::mid_rg(&w);
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg)).backend(Backend::Greedy);
        let solve = || {
            Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
                .unwrap_or_else(|e| panic!("{}: greedy baseline failed: {e}", entry.id))
        };
        let sel = solve();
        common::assert_audit_clean(&w, &sel, &opts, &entry.id);
        assert_eq!(
            common::serialize_selection(&sel),
            common::serialize_selection(&solve()),
            "{}: greedy replay diverged",
            entry.id
        );
    }
}

/// The env-gated scale leg (`PARTITA_CORPUS_X100=1`): x100 entries verify
/// their digests and run greedy + audit. Optimal solves are out of reach
/// at 1800 s-calls; determinism of the generator and soundness of the
/// heuristic are what the scale leg locks.
#[test]
fn gated_x100_entries_generate_and_audit_clean() {
    let entries = common::gated_entries();
    assert!(!entries.is_empty(), "gated x100 entries missing");
    if !common::x100_enabled() {
        eprintln!(
            "skipping {} x100 entries (set PARTITA_CORPUS_X100=1 to run)",
            entries.len()
        );
        return;
    }
    for entry in &entries {
        let w = common::verified_workload(entry);
        let rg = common::mid_rg(&w);
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg)).backend(Backend::Greedy);
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&opts)
            .unwrap_or_else(|e| panic!("{}: greedy baseline failed: {e}", entry.id));
        common::assert_audit_clean(&w, &sel, &opts, &entry.id);
    }
}

/// The manifest and the in-code population must list exactly the same
/// specs in the same order — adding a family without regenerating the
/// manifest fails here, not silently in coverage.
#[test]
fn manifest_matches_population() {
    let entries = common::manifest();
    let pop = partita::workloads::corpus::population();
    assert_eq!(entries.len(), pop.len(), "regenerate the manifest");
    for (e, s) in entries.iter().zip(&pop) {
        assert_eq!(e.id, s.id(), "manifest order diverged from population");
        assert_eq!(e.gated, s.gated, "{}: gating diverged", e.id);
    }
}
