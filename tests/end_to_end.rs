//! End-to-end integration: Partita-C source → µ-code → profile →
//! parallel-code analysis → IMP generation → ILP selection, spanning every
//! crate in the workspace.

mod common;

use partita::asip::{ExecOptions, Kernel};
use partita::core::{parallel_code, ImpDb, Instance, RequiredGains, SCall, SolveOptions, Solver};
use partita::frontend::{compile, profile};
use partita::interface::{InterfaceKind, TransferJob};
use partita::ip::{IpBlock, IpFunction};
use partita::mop::{AreaTenths, Cycles};

const PIPELINE_SRC: &str = "
    xmem input[32] @ 0;
    ymem stage1[32] @ 0;
    xmem stage2[32] @ 64;
    ymem result[32] @ 64;

    fn prefilter() reads input writes stage1 {
        let acc = 0; let i = 0;
        while (i < 32) { acc = acc + input[i]; stage1[i] = acc; i = i + 1; }
    }
    fn sidechain() reads input writes stage2 {
        let i = 0;
        while (i < 32) { stage2[i] = input[i] * 2; i = i + 1; }
    }
    fn combine() reads stage1, stage2 writes result {
        let i = 0;
        while (i < 32) { result[i] = stage1[i] + stage2[i]; i = i + 1; }
    }
    fn main() { prefilter(); sidechain(); combine(); }
";

fn compiled_pipeline() -> (partita::frontend::CompiledProgram, Kernel) {
    let mut compiled = compile(PIPELINE_SRC).expect("pipeline source compiles");
    let mut kernel = Kernel::new(256, 256);
    let input: Vec<i32> = (0..32).map(|i| (i % 7) - 3).collect();
    kernel.xdm.load(0, &input).expect("input fits");
    profile(&mut compiled, &mut kernel, &ExecOptions::default()).expect("pipeline runs");
    (compiled, kernel)
}

#[test]
fn compiled_program_computes_correct_results() {
    let (_, kernel) = compiled_pipeline();
    let input: Vec<i32> = (0..32).map(|i| (i % 7) - 3).collect();
    let mut acc = 0;
    for i in 0..32u32 {
        acc += input[i as usize];
        let expected = acc + input[i as usize] * 2;
        assert_eq!(kernel.ydm.read(64 + i).unwrap(), expected, "result[{i}]");
    }
}

#[test]
fn profile_feeds_software_cycle_counts() {
    let (compiled, _) = compiled_pipeline();
    for name in ["prefilter", "sidechain", "combine"] {
        let id = compiled.program.function_by_name(name).unwrap();
        let cycles = compiled.program.function(id).unwrap().profiled_cycles();
        assert!(
            cycles.get() > 32,
            "{name} must account for its 32 loop iterations, got {cycles}"
        );
    }
}

#[test]
fn parallel_code_analysis_finds_the_independent_pair() {
    let (compiled, _) = compiled_pipeline();
    let main_id = compiled.program.function_by_name("main").unwrap();
    let infos = parallel_code::analyze_function(&compiled, main_id).unwrap();
    assert_eq!(infos.len(), 3);
    // prefilter and sidechain are mutually independent; combine depends on
    // both.
    assert_eq!(infos[0].1.sw_candidate_mops.len(), 1);
    assert_eq!(infos[1].1.sw_candidate_mops.len(), 1);
    assert!(infos[2].1.sw_candidate_mops.is_empty());
}

/// The full flow: everything from source to a solved selection, asserting
/// that the Problem 2 solution exploits the analysis results.
#[test]
fn source_to_selection() {
    let (compiled, _) = compiled_pipeline();
    let main_id = compiled.program.function_by_name("main").unwrap();
    let infos = parallel_code::analyze_function(&compiled, main_id).unwrap();

    let mut instance = Instance::new("pipeline");
    instance.library.add(
        IpBlock::builder("mac_fir")
            .function(IpFunction::Fir)
            .rates(4, 4)
            .latency(8)
            .area(AreaTenths::from_units(2))
            .build(),
    );
    instance.library.add(
        IpBlock::builder("scaler")
            .function(IpFunction::Quantizer)
            .rates(2, 2)
            .latency(2)
            .area(AreaTenths::from_units(1))
            .build(),
    );
    let specs = [
        ("prefilter", IpFunction::Fir),
        ("sidechain", IpFunction::Quantizer),
        ("combine", IpFunction::Fir),
    ];
    let mut ids = Vec::new();
    for ((_, info), (name, ipf)) in infos.iter().zip(specs) {
        let callee = compiled.program.function_by_name(name).unwrap();
        let sw = compiled.program.function(callee).unwrap().profiled_cycles();
        ids.push(instance.add_scall(
            SCall::new(name, ipf, sw, TransferJob::new(64, 64)).with_plain_pc(info.cycles),
        ));
    }
    instance.scalls[0].sw_pc_candidates = vec![ids[1]];
    instance.add_path(ids);

    let db = ImpDb::generate(&instance);
    assert!(!db.is_empty());
    // All four interface kinds appear for the 2-port FIR.
    let kinds: std::collections::BTreeSet<_> = db
        .for_scall(ids_first(&instance))
        .iter()
        .map(|i| i.interface)
        .collect();
    assert!(kinds.contains(&InterfaceKind::Type0));
    assert!(kinds.contains(&InterfaceKind::Type3));

    let max_gain: u64 = instance
        .scalls
        .iter()
        .map(|sc| {
            db.for_scall(sc.id)
                .iter()
                .map(|i| i.gain.get())
                .max()
                .unwrap_or(0)
        })
        .sum();
    let sel = Solver::new(&instance)
        .with_imps(db)
        .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
            max_gain / 2,
        ))))
        .expect("mid-range requirement feasible");
    assert!(sel.total_gain().get() >= max_gain / 2);
    assert!(sel.total_area() > AreaTenths::ZERO);
    assert!(sel.s_instruction_count() <= sel.selected_scall_count());
}

fn ids_first(instance: &Instance) -> partita::mop::CallSiteId {
    instance.scalls[0].id
}

/// Per-path requirements through the whole pipeline: an unlisted path
/// requires zero gain, listing every path at one value is exactly the
/// uniform requirement, and constraining only one of two paths can never
/// cost more area than constraining both.
#[test]
fn per_path_requirements_with_unlisted_paths() {
    use partita::mop::PathId;
    let w = partita::workloads::synth::generate(partita::workloads::synth::SynthParams::sized(
        8, 4, 2, 7,
    ));
    assert_eq!(w.instance.paths.len(), 2, "two-path corpus instance");
    let (p0, p1) = (w.instance.paths[0].id, w.instance.paths[1].id);
    let rg = w.rg_sweep[1];
    let solve = |gains: RequiredGains| {
        Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(gains))
            .expect("corpus sweep point feasible")
    };

    let uniform = solve(RequiredGains::uniform(rg));
    let listed_both = solve(RequiredGains::per_path(vec![(p0, rg), (p1, rg)]));
    assert_eq!(
        uniform.chosen(),
        listed_both.chosen(),
        "listing every path at RG equals the uniform requirement"
    );

    let only_p0 = solve(RequiredGains::per_path(vec![(p0, rg)]));
    assert!(
        only_p0.total_area() <= uniform.total_area(),
        "dropping the second path's requirement can only relax the problem"
    );
    assert!(only_p0
        .verify(
            &w.instance,
            &SolveOptions::problem2(RequiredGains::per_path(vec![(p0, rg)])),
        )
        .is_ok());
    // The relaxed selection need not meet RG on the unlisted path, but an
    // unknown path id in the spec is simply inert (requires zero anywhere).
    let ghost = solve(RequiredGains::per_path(vec![(p0, rg), (PathId(99), rg)]));
    assert_eq!(ghost.chosen(), only_p0.chosen());

    let empty = solve(RequiredGains::per_path(Vec::new()));
    let zero = solve(RequiredGains::uniform(Cycles::ZERO));
    assert_eq!(empty.chosen(), zero.chosen());
    assert_eq!(empty.total_area(), AreaTenths::ZERO);
}

/// Zero required gain on every published sweep point: the cheapest answer
/// is always "stay in software" — an empty selection with zero area — and
/// that degenerate selection must itself pass the independent audit, both
/// on a cold solve and on a sweep-session cache hit.
#[test]
fn zero_rg_selects_nothing_and_audits_clean() {
    use partita::core::SweepSession;
    use partita::workloads::gsm;

    let w = gsm::encoder();
    let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles::ZERO));
    let sel = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&opts)
        .expect("zero requirement is trivially feasible");
    assert!(sel.chosen().is_empty(), "zero RG must not buy hardware");
    assert_eq!(sel.total_area(), AreaTenths::ZERO);
    common::assert_audit_clean(&w, &sel, &opts, "gsm encoder at zero RG");

    // The cache-hit path runs its own audit (the flag is not in the key).
    let audited = opts.audit(true);
    let mut session = SweepSession::new();
    let cold = session
        .solve(&w.instance, &w.imps, &audited)
        .expect("audited cold solve");
    let hit = session
        .solve(&w.instance, &w.imps, &audited)
        .expect("audited cache hit");
    assert_eq!(cold, hit);
    assert_eq!(session.trace().cache_hits, 1);
}

/// A path with no s-calls accumulates zero gain by construction: it is
/// inert at zero requirement and typed-infeasible at any positive one —
/// never a panic, never a silent wrong answer.
#[test]
fn empty_path_is_inert_at_zero_rg_and_infeasible_above() {
    use partita::core::{CoreError, SelectionAuditor};
    use partita::mop::PathId;

    let mut instance = Instance::new("empty-path");
    instance.library.add(
        IpBlock::builder("fir16")
            .function(IpFunction::Fir)
            .rates(4, 4)
            .latency(8)
            .area(AreaTenths::from_units(2))
            .build(),
    );
    let sc = instance.add_scall(SCall::new(
        "fir",
        IpFunction::Fir,
        Cycles(4000),
        TransferJob::new(64, 64),
    ));
    instance.add_path(vec![sc]);
    let empty = instance.add_path(vec![]);
    let db = ImpDb::generate(&instance);

    let zero = SolveOptions::problem2(RequiredGains::per_path(vec![(empty, Cycles::ZERO)]));
    let sel = Solver::new(&instance)
        .with_imps(db.clone())
        .solve(&zero)
        .expect("an empty path requiring zero gain is inert");
    let report = SelectionAuditor::new(&instance, &db).audit(&sel, &zero);
    assert!(report.is_clean(), "{}", report.to_json());

    let err = Solver::new(&instance)
        .with_imps(db)
        .solve(&SolveOptions::problem2(RequiredGains::per_path(vec![(
            empty,
            Cycles(1),
        )])))
        .expect_err("no IMP can speed up a path with no s-calls");
    assert!(
        matches!(
            err,
            CoreError::Infeasible {
                path: None | Some(PathId(1))
            }
        ),
        "expected a typed infeasibility, got {err}"
    );
}

/// An s-call whose function no library IP implements generates an empty
/// IMP database: the solver reports the typed [`CoreError::NoImps`] rather
/// than fabricating a do-nothing selection or panicking.
#[test]
fn software_only_instance_reports_no_imps() {
    use partita::core::CoreError;

    let mut instance = Instance::new("sw-only");
    let sc = instance.add_scall(SCall::new(
        "vlc",
        IpFunction::Custom("vlc".into()),
        Cycles(9000),
        TransferJob::new(16, 16),
    ));
    instance.add_path(vec![sc]);
    let db = ImpDb::generate(&instance);
    assert!(db.is_empty(), "no IP supports the custom function");
    for rg in [0u64, 100] {
        let err = Solver::new(&instance)
            .with_imps(db.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(rg))))
            .expect_err("an empty database cannot produce a selection");
        assert!(matches!(err, CoreError::NoImps), "RG {rg}: got {err}");
    }
}

/// The §2 back-end flow: a solved selection becomes S-class instructions in
/// the ASIP's instruction set, with interface templates as their µ-coded
/// bodies and the µ-ROM folding shared words.
#[test]
fn selection_to_instruction_set() {
    use partita::asip::{InstrClass, InstructionSet};
    use partita::core::merge;
    use partita::interface::template::{emit_type0, DataLayout};
    use partita::workloads::gsm;

    let w = gsm::encoder();
    let sel = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(
            334_182,
        ))))
        .expect("published sweep point");

    // Merge into S-instructions and register them in the ISA.
    let mut isa = InstructionSet::with_baseline_p_class();
    let merged = merge::merge(sel.chosen());
    for group in &merged {
        let ips: Vec<String> = group.ips.iter().map(ToString::to_string).collect();
        isa.add(
            InstrClass::S,
            format!("s_{}_{}", ips.join("_"), group.interface),
        );
    }
    assert_eq!(isa.of_class(InstrClass::S).len(), sel.s_instruction_count());
    let enc = isa.encode();
    assert_eq!(enc.used, 18 + sel.s_instruction_count());
    assert!(enc.opcode_bits >= 5);

    // Emit a µ-coded body for a type-0 S-instruction and account its ROM.
    let fir = IpBlock::builder("fir16")
        .function(IpFunction::Fir)
        .rates(4, 4)
        .latency(8)
        .build();
    let t =
        emit_type0(&fir, TransferJob::new(32, 32), DataLayout::default()).expect("type 0 feasible");
    let stats = isa.microcode_stats([&t.function]);
    assert!(stats.total_words as u64 >= t.predicted_cycles.get());
    assert!(
        stats.unique_words < stats.total_words,
        "nop padding must fold"
    );
}
