//! Reproducibility: every published sweep point must decode to the same
//! selection on repeated solves — the tables in EXPERIMENTS.md are only
//! meaningful if the solver is deterministic. The serialization contract
//! and thread-count solver live in `tests/common` and are shared with the
//! corpus and fuzz gates.

mod common;

use common::{serialize_selection, solve_with_threads};
use partita::core::{RequiredGains, SolveBudget, SolveOptions, Solver, SweepSession};
use partita::workloads::{adpcm, fft_radix4, gsm, jpeg, lms, synth, viterbi, Workload};

/// Calibrated tables plus one canonical member of each generated DSP
/// family: the full published surface.
fn published_workloads() -> Vec<Workload> {
    vec![
        gsm::encoder(),
        gsm::decoder(),
        jpeg::encoder(),
        viterbi::workload(),
        adpcm::workload(),
        lms::workload(),
        fft_radix4::workload(),
    ]
}

#[test]
fn calibrated_sweeps_are_deterministic() {
    for w in published_workloads() {
        for &rg in &w.rg_sweep {
            let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
            let a = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
                .expect("sweep point feasible");
            let b = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
                .expect("sweep point feasible");
            assert_eq!(
                a.chosen(),
                b.chosen(),
                "{} at RG {} must decode identically",
                w.instance.name,
                rg.get()
            );
            assert_eq!(a.total_area(), b.total_area());
            assert_eq!(a.total_gain(), b.total_gain());
            // Audit oracle over every published table point: the selection
            // must re-derive cleanly from the calibrated IMP database.
            let ctx = format!("{} at RG {}", w.instance.name, rg.get());
            common::assert_audit_clean(&w, &a, &opts, &ctx);
        }
    }
}

/// The parallel backend must produce byte-identical selections at 1, 2 and
/// 8 worker threads, across repeated runs, on every published sweep point:
/// thread count is a performance knob, never a result knob.
#[test]
fn selections_are_byte_identical_across_thread_counts() {
    for w in published_workloads() {
        for &rg in &w.rg_sweep {
            let reference = serialize_selection(&solve_with_threads(&w, rg, 1));
            for threads in [1usize, 2, 8] {
                for run in 0..2 {
                    let got = serialize_selection(&solve_with_threads(&w, rg, threads));
                    assert_eq!(
                        reference,
                        got,
                        "{} at RG {}: {threads}-thread run {run} diverged from serial",
                        w.instance.name,
                        rg.get()
                    );
                }
            }
        }
    }
}

/// Same contract on a synthetic instance whose search tree is deep enough
/// that the parallel pool actually interleaves.
#[test]
fn synth_selection_byte_identical_across_thread_counts() {
    let w = synth::generate(synth::SynthParams::sized(12, 8, 2, 3));
    let rg = w.rg_sweep[2];
    let reference = serialize_selection(&solve_with_threads(&w, rg, 1));
    for threads in [2usize, 8] {
        for _ in 0..3 {
            let got = serialize_selection(&solve_with_threads(&w, rg, threads));
            assert_eq!(reference, got, "{threads} threads diverged");
        }
    }
}

/// A [`SweepSession`] cache hit must hand back the cold solve verbatim —
/// including the trace — at 1 and 4 branch-and-bound worker threads. The
/// thread count is part of the solve key, so the two configurations get
/// separate entries but each replays its own cold result exactly.
#[test]
fn session_cache_hit_is_byte_identical_across_thread_counts() {
    for w in [gsm::encoder(), jpeg::encoder()] {
        let mut session = SweepSession::new();
        for threads in [1usize, 4] {
            for &rg in &w.rg_sweep {
                let opts = SolveOptions::problem2(RequiredGains::uniform(rg))
                    .budget(SolveBudget::default().with_threads(threads));
                let cold = session
                    .solve(&w.instance, &w.imps, &opts)
                    .expect("sweep point feasible");
                let hit = session
                    .solve(&w.instance, &w.imps, &opts)
                    .expect("cached sweep point");
                assert_eq!(
                    cold,
                    hit,
                    "{} at RG {} ({threads} threads): cache hit diverged",
                    w.instance.name,
                    rg.get()
                );
                assert_eq!(serialize_selection(&cold), serialize_selection(&hit));
            }
        }
        let trace = session.trace();
        let per_config = 2 * w.rg_sweep.len() as u64;
        assert_eq!(trace.cache_hits, per_config, "{}", w.instance.name);
        assert_eq!(trace.cache_misses, per_config, "{}", w.instance.name);
    }
}

/// Chained sweeps and independent cold solves agree point for point on
/// every published table — the orchestration layer is a performance knob,
/// never a result knob.
#[test]
fn chained_sweep_selections_match_independent_solves() {
    for w in [gsm::encoder(), gsm::decoder(), jpeg::encoder()] {
        let mut session = SweepSession::new();
        let sweep = session
            .sweep(&w.instance, &w.imps, &SolveOptions::default(), &w.rg_sweep)
            .expect("published sweep feasible");
        for (sel, &rg) in sweep.iter().zip(&w.rg_sweep) {
            let lone = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))
                .expect("sweep point feasible");
            assert_eq!(
                serialize_selection(sel),
                serialize_selection(&lone),
                "{} at RG {}: chained sweep diverged from lone solve",
                w.instance.name,
                rg.get()
            );
        }
    }
}

#[test]
fn synthetic_instances_are_deterministic() {
    let w1 = synth::generate(synth::SynthParams::default());
    let w2 = synth::generate(synth::SynthParams::default());
    assert_eq!(w1.imps.imps(), w2.imps.imps());
    assert_eq!(w1.rg_sweep, w2.rg_sweep);
    let rg = w1.rg_sweep[0];
    let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
    let a = Solver::new(&w1.instance)
        .with_imps(w1.imps.clone())
        .solve(&opts);
    let b = Solver::new(&w2.instance)
        .with_imps(w2.imps.clone())
        .solve(&opts);
    match (a, b) {
        (Ok(a), Ok(b)) => assert_eq!(a.chosen(), b.chosen()),
        (Err(_), Err(_)) => {}
        other => panic!("determinism violated: {other:?}"),
    }
}
