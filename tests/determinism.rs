//! Reproducibility: every published sweep point must decode to the same
//! selection on repeated solves — the tables in EXPERIMENTS.md are only
//! meaningful if the solver is deterministic.

use partita::core::{RequiredGains, SolveOptions, Solver};
use partita::workloads::{gsm, jpeg, synth};

#[test]
fn calibrated_sweeps_are_deterministic() {
    for w in [gsm::encoder(), gsm::decoder(), jpeg::encoder()] {
        for &rg in &w.rg_sweep {
            let opts = SolveOptions::new(RequiredGains::Uniform(rg));
            let a = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
                .expect("sweep point feasible");
            let b = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
                .expect("sweep point feasible");
            assert_eq!(
                a.chosen(),
                b.chosen(),
                "{} at RG {} must decode identically",
                w.instance.name,
                rg.get()
            );
            assert_eq!(a.total_area(), b.total_area());
            assert_eq!(a.total_gain(), b.total_gain());
        }
    }
}

#[test]
fn synthetic_instances_are_deterministic() {
    let w1 = synth::generate(synth::SynthParams::default());
    let w2 = synth::generate(synth::SynthParams::default());
    assert_eq!(w1.imps.imps(), w2.imps.imps());
    assert_eq!(w1.rg_sweep, w2.rg_sweep);
    let rg = w1.rg_sweep[0];
    let opts = SolveOptions::new(RequiredGains::Uniform(rg));
    let a = Solver::new(&w1.instance)
        .with_imps(w1.imps.clone())
        .solve(&opts);
    let b = Solver::new(&w2.instance)
        .with_imps(w2.imps.clone())
        .solve(&opts);
    match (a, b) {
        (Ok(a), Ok(b)) => assert_eq!(a.chosen(), b.chosen()),
        (Err(_), Err(_)) => {}
        other => panic!("determinism violated: {other:?}"),
    }
}
