//! Generator → solve → audit → edit-sequence fuzz gate: random small
//! [`SynthParams`] drawn across every generator knob must produce instances
//! that solve (or fail with the typed errors the API promises), pass the
//! independent audit, and — driven through a random [`DeltaSession`] edit
//! sequence — agree with a cold oracle solve of the patched instance at
//! every step. 256 cases per property, deterministic per test name (the
//! proptest shim derives its RNG from the test path).

mod common;

use std::sync::Arc;

use proptest::prelude::*;

use partita::core::{
    CoreError, DeltaSession, InstanceDelta, RequiredGains, Selection, SolveOptions, Solver,
};
use partita::interface::InterfaceKind;
use partita::ip::{IpBlock, IpFunction, IpId};
use partita::mop::{AreaTenths, Cycles};
use partita::workloads::corpus::digest;
use partita::workloads::synth::{try_generate, KindMix, SynthError, SynthParams};

const KINDS: [InterfaceKind; 4] = [
    InterfaceKind::Type0,
    InterfaceKind::Type1,
    InterfaceKind::Type2,
    InterfaceKind::Type3,
];

/// Small but fully knob-covered parameter sets: every axis the scaling
/// generator exposes, sized so an optimal solve is milliseconds.
fn params() -> impl Strategy<Value = SynthParams> {
    (
        (2usize..=5, 1usize..=3, 1usize..=3, 0u64..1_000_000),
        (1usize..=2, 0u8..=100, 0usize..=1, 0u8..3),
    )
        .prop_map(
            |((scalls, ips, paths, seed), (imp_fanout, conflict_pct, hierarchy_depth, mix))| {
                SynthParams {
                    scalls,
                    ips,
                    paths,
                    seed,
                    imp_fanout,
                    conflict_pct,
                    hierarchy_depth,
                    kind_mix: match mix {
                        0 => KindMix::Balanced,
                        1 => KindMix::BufferedOnly,
                        _ => KindMix::AllKinds,
                    },
                }
            },
        )
}

/// One random edit in pre-resolution form; ids are mod-mapped onto the
/// session's current instance when applied.
#[derive(Debug, Clone)]
enum EditSpec {
    /// Walk to another sweep point (index into `rg_sweep`).
    SetRgIdx(usize),
    /// Jump to an arbitrary requirement (may be infeasible — both sides
    /// must then agree on the typed error).
    SetRgRaw(u64),
    RemoveIp(u32),
    BanKind(u8),
    RestoreKind(u8),
    AddIp(i64),
}

fn edits() -> impl Strategy<Value = Vec<EditSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (0usize..4).prop_map(EditSpec::SetRgIdx),
            (0u64..500_000).prop_map(EditSpec::SetRgRaw),
            (0u32..8).prop_map(EditSpec::RemoveIp),
            (0u8..4).prop_map(EditSpec::BanKind),
            (0u8..4).prop_map(EditSpec::RestoreKind),
            (1i64..12).prop_map(EditSpec::AddIp),
        ],
        1..5,
    )
}

fn resolve_edit(
    spec: &EditSpec,
    session: &DeltaSession,
    rg_sweep: &[Cycles],
    next_ip: &mut u32,
) -> InstanceDelta {
    match spec {
        EditSpec::SetRgIdx(i) => {
            InstanceDelta::SetRg(RequiredGains::uniform(rg_sweep[i % rg_sweep.len()]))
        }
        EditSpec::SetRgRaw(rg) => InstanceDelta::SetRg(RequiredGains::uniform(Cycles(*rg))),
        EditSpec::RemoveIp(ip) => {
            let n = session.instance().library.len() as u32;
            InstanceDelta::RemoveIp(IpId(ip % n.max(1)))
        }
        EditSpec::BanKind(k) => {
            InstanceDelta::SetInterfaceKind(KINDS[*k as usize % KINDS.len()], false)
        }
        EditSpec::RestoreKind(k) => {
            InstanceDelta::SetInterfaceKind(KINDS[*k as usize % KINDS.len()], true)
        }
        EditSpec::AddIp(area) => {
            *next_ip += 1;
            InstanceDelta::AddIp(
                IpBlock::builder(format!("fuzz_added{next_ip}"))
                    .function(IpFunction::Fir)
                    .rates(4, 4)
                    .latency(8)
                    .area(AreaTenths::from_units(*area))
                    .build(),
            )
        }
    }
}

/// Cold oracle: a fresh solver over the session's current (patched)
/// instance and database.
fn cold(session: &DeltaSession) -> Result<Selection, CoreError> {
    Solver::new(session.instance())
        .with_imps(Arc::clone(session.db()))
        .solve(session.options())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any generated instance solves its achievable sweep points cleanly:
    /// the mid-sweep solve succeeds (or reports a typed error), and every
    /// success re-derives under the independent audit.
    #[test]
    fn generated_instances_solve_and_audit_clean(p in params()) {
        let w = try_generate(p).expect("non-degenerate params must generate");
        prop_assert!(!w.rg_sweep.is_empty(), "empty sweep for {p:?}");
        let rg = w.rg_sweep[w.rg_sweep.len() / 2];
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
        match Solver::new(&w.instance).with_imps(w.imps.clone()).solve(&opts) {
            Ok(sel) => {
                common::assert_audit_clean(&w, &sel, &opts, &format!("{p:?}"));
                // Replay is byte-identical: the generator + solver pair is
                // a pure function of the parameters.
                let again = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts)
                    .expect("replay of a feasible solve");
                prop_assert_eq!(
                    common::serialize_selection(&sel),
                    common::serialize_selection(&again),
                    "replay diverged for {:?}", p
                );
            }
            Err(CoreError::Infeasible { .. } | CoreError::NoImps) => {}
            Err(e) => return Err(TestCaseError::fail(format!("{p:?}: unexpected {e}"))),
        }
    }

    /// Generation is a pure function of its parameters: rebuilding the
    /// same knob vector is digest-identical, and a different seed is not.
    #[test]
    fn generation_is_digest_stable(p in params()) {
        let a = try_generate(p).expect("non-degenerate params must generate");
        let b = try_generate(p).expect("non-degenerate params must generate");
        prop_assert_eq!(digest(&a), digest(&b), "rebuild diverged for {:?}", p);
        let other = try_generate(p.with_seed(p.seed ^ 0x9e37_79b9)).expect("seed variant");
        prop_assert_ne!(digest(&a), digest(&other));
    }

    /// The round trip the corpus gates rely on: generate, solve, audit,
    /// then drive a random edit sequence through a `DeltaSession` — after
    /// every edit the warm re-solve must match a cold oracle solve of the
    /// patched instance and pass the audit.
    #[test]
    fn edit_sequences_match_cold_oracle(p in params(), seq in edits()) {
        let w = try_generate(p).expect("non-degenerate params must generate");
        let base = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[0]));
        let mut session = match DeltaSession::new(
            Arc::clone(&w.instance),
            Arc::clone(&w.imps),
            base,
        ) {
            Ok(s) => s,
            Err(CoreError::NoImps) => return Ok(()),
            Err(e) => return Err(TestCaseError::fail(format!("{p:?}: formulation {e}"))),
        };
        let first = session.resolve();
        let reference = cold(&session);
        match (&first, &reference) {
            (Ok(a), Ok(b)) => {
                prop_assert_eq!(a.chosen(), b.chosen(), "initial resolve diverged at {:?}", p);
            }
            (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {}
            other => return Err(TestCaseError::fail(format!("{p:?}: initial {other:?}"))),
        }
        let mut next_ip = 0u32;
        for (i, spec) in seq.iter().enumerate() {
            let delta = resolve_edit(spec, &session, &w.rg_sweep, &mut next_ip);
            if session.apply(delta).is_err() {
                // A structurally rejected edit (e.g. removing the last IP)
                // must leave the session consistent; keep editing.
                continue;
            }
            let warm = session.resolve();
            let oracle = cold(&session);
            let ctx = format!("{p:?}, edit {i} ({spec:?})");
            match (&warm, &oracle) {
                (Ok(a), Ok(b)) => {
                    prop_assert_eq!(a.chosen(), b.chosen(), "{}: chosen diverged", ctx);
                    prop_assert_eq!(a.total_area(), b.total_area(), "{}: area diverged", ctx);
                    prop_assert_eq!(&a.status, &b.status, "{}: status diverged", ctx);
                    let report = partita::core::SelectionAuditor::new(
                        session.instance(),
                        session.db(),
                    )
                    .audit(a, session.options());
                    prop_assert!(report.is_clean(), "{}: audit {}", ctx, report.to_json());
                }
                (
                    Err(CoreError::Infeasible { .. } | CoreError::NoImps),
                    Err(CoreError::Infeasible { .. } | CoreError::NoImps),
                ) => {}
                other => return Err(TestCaseError::fail(format!("{ctx}: {other:?}"))),
            }
        }
    }
}

/// Degenerate parameter vectors refuse with the typed error, never a panic
/// or a silently empty instance — the contract the corpus builder relies
/// on when presets are edited.
#[test]
fn degenerate_params_refuse_with_typed_errors() {
    let base = SynthParams::small();
    let err = |p: SynthParams| try_generate(p).map(|_| ()).unwrap_err();
    assert_eq!(
        err(SynthParams { scalls: 0, ..base }),
        SynthError::ZeroSCalls
    );
    assert_eq!(err(SynthParams { ips: 0, ..base }), SynthError::ZeroIps);
    assert_eq!(err(SynthParams { paths: 0, ..base }), SynthError::ZeroPaths);
    assert_eq!(
        err(SynthParams {
            imp_fanout: 0,
            ..base
        }),
        SynthError::ZeroFanout
    );
}
