//! Boundary instances from every workload family: zero required gain,
//! single-path requirements, software-only variants (no feasible IMPs) and
//! maximum conflict density. Each boundary must solve (or fail with the
//! typed error the API promises), pass the independent audit, and replay
//! byte-identically — degenerate inputs are corpus members, not crashes.

mod common;

use partita::core::{CoreError, ImpDb, RequiredGains, SolveOptions, Solver};
use partita::ip::IpLibrary;
use partita::mop::Cycles;
use partita::workloads::synth::{generate, KindMix, SynthParams};
use partita::workloads::{adpcm, fft_radix4, lms, viterbi, Workload};

/// One canonical member of each generated DSP family plus a small synth
/// instance — the boundary population.
fn family_workloads() -> Vec<Workload> {
    vec![
        viterbi::workload(),
        adpcm::workload(),
        lms::workload(),
        fft_radix4::workload(),
        generate(SynthParams::small()),
    ]
}

/// Zero required gain: the cheapest answer is always "stay in software" —
/// an empty selection with zero area — and it must audit clean and replay
/// byte-identically in every family.
#[test]
fn zero_rg_selects_nothing_in_every_family() {
    for w in family_workloads() {
        let opts = SolveOptions::problem2(RequiredGains::uniform(Cycles::ZERO));
        let solve = || {
            Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
                .expect("zero requirement is trivially feasible")
        };
        let sel = solve();
        assert!(
            sel.chosen().is_empty(),
            "{}: zero RG must not buy hardware",
            w.instance.name
        );
        common::assert_audit_clean(&w, &sel, &opts, &w.instance.name);
        assert_eq!(
            common::serialize_selection(&sel),
            common::serialize_selection(&solve()),
            "{}: zero-RG replay diverged",
            w.instance.name
        );
    }
}

/// Requiring gain on only the first path relaxes the uniform problem: the
/// solve stays feasible, audits clean against the per-path spec, and never
/// costs more area than constraining every path.
#[test]
fn single_path_requirement_relaxes_every_family() {
    for w in family_workloads() {
        assert!(w.instance.paths.len() >= 2, "{}", w.instance.name);
        let rg = common::mid_rg(&w);
        let p0 = w.instance.paths[0].id;
        let uniform_opts = SolveOptions::problem2(RequiredGains::uniform(rg));
        let single_opts = SolveOptions::problem2(RequiredGains::per_path(vec![(p0, rg)]));
        let solve = |opts: &SolveOptions| {
            Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(opts)
                .unwrap_or_else(|e| panic!("{}: {e}", w.instance.name))
        };
        let uniform = solve(&uniform_opts);
        let single = solve(&single_opts);
        common::assert_audit_clean(&w, &single, &single_opts, &w.instance.name);
        assert!(
            single.total_area() <= uniform.total_area(),
            "{}: dropping the second path's requirement must only relax",
            w.instance.name
        );
        assert_eq!(
            common::serialize_selection(&single),
            common::serialize_selection(&solve(&single_opts)),
            "{}: single-path replay diverged",
            w.instance.name
        );
    }
}

/// A single-path *instance* (not just a single-path requirement) from the
/// generator: every knob else default, one path carrying every s-call.
#[test]
fn single_path_synth_instance_solves_and_audits() {
    let w = generate(SynthParams {
        paths: 1,
        ..SynthParams::small()
    });
    assert_eq!(w.instance.paths.len(), 1);
    let rg = common::mid_rg(&w);
    let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
    let sel = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&opts)
        .expect("single-path sweep point feasible");
    common::assert_audit_clean(&w, &sel, &opts, "synth single-path");
}

/// Software-only variants: stripping the IP library from any family's
/// instance leaves an empty IMP database, and the solver reports the typed
/// [`CoreError::NoImps`] at zero and positive requirements alike — never a
/// fabricated selection, never a panic.
#[test]
fn software_only_variants_report_no_imps_in_every_family() {
    for w in family_workloads() {
        let mut sw_only = (*w.instance).clone();
        sw_only.library = IpLibrary::new();
        let db = ImpDb::generate(&sw_only);
        assert!(
            db.is_empty(),
            "{}: no library must mean no IMPs",
            w.instance.name
        );
        for rg in [0u64, 1000] {
            let err = Solver::new(&sw_only)
                .with_imps(db.clone())
                .solve(&SolveOptions::problem2(RequiredGains::uniform(Cycles(rg))))
                .expect_err("an empty database cannot produce a selection");
            assert!(
                matches!(err, CoreError::NoImps),
                "{} at RG {rg}: got {err}",
                w.instance.name
            );
        }
    }
}

/// Maximum conflict density: every s-call's parallel code consumes a
/// neighbour's software implementation. The generator must emit a valid
/// instance for every interface-kind mix, and each must solve and audit
/// clean at its mid-sweep requirement.
#[test]
fn max_conflict_density_solves_for_every_kind_mix() {
    for kind_mix in [KindMix::Balanced, KindMix::BufferedOnly, KindMix::AllKinds] {
        let w = generate(SynthParams {
            conflict_pct: 100,
            kind_mix,
            ..SynthParams::small()
        });
        // Conflicts point at successor s-calls, so the last one has no
        // candidate to consume: full density means everyone else conflicts.
        let conflicted = w
            .instance
            .scalls
            .iter()
            .filter(|sc| !sc.sw_pc_candidates.is_empty())
            .count();
        assert_eq!(
            conflicted,
            w.instance.scalls.len() - 1,
            "{kind_mix:?}: full density must conflict every s-call with a successor"
        );
        let rg = common::mid_rg(&w);
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&opts)
            .unwrap_or_else(|e| panic!("{kind_mix:?}: {e}"));
        common::assert_audit_clean(&w, &sel, &opts, &format!("{kind_mix:?} at full density"));
        assert_eq!(
            common::serialize_selection(&sel),
            common::serialize_selection(
                &Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts)
                    .unwrap()
            ),
            "{kind_mix:?}: full-density replay diverged"
        );
    }
}

/// Generated family instances round-trip through their content digest:
/// rebuilding the same seed is byte-identical (digest-equal), a different
/// seed is not — the property the manifest pins for the whole corpus.
#[test]
fn family_rebuilds_are_digest_identical() {
    use partita::workloads::corpus::digest;
    for (a, b, c) in [
        (
            viterbi::variant(5),
            viterbi::variant(5),
            viterbi::variant(6),
        ),
        (adpcm::variant(5), adpcm::variant(5), adpcm::variant(6)),
        (lms::variant(5), lms::variant(5), lms::variant(6)),
        (
            fft_radix4::variant(5),
            fft_radix4::variant(5),
            fft_radix4::variant(6),
        ),
    ] {
        assert_eq!(digest(&a), digest(&b), "{}", a.instance.name);
        assert_ne!(digest(&a), digest(&c), "{}", a.instance.name);
    }
}
