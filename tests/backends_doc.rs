//! Bidirectional contract between `docs/BACKENDS.md` and the code: every
//! backend the engine enumerates is documented, nothing is documented that
//! the engine no longer has, and the cross-references the contract leans on
//! (statuses, race telemetry) actually exist on both sides.

use partita::core::telemetry::EventKind;
use partita::core::{Backend, OptimalityStatus};

const DOC: &str = include_str!("../docs/BACKENDS.md");

#[test]
fn every_backend_has_a_section_and_a_table_row() {
    for backend in Backend::ALL {
        assert!(
            DOC.contains(&format!("### `{}`", backend.name())),
            "docs/BACKENDS.md has no section for backend `{}`",
            backend.name()
        );
        assert!(
            DOC.contains(&format!("| `{}` |", backend.name())),
            "docs/BACKENDS.md line-up table has no row for `{}`",
            backend.name()
        );
    }
}

#[test]
fn every_documented_backend_exists_in_code() {
    let mut sections = 0usize;
    for line in DOC.lines() {
        if let Some(name) = line.strip_prefix("### `").and_then(|l| l.strip_suffix('`')) {
            assert!(
                Backend::ALL.iter().any(|b| b.name() == name),
                "docs/BACKENDS.md documents unknown backend `{name}`"
            );
            sections += 1;
        }
    }
    assert_eq!(
        sections,
        Backend::ALL.len(),
        "one section per backend, no duplicates"
    );
}

#[test]
fn contract_cross_references_exist() {
    // The budget-semantics section names every optimality status.
    for status in [
        OptimalityStatus::Optimal,
        OptimalityStatus::FeasibleBudgetExhausted,
        OptimalityStatus::FallbackUsed,
        OptimalityStatus::Heuristic,
    ] {
        let name = format!("{status:?}");
        assert!(
            DOC.contains(&name),
            "docs/BACKENDS.md never mentions status `{name}`"
        );
    }
    // The telemetry section names the race events, and they exist.
    for kind in [EventKind::BackendFinished, EventKind::RaceWon] {
        assert!(
            DOC.contains(&format!("`{}`", kind.name())),
            "docs/BACKENDS.md never mentions event `{}`",
            kind.name()
        );
    }
    // The tie-break the contract cites is the one the code exports.
    assert!(
        DOC.contains("lex_less") && DOC.contains("1e-9"),
        "determinism contract must cite the shared tie-break"
    );
}
