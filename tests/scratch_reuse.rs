//! Differential lock for the flat-tableau scratch path: over real corpus
//! formulations, an LP solved through a long-lived reused
//! [`SimplexScratch`] must be **byte-identical** — objective bits, value
//! bits, iteration count, or the same typed error — to the same LP solved
//! through a fresh allocation.
//!
//! Branch-and-bound holds one scratch per worker and re-enters it once per
//! node with branch-pinned bounds, so any drift between the two paths
//! (stale buffer contents, resize-dependent rounding, basis bleed-through)
//! would silently desynchronise the search from its single-solve oracle.
//! The property here reproduces that access pattern: random bound-pin
//! masks shaped like branching decisions, replayed against a scratch that
//! has already absorbed every previous case's tableau.

mod common;

use std::sync::{Mutex, OnceLock};

use proptest::prelude::*;

use partita::core::{RequiredGains, SolveOptions, Solver};
use partita::ilp::simplex::{
    solve_with_bounds, solve_with_bounds_scratch, SimplexOptions, SimplexScratch,
};
use partita::ilp::{LpSolution, Model, VarId};

/// Real Problem-2 formulations from the committed `micro` corpus, built
/// once: digest-verified instance -> IMP database -> ILP model, exactly
/// what the branch-and-bound backend receives.
fn corpus_models() -> &'static Vec<Model> {
    static MODELS: OnceLock<Vec<Model>> = OnceLock::new();
    MODELS.get_or_init(|| {
        let entries = common::entries_for("synth", "micro");
        assert!(!entries.is_empty(), "micro corpus entries missing");
        let mut models = Vec::new();
        for entry in entries.iter().take(8) {
            let w = common::verified_workload(entry);
            let rg = w.rg_sweep[w.rg_sweep.len() / 2];
            let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
            match Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .formulate(&opts)
            {
                Ok(model) if model.num_vars() > 0 => models.push(model),
                // Empty databases formulate to errors or empty models;
                // neither exercises the tableau.
                _ => {}
            }
        }
        assert!(
            models.len() >= 3,
            "scratch-reuse corpus too small: {} models",
            models.len()
        );
        models
    })
}

/// The long-lived scratch the property replays every case through — the
/// stand-in for a branch-and-bound worker's per-thread buffer. Guarded by
/// a mutex because the proptest runner may be re-entered.
fn shared_scratch() -> &'static Mutex<SimplexScratch> {
    static SCRATCH: OnceLock<Mutex<SimplexScratch>> = OnceLock::new();
    SCRATCH.get_or_init(|| Mutex::new(SimplexScratch::new()))
}

/// Applies a branching-shaped pin mask to the model's own bounds: code 0
/// leaves the variable free, 1 pins it to its lower bound, 2 to its upper.
fn pinned_bounds(model: &Model, pins: &[u8]) -> (Vec<f64>, Vec<f64>) {
    let n = model.num_vars();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for i in 0..n {
        let (l, u) = model.var_bounds(VarId(i)).expect("index within num_vars");
        match pins.get(i % pins.len().max(1)).copied().unwrap_or(0) {
            1 => {
                lower.push(l);
                upper.push(l);
            }
            2 => {
                lower.push(u);
                upper.push(u);
            }
            _ => {
                lower.push(l);
                upper.push(u);
            }
        }
    }
    (lower, upper)
}

/// Byte-level equality for the two solve paths.
fn assert_bit_identical(
    fresh: &Result<LpSolution, partita::ilp::IlpError>,
    reused: &Result<LpSolution, partita::ilp::IlpError>,
    ctx: &str,
) {
    match (fresh, reused) {
        (Ok(f), Ok(r)) => {
            assert_eq!(
                f.objective.to_bits(),
                r.objective.to_bits(),
                "{ctx}: objective bits diverged ({} vs {})",
                f.objective,
                r.objective
            );
            assert_eq!(
                f.iterations, r.iterations,
                "{ctx}: iteration counts diverged"
            );
            assert_eq!(f.values.len(), r.values.len(), "{ctx}: arity diverged");
            for (i, (a, b)) in f.values.iter().zip(&r.values).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "{ctx}: value {i} bits diverged ({a} vs {b})"
                );
            }
        }
        (Err(f), Err(r)) => {
            assert_eq!(
                format!("{f:?}"),
                format!("{r:?}"),
                "{ctx}: error variants diverged"
            );
        }
        other => panic!("{ctx}: fresh vs reused path diverged: {other:?}"),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn scratch_reuse_is_byte_identical_to_fresh_allocation(
        model_pick in 0usize..1024,
        pins in proptest::collection::vec(0u8..3, 1..48),
    ) {
        let models = corpus_models();
        let model = &models[model_pick % models.len()];
        let (lower, upper) = pinned_bounds(model, &pins);
        let options = SimplexOptions::default();
        let fresh = solve_with_bounds(model, &lower, &upper, options);
        let mut scratch = shared_scratch().lock().expect("scratch mutex");
        let reused = solve_with_bounds_scratch(model, &lower, &upper, options, &mut scratch);
        let ctx = format!(
            "model {} ({} vars), pins {pins:?}",
            model_pick % models.len(),
            model.num_vars()
        );
        assert_bit_identical(&fresh, &reused, &ctx);
    }
}

/// The deterministic companion to the property above: walk every corpus
/// model's unpinned relaxation twice through one scratch and once fresh —
/// the second reuse pass must also count a scratch hit in the ops
/// counters, proving the buffer actually got reused rather than silently
/// reallocated.
#[test]
fn reused_scratch_reports_reuse_and_stays_bit_identical() {
    let models = corpus_models();
    let mut scratch = SimplexScratch::new();
    for (i, model) in models.iter().enumerate() {
        let n = model.num_vars();
        let (lower, upper): (Vec<f64>, Vec<f64>) = (0..n)
            .map(|v| model.var_bounds(VarId(v)).expect("var in range"))
            .unzip();
        let options = SimplexOptions::default();
        let fresh = solve_with_bounds(model, &lower, &upper, options);
        let first = solve_with_bounds_scratch(model, &lower, &upper, options, &mut scratch);
        let second = solve_with_bounds_scratch(model, &lower, &upper, options, &mut scratch);
        assert_bit_identical(&fresh, &first, &format!("model {i} first pass"));
        assert_bit_identical(&fresh, &second, &format!("model {i} second pass"));
    }
    let ops = scratch.ops();
    assert!(
        ops.tableau_builds >= 2 * models.len(),
        "expected at least two builds per model, got {}",
        ops.tableau_builds
    );
    assert!(
        ops.scratch_reuses > 0,
        "repeat passes through one scratch must register reuse hits"
    );
}
