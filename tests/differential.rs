//! Differential-testing corpus: branch-and-bound (serial), branch-and-bound
//! (parallel) and exhaustive enumeration must agree on objective value and
//! feasibility across the committed corpus' `micro` population.
//!
//! This is the equivalence lock for the parallel solver: exhaustive
//! enumeration is an independent oracle (no LP, no pruning, no threads), so
//! any divergence is a solver bug, not a tie-break artifact. Instances whose
//! model exceeds the exhaustive backend's binary-variable cap are skipped —
//! the micro preset is sized so at least 50 (entry, RG) points survive.
//! Every entry rebuilds through its manifest digest first, so the oracle
//! runs over exactly the committed instances, not whatever the generator
//! happens to emit today.

mod common;

use partita::core::{
    Backend, CoreError, RequiredGains, Selection, SolveBudget, SolveOptions, Solver, SweepSession,
};
use partita::ilp::IlpError;

const PARALLEL_THREADS: usize = 4;

/// One backend's verdict on an instance, reduced to what all three must
/// agree on.
#[derive(Debug, Clone, PartialEq)]
enum Verdict {
    /// Feasible: objective (total area in tenths, an exact integer quantity)
    /// and gain.
    Feasible { area: i64, gain: u64 },
    /// Proven infeasible.
    Infeasible,
}

/// `None` when the backend cannot handle the instance (exhaustive cap).
fn verdict(result: Result<Selection, CoreError>) -> Option<Verdict> {
    match result {
        Ok(sel) => {
            assert!(
                sel.status.is_optimal(),
                "unbudgeted solve must prove optimality, got {}",
                sel.status
            );
            Some(Verdict::Feasible {
                area: sel.total_area().tenths(),
                gain: sel.total_gain().get(),
            })
        }
        Err(CoreError::Infeasible { .. }) => Some(Verdict::Infeasible),
        Err(CoreError::Ilp(IlpError::TooManyBinaries { .. })) => None,
        // A seed can produce an instance with an empty IMP database; no
        // backend gets to run, so there is nothing to compare.
        Err(CoreError::NoImps) => None,
        Err(e) => panic!("unexpected solver error: {e}"),
    }
}

#[test]
fn serial_parallel_and_exhaustive_agree_on_corpus() {
    let entries = common::entries_for("synth", "micro");
    assert!(!entries.is_empty(), "micro corpus entries missing");
    let mut compared = 0usize;
    let mut skipped = 0usize;
    for entry in &entries {
        let w = common::verified_workload(entry);
        for &rg in &w.rg_sweep {
            let solve = |backend: Backend, threads: usize| {
                Solver::new(&w.instance).with_imps(w.imps.clone()).solve(
                    &SolveOptions::problem2(RequiredGains::uniform(rg))
                        .backend(backend)
                        // No fallback: a budget problem must surface as an
                        // error, not silently degrade the comparison. The
                        // oracle role needs full enumeration, so the node
                        // budget is effectively unlimited (the exhaustive
                        // binary-variable cap still bounds the work).
                        .budget(
                            SolveBudget::default()
                                .with_max_nodes(usize::MAX)
                                .with_fallback(None)
                                .with_threads(threads),
                        ),
                )
            };
            let ctx = format!("{}, RG {}", entry.id, rg.get());
            let Some(oracle) = verdict(solve(Backend::Exhaustive, 1)) else {
                skipped += 1;
                continue;
            };
            let serial_result = solve(Backend::BranchBound, 1);
            // Independent audit oracle: every feasible selection must
            // re-derive cleanly from the raw instance and IMP database,
            // without consulting the ILP model that produced it.
            if let Ok(sel) = &serial_result {
                common::assert_audit_clean(
                    &w,
                    sel,
                    &SolveOptions::problem2(RequiredGains::uniform(rg)),
                    &ctx,
                );
            }

            // The portfolio's exact racers must not just bound-match the
            // oracle: per the determinism contract of docs/BACKENDS.md each
            // returns the *byte-identical* tie-broken selection serial
            // branch-and-bound returns, and every feasible result must
            // audit clean.
            for backend in [
                Backend::Lagrangian,
                Backend::ConflictEnum,
                Backend::Portfolio,
            ] {
                let raced = solve(backend, 1);
                match (&serial_result, &raced) {
                    (Ok(expected), Ok(got)) => {
                        assert_eq!(
                            expected.chosen(),
                            got.chosen(),
                            "{backend} selection diverged from branch-and-bound at {ctx}"
                        );
                        assert_eq!(
                            expected.total_area(),
                            got.total_area(),
                            "{backend} area diverged at {ctx}"
                        );
                        assert!(
                            got.status.is_optimal(),
                            "{backend} returned non-optimal status {} at {ctx}",
                            got.status
                        );
                        common::assert_audit_clean(
                            &w,
                            got,
                            &SolveOptions::problem2(RequiredGains::uniform(rg)),
                            &ctx,
                        );
                    }
                    (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {}
                    other => {
                        panic!("{backend} vs branch-and-bound diverged at {ctx}: {other:?}")
                    }
                }
            }

            let serial = verdict(serial_result).expect("branch-and-bound has no size cap");
            let parallel = verdict(solve(Backend::BranchBound, PARALLEL_THREADS))
                .expect("branch-and-bound has no size cap");

            // All three agree on feasibility and, when feasible, on the
            // objective (area) — ties in the assignment are allowed to
            // differ between branch-and-bound and the enumeration oracle,
            // but area and gain are part of the objective contract.
            match (&oracle, &serial, &parallel) {
                (
                    Verdict::Feasible { area: oa, .. },
                    Verdict::Feasible { area: sa, .. },
                    Verdict::Feasible { area: pa, .. },
                ) => {
                    assert_eq!(oa, sa, "serial area diverged from oracle at {ctx}");
                    assert_eq!(oa, pa, "parallel area diverged from oracle at {ctx}");
                }
                (Verdict::Infeasible, Verdict::Infeasible, Verdict::Infeasible) => {}
                other => panic!("feasibility verdicts diverged at {ctx}: {other:?}"),
            }
            // Serial and parallel branch-and-bound must agree *exactly*
            // (same tie-break), including the gain.
            assert_eq!(serial, parallel, "serial vs parallel at {ctx}");
            compared += 1;
        }
    }
    assert!(
        compared >= 50,
        "differential corpus too small: {compared} compared, {skipped} skipped \
         (grow the micro population or shrink the instances)"
    );
}

/// The sweep session against the uncached solver, over the same corpus: at
/// 1 and 4 branch-and-bound threads, a session solve (cache miss) and its
/// immediate replay (cache hit) must both be byte-identical — trace
/// included — to the plain `Solver::solve` result for the same options.
#[test]
fn session_cache_agrees_with_uncached_solver_on_corpus() {
    let entries = common::entries_for("synth", "micro");
    let mut compared = 0usize;
    for entry in entries.iter().take(10) {
        let w = common::verified_workload(entry);
        let mut session = SweepSession::new();
        for &rg in &w.rg_sweep {
            for threads in [1usize, 4] {
                // `.audit(true)` routes every solve — the lone one, the
                // session miss, and the session cache hit — through the
                // post-solve auditor; a violation would surface as
                // `CoreError::AuditFailed` and trip the divergence match.
                let opts = SolveOptions::problem2(RequiredGains::uniform(rg))
                    .budget(SolveBudget::default().with_threads(threads))
                    .audit(true);
                let lone = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts);
                let cold = session.solve(&w.instance, &w.imps, &opts);
                let hit = session.solve(&w.instance, &w.imps, &opts);
                let ctx = format!("{}, RG {}, {threads} threads", entry.id, rg.get());
                match (lone, cold, hit) {
                    (Ok(lone), Ok(cold), Ok(hit)) => {
                        // The lone solve ran outside the session, so wall
                        // times differ; the decoded result must not.
                        assert_eq!(lone.chosen(), cold.chosen(), "{ctx}");
                        assert_eq!(lone.total_area(), cold.total_area(), "{ctx}");
                        assert_eq!(lone.status, cold.status, "{ctx}");
                        // The replay is the memoized value, bit for bit.
                        assert_eq!(cold, hit, "{ctx}: cache hit diverged");
                        compared += 1;
                    }
                    (Err(_), Err(_), Err(_)) => {}
                    other => panic!("session vs solver diverged at {ctx}: {other:?}"),
                }
            }
        }
    }
    assert!(
        compared >= 20,
        "session corpus too small: {compared} compared"
    );
}

/// The incremental re-solve layer against the uncached solver, over the
/// corpus: a `DeltaSession` walking a workload's RG sweep via `SetRg`
/// patches (basis repair + incumbent seeding enabled) must return, at
/// every point, the identical selection a cold `Solver::solve` of the
/// patched options produces — and it must pass the independent audit.
#[test]
fn delta_session_agrees_with_cold_solver_on_corpus() {
    use partita::core::{DeltaSession, InstanceDelta};

    let entries = common::entries_for("synth", "micro");
    let mut compared = 0usize;
    for entry in &entries {
        let w = common::verified_workload(entry);
        let base = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[0]));
        let mut session = match DeltaSession::new(
            std::sync::Arc::clone(&w.instance),
            std::sync::Arc::clone(&w.imps),
            base,
        ) {
            Ok(s) => s,
            // A seed can produce an empty IMP database; nothing to compare.
            Err(CoreError::NoImps) => continue,
            Err(e) => panic!("formulation failed at {}: {e}", entry.id),
        };
        // Walk the sweep high-to-low then back up: descending points are
        // the chained-sweep shape, the final ascent exercises re-tightening
        // a previously relaxed requirement on the same retained basis.
        let mut points: Vec<_> = w.rg_sweep.clone();
        points.reverse();
        points.extend(w.rg_sweep.iter().copied());
        for (i, &rg) in points.iter().enumerate() {
            let ctx = format!("{}, point {i}, RG {}", entry.id, rg.get());
            session
                .apply(InstanceDelta::SetRg(RequiredGains::uniform(rg)))
                .expect("SetRg patch");
            let warm = session.resolve();
            let cold = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(session.options());
            match (&warm, &cold) {
                (Ok(w_sel), Ok(c_sel)) => {
                    assert_eq!(w_sel.chosen(), c_sel.chosen(), "{ctx}: chosen diverged");
                    assert_eq!(
                        w_sel.total_area(),
                        c_sel.total_area(),
                        "{ctx}: area diverged"
                    );
                    assert_eq!(w_sel.status, c_sel.status, "{ctx}: status diverged");
                    common::assert_audit_clean(&w, w_sel, session.options(), &ctx);
                    compared += 1;
                }
                (Err(CoreError::Infeasible { .. }), Err(CoreError::Infeasible { .. })) => {
                    compared += 1;
                }
                other => panic!("{ctx}: delta vs cold diverged: {other:?}"),
            }
        }
    }
    assert!(
        compared >= 50,
        "delta corpus too small: {compared} compared (grow the micro population)"
    );
}
