//! Integration tests pinning the paper's headline claims, table by table
//! and figure by figure (the executable form of EXPERIMENTS.md).

use partita::core::{baseline, CoreError, RequiredGains, SolveOptions, Solver};
use partita::interface::InterfaceKind;
use partita::ip::IpId;
use partita::mop::{AreaTenths, CallSiteId, Cycles};
use partita::workloads::{gsm, jpeg, Workload};

fn solve(w: &Workload, rg: u64) -> partita::core::Selection {
    let options = SolveOptions::problem2(RequiredGains::uniform(Cycles(rg)));
    let sel = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&options)
        .expect("published sweep point feasible");
    sel.verify(&w.instance, &options)
        .expect("solver output passes independent verification");
    sel
}

/// Table 1: areas of every row match the published values (±0.5 of the
/// fractional OCR ambiguity on the last row); gains match exactly from row
/// 3 up (rows 1–2 are area-ties where we report more gain).
#[test]
fn table1_reproduction() {
    let w = gsm::encoder();
    let expected: [(u64, Option<u64>, i64); 8] = [
        (47_740, None, 30),
        (95_480, None, 30),
        (143_221, Some(153_588), 30),
        (190_961, Some(195_258), 170),
        (238_702, Some(316_200), 180),
        (286_442, Some(316_200), 180),
        (334_182, Some(335_976), 240),
        (381_923, Some(382_500), 405), // paper prints 41; see EXPERIMENTS.md
    ];
    for (rg, gain, area_tenths) in expected {
        let sel = solve(&w, rg);
        assert_eq!(
            sel.total_area(),
            AreaTenths::from_tenths(area_tenths),
            "area at RG {rg}"
        );
        if let Some(g) = gain {
            assert_eq!(sel.total_gain(), Cycles(g), "gain at RG {rg}");
        } else {
            assert!(sel.total_gain() >= Cycles(115_037));
        }
    }
}

/// Table 1's qualitative claims: type-0 dominates at low RG; IP13 enters at
/// RG 238702; its interface escalates from IF1 to IF3 in the last row.
#[test]
fn table1_interface_escalation() {
    let w = gsm::encoder();
    let low = solve(&w, 143_221);
    assert!(low
        .chosen()
        .iter()
        .all(|i| i.interface == InterfaceKind::Type0));

    let mid = solve(&w, 238_702);
    assert!(mid
        .chosen()
        .iter()
        .any(|i| i.ips == vec![IpId(13)] && i.interface == InterfaceKind::Type1));

    let top = solve(&w, 381_923);
    assert!(top
        .chosen()
        .iter()
        .any(|i| i.ips == vec![IpId(13)] && i.interface == InterfaceKind::Type3));
    // 6 S-instructions from 11 selected s-calls (the published S/O row).
    assert_eq!(top.selected_scall_count(), 11);
    assert_eq!(top.s_instruction_count(), 6);
}

/// Table 2: the decoder stays on the software interface except SC10's
/// escalation to type 2 in the last row.
#[test]
fn table2_reproduction() {
    let w = gsm::decoder();
    let expected: [(u64, Option<u64>, i64); 8] = [
        (22_240, None, 40),
        (44_481, None, 40),
        (111_203, None, 40),
        (133_444, None, 40),
        (155_684, Some(168_348), 40),
        (177_925, Some(182_892), 70),
        (200_166, Some(200_488), 150),
        (211_286, Some(211_432), 455), // paper prints 45
    ];
    for (rg, gain, area_tenths) in expected {
        let sel = solve(&w, rg);
        assert_eq!(
            sel.total_area(),
            AreaTenths::from_tenths(area_tenths),
            "area at RG {rg}"
        );
        if let Some(g) = gain {
            assert_eq!(sel.total_gain(), Cycles(g), "gain at RG {rg}");
        }
    }
    // SC10: IF0 until the last row, then IF2.
    let row7 = solve(&w, 200_166);
    assert!(row7
        .chosen()
        .iter()
        .any(|i| i.scall == CallSiteId(10) && i.interface == InterfaceKind::Type0));
    let row8 = solve(&w, 211_286);
    assert!(row8
        .chosen()
        .iter()
        .any(|i| i.scall == CallSiteId(10) && i.interface == InterfaceKind::Type2));
}

/// Table 3: all five rows exact — gain and area.
#[test]
fn table3_reproduction_exact() {
    let w = jpeg::encoder();
    let expected: [(u64, u64, i64); 5] = [
        (12_157_384, 15_040_512, 40),
        (20_262_307, 37_081_088, 110),
        (37_195_000, 37_195_072, 165),
        (37_282_645, 37_717_440, 270),
        (37_843_700, 37_843_712, 330),
    ];
    for (rg, gain, area_tenths) in expected {
        let sel = solve(&w, rg);
        assert_eq!(sel.total_gain(), Cycles(gain), "gain at RG {rg}");
        assert_eq!(
            sel.total_area(),
            AreaTenths::from_tenths(area_tenths),
            "area at RG {rg}"
        );
    }
}

/// The paper's comparison claim: the prior approach (no interfaces, no
/// parallel execution) cannot reach the top of either GSM sweep.
#[test]
fn no_interface_baseline_fails_at_the_top() {
    for w in [gsm::encoder(), gsm::decoder()] {
        let top = *w.rg_sweep.last().unwrap();
        let result =
            baseline::solve_no_interface(&w.instance, &w.imps, &RequiredGains::uniform(top));
        assert!(
            matches!(result, Err(CoreError::Infeasible { .. })),
            "{} should be out of the baseline's reach at RG {}",
            w.instance.name,
            top.get()
        );
        // The full approach succeeds.
        let _ = solve(&w, top.get());
    }
}

/// Problem 2 strictly extends Problem 1 on the calibrated encoder: the same
/// sweep solves, and wherever both solve, Problem 2's area is never worse.
#[test]
fn problem2_never_worse_than_problem1() {
    let w = gsm::encoder();
    for &rg in &w.rg_sweep {
        let p2 = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))
            .expect("p2 feasible on sweep");
        if let Ok(p1) = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::problem1(RequiredGains::uniform(rg)))
        {
            assert!(p2.total_area() <= p1.total_area(), "RG {}", rg.get());
        }
    }
}

/// Golden schema of the table binaries' JSON-lines output: every trace line
/// must carry exactly this key set, in this order. The table1-3 binaries
/// and any scraping tooling depend on these names; a missing or renamed key
/// is a breaking change to the bench output format.
#[test]
fn trace_json_lines_match_golden_schema() {
    const GOLDEN_KEYS: [&str; 17] = [
        "rg",
        "trace",
        "backend",
        "status",
        "num_vars",
        "num_constraints",
        "num_imps",
        "nodes_explored",
        "nodes_pruned",
        "incumbent_updates",
        "simplex_iterations",
        "warm_start_accepted",
        "vars_fixed",
        "threads",
        "worker_nodes",
        "imp_generation_us",
        "formulation_us",
    ];
    for w in [gsm::encoder(), gsm::decoder(), jpeg::encoder()] {
        for &rg in &w.rg_sweep {
            let options = SolveOptions::problem2(RequiredGains::uniform(rg));
            let sel = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&options)
                .expect("published sweep point feasible");
            let trace_json = partita::core::telemetry::Event::SolveFinished {
                trace: sel.trace.clone(),
            }
            .to_json();
            let line = format!("{{\"rg\":{},\"trace\":{}}}", rg.get(), trace_json);
            let mut cursor = 0usize;
            for key in GOLDEN_KEYS {
                let needle = format!("\"{key}\":");
                let at = line[cursor..].find(&needle).unwrap_or_else(|| {
                    panic!(
                        "{} at RG {}: key {key:?} missing or out of order in {line}",
                        w.instance.name,
                        rg.get()
                    )
                });
                cursor += at + needle.len();
            }
            // Completed published sweeps always solve within budget.
            assert!(
                line.contains("\"status\":\"optimal\""),
                "{} at RG {}",
                w.instance.name,
                rg.get()
            );
            assert!(line.contains("\"solve_us\":"));
            assert!(line.contains("\"total_us\":"));
        }
    }
}

/// Round-trip of the trace JSON: every scalar field parses back out of the
/// rendered line with exactly the value the trace struct holds, and string
/// fields come back quoted and escaped. Together with the key-order test
/// above this pins the full schema, not just the key names.
#[test]
fn trace_json_round_trips_field_values() {
    /// Extracts the raw value of `key` from a flat JSON object (arrays
    /// allowed, nested objects not).
    fn field(json: &str, key: &str) -> String {
        let needle = format!("\"{key}\":");
        let at = json
            .find(&needle)
            .unwrap_or_else(|| panic!("key {key:?} missing in {json}"))
            + needle.len();
        let rest = &json[at..];
        let end = if rest.starts_with('[') {
            rest.find(']').expect("closing bracket") + 1
        } else {
            rest.find([',', '}']).expect("value terminator")
        };
        rest[..end].to_string()
    }

    let w = jpeg::encoder();
    let options = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[2]));
    let sel = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&options)
        .expect("published sweep point feasible");
    let trace = &sel.trace;
    let json = partita::core::telemetry::Event::SolveFinished {
        trace: trace.clone(),
    }
    .to_json();

    assert_eq!(field(&json, "backend"), format!("\"{}\"", trace.backend));
    assert_eq!(field(&json, "status"), format!("\"{}\"", trace.status));
    assert_eq!(field(&json, "num_vars"), trace.num_vars.to_string());
    assert_eq!(
        field(&json, "num_constraints"),
        trace.num_constraints.to_string()
    );
    assert_eq!(field(&json, "num_imps"), trace.num_imps.to_string());
    assert_eq!(
        field(&json, "nodes_explored"),
        trace.nodes_explored.to_string()
    );
    assert_eq!(field(&json, "nodes_pruned"), trace.nodes_pruned.to_string());
    assert_eq!(
        field(&json, "incumbent_updates"),
        trace.incumbent_updates.to_string()
    );
    assert_eq!(
        field(&json, "simplex_iterations"),
        trace.simplex_iterations.to_string()
    );
    assert_eq!(
        field(&json, "warm_start_accepted"),
        trace.warm_start_accepted.to_string()
    );
    assert_eq!(field(&json, "vars_fixed"), trace.vars_fixed.to_string());
    assert_eq!(field(&json, "threads"), trace.threads.to_string());
    let workers: String = field(&json, "worker_nodes");
    assert_eq!(
        workers,
        format!(
            "[{}]",
            trace
                .worker_nodes
                .iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join(",")
        )
    );
    assert_eq!(
        field(&json, "imp_generation_us"),
        trace.imp_generation.as_micros().to_string()
    );
    assert_eq!(
        field(&json, "formulation_us"),
        trace.formulation.as_micros().to_string()
    );
    assert_eq!(
        field(&json, "solve_us"),
        trace.solve.as_micros().to_string()
    );
    assert_eq!(
        field(&json, "decode_us"),
        trace.decode.as_micros().to_string()
    );
    // The status/backend strings contain no characters needing escapes, so
    // the quoted value must be escape-free.
    assert!(!field(&json, "status").contains('\\'));
}

/// The paper-claim invariant behind every table: area is monotone along the
/// RG sweep — relaxing the required gain can only shrink (or keep) the
/// minimum area, never grow it.
#[test]
fn areas_monotone_as_rg_relaxes() {
    for w in [gsm::encoder(), gsm::decoder(), jpeg::encoder()] {
        let mut prev: Option<AreaTenths> = None;
        for &rg in &w.rg_sweep {
            let area = solve(&w, rg.get()).total_area();
            if let Some(prev) = prev {
                assert!(
                    prev <= area,
                    "{}: tightening RG to {} shrank area {prev} -> {area}",
                    w.instance.name,
                    rg.get()
                );
            }
            prev = Some(area);
        }
    }
}

/// Greedy is never better than the exact ILP on any calibrated workload.
#[test]
fn ilp_dominates_greedy_everywhere() {
    for w in [gsm::encoder(), gsm::decoder(), jpeg::encoder()] {
        for &rg in &w.rg_sweep {
            let exact = solve(&w, rg.get());
            if let Ok(greedy) =
                baseline::solve_greedy(&w.instance, &w.imps, &RequiredGains::uniform(rg))
            {
                assert!(
                    exact.total_area() <= greedy.total_area(),
                    "{} at RG {}",
                    w.instance.name,
                    rg.get()
                );
            }
        }
    }
}
