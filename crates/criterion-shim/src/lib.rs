//! Offline stand-in for the `criterion` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace routes the `criterion` dev-dependency to this crate (see the
//! root `Cargo.toml`). It implements the subset of the criterion API the
//! partita benches use, as a plain wall-clock runner: each benchmark runs a
//! short warm-up plus `sample_size` timed samples and prints min/mean/max.
//! There is no statistical analysis, HTML report, or baseline comparison.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the compiler from optimising a value away (mirrors
/// `criterion::black_box`).
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Identifier for a parameterised benchmark (mirrors
/// `criterion::BenchmarkId`).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// Creates an id `function_name/parameter`.
    #[must_use]
    pub fn new(function_name: impl Into<String>, parameter: impl fmt::Display) -> BenchmarkId {
        BenchmarkId {
            name: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times closures passed to [`Bencher::iter`].
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Runs `f` for a warm-up pass plus `sample_size` timed samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let _ = black_box(f()); // warm-up, also forces lazy setup
        self.samples.clear();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            let _ = black_box(f());
            self.samples.push(t0.elapsed());
        }
    }

    fn report(&self, label: &str) {
        if self.samples.is_empty() {
            println!("{label:<44} (no samples)");
            return;
        }
        let min = self.samples.iter().min().expect("non-empty");
        let max = self.samples.iter().max().expect("non-empty");
        let total: Duration = self.samples.iter().sum();
        let mean = total / self.samples.len() as u32;
        println!(
            "{label:<44} mean {mean:>10.2?}  min {min:>10.2?}  max {max:>10.2?}  ({} samples)",
            self.samples.len()
        );
    }
}

/// A named set of related benchmarks (mirrors `criterion::BenchmarkGroup`).
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id));
        self
    }

    /// Ends the group (upstream flushes reports here; a no-op for the shim).
    pub fn finish(self) {}
}

/// Top-level bench context (mirrors `criterion::Criterion`).
#[derive(Debug)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 10,
        }
    }
}

impl Criterion {
    /// Opens a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.default_sample_size;
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: impl fmt::Display, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let name = id.to_string();
        let mut group = self.benchmark_group(name.clone());
        group.bench_function("", f);
        group.finish();
        self
    }
}

/// Declares a group of benchmark functions (mirrors
/// `criterion::criterion_group!`).
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench entry point (mirrors `criterion::criterion_main!`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group.sample_size(3);
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sq", 4), &4u64, |b, &x| {
            b.iter(|| black_box(x * x));
        });
        group.finish();
    }

    criterion_group!(demo, demo_bench);
    fn demo_bench(c: &mut Criterion) {
        c.bench_function("demo", |b| b.iter(|| black_box(0)));
    }

    #[test]
    fn group_macro_compiles_and_runs() {
        demo();
    }
}
