//! Property tests: for random IP shapes and job sizes, the emitted software
//! templates execute in exactly their predicted cycle counts, and the
//! analytic timing model obeys its structural laws.

use proptest::prelude::*;

use partita_asip::{CycleModel, ExecOptions, Executor, IpDevice, Kernel};
use partita_interface::cosim::{BufferedIpDevice, StreamIpDevice};
use partita_interface::template::{emit_type0, emit_type1, DataLayout};
use partita_interface::{check_feasibility, execution_time, timing, InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction, Protocol};
use partita_mop::{Cycles, MopProgram};

fn ip_strategy() -> impl Strategy<Value = IpBlock> {
    (
        1u32..=8,
        1u32..=48,
        1u8..=2,
        prop::bool::ANY,
        prop_oneof![
            Just(Protocol::Synchronous),
            Just(Protocol::Stream),
            Just(Protocol::Handshake)
        ],
    )
        .prop_map(|(rate, latency, ports, pipelined, protocol)| {
            let mut b = IpBlock::builder("prop_ip")
                .function(IpFunction::Fir)
                .ports(ports, ports)
                .rates(rate, rate)
                .latency(latency)
                .protocol(protocol);
            if !pipelined {
                b = b.not_pipelined();
            }
            b.build()
        })
}

fn run_template(
    func: partita_mop::Function,
    device: &mut dyn IpDevice,
) -> Result<Cycles, partita_asip::ExecError> {
    let mut p = MopProgram::new();
    let id = p.add_function(func).expect("fresh program");
    p.set_main(id).expect("valid id");
    let mut kernel = Kernel::new(4096, 4096);
    let report = Executor::new(&p).run_with_device(
        &mut kernel,
        device,
        &ExecOptions {
            cycle_model: CycleModel::PerWord,
            branch_penalty: 0,
            ..ExecOptions::default()
        },
    )?;
    Ok(report.cycles - Cycles(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The type-0 template executes in exactly its predicted (= analytic)
    /// cycle count for any feasible IP/job combination.
    #[test]
    fn type0_template_cycles_exact(ip in ip_strategy(), beats in 1u64..40) {
        let words = beats * u64::from(ip.in_ports().min(2));
        let job = TransferJob::new(words, words);
        let layout = DataLayout { in_x: 0, in_y: 0, out_x: 2000, out_y: 2000 };
        let Ok(t) = emit_type0(&ip, job, layout) else {
            return Ok(()); // infeasible shape: nothing to check
        };
        let profile = check_feasibility(&ip, InterfaceKind::Type0).expect("emitted => feasible");
        let mut dev = StreamIpDevice::new(
            &ip,
            profile.slow_clock_factor,
            Box::new(|s| s.to_vec()),
        );
        let got = run_template(t.function.clone(), &mut dev).expect("runs cleanly");
        prop_assert_eq!(got, t.predicted_cycles);
        let analytic = timing(&ip, InterfaceKind::Type0, job).expect("feasible");
        prop_assert_eq!(analytic.t_if, t.predicted_cycles);
    }

    /// Same for type 1, with and without random parallel code.
    #[test]
    fn type1_template_cycles_exact(ip in ip_strategy(), beats in 1u64..40, pc_len in 0u64..60) {
        let job = TransferJob::new(beats * 2, beats * 2);
        let layout = DataLayout { in_x: 0, in_y: 0, out_x: 2000, out_y: 2000 };
        let pc: Vec<partita_mop::Mop> = (0..pc_len)
            .map(|i| partita_mop::Mop::load_imm(partita_mop::Reg(5), i as i32))
            .collect();
        let Ok(t) = emit_type1(&ip, job, layout, &pc) else {
            return Ok(());
        };
        let mut dev = BufferedIpDevice::new(&ip, job, Box::new(|i| i.to_vec()));
        let got = run_template(t.function.clone(), &mut dev).expect("runs cleanly");
        prop_assert_eq!(got, t.predicted_cycles);
    }

    /// Structural laws of the analytic model: more data never takes fewer
    /// cycles; a parallel code never hurts; types 0/2 ignore parallel code.
    #[test]
    fn timing_model_monotonicity(ip in ip_strategy(), beats in 1u64..60, pc in 0u64..5000) {
        let small = TransferJob::new(beats * 2, beats * 2);
        let large = TransferJob::new(beats * 4, beats * 4);
        for kind in InterfaceKind::ALL {
            let Ok(t_small) = execution_time(&ip, kind, small, None) else { continue };
            let t_large = execution_time(&ip, kind, large, None).expect("same feasibility");
            prop_assert!(t_large >= t_small, "{kind}: growing the job shrank the time");
            let t_pc = execution_time(&ip, kind, small, Some(Cycles(pc))).expect("feasible");
            prop_assert!(t_pc <= t_small, "{kind}: parallel code increased the time");
            if !kind.supports_parallel() {
                prop_assert_eq!(t_pc, t_small);
            }
        }
    }

    /// The gain of a buffered interface with parallel code is capped by
    /// T_IP (the paper's MIN(T_IP, T_C) term).
    #[test]
    fn parallel_reduction_caps_at_t_ip(ip in ip_strategy(), beats in 1u64..40) {
        let job = TransferJob::new(beats * 2, beats * 2);
        for kind in [InterfaceKind::Type1, InterfaceKind::Type3] {
            let t = timing(&ip, kind, job).expect("buffered always feasible for 2-port ips");
            let base = t.total(None);
            let huge_pc = t.total(Some(Cycles(u64::MAX / 4)));
            prop_assert_eq!(base - huge_pc, t.t_ip);
        }
    }
}
