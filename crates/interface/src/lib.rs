//! Kernel↔IP interface synthesis: the four interface types of paper §3.
//!
//! | Type | Controller | Buffers | Parallel execution | Cost |
//! |------|-----------|---------|--------------------|------|
//! | 0    | software (µ-code) | no  | no  | cheapest |
//! | 1    | software (µ-code) | yes | yes | + buffers |
//! | 2    | hardware FSM (DMA) | no  | no (memory contention) | + FSM |
//! | 3    | hardware FSM (DMA) | yes | yes | most expensive |
//!
//! The crate provides:
//!
//! * [`InterfaceKind`] and [`check_feasibility`] — which types an IP admits
//!   (>2 ports need buffers; unequal in/out rates exclude type 0; type-0
//!   IPs faster than the 4-cycle template need a slowed clock);
//! * [`timing`] / [`execution_time`] / [`performance_gain`] — the paper's
//!   analytic model (`MAX(T_IP, T_IF)`,
//!   `T_IF_IN + MAX(T_IP, T_B) + T_IF_OUT − MIN(T_IP, T_C)`);
//! * [`AreaModel`] — `A_CNT` and `A_B` per type;
//! * [`template`] — emits the software templates of Figs 4 and 5 as real
//!   µ-code, with predicted cycle counts that tests validate against the
//!   `partita-asip` executor;
//! * [`fsm`] — cycle-driven DMA controllers for types 2 and 3 (Figs 6, 7);
//! * [`cosim`] — [`asip::IpDevice`](partita_asip::IpDevice) implementations
//!   that replay a functional IP model behind the templates.
//!
//! # Example
//!
//! ```
//! use partita_interface::{check_feasibility, execution_time, InterfaceKind, TransferJob};
//! use partita_ip::{IpBlock, IpFunction};
//! use partita_mop::Cycles;
//!
//! let fir = IpBlock::builder("fir").function(IpFunction::Fir)
//!     .rates(4, 4).latency(2000).build();
//! let job = TransferJob::new(160, 160);
//! assert!(check_feasibility(&fir, InterfaceKind::Type0).is_ok());
//! let t0 = execution_time(&fir, InterfaceKind::Type0, job, None).unwrap();
//! let t3 = execution_time(&fir, InterfaceKind::Type3, job, Some(Cycles(10_000))).unwrap();
//! assert!(t3 < t0); // overlapping the long IP run with parallel code wins
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod area;
pub mod cosim;
mod error;
mod feasibility;
pub mod fsm;
mod kind;
pub mod template;
pub(crate) mod timing;

pub use area::{AreaModel, InterfaceArea};
pub use error::{InterfaceError, TimingError};
pub use feasibility::{
    check_feasibility, feasible_kinds, FeasibleProfile, InfeasibleReason, TYPE0_BASE_RATE,
};
pub use kind::InterfaceKind;
pub use timing::{
    effective_in_rate, effective_out_rate, execution_time, performance_gain, protocol_overhead,
    timing, InterfaceTiming, TransferJob,
};
