//! Which interface types an IP block admits (paper §3).

use std::fmt;

use partita_ip::IpBlock;

use crate::InterfaceKind;

/// Cycles per template iteration of the type-0 software interface (Fig. 4
/// handles "a pipelined IP with 4 clock-cycle data in/out-rate").
pub const TYPE0_BASE_RATE: u32 = 4;

/// Why an interface type is rejected for an IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum InfeasibleReason {
    /// The kernel can move at most two operands per cycle, so bufferless
    /// types cannot serve IPs with more than two in- or out-ports.
    TooManyPorts {
        /// Ports the IP has.
        ports: u8,
        /// Maximum a bufferless interface supports.
        max: u8,
    },
    /// Type 0 cannot handle different input and output data rates.
    RateMismatch {
        /// Input rate (cycles/sample).
        in_rate: u32,
        /// Output rate (cycles/sample).
        out_rate: u32,
    },
}

impl fmt::Display for InfeasibleReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InfeasibleReason::TooManyPorts { ports, max } => {
                write!(
                    f,
                    "ip has {ports} ports but a bufferless interface supports {max}"
                )
            }
            InfeasibleReason::RateMismatch { in_rate, out_rate } => write!(
                f,
                "type 0 cannot serve unequal data rates (in {in_rate}, out {out_rate})"
            ),
        }
    }
}

/// Feasibility result: how the type must be configured for this IP.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FeasibleProfile {
    /// Clock division applied to the IP. Type-0 interfaces cannot feed an IP
    /// faster than one sample per [`TYPE0_BASE_RATE`] cycles, so IPs with
    /// `in_rate < 4` run on a slowed clock: every IP cycle takes this many
    /// kernel cycles (paper §3, "we have to slow down the clock signal
    /// connected to IP").
    pub slow_clock_factor: u64,
}

impl FeasibleProfile {
    /// The profile for full-speed operation.
    #[must_use]
    pub fn full_speed() -> FeasibleProfile {
        FeasibleProfile {
            slow_clock_factor: 1,
        }
    }
}

/// Checks whether `ip` can be attached through interface `kind`.
///
/// # Errors
///
/// Returns the [`InfeasibleReason`] that rules the combination out.
pub fn check_feasibility(
    ip: &IpBlock,
    kind: InterfaceKind,
) -> Result<FeasibleProfile, InfeasibleReason> {
    if !kind.has_buffers() {
        let max_ports = ip.in_ports().max(ip.out_ports());
        if max_ports > 2 {
            return Err(InfeasibleReason::TooManyPorts {
                ports: max_ports,
                max: 2,
            });
        }
    }
    if kind == InterfaceKind::Type0 {
        if ip.has_rate_mismatch() {
            return Err(InfeasibleReason::RateMismatch {
                in_rate: ip.in_rate(),
                out_rate: ip.out_rate(),
            });
        }
        let eff = crate::timing::effective_in_rate(ip);
        if eff < TYPE0_BASE_RATE {
            // Slow the IP clock so its per-sample rate matches the template.
            let factor = u64::from(TYPE0_BASE_RATE.div_ceil(eff));
            return Ok(FeasibleProfile {
                slow_clock_factor: factor,
            });
        }
    }
    Ok(FeasibleProfile::full_speed())
}

/// All interface types `ip` admits, cheapest first.
#[must_use]
pub fn feasible_kinds(ip: &IpBlock) -> Vec<(InterfaceKind, FeasibleProfile)> {
    InterfaceKind::ALL
        .iter()
        .filter_map(|&k| check_feasibility(ip, k).ok().map(|p| (k, p)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_ip::IpFunction;

    fn ip(in_ports: u8, out_ports: u8, in_rate: u32, out_rate: u32) -> IpBlock {
        IpBlock::builder("t")
            .function(IpFunction::Fir)
            .ports(in_ports, out_ports)
            .rates(in_rate, out_rate)
            .build()
    }

    #[test]
    fn two_port_symmetric_ip_admits_everything() {
        let b = ip(2, 2, 4, 4);
        let kinds: Vec<_> = feasible_kinds(&b).into_iter().map(|(k, _)| k).collect();
        assert_eq!(kinds, InterfaceKind::ALL.to_vec());
    }

    #[test]
    fn many_ports_require_buffers() {
        let b = ip(4, 2, 4, 4);
        assert!(matches!(
            check_feasibility(&b, InterfaceKind::Type0),
            Err(InfeasibleReason::TooManyPorts { ports: 4, .. })
        ));
        assert!(check_feasibility(&b, InterfaceKind::Type2).is_err());
        assert!(check_feasibility(&b, InterfaceKind::Type1).is_ok());
        assert!(check_feasibility(&b, InterfaceKind::Type3).is_ok());
    }

    #[test]
    fn rate_mismatch_excludes_type0_only() {
        // An interpolation filter: out rate faster than in rate.
        let b = ip(2, 2, 4, 2);
        assert!(matches!(
            check_feasibility(&b, InterfaceKind::Type0),
            Err(InfeasibleReason::RateMismatch { .. })
        ));
        for k in [
            InterfaceKind::Type1,
            InterfaceKind::Type2,
            InterfaceKind::Type3,
        ] {
            assert!(check_feasibility(&b, k).is_ok(), "{k} must stay feasible");
        }
    }

    #[test]
    fn fast_ip_gets_slowed_clock_on_type0() {
        let b = ip(2, 2, 1, 1);
        let p = check_feasibility(&b, InterfaceKind::Type0).unwrap();
        assert_eq!(p.slow_clock_factor, 4);
        let b2 = ip(2, 2, 3, 3);
        assert_eq!(
            check_feasibility(&b2, InterfaceKind::Type0)
                .unwrap()
                .slow_clock_factor,
            2
        );
        // Full-speed on other types.
        assert_eq!(
            check_feasibility(&b, InterfaceKind::Type2)
                .unwrap()
                .slow_clock_factor,
            1
        );
    }

    #[test]
    fn reason_display() {
        assert!(InfeasibleReason::RateMismatch {
            in_rate: 4,
            out_rate: 2
        }
        .to_string()
        .contains("unequal"));
    }
}
