//! Hardware DMA controllers for types 2 and 3 (paper Figs 6 and 7).
//!
//! The controllers are event-driven cycle simulations: type 2 streams
//! operands from the dual-ported data memories straight into the IP and
//! results back (`repeat` lines cost one cycle each); type 3 fills the
//! in-buffer by DMA, lets the buffer controller feed the IP, and drains the
//! out-buffer by DMA.
//!
//! The simulated cycle counts track the analytic model of [`crate::timing`]
//! to within a few cycles of pipeline skew; the test-suite pins the bound.

use partita_asip::Kernel;
use partita_ip::IpBlock;
use partita_mop::Cycles;

use crate::template::DataLayout;
use crate::{check_feasibility, timing, InterfaceError, InterfaceKind, TransferJob};

/// Result of a DMA transfer simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DmaReport {
    /// Wall-clock cycles from bus setup to the last result write.
    pub cycles: Cycles,
    /// Input samples fed to the IP.
    pub samples_in: u64,
    /// Output samples written back.
    pub samples_out: u64,
}

/// Runs a type-2 or type-3 DMA interface: moves the job's data through the
/// functional model `func` and reports the simulated cycle count.
///
/// `func` receives the input words in memory order and must return the
/// output words (padded/truncated to `job.out_words`).
///
/// # Errors
///
/// [`InterfaceError::Infeasible`] for a non-DMA `kind` or an inadmissible
/// IP; memory faults surface as panics only for mis-sized layouts in tests.
///
/// # Panics
///
/// Panics if the layout does not fit the kernel memories.
pub fn run_dma(
    ip: &IpBlock,
    kind: InterfaceKind,
    job: TransferJob,
    layout: DataLayout,
    kernel: &mut Kernel,
    func: &mut dyn FnMut(&[i32]) -> Vec<i32>,
) -> Result<DmaReport, InterfaceError> {
    if !kind.is_hardware() {
        return Err(InterfaceError::Infeasible {
            kind,
            reason: crate::InfeasibleReason::TooManyPorts { ports: 0, max: 0 },
        });
    }
    check_feasibility(ip, kind).map_err(|reason| InterfaceError::Infeasible { kind, reason })?;

    // ---- Data movement (functional) ----
    let mut inputs = Vec::with_capacity(job.in_words as usize);
    for k in 0..job.in_words {
        let word = if k % 2 == 0 {
            kernel
                .xdm
                .read(layout.in_x + u32::try_from(k / 2).expect("address fits"))
        } else {
            kernel
                .ydm
                .read(layout.in_y + u32::try_from(k / 2).expect("address fits"))
        };
        inputs.push(word.expect("layout fits x/y memories"));
    }
    let mut outputs = func(&inputs);
    outputs.resize(job.out_words as usize, 0);
    for (k, &v) in outputs.iter().enumerate() {
        let k = k as u64;
        if k.is_multiple_of(2) {
            kernel
                .xdm
                .write(
                    layout.out_x + u32::try_from(k / 2).expect("address fits"),
                    v,
                )
                .expect("layout fits x memory");
        } else {
            kernel
                .ydm
                .write(
                    layout.out_y + u32::try_from(k / 2).expect("address fits"),
                    v,
                )
                .expect("layout fits y memory");
        }
    }

    // ---- Cycle simulation ----
    let s_in = job.samples_in(ip);
    let s_out = job.samples_out(ip);
    let in_rate = u64::from(ip.in_rate());
    let out_rate = u64::from(ip.out_rate());
    let latency = u64::from(ip.latency());

    let cycles = match kind {
        InterfaceKind::Type2 => {
            // Bus setup (1 cycle), then samples issued at the IP's rate;
            // each result is written the cycle after it emerges.
            let issue = |j: u64| {
                1 + if ip.is_pipelined() {
                    j * in_rate
                } else {
                    j * latency
                } + 1
            };
            let mut last = if s_in > 0 { issue(s_in - 1) } else { 1 };
            if s_out > 0 {
                let mut w = 0u64;
                for j in 0..s_out {
                    // Result j emerges out_rate-spaced after the pipeline
                    // latency of its generating sample.
                    let gen = issue(j.min(s_in.saturating_sub(1)));
                    let ready =
                        gen + latency + (j.saturating_sub(s_in.saturating_sub(1))) * out_rate;
                    w = ready.max(w + 1);
                }
                last = last.max(w);
            }
            last
        }
        InterfaceKind::Type3 => {
            // DMA fill at one beat per cycle, start strobe, buffer
            // controller phase, DMA drain.
            let t = timing(ip, kind, job).expect("feasibility checked above");
            let fill_end = 1 + job.kernel_beats_in();
            let phase_end = fill_end + 1 + t.t_ip.max(t.t_b).get();
            phase_end + job.kernel_beats_out()
        }
        _ => unreachable!("guarded above"),
    };

    Ok(DmaReport {
        cycles: Cycles(cycles),
        samples_in: s_in,
        samples_out: s_out,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_ip::func::fir_direct;
    use partita_ip::IpFunction;

    fn fir_ip() -> IpBlock {
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(8)
            .build()
    }

    #[test]
    fn type2_moves_data_and_tracks_analytic_time() {
        let ip = fir_ip();
        let job = TransferJob::new(32, 32);
        let layout = DataLayout {
            in_x: 0,
            in_y: 0,
            out_x: 40,
            out_y: 40,
        };
        let mut kernel = Kernel::new(128, 128);
        let xs: Vec<i32> = (0..16).collect();
        let ys: Vec<i32> = (0..16).map(|i| i * 2).collect();
        kernel.xdm.load(0, &xs).unwrap();
        kernel.ydm.load(0, &ys).unwrap();

        let mut apply = |inputs: &[i32]| -> Vec<i32> {
            fir_direct(inputs, &[1, 1])
                .into_iter()
                .map(|v| v as i32)
                .collect()
        };
        let report = run_dma(
            &ip,
            InterfaceKind::Type2,
            job,
            layout,
            &mut kernel,
            &mut apply,
        )
        .unwrap();
        // Functional result landed in memory.
        let flat: Vec<i32> = (0..32)
            .map(|k| {
                if k % 2 == 0 {
                    kernel.xdm.read(40 + k / 2).unwrap()
                } else {
                    kernel.ydm.read(40 + k / 2).unwrap()
                }
            })
            .collect();
        let mut interleaved = Vec::new();
        for i in 0..16 {
            interleaved.push(xs[i]);
            interleaved.push(ys[i]);
        }
        let expected: Vec<i32> = fir_direct(&interleaved, &[1, 1])
            .into_iter()
            .map(|v| v as i32)
            .collect();
        assert_eq!(flat, expected);

        // Cycle count within pipeline skew of the analytic estimate.
        let analytic = timing(&ip, InterfaceKind::Type2, job).unwrap().total(None);
        let diff = report.cycles.get().abs_diff(analytic.get());
        assert!(diff <= 4, "sim {} vs analytic {}", report.cycles, analytic);
    }

    #[test]
    fn type3_matches_analytic_exactly() {
        let ip = fir_ip();
        let job = TransferJob::new(32, 32);
        let mut kernel = Kernel::new(128, 128);
        let mut id = |inputs: &[i32]| inputs.to_vec();
        let report = run_dma(
            &ip,
            InterfaceKind::Type3,
            job,
            DataLayout {
                in_x: 0,
                in_y: 0,
                out_x: 40,
                out_y: 40,
            },
            &mut kernel,
            &mut id,
        )
        .unwrap();
        let analytic = timing(&ip, InterfaceKind::Type3, job).unwrap().total(None);
        assert_eq!(report.cycles, analytic);
    }

    #[test]
    fn software_types_are_rejected() {
        let ip = fir_ip();
        let mut kernel = Kernel::new(16, 16);
        let mut id = |i: &[i32]| i.to_vec();
        assert!(run_dma(
            &ip,
            InterfaceKind::Type0,
            TransferJob::new(2, 2),
            DataLayout::default(),
            &mut kernel,
            &mut id,
        )
        .is_err());
    }

    #[test]
    fn type2_faster_than_type0_analytically_and_by_sim() {
        let ip = fir_ip();
        let job = TransferJob::new(64, 64);
        let mut kernel = Kernel::new(256, 256);
        let mut id = |i: &[i32]| i.to_vec();
        let r2 = run_dma(
            &ip,
            InterfaceKind::Type2,
            job,
            DataLayout {
                in_x: 0,
                in_y: 0,
                out_x: 64,
                out_y: 64,
            },
            &mut kernel,
            &mut id,
        )
        .unwrap();
        let t0 = timing(&ip, InterfaceKind::Type0, job).unwrap().total(None);
        assert!(r2.cycles <= t0);
    }

    #[test]
    fn non_pipelined_ip_serialises_samples() {
        let slow = IpBlock::builder("np")
            .function(IpFunction::Quantizer)
            .ports(2, 2)
            .rates(4, 4)
            .latency(6)
            .not_pipelined()
            .build();
        let job = TransferJob::new(8, 8);
        let mut kernel = Kernel::new(64, 64);
        let mut id = |i: &[i32]| i.to_vec();
        let r = run_dma(
            &slow,
            InterfaceKind::Type2,
            job,
            DataLayout {
                in_x: 0,
                in_y: 0,
                out_x: 20,
                out_y: 20,
            },
            &mut kernel,
            &mut id,
        )
        .unwrap();
        // 4 samples x 6 cycles each, plus skew.
        assert!(r.cycles.get() >= 24, "got {}", r.cycles);
    }
}
