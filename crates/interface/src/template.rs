//! Software interface templates (paper Figs 4 and 5) emitted as µ-code.
//!
//! The emitters produce straight-line µ-code (the kernel's zero-overhead
//! hardware looping unrolls the `repeat` constructs of the figures) together
//! with a predicted cycle count. The test-suite runs every emitted template
//! on the `partita-asip` executor against a co-simulated IP and asserts the
//! executor's cycle count equals the prediction — this pins the analytic
//! timing model of [`crate::timing`] to real behaviour.
//!
//! Register/AGU conventions:
//!
//! | resource | use |
//! |----------|-----|
//! | `r0`, `r1` | input words (X / Y) |
//! | `r2`, `r3` | output words (X / Y) |
//! | `ax0` / `ay2` | input pointers into XDM / YDM |
//! | `ax1` / `ay3` | output pointers into XDM / YDM |
//! | IP port 0 / 1 | X-side / Y-side IP port |
//! | buffer 0 / 1 | in-buffers (X / Y side) |
//! | buffer 2 / 3 | out-buffers (X / Y side) |

use partita_ip::IpBlock;
use partita_mop::{Cycles, Function, Mop, Reg};

use crate::{check_feasibility, timing, InterfaceError, InterfaceKind, TransferJob};

/// Where the job's data lives in the kernel memories.
///
/// Input and output words are interleaved across XDM and YDM: word `2k`
/// lives at `in_x + k`, word `2k+1` at `in_y + k` (and likewise for
/// outputs) — the layout the dual-memory kernel fetches at full rate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DataLayout {
    /// Base of even input words in XDM.
    pub in_x: u32,
    /// Base of odd input words in YDM.
    pub in_y: u32,
    /// Base of even output words in XDM.
    pub out_x: u32,
    /// Base of odd output words in YDM.
    pub out_y: u32,
}

/// An emitted template: the µ-code function plus its predicted cycle count.
#[derive(Debug, Clone)]
pub struct Template {
    /// The emitted µ-code (a single-block function ending in `halt`).
    pub function: Function,
    /// Predicted kernel cycles (excluding the final `halt` word).
    pub predicted_cycles: Cycles,
}

/// Emits the type-0 template (Fig. 4): software in/out-controller without
/// buffers, one `iter_len`-cycle iteration per IP sample.
///
/// # Errors
///
/// [`InterfaceError::Infeasible`] when the IP cannot use type 0.
pub fn emit_type0(
    ip: &IpBlock,
    job: TransferJob,
    layout: DataLayout,
) -> Result<Template, InterfaceError> {
    let profile = check_feasibility(ip, InterfaceKind::Type0).map_err(|reason| {
        InterfaceError::Infeasible {
            kind: InterfaceKind::Type0,
            reason,
        }
    })?;
    let f = profile.slow_clock_factor;
    let iter_len = u64::from(crate::timing::effective_in_rate(ip)) * f;
    let fill = (u64::from(ip.latency()) * f).div_ceil(iter_len.max(1));
    let s_in = job.samples_in(ip);
    let s_out = job.samples_out(ip);
    let iters = fill + s_in.max(s_out);

    let mut func = Function::new("if0_template");
    // Init: input pointers, then output pointers (2 words). The init lives
    // in its own block so the word packer cannot merge loop code into it.
    let init = func.add_block();
    func.push_mop(init, Mop::agu_set(0, layout.in_x));
    func.push_mop(init, Mop::agu_set(2, layout.in_y));
    func.push_mop(init, Mop::agu_set(1, layout.out_x));
    func.push_mop(init, Mop::agu_set(3, layout.out_y));
    let b = func.add_block();

    let mut in_words_left = job.in_words;
    let mut out_words_left = job.out_words;
    for m in 0..iters {
        let do_in = m < s_in;
        let do_out = m >= fill && (m - fill) < s_out;
        let mut cycles_used = 0u64;
        if do_in {
            // Word 1: fetch up to two operands and post-step the pointers.
            func.push_mop(b, Mop::load_x(Reg(0), 0));
            func.push_mop(b, Mop::agu_step(0, 1));
            let second_in = ip.in_ports() >= 2 && in_words_left > 1;
            if second_in {
                func.push_mop(b, Mop::load_y(Reg(1), 2));
                func.push_mop(b, Mop::agu_step(2, 1));
            }
            // Word 2: pass operands to the IP.
            func.push_mop(b, Mop::ip_write(0, Reg(0)));
            if second_in {
                func.push_mop(b, Mop::ip_write(1, Reg(1)));
            }
            in_words_left = in_words_left.saturating_sub(u64::from(ip.in_ports().min(2)));
        } else {
            func.push_mop(b, Mop::nop());
            func.push_mop(b, Mop::nop());
        }
        cycles_used += 2;
        if do_out {
            // Word 3: collect results from the IP.
            func.push_mop(b, Mop::ip_read(Reg(2), 0));
            let second_out = ip.out_ports() >= 2 && out_words_left > 1;
            if second_out {
                func.push_mop(b, Mop::ip_read(Reg(3), 1));
            }
            // Word 4: store results and post-step the output pointers.
            func.push_mop(b, Mop::store_x(Reg(2), 1));
            func.push_mop(b, Mop::agu_step(1, 1));
            if second_out {
                func.push_mop(b, Mop::store_y(Reg(3), 3));
                func.push_mop(b, Mop::agu_step(3, 1));
            }
            out_words_left = out_words_left.saturating_sub(u64::from(ip.out_ports().min(2)));
        } else {
            func.push_mop(b, Mop::nop());
            func.push_mop(b, Mop::nop());
        }
        cycles_used += 2;
        // Rate padding to the full iteration length.
        for _ in cycles_used..iter_len {
            func.push_mop(b, Mop::nop());
        }
    }
    let end = func.add_block();
    func.push_mop(end, Mop::halt());
    func.compute_edges();

    Ok(Template {
        function: func,
        predicted_cycles: Cycles(2 + iter_len * iters),
    })
}

/// Emits the type-1 template (Fig. 5): software-filled buffers, IP started
/// by strobe, optional parallel code while the IP runs, buffered drain.
///
/// `parallel_code` µ-operations are placed in the wait region ("Codes that
/// will run in kernel while IP runs come here"); the wait is padded with
/// idle words up to `MAX(T_IP, T_B)`.
///
/// # Errors
///
/// [`InterfaceError::Infeasible`] when the IP cannot use type 1.
pub fn emit_type1(
    ip: &IpBlock,
    job: TransferJob,
    layout: DataLayout,
    parallel_code: &[Mop],
) -> Result<Template, InterfaceError> {
    check_feasibility(ip, InterfaceKind::Type1).map_err(|reason| InterfaceError::Infeasible {
        kind: InterfaceKind::Type1,
        reason,
    })?;
    let t = timing(ip, InterfaceKind::Type1, job).expect("feasibility already checked");
    let wait_needed = t.t_ip.max(t.t_b).get();

    let mut func = Function::new("if1_template");
    // Each template section gets its own block so the word packer cannot
    // merge operations across section boundaries.
    let init = func.add_block();
    func.push_mop(init, Mop::agu_set(0, layout.in_x));
    func.push_mop(init, Mop::agu_set(2, layout.in_y));

    // Fill the in-buffers, two words per 2-cycle beat (Fig. 5 lines 2-5).
    let fill = func.add_block();
    let mut in_words_left = job.in_words;
    for _ in 0..job.kernel_beats_in() {
        func.push_mop(fill, Mop::load_x(Reg(0), 0));
        func.push_mop(fill, Mop::agu_step(0, 1));
        if in_words_left > 1 {
            func.push_mop(fill, Mop::load_y(Reg(1), 2));
            func.push_mop(fill, Mop::agu_step(2, 1));
        }
        func.push_mop(fill, Mop::buf_write(0, Reg(0)));
        if in_words_left > 1 {
            func.push_mop(fill, Mop::buf_write(1, Reg(1)));
        }
        in_words_left = in_words_left.saturating_sub(2);
    }

    // Start strobe + output pointer setup share one word (Fig. 5 line 6).
    let start = func.add_block();
    func.push_mop(start, Mop::ip_start());
    func.push_mop(start, Mop::agu_set(1, layout.out_x));
    func.push_mop(start, Mop::agu_set(3, layout.out_y));

    // Parallel-code region, padded to the wait the IP/buffer fabric needs.
    let wait = func.add_block();
    let pc_cost = packed_cost(parallel_code);
    for m in parallel_code {
        func.push_mop(wait, m.clone());
    }
    for _ in pc_cost..wait_needed {
        func.push_mop(wait, Mop::nop());
    }

    // Drain the out-buffers, two words per 2-cycle beat (Fig. 5 lines 7-10).
    let drain = func.add_block();
    let mut out_words_left = job.out_words;
    for _ in 0..job.kernel_beats_out() {
        func.push_mop(drain, Mop::buf_read(Reg(2), 2));
        if out_words_left > 1 {
            func.push_mop(drain, Mop::buf_read(Reg(3), 3));
        }
        func.push_mop(drain, Mop::store_x(Reg(2), 1));
        func.push_mop(drain, Mop::agu_step(1, 1));
        if out_words_left > 1 {
            func.push_mop(drain, Mop::store_y(Reg(3), 3));
            func.push_mop(drain, Mop::agu_step(3, 1));
        }
        out_words_left = out_words_left.saturating_sub(2);
    }
    let end = func.add_block();
    func.push_mop(end, Mop::halt());
    func.compute_edges();

    let predicted =
        1 + 2 * job.kernel_beats_in() + 1 + pc_cost.max(wait_needed) + 2 * job.kernel_beats_out();
    Ok(Template {
        function: func,
        predicted_cycles: Cycles(predicted),
    })
}

/// Packed cycle cost of a straight-line µ-operation sequence.
#[must_use]
pub fn packed_cost(mops: &[Mop]) -> u64 {
    if mops.is_empty() {
        return 0;
    }
    let mut f = Function::new("pc_cost");
    let b = f.add_block();
    for m in mops {
        f.push_mop(b, m.clone());
    }
    f.compute_edges();
    partita_mop::pack_words(&f)[0].len() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_ip::IpFunction;
    use partita_mop::pack_words;

    fn fir_ip() -> IpBlock {
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(8)
            .build()
    }

    #[test]
    fn type0_word_count_matches_prediction() {
        let ip = fir_ip();
        let job = TransferJob::new(16, 16);
        let t = emit_type0(&ip, job, DataLayout::default()).unwrap();
        let words: usize = pack_words(&t.function).iter().map(|ws| ws.len()).sum();
        // Last word is the halt.
        assert_eq!(words as u64 - 1, t.predicted_cycles.get());
        // Prediction agrees with the analytic model.
        let analytic = timing(&ip, InterfaceKind::Type0, job).unwrap();
        assert_eq!(t.predicted_cycles, analytic.t_if);
    }

    #[test]
    fn type0_slow_clock_pads_iterations() {
        let ip = IpBlock::builder("fast")
            .function(IpFunction::ComplexMul)
            .ports(2, 2)
            .rates(2, 2)
            .latency(2)
            .build();
        let job = TransferJob::new(8, 8);
        let t = emit_type0(&ip, job, DataLayout::default()).unwrap();
        let analytic = timing(&ip, InterfaceKind::Type0, job).unwrap();
        assert_eq!(t.predicted_cycles, analytic.t_if);
        let words: usize = pack_words(&t.function).iter().map(|w| w.len()).sum();
        assert_eq!(words as u64 - 1, t.predicted_cycles.get());
    }

    #[test]
    fn type1_word_count_matches_prediction() {
        let ip = fir_ip();
        let job = TransferJob::new(16, 16);
        let t = emit_type1(&ip, job, DataLayout::default(), &[]).unwrap();
        let words: usize = pack_words(&t.function).iter().map(|w| w.len()).sum();
        assert_eq!(words as u64 - 1, t.predicted_cycles.get());
    }

    #[test]
    fn type1_parallel_code_replaces_idle_words() {
        let ip = fir_ip();
        let job = TransferJob::new(16, 16);
        let idle = emit_type1(&ip, job, DataLayout::default(), &[]).unwrap();
        // Short parallel code: same total (it fits inside the wait).
        let pc: Vec<Mop> = (0..5).map(|i| Mop::load_imm(Reg(4), i)).collect();
        let with_pc = emit_type1(&ip, job, DataLayout::default(), &pc).unwrap();
        assert_eq!(idle.predicted_cycles, with_pc.predicted_cycles);
        // Oversized parallel code extends the region.
        let big: Vec<Mop> = (0..200).map(|i| Mop::load_imm(Reg(4), i)).collect();
        let with_big = emit_type1(&ip, job, DataLayout::default(), &big).unwrap();
        assert!(with_big.predicted_cycles > idle.predicted_cycles);
    }

    #[test]
    fn infeasible_ip_is_rejected() {
        let wide = IpBlock::builder("wide")
            .function(IpFunction::Fft)
            .ports(4, 4)
            .build();
        assert!(matches!(
            emit_type0(&wide, TransferJob::new(8, 8), DataLayout::default()),
            Err(InterfaceError::Infeasible { .. })
        ));
        // Type 1 accepts it.
        assert!(emit_type1(&wide, TransferJob::new(8, 8), DataLayout::default(), &[]).is_ok());
    }

    #[test]
    fn packed_cost_counts_words() {
        assert_eq!(packed_cost(&[]), 0);
        let two_words = [Mop::load_imm(Reg(0), 1), Mop::load_imm(Reg(0), 2)];
        assert_eq!(packed_cost(&two_words), 2);
        let one_word = [Mop::load_x(Reg(0), 0), Mop::load_y(Reg(1), 2)];
        assert_eq!(packed_cost(&one_word), 1);
    }
}
