//! Co-simulation devices: functional IP models behind the software
//! templates, plugged into the `partita-asip` executor.

use std::collections::VecDeque;

use partita_asip::{ExecError, IpDevice};
use partita_ip::IpBlock;
use partita_mop::Cycles;

use crate::{timing, InterfaceKind, TransferJob};

/// A per-sample streaming function: consumes one input sample (one word per
/// input port) and produces zero or one output sample (one word per output
/// port). FIR-style blocks return a sample per call; decimating blocks
/// return empty vectors for swallowed samples.
pub type StreamFn = Box<dyn FnMut(&[i32]) -> Vec<i32> + Send>;

/// A batch function: all inputs in, all outputs out (buffered interfaces).
pub type BatchFn = Box<dyn FnMut(&[i32]) -> Vec<i32> + Send>;

/// The co-simulated IP behind a **type-0** template: samples stream in
/// through the ports, results appear `latency` (× slow-clock factor) cycles
/// later.
pub struct StreamIpDevice {
    in_ports: usize,
    latency: u64,
    now: u64,
    partial_in: Vec<i32>,
    /// `(ready_at, words)` queue of computed output samples.
    pending: VecDeque<(u64, Vec<i32>)>,
    current_out: VecDeque<i32>,
    func: StreamFn,
    starts: usize,
}

impl std::fmt::Debug for StreamIpDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StreamIpDevice")
            .field("in_ports", &self.in_ports)
            .field("latency", &self.latency)
            .field("now", &self.now)
            .field("pending", &self.pending.len())
            .finish_non_exhaustive()
    }
}

impl StreamIpDevice {
    /// Creates the device for `ip` with the given per-sample function.
    ///
    /// `slow_clock_factor` is the type-0 clock division from
    /// [`crate::check_feasibility`].
    #[must_use]
    pub fn new(ip: &IpBlock, slow_clock_factor: u64, func: StreamFn) -> StreamIpDevice {
        StreamIpDevice {
            in_ports: usize::from(ip.in_ports().clamp(1, 2)),
            latency: u64::from(ip.latency()) * slow_clock_factor.max(1),
            now: 0,
            partial_in: Vec::new(),
            pending: VecDeque::new(),
            current_out: VecDeque::new(),
            func,
            starts: 0,
        }
    }

    /// Number of start strobes seen (type-0 templates never strobe).
    #[must_use]
    pub fn starts(&self) -> usize {
        self.starts
    }
}

impl IpDevice for StreamIpDevice {
    fn write_port(&mut self, _port: u8, value: i32) -> Result<(), ExecError> {
        self.partial_in.push(value);
        if self.partial_in.len() >= self.in_ports {
            let sample = std::mem::take(&mut self.partial_in);
            let out = (self.func)(&sample);
            if !out.is_empty() {
                self.pending.push_back((self.now + self.latency, out));
            }
        }
        Ok(())
    }

    fn read_port(&mut self, _port: u8) -> Result<i32, ExecError> {
        if self.current_out.is_empty() {
            match self.pending.pop_front() {
                Some((ready_at, words)) => {
                    if ready_at > self.now {
                        return Err(ExecError::DeviceFault(format!(
                            "output read at cycle {} but ready at {ready_at}",
                            self.now
                        )));
                    }
                    self.current_out.extend(words);
                }
                None => {
                    return Err(ExecError::DeviceFault(
                        "output read with no sample in flight".to_owned(),
                    ))
                }
            }
        }
        self.current_out
            .pop_front()
            .ok_or_else(|| ExecError::DeviceFault("empty output sample".to_owned()))
    }

    fn start(&mut self) -> Result<(), ExecError> {
        self.starts += 1;
        Ok(())
    }

    fn write_buffer(&mut self, buf: u8, _value: i32) -> Result<(), ExecError> {
        Err(ExecError::DeviceFault(format!(
            "type-0 interface has no buffer b{buf}"
        )))
    }

    fn read_buffer(&mut self, buf: u8) -> Result<i32, ExecError> {
        Err(ExecError::DeviceFault(format!(
            "type-0 interface has no buffer b{buf}"
        )))
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn busy(&self) -> bool {
        !self.pending.is_empty() || !self.current_out.is_empty()
    }
}

/// The co-simulated IP + buffer fabric behind a **type-1** template:
/// the kernel fills buffers 0/1, strobes start, and reads buffers 2/3 once
/// `MAX(T_IP, T_B)` cycles have elapsed.
pub struct BufferedIpDevice {
    wait: u64,
    now: u64,
    ready_at: Option<u64>,
    in_even: Vec<i32>,
    in_odd: Vec<i32>,
    out_even: VecDeque<i32>,
    out_odd: VecDeque<i32>,
    func: BatchFn,
}

impl std::fmt::Debug for BufferedIpDevice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferedIpDevice")
            .field("wait", &self.wait)
            .field("now", &self.now)
            .field("ready_at", &self.ready_at)
            .finish_non_exhaustive()
    }
}

impl BufferedIpDevice {
    /// Creates the device for one (IP, job) combination.
    ///
    /// # Panics
    ///
    /// Panics if `ip` cannot use a type-1 interface (checked by the caller
    /// in normal flows).
    #[must_use]
    pub fn new(ip: &IpBlock, job: TransferJob, func: BatchFn) -> BufferedIpDevice {
        let t = timing(ip, InterfaceKind::Type1, job).expect("ip must admit type 1");
        BufferedIpDevice {
            wait: t.t_ip.max(t.t_b).get(),
            now: 0,
            ready_at: None,
            in_even: Vec::new(),
            in_odd: Vec::new(),
            out_even: VecDeque::new(),
            out_odd: VecDeque::new(),
            func,
        }
    }

    /// The wait (`MAX(T_IP, T_B)`) the kernel must grant after `start`.
    #[must_use]
    pub fn wait_cycles(&self) -> Cycles {
        Cycles(self.wait)
    }
}

impl IpDevice for BufferedIpDevice {
    fn write_port(&mut self, port: u8, _value: i32) -> Result<(), ExecError> {
        Err(ExecError::DeviceFault(format!(
            "type-1 interface exposes buffers, not direct port p{port}"
        )))
    }

    fn read_port(&mut self, port: u8) -> Result<i32, ExecError> {
        Err(ExecError::DeviceFault(format!(
            "type-1 interface exposes buffers, not direct port p{port}"
        )))
    }

    fn start(&mut self) -> Result<(), ExecError> {
        // Interleave the X/Y buffer halves back into word order.
        let mut inputs = Vec::with_capacity(self.in_even.len() + self.in_odd.len());
        for i in 0..self.in_even.len().max(self.in_odd.len()) {
            if let Some(&v) = self.in_even.get(i) {
                inputs.push(v);
            }
            if let Some(&v) = self.in_odd.get(i) {
                inputs.push(v);
            }
        }
        let outputs = (self.func)(&inputs);
        for (i, v) in outputs.into_iter().enumerate() {
            if i % 2 == 0 {
                self.out_even.push_back(v);
            } else {
                self.out_odd.push_back(v);
            }
        }
        self.ready_at = Some(self.now + self.wait);
        Ok(())
    }

    fn write_buffer(&mut self, buf: u8, value: i32) -> Result<(), ExecError> {
        match buf {
            0 => self.in_even.push(value),
            1 => self.in_odd.push(value),
            _ => {
                return Err(ExecError::DeviceFault(format!(
                    "buffer b{buf} is not an in-buffer"
                )))
            }
        }
        Ok(())
    }

    fn read_buffer(&mut self, buf: u8) -> Result<i32, ExecError> {
        let ready_at = self.ready_at.ok_or_else(|| {
            ExecError::DeviceFault("out-buffer read before the ip was started".to_owned())
        })?;
        if self.now < ready_at {
            return Err(ExecError::DeviceFault(format!(
                "out-buffer read at cycle {} but ip busy until {ready_at}",
                self.now
            )));
        }
        let q = match buf {
            2 => &mut self.out_even,
            3 => &mut self.out_odd,
            _ => {
                return Err(ExecError::DeviceFault(format!(
                    "buffer b{buf} is not an out-buffer"
                )))
            }
        };
        q.pop_front()
            .ok_or_else(|| ExecError::DeviceFault("out-buffer underflow".to_owned()))
    }

    fn tick(&mut self) {
        self.now += 1;
    }

    fn busy(&self) -> bool {
        matches!(self.ready_at, Some(r) if self.now < r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{emit_type0, emit_type1, DataLayout};
    use crate::{check_feasibility, InterfaceKind};
    use partita_asip::{CycleModel, ExecOptions, Executor, Kernel};
    use partita_ip::func::FirFilter;
    use partita_ip::IpFunction;
    use partita_mop::MopProgram;

    fn run_template(
        func: partita_mop::Function,
        kernel: &mut Kernel,
        device: &mut dyn IpDevice,
    ) -> Cycles {
        let mut p = MopProgram::new();
        let id = p.add_function(func).unwrap();
        p.set_main(id).unwrap();
        let opts = ExecOptions {
            cycle_model: CycleModel::PerWord,
            branch_penalty: 0, // templates use zero-overhead hardware loops
            ..ExecOptions::default()
        };
        let report = Executor::new(&p)
            .run_with_device(kernel, device, &opts)
            .expect("template executes cleanly");
        // Exclude the final halt word from the comparison.
        report.cycles - Cycles(1)
    }

    fn fir_ip() -> IpBlock {
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(8)
            .build()
    }

    /// End-to-end type-0 validation: executor cycles == predicted cycles ==
    /// analytic T_IF, and the memory contents equal the reference filter.
    #[test]
    fn type0_cosim_matches_prediction_and_reference() {
        let ip = fir_ip();
        let n: u64 = 16; // words per memory side
        let job = TransferJob::new(2 * n, 2 * n);
        let layout = DataLayout {
            in_x: 0,
            in_y: 0,
            out_x: 100,
            out_y: 100,
        };
        let t = emit_type0(&ip, job, layout).unwrap();

        // Input: interleaved x/y samples of a ramp.
        let mut kernel = Kernel::new(256, 256);
        let xs: Vec<i32> = (0..n as i32).map(|i| i * 3 - 7).collect();
        let ys: Vec<i32> = (0..n as i32).map(|i| 11 - i).collect();
        kernel.xdm.load(0, &xs).unwrap();
        kernel.ydm.load(0, &ys).unwrap();

        // The IP: a 2-in/2-out FIR pair filtering the X and Y streams.
        let mut fx = FirFilter::new(vec![1, 1]);
        let mut fy = FirFilter::new(vec![1, -1]);
        let mut dev = StreamIpDevice::new(
            &ip,
            1,
            Box::new(move |sample| {
                let a = fx.step(sample[0]) as i32;
                let b = fy.step(*sample.get(1).unwrap_or(&0)) as i32;
                vec![a, b]
            }),
        );

        let cycles = run_template(t.function.clone(), &mut kernel, &mut dev);
        assert_eq!(cycles, t.predicted_cycles);

        // Reference results.
        let mut rx = FirFilter::new(vec![1, 1]);
        let mut ry = FirFilter::new(vec![1, -1]);
        let ex: Vec<i32> = xs.iter().map(|&v| rx.step(v) as i32).collect();
        let ey: Vec<i32> = ys.iter().map(|&v| ry.step(v) as i32).collect();
        assert_eq!(kernel.xdm.dump(100, n as u32).unwrap(), ex);
        assert_eq!(kernel.ydm.dump(100, n as u32).unwrap(), ey);
    }

    #[test]
    fn type0_slow_clock_cosim() {
        let ip = IpBlock::builder("cmul")
            .function(IpFunction::ComplexMul)
            .ports(2, 2)
            .rates(2, 2)
            .latency(4)
            .build();
        let profile = check_feasibility(&ip, InterfaceKind::Type0).unwrap();
        assert_eq!(profile.slow_clock_factor, 2);
        let job = TransferJob::new(16, 16);
        let t = emit_type0(
            &ip,
            job,
            DataLayout {
                in_x: 0,
                in_y: 0,
                out_x: 50,
                out_y: 50,
            },
        )
        .unwrap();
        let mut kernel = Kernel::new(128, 128);
        kernel.xdm.load(0, &[1, 2, 3, 4, 5, 6, 7, 8]).unwrap();
        kernel.ydm.load(0, &[8, 7, 6, 5, 4, 3, 2, 1]).unwrap();
        let mut dev = StreamIpDevice::new(
            &ip,
            profile.slow_clock_factor,
            Box::new(|s| vec![s[0] * 2, s[1] * 2]),
        );
        let cycles = run_template(t.function, &mut kernel, &mut dev);
        assert_eq!(cycles, t.predicted_cycles);
        assert_eq!(
            kernel.xdm.dump(50, 8).unwrap(),
            vec![2, 4, 6, 8, 10, 12, 14, 16]
        );
    }

    #[test]
    fn type1_cosim_matches_prediction_and_reference() {
        let ip = fir_ip();
        let n: u64 = 12;
        let job = TransferJob::new(2 * n, 2 * n);
        let layout = DataLayout {
            in_x: 0,
            in_y: 0,
            out_x: 60,
            out_y: 60,
        };
        let t = emit_type1(&ip, job, layout, &[]).unwrap();
        let mut kernel = Kernel::new(128, 128);
        let xs: Vec<i32> = (0..n as i32).collect();
        let ys: Vec<i32> = (0..n as i32).map(|i| -i).collect();
        kernel.xdm.load(0, &xs).unwrap();
        kernel.ydm.load(0, &ys).unwrap();
        // Batch IP: negate everything.
        let mut dev = BufferedIpDevice::new(
            &ip,
            job,
            Box::new(|inputs| inputs.iter().map(|v| -v).collect()),
        );
        let cycles = run_template(t.function, &mut kernel, &mut dev);
        assert_eq!(cycles, t.predicted_cycles);
        let ex: Vec<i32> = xs.iter().map(|v| -v).collect();
        let ey: Vec<i32> = ys.iter().map(|v| -v).collect();
        assert_eq!(kernel.xdm.dump(60, n as u32).unwrap(), ex);
        assert_eq!(kernel.ydm.dump(60, n as u32).unwrap(), ey);
    }

    #[test]
    fn type1_with_parallel_code_same_cycles() {
        use partita_mop::{AluOp, Mop, Reg};
        let ip = fir_ip();
        let job = TransferJob::new(16, 16);
        let pc: Vec<Mop> = (0..6)
            .map(|_| Mop::alu(AluOp::Add, Reg(5), Reg(5), 1))
            .collect();
        let t_idle = emit_type1(&ip, job, DataLayout::default(), &[]).unwrap();
        let t_pc = emit_type1(&ip, job, DataLayout::default(), &pc).unwrap();
        assert_eq!(t_idle.predicted_cycles, t_pc.predicted_cycles);
        let mut kernel = Kernel::new(64, 64);
        let mut dev = BufferedIpDevice::new(&ip, job, Box::new(|i| i.to_vec()));
        let cycles = run_template(t_pc.function, &mut kernel, &mut dev);
        assert_eq!(cycles, t_pc.predicted_cycles);
        // The parallel code actually ran.
        assert_eq!(kernel.reg(Reg(5)), 6);
    }

    #[test]
    fn premature_buffer_read_is_a_timing_violation() {
        let ip = fir_ip();
        let mut dev = BufferedIpDevice::new(&ip, TransferJob::new(8, 8), Box::new(|i| i.to_vec()));
        dev.write_buffer(0, 1).unwrap();
        dev.start().unwrap();
        assert!(dev.busy());
        let err = dev.read_buffer(2).unwrap_err();
        assert!(matches!(err, ExecError::DeviceFault(_)));
        assert!(dev.wait_cycles().get() > 0);
    }

    #[test]
    fn stream_device_rejects_buffer_ops() {
        let ip = fir_ip();
        let mut dev = StreamIpDevice::new(&ip, 1, Box::new(|s| s.to_vec()));
        assert!(dev.write_buffer(0, 1).is_err());
        assert!(dev.read_buffer(0).is_err());
        assert_eq!(dev.starts(), 0);
    }
}
