//! The four interface types.

use std::fmt;

/// One of the paper's four kernel↔IP interface types (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum InterfaceKind {
    /// Software in/out-controller, no buffers — cheapest, lowest performance.
    Type0,
    /// Software controller with in/out buffers — enables >2 ports, high
    /// transfer rates and parallel execution.
    Type1,
    /// Hardware FSM controller (DMA), no buffers.
    Type2,
    /// Hardware FSM controller with buffers — most expensive and powerful.
    Type3,
}

impl InterfaceKind {
    /// All types, cheapest first.
    pub const ALL: [InterfaceKind; 4] = [
        InterfaceKind::Type0,
        InterfaceKind::Type1,
        InterfaceKind::Type2,
        InterfaceKind::Type3,
    ];

    /// `true` for types with in/out buffers (1 and 3).
    #[must_use]
    pub fn has_buffers(self) -> bool {
        matches!(self, InterfaceKind::Type1 | InterfaceKind::Type3)
    }

    /// `true` when the in/out-controller is a hardware FSM (2 and 3).
    #[must_use]
    pub fn is_hardware(self) -> bool {
        matches!(self, InterfaceKind::Type2 | InterfaceKind::Type3)
    }

    /// `true` when kernel code can run in parallel with the IP.
    ///
    /// Buffers decouple the IP from the data memories, so types 1 and 3
    /// qualify; type 2 "may not be adequate for parallel execution because
    /// of the memory contention" (paper §3) and type 0 occupies the kernel
    /// itself.
    #[must_use]
    pub fn supports_parallel(self) -> bool {
        self.has_buffers()
    }

    /// Numeric id (0–3).
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            InterfaceKind::Type0 => 0,
            InterfaceKind::Type1 => 1,
            InterfaceKind::Type2 => 2,
            InterfaceKind::Type3 => 3,
        }
    }
}

impl fmt::Display for InterfaceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IF{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classification_matches_paper() {
        use InterfaceKind::*;
        assert!(!Type0.has_buffers() && !Type0.is_hardware() && !Type0.supports_parallel());
        assert!(Type1.has_buffers() && !Type1.is_hardware() && Type1.supports_parallel());
        assert!(!Type2.has_buffers() && Type2.is_hardware() && !Type2.supports_parallel());
        assert!(Type3.has_buffers() && Type3.is_hardware() && Type3.supports_parallel());
    }

    #[test]
    fn display_matches_tables() {
        assert_eq!(InterfaceKind::Type0.to_string(), "IF0");
        assert_eq!(InterfaceKind::Type3.to_string(), "IF3");
    }

    #[test]
    fn all_is_ordered_by_cost_index() {
        for (i, k) in InterfaceKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i);
        }
    }
}
