//! Interface-layer errors.

use std::error::Error;
use std::fmt;

use crate::{InfeasibleReason, InterfaceKind};

/// Errors raised by interface synthesis and co-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterfaceError {
    /// The IP cannot use the requested interface type.
    Infeasible {
        /// The requested type.
        kind: InterfaceKind,
        /// Why it is rejected.
        reason: InfeasibleReason,
    },
    /// The kernel read an IP output before the datapath produced it.
    TimingViolation {
        /// Kernel cycle at which the read happened.
        at_cycle: u64,
        /// Cycle at which the value becomes ready.
        ready_at: u64,
    },
    /// A buffered access referenced a buffer the interface does not have.
    UnknownBuffer(u8),
    /// The co-simulated IP ran out of input data.
    InputUnderflow,
}

impl fmt::Display for InterfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterfaceError::Infeasible { kind, reason } => {
                write!(f, "interface {kind} infeasible: {reason}")
            }
            InterfaceError::TimingViolation { at_cycle, ready_at } => write!(
                f,
                "output read at cycle {at_cycle} but ready only at {ready_at}"
            ),
            InterfaceError::UnknownBuffer(b) => write!(f, "unknown interface buffer b{b}"),
            InterfaceError::InputUnderflow => f.write_str("ip consumed more inputs than supplied"),
        }
    }
}

impl Error for InterfaceError {}

/// Errors raised by the analytic timing model.
///
/// Infeasible (IP, interface-type) pairings were historically the only
/// failure mode; [`TimingError::CycleOverflow`] was added when the silent
/// `saturating_mul` clamp on IP execution cycles turned out to *understate*
/// `T_IP` for very large sample counts — inflating the apparent gain instead
/// of failing loudly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum TimingError {
    /// The IP cannot use the requested interface type.
    Infeasible(InfeasibleReason),
    /// The slow-clock-scaled IP busy time does not fit in a `u64` cycle
    /// count; any clamped value would understate `T_IP` and overstate gain.
    CycleOverflow {
        /// Unscaled IP execution cycles.
        cycles: u64,
        /// The slow-clock factor the overflow occurred under.
        factor: u64,
    },
}

impl fmt::Display for TimingError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TimingError::Infeasible(reason) => write!(f, "infeasible interface: {reason}"),
            TimingError::CycleOverflow { cycles, factor } => write!(
                f,
                "ip busy time overflows: {cycles} cycles at slow-clock factor {factor}"
            ),
        }
    }
}

impl Error for TimingError {}

impl From<InfeasibleReason> for TimingError {
    fn from(reason: InfeasibleReason) -> TimingError {
        TimingError::Infeasible(reason)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = InterfaceError::Infeasible {
            kind: InterfaceKind::Type0,
            reason: InfeasibleReason::TooManyPorts { ports: 4, max: 2 },
        };
        assert!(e.to_string().contains("IF0"));
        assert!(InterfaceError::UnknownBuffer(3).to_string().contains("b3"));
    }

    #[test]
    fn timing_error_display_and_conversion() {
        let e = TimingError::CycleOverflow {
            cycles: u64::MAX,
            factor: 4,
        };
        assert!(e.to_string().contains("factor 4"));
        let from: TimingError = InfeasibleReason::TooManyPorts { ports: 4, max: 2 }.into();
        assert!(matches!(from, TimingError::Infeasible(_)));
    }
}
