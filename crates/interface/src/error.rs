//! Interface-layer errors.

use std::error::Error;
use std::fmt;

use crate::{InfeasibleReason, InterfaceKind};

/// Errors raised by interface synthesis and co-simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum InterfaceError {
    /// The IP cannot use the requested interface type.
    Infeasible {
        /// The requested type.
        kind: InterfaceKind,
        /// Why it is rejected.
        reason: InfeasibleReason,
    },
    /// The kernel read an IP output before the datapath produced it.
    TimingViolation {
        /// Kernel cycle at which the read happened.
        at_cycle: u64,
        /// Cycle at which the value becomes ready.
        ready_at: u64,
    },
    /// A buffered access referenced a buffer the interface does not have.
    UnknownBuffer(u8),
    /// The co-simulated IP ran out of input data.
    InputUnderflow,
}

impl fmt::Display for InterfaceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InterfaceError::Infeasible { kind, reason } => {
                write!(f, "interface {kind} infeasible: {reason}")
            }
            InterfaceError::TimingViolation { at_cycle, ready_at } => write!(
                f,
                "output read at cycle {at_cycle} but ready only at {ready_at}"
            ),
            InterfaceError::UnknownBuffer(b) => write!(f, "unknown interface buffer b{b}"),
            InterfaceError::InputUnderflow => f.write_str("ip consumed more inputs than supplied"),
        }
    }
}

impl Error for InterfaceError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        let e = InterfaceError::Infeasible {
            kind: InterfaceKind::Type0,
            reason: InfeasibleReason::TooManyPorts { ports: 4, max: 2 },
        };
        assert!(e.to_string().contains("IF0"));
        assert!(InterfaceError::UnknownBuffer(3).to_string().contains("b3"));
    }
}
