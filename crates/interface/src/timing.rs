//! The paper's analytic performance model (§3, "Performance gain and
//! implementation cost").
//!
//! * Types 0/2 (no buffers): data passing overlaps IP operation, so the
//!   execution time is `MAX(T_IP, T_IF)`.
//! * Types 1/3 (buffers): `T_IF_IN + MAX(T_IP, T_B) + T_IF_OUT`, reduced by
//!   `MIN(T_IP, T_C)` when a parallel code of length `T_C` is available.
//!
//! The per-type `T_IF` terms are the exact cycle counts of the template
//! implementations in [`crate::template`] and [`crate::fsm`]; the test
//! suites of those modules pin the two against each other.

use partita_ip::{IpBlock, Protocol};
use partita_mop::Cycles;

use crate::{check_feasibility, InterfaceKind, TimingError};

/// Per-sample cycle overhead of the protocol transformer (paper Fig. 1):
/// synchronous pipelined blocks are the standard and cost nothing; streaming
/// valid/ready adds one cycle per transfer, a two-phase handshake two.
#[must_use]
pub fn protocol_overhead(protocol: Protocol) -> u32 {
    match protocol {
        Protocol::Synchronous => 0,
        Protocol::Stream => 1,
        Protocol::Handshake => 2,
    }
}

/// The IP's input rate as seen through the protocol transformer.
#[must_use]
pub fn effective_in_rate(ip: &IpBlock) -> u32 {
    ip.in_rate() + protocol_overhead(ip.protocol())
}

/// The IP's output rate as seen through the protocol transformer.
#[must_use]
pub fn effective_out_rate(ip: &IpBlock) -> u32 {
    ip.out_rate() + protocol_overhead(ip.protocol())
}

/// A transfer job: how much data one s-call invocation moves.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TransferJob {
    /// Input words read from the data memories.
    pub in_words: u64,
    /// Result words written back.
    pub out_words: u64,
}

impl TransferJob {
    /// Creates a job.
    #[must_use]
    pub fn new(in_words: u64, out_words: u64) -> TransferJob {
        TransferJob {
            in_words,
            out_words,
        }
    }

    /// IP-side input samples: one sample feeds all input ports at once.
    #[must_use]
    pub fn samples_in(&self, ip: &IpBlock) -> u64 {
        self.in_words.div_ceil(u64::from(ip.in_ports().max(1)))
    }

    /// IP-side output samples.
    #[must_use]
    pub fn samples_out(&self, ip: &IpBlock) -> u64 {
        self.out_words.div_ceil(u64::from(ip.out_ports().max(1)))
    }

    /// Kernel-side transfer beats: the kernel moves at most two words per
    /// cycle (one X, one Y).
    #[must_use]
    pub fn kernel_beats_in(&self) -> u64 {
        self.in_words.div_ceil(2)
    }

    /// Kernel-side output beats.
    #[must_use]
    pub fn kernel_beats_out(&self) -> u64 {
        self.out_words.div_ceil(2)
    }
}

/// The timing decomposition of one (IP, interface, job) combination.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceTiming {
    /// Interface type.
    pub kind: InterfaceKind,
    /// Effective IP busy time `T_IP` (slow-clock factor applied for type 0).
    pub t_ip: Cycles,
    /// `T_IF` — controller time for the bufferless types (0/2); zero for
    /// buffered types.
    pub t_if: Cycles,
    /// `T_IF_IN` — in-buffer fill time (types 1/3; zero otherwise).
    pub t_if_in: Cycles,
    /// `T_B` — buffer↔IP transfer time (types 1/3; zero otherwise).
    pub t_b: Cycles,
    /// `T_IF_OUT` — out-buffer drain time (types 1/3; zero otherwise).
    pub t_if_out: Cycles,
}

impl InterfaceTiming {
    /// Total execution time of the S-instruction, optionally overlapping a
    /// parallel code of length `t_c` (only effective on types 1/3).
    #[must_use]
    pub fn total(&self, parallel_code: Option<Cycles>) -> Cycles {
        match self.kind {
            InterfaceKind::Type0 | InterfaceKind::Type2 => self.t_ip.max(self.t_if),
            InterfaceKind::Type1 | InterfaceKind::Type3 => {
                let busy = self.t_if_in + Cycles(1) + self.t_ip.max(self.t_b) + self.t_if_out;
                match parallel_code {
                    // Saturation here is semantic, not a clamp hazard: the
                    // recovered overlap MIN(T_IP, T_C) never exceeds `busy`
                    // mathematically, so saturating merely guards rounding.
                    Some(t_c) => busy.saturating_sub(self.t_ip.min(t_c)),
                    None => busy,
                }
            }
        }
    }
}

/// Computes the timing decomposition.
///
/// # Errors
///
/// [`TimingError::Infeasible`] when `ip` cannot use `kind`;
/// [`TimingError::CycleOverflow`] when the slow-clock-scaled IP busy time
/// does not fit in a `u64` — a saturated value here would *understate*
/// `T_IP` and silently inflate the apparent gain.
pub fn timing(
    ip: &IpBlock,
    kind: InterfaceKind,
    job: TransferJob,
) -> Result<InterfaceTiming, TimingError> {
    let profile = check_feasibility(ip, kind)?;
    let f = profile.slow_clock_factor;
    let samples_in = job.samples_in(ip);
    let samples_out = job.samples_out(ip);
    let raw = ip.execution_cycles(samples_in).get();
    let t_ip = Cycles(raw.checked_mul(f).ok_or(TimingError::CycleOverflow {
        cycles: raw,
        factor: f,
    })?);

    let zero = Cycles::ZERO;
    let t = match kind {
        InterfaceKind::Type0 => {
            // Two pointer-setup words, then `iter_len`-cycle iterations:
            // pipeline-fill iterations (input only) followed by max(in, out)
            // steady/drain iterations (Fig. 4).
            let iter_len = u64::from(effective_in_rate(ip)) * f;
            let fill = (u64::from(ip.latency()) * f).div_ceil(iter_len.max(1));
            let iters = fill + samples_in.max(samples_out);
            InterfaceTiming {
                kind,
                t_ip,
                t_if: Cycles(2 + iter_len * iters),
                t_if_in: zero,
                t_b: zero,
                t_if_out: zero,
            }
        }
        InterfaceKind::Type2 => {
            // DMA: one bus-setup cycle, then one (1 + PT overhead)-cycle
            // repeat line per beat (Fig. 6) — fill, then steady/drain.
            let beat = 1 + u64::from(protocol_overhead(ip.protocol()));
            let fill = u64::from(ip.latency()).div_ceil(u64::from(ip.in_rate().max(1)));
            InterfaceTiming {
                kind,
                t_ip,
                t_if: Cycles(1 + fill + beat * samples_in.max(samples_out)),
                t_if_in: zero,
                t_b: zero,
                t_if_out: zero,
            }
        }
        InterfaceKind::Type1 | InterfaceKind::Type3 => {
            // Buffer fill/drain by the kernel (type 1: two words per 2-cycle
            // iteration; type 3: DMA at one beat per cycle), plus the buffer
            // controller feeding the IP at its own data rates.
            let (t_if_in, t_if_out) = if kind == InterfaceKind::Type1 {
                (
                    Cycles(1 + 2 * job.kernel_beats_in()),
                    Cycles(2 * job.kernel_beats_out()),
                )
            } else {
                (
                    Cycles(1 + job.kernel_beats_in()),
                    Cycles(job.kernel_beats_out()),
                )
            };
            let t_b = Cycles(
                u64::from(effective_in_rate(ip)) * samples_in
                    + u64::from(effective_out_rate(ip)) * samples_out,
            );
            InterfaceTiming {
                kind,
                t_ip,
                t_if: zero,
                t_if_in,
                t_b,
                t_if_out,
            }
        }
    };
    Ok(t)
}

/// Total execution time of the accelerated s-call.
///
/// # Errors
///
/// Propagates [`TimingError`] from [`timing`].
pub fn execution_time(
    ip: &IpBlock,
    kind: InterfaceKind,
    job: TransferJob,
    parallel_code: Option<Cycles>,
) -> Result<Cycles, TimingError> {
    Ok(timing(ip, kind, job)?.total(parallel_code))
}

/// Performance gain `T_SW − execution_time`, saturating at zero: an IP
/// slower than software is a zero-gain implementation, not an error, so
/// this `saturating_sub` is semantic rather than a clamp hazard.
///
/// # Errors
///
/// Propagates [`TimingError`] from [`timing`].
pub fn performance_gain(
    t_sw: Cycles,
    ip: &IpBlock,
    kind: InterfaceKind,
    job: TransferJob,
    parallel_code: Option<Cycles>,
) -> Result<Cycles, TimingError> {
    Ok(t_sw.saturating_sub(execution_time(ip, kind, job, parallel_code)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_ip::IpFunction;

    fn fir(in_rate: u32, out_rate: u32, latency: u32) -> IpBlock {
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(in_rate, out_rate)
            .latency(latency)
            .build()
    }

    #[test]
    fn type0_formula() {
        let ip = fir(4, 4, 8);
        let job = TransferJob::new(64, 64); // 32 samples each way
        let t = timing(&ip, InterfaceKind::Type0, job).unwrap();
        // iter_len 4, fill = 8/4 = 2, iters = 2 + 32 = 34 -> 2 + 136.
        assert_eq!(t.t_if, Cycles(138));
        // T_IP = 8 + 4*31 = 132; total = max(132, 138) = 138.
        assert_eq!(t.t_ip, Cycles(132));
        assert_eq!(t.total(None), Cycles(138));
        // Parallel code cannot help a type-0 interface.
        assert_eq!(t.total(Some(Cycles(1000))), Cycles(138));
    }

    #[test]
    fn type0_slow_clock_scales_ip_time() {
        let ip = fir(1, 1, 4);
        let job = TransferJob::new(16, 16);
        let t = timing(&ip, InterfaceKind::Type0, job).unwrap();
        // Slow factor 4: T_IP = 4 * (4 + 1*(8-1)) = 44.
        assert_eq!(t.t_ip, Cycles(44));
        // iter_len = 4, fill = 16/4 = 4, iters = 4 + 8 = 12 -> 50.
        assert_eq!(t.t_if, Cycles(50));
    }

    #[test]
    fn type2_is_faster_than_type0() {
        let ip = fir(4, 4, 8);
        let job = TransferJob::new(64, 64);
        let t0 = execution_time(&ip, InterfaceKind::Type0, job, None).unwrap();
        let t2 = execution_time(&ip, InterfaceKind::Type2, job, None).unwrap();
        assert!(t2 <= t0);
        // Type 2: T_IF = 1 + 2 + 32 = 35; total = max(132, 35) = T_IP.
        assert_eq!(t2, Cycles(132));
    }

    #[test]
    fn buffered_types_pay_fill_and_drain() {
        let ip = fir(4, 4, 8);
        let job = TransferJob::new(64, 64);
        let t1 = timing(&ip, InterfaceKind::Type1, job).unwrap();
        assert_eq!(t1.t_if_in, Cycles(1 + 64));
        assert_eq!(t1.t_if_out, Cycles(64));
        assert_eq!(t1.t_b, Cycles(4 * 32 + 4 * 32));
        // total = 65 + 1 + max(132, 256) + 64 = 386.
        assert_eq!(t1.total(None), Cycles(386));
        let t3 = timing(&ip, InterfaceKind::Type3, job).unwrap();
        assert_eq!(t3.t_if_in, Cycles(33));
        assert_eq!(t3.t_if_out, Cycles(32));
        assert!(t3.total(None) < t1.total(None));
    }

    #[test]
    fn parallel_code_reduces_by_min_tip_tc() {
        let ip = fir(4, 4, 8);
        let job = TransferJob::new(64, 64);
        let t3 = timing(&ip, InterfaceKind::Type3, job).unwrap();
        let base = t3.total(None);
        // Short parallel code: full T_C recovered.
        assert_eq!(t3.total(Some(Cycles(50))), base - Cycles(50));
        // Long parallel code: capped at T_IP.
        assert_eq!(t3.total(Some(Cycles(10_000))), base - t3.t_ip);
    }

    #[test]
    fn slower_ip_with_parallel_code_can_win() {
        // The paper: "a slower IP with a parallel code can be better than a
        // faster IP without a parallel code".
        let fast = fir(2, 2, 4);
        let slow = fir(3, 3, 30);
        let job = TransferJob::new(128, 128);
        let t_fast = execution_time(&fast, InterfaceKind::Type3, job, None).unwrap();
        let t_slow =
            execution_time(&slow, InterfaceKind::Type3, job, Some(Cycles(100_000))).unwrap();
        assert!(t_slow < t_fast, "{t_slow} !< {t_fast}");
    }

    #[test]
    fn gain_saturates_at_zero() {
        let ip = fir(4, 4, 1000);
        let job = TransferJob::new(4, 4);
        let g = performance_gain(Cycles(10), &ip, InterfaceKind::Type0, job, None).unwrap();
        assert_eq!(g, Cycles::ZERO);
    }

    #[test]
    fn huge_job_overflows_loudly_instead_of_clamping() {
        // fir(1,1,4) needs slow-clock factor 4 on type 0; a near-u64::MAX
        // job pushes the scaled busy time past u64. The old saturating_mul
        // clamped T_IP to u64::MAX here, which *understated* the busy time
        // relative to the (also huge) T_IF and could fabricate gain.
        let ip = fir(1, 1, 4);
        let job = TransferJob::new(u64::MAX, u64::MAX);
        let err = timing(&ip, InterfaceKind::Type0, job).unwrap_err();
        assert!(
            matches!(err, TimingError::CycleOverflow { factor: 4, .. }),
            "{err}"
        );
        // The overflow propagates through the gain API as a typed error.
        let gain = performance_gain(Cycles(10), &ip, InterfaceKind::Type0, job, None);
        assert!(matches!(gain, Err(TimingError::CycleOverflow { .. })));
        // Sane jobs on the same IP are unaffected.
        assert!(timing(&ip, InterfaceKind::Type0, TransferJob::new(16, 16)).is_ok());
    }

    #[test]
    fn infeasible_combination_propagates() {
        let interp = IpBlock::builder("interp")
            .function(IpFunction::InterpFilter)
            .rates(4, 2)
            .build();
        assert!(timing(&interp, InterfaceKind::Type0, TransferJob::new(8, 16)).is_err());
        assert!(timing(&interp, InterfaceKind::Type1, TransferJob::new(8, 16)).is_ok());
    }

    #[test]
    fn protocol_transformer_slows_transfers() {
        use partita_ip::Protocol;
        let sync = fir(4, 4, 8);
        let hand = IpBlock::builder("fir_hs")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(8)
            .protocol(Protocol::Handshake)
            .build();
        let job = TransferJob::new(32, 32);
        for kind in InterfaceKind::ALL {
            let t_sync = execution_time(&sync, kind, job, None).unwrap();
            let t_hand = execution_time(&hand, kind, job, None).unwrap();
            assert!(
                t_hand >= t_sync,
                "{kind}: handshake {t_hand} must not beat synchronous {t_sync}"
            );
        }
        // Type 0's iteration stretches by the overhead: 2 + 6·(fill+iters).
        let t0 = timing(&hand, InterfaceKind::Type0, job).unwrap();
        assert_eq!(t0.t_if, Cycles(2 + 6 * (2 + 16)));
        assert_eq!(protocol_overhead(Protocol::Synchronous), 0);
        assert_eq!(protocol_overhead(Protocol::Stream), 1);
        assert_eq!(protocol_overhead(Protocol::Handshake), 2);
        assert_eq!(effective_in_rate(&hand), 6);
        assert_eq!(effective_out_rate(&hand), 6);
    }

    #[test]
    fn fast_handshake_ip_needs_less_clock_slowing() {
        use partita_ip::Protocol;
        // in_rate 1 + handshake overhead 2 = 3 effective -> factor 2, not 4.
        let ip = IpBlock::builder("hs")
            .function(IpFunction::ComplexMul)
            .ports(2, 2)
            .rates(1, 1)
            .latency(4)
            .protocol(Protocol::Handshake)
            .build();
        let p = check_feasibility(&ip, InterfaceKind::Type0).unwrap();
        assert_eq!(p.slow_clock_factor, 2);
    }

    #[test]
    fn job_sample_accounting() {
        let wide = IpBlock::builder("wide")
            .function(IpFunction::Fft)
            .ports(4, 4)
            .build();
        let job = TransferJob::new(64, 64);
        assert_eq!(job.samples_in(&wide), 16);
        assert_eq!(job.kernel_beats_in(), 32);
        assert_eq!(job.samples_out(&wide), 16);
        let job_odd = TransferJob::new(7, 3);
        assert_eq!(job_odd.kernel_beats_in(), 4);
        assert_eq!(job_odd.kernel_beats_out(), 2);
    }
}
