//! Interface implementation cost `A_CNT + A_B` (paper §3).
//!
//! For software interfaces (types 0/1) `A_CNT` is code-memory area for the
//! template µ-code; for hardware interfaces (types 2/3) it is FSM area.
//! `A_B` charges the in/out buffers of types 1/3 by depth.

use partita_mop::AreaTenths;

use crate::{InterfaceKind, TransferJob};

/// A decomposed interface area.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfaceArea {
    /// Controller area `A_CNT` (code memory or FSM).
    pub controller: AreaTenths,
    /// Buffer area `A_B` (zero for types 0/2).
    pub buffers: AreaTenths,
}

impl InterfaceArea {
    /// Total interface area.
    #[must_use]
    pub fn total(&self) -> AreaTenths {
        self.controller + self.buffers
    }
}

/// Area coefficients. The defaults reproduce the relative costs visible in
/// the paper's tables (e.g. Table 1: switching SC14 from IF1 to IF3 adds
/// 0.5 area units; SC15 on IF2 adds 0.5 over IF0).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AreaModel {
    /// Code-memory area of the type-0 template.
    pub type0_code: AreaTenths,
    /// Code-memory area of the type-1 template (shorter: no in/out rate
    /// matching loop, Fig. 5).
    pub type1_code: AreaTenths,
    /// FSM area for the hardware controllers (types 2/3).
    pub fsm: AreaTenths,
    /// Buffer area per 16 buffered words.
    pub buffer_per_16_words: AreaTenths,
}

impl Default for AreaModel {
    fn default() -> Self {
        AreaModel {
            type0_code: AreaTenths::from_tenths(3),
            type1_code: AreaTenths::from_tenths(2),
            fsm: AreaTenths::from_tenths(5),
            buffer_per_16_words: AreaTenths::from_tenths(1),
        }
    }
}

impl AreaModel {
    /// Computes the interface area for one (type, job) combination.
    ///
    /// Buffered types size their buffers for the larger of the input and
    /// output working sets.
    #[must_use]
    pub fn interface_area(&self, kind: InterfaceKind, job: TransferJob) -> InterfaceArea {
        let controller = match kind {
            InterfaceKind::Type0 => self.type0_code,
            InterfaceKind::Type1 => self.type1_code,
            InterfaceKind::Type2 | InterfaceKind::Type3 => self.fsm,
        };
        let buffers = if kind.has_buffers() {
            let depth = job.in_words.max(job.out_words);
            AreaTenths::from_tenths(
                self.buffer_per_16_words.tenths()
                    * i64::try_from(depth.div_ceil(16)).unwrap_or(i64::MAX),
            )
        } else {
            AreaTenths::ZERO
        };
        InterfaceArea {
            controller,
            buffers,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bufferless_types_have_no_buffer_area() {
        let m = AreaModel::default();
        let job = TransferJob::new(160, 160);
        assert_eq!(
            m.interface_area(InterfaceKind::Type0, job).buffers,
            AreaTenths::ZERO
        );
        assert_eq!(
            m.interface_area(InterfaceKind::Type2, job).buffers,
            AreaTenths::ZERO
        );
    }

    #[test]
    fn buffer_area_scales_with_depth() {
        let m = AreaModel::default();
        let small = m.interface_area(InterfaceKind::Type1, TransferJob::new(16, 16));
        let large = m.interface_area(InterfaceKind::Type1, TransferJob::new(160, 16));
        assert!(large.buffers > small.buffers);
        assert_eq!(small.buffers, AreaTenths::from_tenths(1));
        assert_eq!(large.buffers, AreaTenths::from_tenths(10));
    }

    #[test]
    fn hardware_costs_more_than_software_controller() {
        let m = AreaModel::default();
        let job = TransferJob::new(64, 64);
        let t1 = m.interface_area(InterfaceKind::Type1, job).total();
        let t3 = m.interface_area(InterfaceKind::Type3, job).total();
        assert!(t3 > t1); // the Table-1 IF1 -> IF3 step
    }

    #[test]
    fn totals_compose() {
        let m = AreaModel::default();
        let a = m.interface_area(InterfaceKind::Type3, TransferJob::new(32, 32));
        assert_eq!(a.total(), a.controller + a.buffers);
    }
}
