//! Frontend errors with source positions.

use std::error::Error;
use std::fmt;

/// Errors raised while compiling Partita-C source.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrontendError {
    /// A character the lexer does not understand.
    UnexpectedChar {
        /// The character.
        ch: char,
        /// 1-based line.
        line: u32,
    },
    /// An integer literal out of `i32` range.
    IntOutOfRange {
        /// The literal text.
        text: String,
        /// 1-based line.
        line: u32,
    },
    /// The parser expected something else.
    UnexpectedToken {
        /// What was found.
        found: String,
        /// What was expected.
        expected: &'static str,
        /// 1-based line.
        line: u32,
    },
    /// Premature end of input.
    UnexpectedEof {
        /// What was expected.
        expected: &'static str,
    },
    /// An identifier that names nothing in scope.
    UnknownIdent {
        /// The identifier.
        name: String,
    },
    /// A call to an undefined function.
    UnknownFunction {
        /// The callee name.
        name: String,
    },
    /// A region or function declared twice.
    Duplicate {
        /// The name.
        name: String,
    },
    /// Too many live locals/temporaries for the 16-register file.
    RegisterPressure {
        /// The function being lowered.
        func: String,
    },
    /// Indexing a scalar or assigning to an array without an index.
    KindMismatch {
        /// The identifier.
        name: String,
    },
    /// The program has no `main` function.
    NoMain,
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendError::UnexpectedChar { ch, line } => {
                write!(f, "line {line}: unexpected character {ch:?}")
            }
            FrontendError::IntOutOfRange { text, line } => {
                write!(f, "line {line}: integer literal `{text}` out of range")
            }
            FrontendError::UnexpectedToken {
                found,
                expected,
                line,
            } => write!(f, "line {line}: expected {expected}, found `{found}`"),
            FrontendError::UnexpectedEof { expected } => {
                write!(f, "unexpected end of input, expected {expected}")
            }
            FrontendError::UnknownIdent { name } => write!(f, "unknown identifier `{name}`"),
            FrontendError::UnknownFunction { name } => {
                write!(f, "call to unknown function `{name}`")
            }
            FrontendError::Duplicate { name } => write!(f, "`{name}` declared twice"),
            FrontendError::RegisterPressure { func } => {
                write!(
                    f,
                    "function `{func}` needs more registers than the kernel has"
                )
            }
            FrontendError::KindMismatch { name } => {
                write!(f, "`{name}` used with the wrong shape (scalar vs array)")
            }
            FrontendError::NoMain => f.write_str("program has no `main` function"),
        }
    }
}

impl Error for FrontendError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_carry_positions() {
        let e = FrontendError::UnexpectedChar { ch: '$', line: 3 };
        assert!(e.to_string().contains("line 3"));
        assert!(FrontendError::NoMain.to_string().contains("main"));
    }
}
