//! A C-like frontend for the Partita flow.
//!
//! The paper's input is "the application program written in C, typical input
//! data for the application, and performance constraints"; the program is
//! "transformed into a MOP list and sample-executed with the given typical
//! input data to obtain \[the\] running frequency profile" (§2).
//!
//! This crate implements that pipeline for **Partita-C**, a small C-like
//! DSL:
//!
//! ```text
//! xmem samples[16] @ 0;        // array in X data memory at address 0
//! ymem filtered[16] @ 0;       // array in Y data memory
//!
//! fn fir() reads samples writes filtered {
//!     let acc = 0;
//!     let i = 0;
//!     while (i < 16) {
//!         acc = acc + samples[i];
//!         filtered[i] = acc;
//!         i = i + 1;
//!     }
//! }
//!
//! fn main() {
//!     fir();
//!     if (samples[0] < 4) { fir(); }
//! }
//! ```
//!
//! * [`compile`] lexes, parses and lowers a source file to a
//!   [`partita_mop::MopProgram`], carrying each function's declared
//!   `reads`/`writes` regions as [`partita_mop::CallEffects`] so the CDFG
//!   can find parallel code across s-calls;
//! * [`profile`] sample-executes the compiled program on the
//!   `partita-asip` kernel and writes the block-frequency profile back.
//!
//! # Example
//!
//! ```
//! use partita_frontend::compile;
//!
//! let src = "
//!     xmem a[4] @ 0;
//!     fn main() { let s = a[0] + a[1]; if (s < 10) { s = 0; } }
//! ";
//! let compiled = compile(src)?;
//! assert!(compiled.program.function_by_name("main").is_some());
//! # Ok::<(), partita_frontend::FrontendError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ast;
mod error;
mod lexer;
mod lower;
mod parser;

pub use ast::{BinOp, Expr, FnDecl, Program, RegionDecl, RegionSpace, Stmt, UnOp};
pub use error::FrontendError;
pub use lexer::{tokenize, Token, TokenKind};
pub use lower::{compile, profile, CompiledProgram};
pub use parser::parse;
