//! The Partita-C abstract syntax tree.

/// Which data memory a region lives in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegionSpace {
    /// X data memory.
    X,
    /// Y data memory.
    Y,
}

/// A global array declaration: `xmem name[len] @ base;`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegionDecl {
    /// The array name.
    pub name: String,
    /// Memory space.
    pub space: RegionSpace,
    /// Number of words.
    pub len: u32,
    /// Base address.
    pub base: u32,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (signed; division by zero yields 0 on the kernel)
    Div,
    /// `%`
    Rem,
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&` (operands normalised to 0/1)
    LogicAnd,
    /// `||`
    LogicOr,
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Arithmetic negation.
    Neg,
    /// Logical not (`0 ↦ 1`, non-zero `↦ 0`).
    Not,
}

/// Expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Integer literal.
    Int(i32),
    /// Scalar variable reference.
    Var(String),
    /// Array load `name[index]`.
    Index(String, Box<Expr>),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
}

/// Statements.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// `let name = expr;`
    Let(String, Expr),
    /// `name = expr;`
    Assign(String, Expr),
    /// `name[index] = expr;`
    Store(String, Expr, Expr),
    /// `callee();`
    Call(String),
    /// `if (cond) { .. } else { .. }`
    If(Expr, Vec<Stmt>, Vec<Stmt>),
    /// `while (cond) { .. }`
    While(Expr, Vec<Stmt>),
    /// `return;`
    Return,
}

/// A function declaration with its effect clauses.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FnDecl {
    /// The function name.
    pub name: String,
    /// Regions named in the `reads` clause.
    pub reads: Vec<String>,
    /// Regions named in the `writes` clause.
    pub writes: Vec<String>,
    /// The body.
    pub body: Vec<Stmt>,
}

/// A whole source file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Global array declarations.
    pub regions: Vec<RegionDecl>,
    /// Functions in declaration order.
    pub functions: Vec<FnDecl>,
}
