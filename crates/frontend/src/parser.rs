//! Recursive-descent parser for Partita-C.

use crate::ast::{BinOp, Expr, FnDecl, Program, RegionDecl, RegionSpace, Stmt, UnOp};
use crate::lexer::{tokenize, Token, TokenKind};
use crate::FrontendError;

/// Parses a Partita-C source file.
///
/// # Errors
///
/// Lexical and syntactic errors with line positions.
pub fn parse(src: &str) -> Result<Program, FrontendError> {
    let tokens = tokenize(src)?;
    Parser { tokens, pos: 0 }.program()
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&TokenKind> {
        self.tokens.get(self.pos).map(|t| &t.kind)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |t| t.line)
    }

    fn next(&mut self, expected: &'static str) -> Result<TokenKind, FrontendError> {
        let t = self
            .tokens
            .get(self.pos)
            .ok_or(FrontendError::UnexpectedEof { expected })?;
        self.pos += 1;
        Ok(t.kind.clone())
    }

    fn expect(&mut self, kind: &TokenKind, expected: &'static str) -> Result<(), FrontendError> {
        let line = self.line();
        let t = self.next(expected)?;
        if &t == kind {
            Ok(())
        } else {
            Err(FrontendError::UnexpectedToken {
                found: t.to_string(),
                expected,
                line,
            })
        }
    }

    fn ident(&mut self, expected: &'static str) -> Result<String, FrontendError> {
        let line = self.line();
        match self.next(expected)? {
            TokenKind::Ident(s) => Ok(s),
            other => Err(FrontendError::UnexpectedToken {
                found: other.to_string(),
                expected,
                line,
            }),
        }
    }

    fn int(&mut self, expected: &'static str) -> Result<i32, FrontendError> {
        let line = self.line();
        match self.next(expected)? {
            TokenKind::Int(v) => Ok(v),
            other => Err(FrontendError::UnexpectedToken {
                found: other.to_string(),
                expected,
                line,
            }),
        }
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.peek() == Some(kind) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn program(&mut self) -> Result<Program, FrontendError> {
        let mut p = Program::default();
        while let Some(kind) = self.peek() {
            match kind {
                TokenKind::Xmem | TokenKind::Ymem => {
                    let space = if matches!(kind, TokenKind::Xmem) {
                        RegionSpace::X
                    } else {
                        RegionSpace::Y
                    };
                    self.pos += 1;
                    p.regions.push(self.region(space)?);
                }
                TokenKind::Fn => {
                    self.pos += 1;
                    p.functions.push(self.function()?);
                }
                other => {
                    return Err(FrontendError::UnexpectedToken {
                        found: other.to_string(),
                        expected: "`fn`, `xmem` or `ymem`",
                        line: self.line(),
                    })
                }
            }
        }
        Ok(p)
    }

    fn region(&mut self, space: RegionSpace) -> Result<RegionDecl, FrontendError> {
        let name = self.ident("region name")?;
        self.expect(&TokenKind::LBracket, "`[`")?;
        let len = self.int("region length")?;
        self.expect(&TokenKind::RBracket, "`]`")?;
        self.expect(&TokenKind::At, "`@`")?;
        let base = self.int("region base address")?;
        self.expect(&TokenKind::Semi, "`;`")?;
        Ok(RegionDecl {
            name,
            space,
            len: len.max(0) as u32,
            base: base.max(0) as u32,
        })
    }

    fn function(&mut self) -> Result<FnDecl, FrontendError> {
        let name = self.ident("function name")?;
        self.expect(&TokenKind::LParen, "`(`")?;
        self.expect(&TokenKind::RParen, "`)`")?;
        let mut reads = Vec::new();
        let mut writes = Vec::new();
        loop {
            if self.eat(&TokenKind::Reads) {
                reads.push(self.ident("region name after `reads`")?);
                while self.eat(&TokenKind::Comma) {
                    reads.push(self.ident("region name")?);
                }
            } else if self.eat(&TokenKind::Writes) {
                writes.push(self.ident("region name after `writes`")?);
                while self.eat(&TokenKind::Comma) {
                    writes.push(self.ident("region name")?);
                }
            } else {
                break;
            }
        }
        let body = self.block()?;
        Ok(FnDecl {
            name,
            reads,
            writes,
            body,
        })
    }

    fn block(&mut self) -> Result<Vec<Stmt>, FrontendError> {
        self.expect(&TokenKind::LBrace, "`{`")?;
        let mut stmts = Vec::new();
        while self.peek() != Some(&TokenKind::RBrace) {
            if self.peek().is_none() {
                return Err(FrontendError::UnexpectedEof { expected: "`}`" });
            }
            stmts.push(self.stmt()?);
        }
        self.expect(&TokenKind::RBrace, "`}`")?;
        Ok(stmts)
    }

    fn stmt(&mut self) -> Result<Stmt, FrontendError> {
        match self.peek() {
            Some(TokenKind::Let) => {
                self.pos += 1;
                let name = self.ident("variable name")?;
                self.expect(&TokenKind::Assign, "`=`")?;
                let value = self.expr()?;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Let(name, value))
            }
            Some(TokenKind::If) => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let then = self.block()?;
                let els = if self.eat(&TokenKind::Else) {
                    self.block()?
                } else {
                    Vec::new()
                };
                Ok(Stmt::If(cond, then, els))
            }
            Some(TokenKind::While) => {
                self.pos += 1;
                self.expect(&TokenKind::LParen, "`(`")?;
                let cond = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                let body = self.block()?;
                Ok(Stmt::While(cond, body))
            }
            Some(TokenKind::Return) => {
                self.pos += 1;
                self.expect(&TokenKind::Semi, "`;`")?;
                Ok(Stmt::Return)
            }
            _ => {
                let name = self.ident("statement")?;
                match self.peek() {
                    Some(TokenKind::LParen) => {
                        self.pos += 1;
                        self.expect(&TokenKind::RParen, "`)`")?;
                        self.expect(&TokenKind::Semi, "`;`")?;
                        Ok(Stmt::Call(name))
                    }
                    Some(TokenKind::LBracket) => {
                        self.pos += 1;
                        let index = self.expr()?;
                        self.expect(&TokenKind::RBracket, "`]`")?;
                        self.expect(&TokenKind::Assign, "`=`")?;
                        let value = self.expr()?;
                        self.expect(&TokenKind::Semi, "`;`")?;
                        Ok(Stmt::Store(name, index, value))
                    }
                    Some(TokenKind::Assign) => {
                        self.pos += 1;
                        let value = self.expr()?;
                        self.expect(&TokenKind::Semi, "`;`")?;
                        Ok(Stmt::Assign(name, value))
                    }
                    other => Err(FrontendError::UnexpectedToken {
                        found: other.map_or("end of input".to_owned(), ToString::to_string),
                        expected: "`(`, `[` or `=`",
                        line: self.line(),
                    }),
                }
            }
        }
    }

    /// Precedence-climbing expression parser.
    fn expr(&mut self) -> Result<Expr, FrontendError> {
        self.binary(0)
    }

    fn binary(&mut self, min_prec: u8) -> Result<Expr, FrontendError> {
        let mut lhs = self.unary()?;
        while let Some(kind) = self.peek() {
            let (op, prec) = match kind {
                TokenKind::OrOr => (BinOp::LogicOr, 1),
                TokenKind::AndAnd => (BinOp::LogicAnd, 2),
                TokenKind::Pipe => (BinOp::Or, 3),
                TokenKind::Caret => (BinOp::Xor, 4),
                TokenKind::Amp => (BinOp::And, 5),
                TokenKind::EqEq => (BinOp::Eq, 6),
                TokenKind::NotEq => (BinOp::Ne, 6),
                TokenKind::Lt => (BinOp::Lt, 7),
                TokenKind::Le => (BinOp::Le, 7),
                TokenKind::Gt => (BinOp::Gt, 7),
                TokenKind::Ge => (BinOp::Ge, 7),
                TokenKind::Shl => (BinOp::Shl, 8),
                TokenKind::Shr => (BinOp::Shr, 8),
                TokenKind::Plus => (BinOp::Add, 9),
                TokenKind::Minus => (BinOp::Sub, 9),
                TokenKind::Star => (BinOp::Mul, 10),
                TokenKind::Slash => (BinOp::Div, 10),
                TokenKind::Percent => (BinOp::Rem, 10),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.pos += 1;
            let rhs = self.binary(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn unary(&mut self) -> Result<Expr, FrontendError> {
        match self.peek() {
            Some(TokenKind::Minus) => {
                self.pos += 1;
                Ok(Expr::Un(UnOp::Neg, Box::new(self.unary()?)))
            }
            Some(TokenKind::Bang) => {
                self.pos += 1;
                Ok(Expr::Un(UnOp::Not, Box::new(self.unary()?)))
            }
            _ => self.primary(),
        }
    }

    fn primary(&mut self) -> Result<Expr, FrontendError> {
        let line = self.line();
        match self.next("expression")? {
            TokenKind::Int(v) => Ok(Expr::Int(v)),
            TokenKind::LParen => {
                let e = self.expr()?;
                self.expect(&TokenKind::RParen, "`)`")?;
                Ok(e)
            }
            TokenKind::Ident(name) => {
                if self.eat(&TokenKind::LBracket) {
                    let index = self.expr()?;
                    self.expect(&TokenKind::RBracket, "`]`")?;
                    Ok(Expr::Index(name, Box::new(index)))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(FrontendError::UnexpectedToken {
                found: other.to_string(),
                expected: "expression",
                line,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_regions_and_functions() {
        let p = parse("xmem a[16] @ 0; ymem b[8] @ 4;\n fn main() { a[0] = 1; }").unwrap();
        assert_eq!(p.regions.len(), 2);
        assert_eq!(p.regions[0].space, RegionSpace::X);
        assert_eq!(p.regions[1].base, 4);
        assert_eq!(p.functions.len(), 1);
    }

    #[test]
    fn effect_clauses() {
        let p = parse("xmem a[4] @ 0; fn f() reads a writes a { }").unwrap();
        assert_eq!(p.functions[0].reads, vec!["a"]);
        assert_eq!(p.functions[0].writes, vec!["a"]);
    }

    #[test]
    fn precedence() {
        let p = parse("fn main() { let x = 1 + 2 * 3; }").unwrap();
        let Stmt::Let(_, Expr::Bin(BinOp::Add, _, rhs)) = &p.functions[0].body[0] else {
            panic!("expected let with addition");
        };
        assert!(matches!(**rhs, Expr::Bin(BinOp::Mul, _, _)));
    }

    #[test]
    fn control_flow_and_calls() {
        let p =
            parse("fn f() { }\n fn main() { if (1 < 2) { f(); } else { return; } while (0) { } }")
                .unwrap();
        assert!(matches!(p.functions[1].body[0], Stmt::If(..)));
        assert!(matches!(p.functions[1].body[1], Stmt::While(..)));
    }

    #[test]
    fn unary_operators() {
        let p = parse("fn main() { let x = -1 + !0; }").unwrap();
        assert!(matches!(p.functions[0].body[0], Stmt::Let(..)));
    }

    #[test]
    fn error_positions() {
        let err = parse("fn main() {\n let = 3; }").unwrap_err();
        assert!(matches!(
            err,
            FrontendError::UnexpectedToken { line: 2, .. }
        ));
        assert!(matches!(
            parse("fn main() {"),
            Err(FrontendError::UnexpectedEof { .. })
        ));
    }
}
