//! The Partita-C lexer.

use std::fmt;

use crate::FrontendError;

/// A lexical token kind.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier.
    Ident(String),
    /// Integer literal.
    Int(i32),
    /// `fn`
    Fn,
    /// `let`
    Let,
    /// `if`
    If,
    /// `else`
    Else,
    /// `while`
    While,
    /// `return`
    Return,
    /// `xmem`
    Xmem,
    /// `ymem`
    Ymem,
    /// `reads`
    Reads,
    /// `writes`
    Writes,
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `%`
    Percent,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `<<`
    Shl,
    /// `>>`
    Shr,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `&&`
    AndAnd,
    /// `||`
    OrOr,
    /// `!`
    Bang,
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TokenKind::Ident(s) => write!(f, "{s}"),
            TokenKind::Int(v) => write!(f, "{v}"),
            other => write!(f, "{other:?}"),
        }
    }
}

/// A token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The kind.
    pub kind: TokenKind,
    /// 1-based line number.
    pub line: u32,
}

/// Tokenizes Partita-C source. `//` comments run to end of line.
///
/// # Errors
///
/// [`FrontendError::UnexpectedChar`] and [`FrontendError::IntOutOfRange`].
pub fn tokenize(src: &str) -> Result<Vec<Token>, FrontendError> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    let mut line: u32 = 1;

    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '/' => {
                chars.next();
                if chars.peek() == Some(&'/') {
                    for c in chars.by_ref() {
                        if c == '\n' {
                            line += 1;
                            break;
                        }
                    }
                } else {
                    out.push(Token {
                        kind: TokenKind::Slash,
                        line,
                    });
                }
            }
            c if c.is_ascii_digit() => {
                let mut text = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        text.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let value: i32 = text.parse().map_err(|_| FrontendError::IntOutOfRange {
                    text: text.clone(),
                    line,
                })?;
                out.push(Token {
                    kind: TokenKind::Int(value),
                    line,
                });
            }
            c if c.is_ascii_alphabetic() || c == '_' => {
                let mut text = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_alphanumeric() || d == '_' {
                        text.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let kind = match text.as_str() {
                    "fn" => TokenKind::Fn,
                    "let" => TokenKind::Let,
                    "if" => TokenKind::If,
                    "else" => TokenKind::Else,
                    "while" => TokenKind::While,
                    "return" => TokenKind::Return,
                    "xmem" => TokenKind::Xmem,
                    "ymem" => TokenKind::Ymem,
                    "reads" => TokenKind::Reads,
                    "writes" => TokenKind::Writes,
                    _ => TokenKind::Ident(text),
                };
                out.push(Token { kind, line });
            }
            _ => {
                chars.next();
                let two = |next: char, chars: &mut std::iter::Peekable<std::str::Chars>| {
                    if chars.peek() == Some(&next) {
                        chars.next();
                        true
                    } else {
                        false
                    }
                };
                let kind = match c {
                    '(' => TokenKind::LParen,
                    ')' => TokenKind::RParen,
                    '{' => TokenKind::LBrace,
                    '}' => TokenKind::RBrace,
                    '[' => TokenKind::LBracket,
                    ']' => TokenKind::RBracket,
                    ';' => TokenKind::Semi,
                    ',' => TokenKind::Comma,
                    '@' => TokenKind::At,
                    '+' => TokenKind::Plus,
                    '-' => TokenKind::Minus,
                    '*' => TokenKind::Star,
                    '%' => TokenKind::Percent,
                    '^' => TokenKind::Caret,
                    '&' => {
                        if two('&', &mut chars) {
                            TokenKind::AndAnd
                        } else {
                            TokenKind::Amp
                        }
                    }
                    '|' => {
                        if two('|', &mut chars) {
                            TokenKind::OrOr
                        } else {
                            TokenKind::Pipe
                        }
                    }
                    '=' => {
                        if two('=', &mut chars) {
                            TokenKind::EqEq
                        } else {
                            TokenKind::Assign
                        }
                    }
                    '!' => {
                        if two('=', &mut chars) {
                            TokenKind::NotEq
                        } else {
                            TokenKind::Bang
                        }
                    }
                    '<' => {
                        if two('=', &mut chars) {
                            TokenKind::Le
                        } else if two('<', &mut chars) {
                            TokenKind::Shl
                        } else {
                            TokenKind::Lt
                        }
                    }
                    '>' => {
                        if two('=', &mut chars) {
                            TokenKind::Ge
                        } else if two('>', &mut chars) {
                            TokenKind::Shr
                        } else {
                            TokenKind::Gt
                        }
                    }
                    other => return Err(FrontendError::UnexpectedChar { ch: other, line }),
                };
                out.push(Token { kind, line });
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        tokenize(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn keywords_and_idents() {
        assert_eq!(
            kinds("fn main xmem reads"),
            vec![
                TokenKind::Fn,
                TokenKind::Ident("main".into()),
                TokenKind::Xmem,
                TokenKind::Reads
            ]
        );
    }

    #[test]
    fn two_char_operators() {
        assert_eq!(
            kinds("== != <= >= << >> && ||"),
            vec![
                TokenKind::EqEq,
                TokenKind::NotEq,
                TokenKind::Le,
                TokenKind::Ge,
                TokenKind::Shl,
                TokenKind::Shr,
                TokenKind::AndAnd,
                TokenKind::OrOr
            ]
        );
    }

    #[test]
    fn comments_are_skipped_and_lines_counted() {
        let toks = tokenize("a // comment\nb").unwrap();
        assert_eq!(toks.len(), 2);
        assert_eq!(toks[0].line, 1);
        assert_eq!(toks[1].line, 2);
    }

    #[test]
    fn numbers() {
        assert_eq!(kinds("42 0"), vec![TokenKind::Int(42), TokenKind::Int(0)]);
        assert!(matches!(
            tokenize("99999999999999"),
            Err(FrontendError::IntOutOfRange { .. })
        ));
    }

    #[test]
    fn bad_character() {
        assert!(matches!(
            tokenize("a $ b"),
            Err(FrontendError::UnexpectedChar { ch: '$', line: 1 })
        ));
    }
}
