//! Lowering Partita-C to MOP lists, and profiling by sample execution.

use std::collections::BTreeMap;

use partita_asip::{ExecError, ExecOptions, ExecReport, Executor, Kernel};
use partita_mop::{
    AluOp, BlockId, CallEffects, CdfgOptions, FuncId, Function, MemRegion, MemSpace, Mop, MopId,
    MopProgram, Operand, Reg,
};

use crate::ast::{BinOp, Expr, FnDecl, Program, RegionDecl, RegionSpace, Stmt, UnOp};
use crate::{parse, FrontendError};

/// AGU pointer used for X-side array accesses.
const AGU_X: u8 = 0;
/// AGU pointer used for Y-side array accesses.
const AGU_Y: u8 = 2;
/// First register of the scratch (expression-temporary) pool.
const SCRATCH_BASE: u8 = 10;
/// One past the last scratch register.
const SCRATCH_END: u8 = 16;

/// The result of compiling a Partita-C source file.
#[derive(Debug, Clone)]
pub struct CompiledProgram {
    /// The lowered program.
    pub program: MopProgram,
    /// The global region declarations.
    pub regions: Vec<RegionDecl>,
    /// Per caller function: the declared memory effects of each call MOP.
    call_effects: BTreeMap<FuncId, BTreeMap<MopId, CallEffects>>,
}

impl CompiledProgram {
    /// CDFG options for one function, carrying the `reads`/`writes`-derived
    /// [`CallEffects`] of every call site in it.
    #[must_use]
    pub fn cdfg_options(&self, func: FuncId) -> CdfgOptions {
        CdfgOptions {
            call_effects: self.call_effects.get(&func).cloned().unwrap_or_default(),
        }
    }

    /// Looks up a region declaration by name.
    #[must_use]
    pub fn region(&self, name: &str) -> Option<&RegionDecl> {
        self.regions.iter().find(|r| r.name == name)
    }
}

/// Compiles Partita-C source to a [`CompiledProgram`].
///
/// # Errors
///
/// Lexical, syntactic and lowering errors.
pub fn compile(src: &str) -> Result<CompiledProgram, FrontendError> {
    let ast = parse(src)?;
    lower(&ast)
}

/// Sample-executes the compiled program with the memory contents of
/// `kernel` as "typical input data", and writes the block-frequency profile
/// back into the program (the paper's profiling step).
///
/// # Errors
///
/// Any execution error from the kernel simulator.
pub fn profile(
    compiled: &mut CompiledProgram,
    kernel: &mut Kernel,
    options: &ExecOptions,
) -> Result<ExecReport, ExecError> {
    let report = Executor::new(&compiled.program).run(kernel, options)?;
    report.apply_profile(&mut compiled.program)?;
    Ok(report)
}

/// Lowers a parsed program.
///
/// # Errors
///
/// [`FrontendError`] for duplicate/unknown names, shape mismatches, missing
/// `main`, or register pressure.
pub fn lower(ast: &Program) -> Result<CompiledProgram, FrontendError> {
    // Check duplicates.
    let mut seen = std::collections::BTreeSet::new();
    for r in &ast.regions {
        if !seen.insert(r.name.clone()) {
            return Err(FrontendError::Duplicate {
                name: r.name.clone(),
            });
        }
    }
    let mut fn_ids: BTreeMap<String, FuncId> = BTreeMap::new();
    for (i, f) in ast.functions.iter().enumerate() {
        if seen.contains(&f.name) || fn_ids.contains_key(&f.name) {
            return Err(FrontendError::Duplicate {
                name: f.name.clone(),
            });
        }
        fn_ids.insert(f.name.clone(), FuncId::from_index(i));
    }
    if !fn_ids.contains_key("main") {
        return Err(FrontendError::NoMain);
    }

    let mut program = MopProgram::new();
    let mut call_effects = BTreeMap::new();
    for decl in &ast.functions {
        let mut ctx = FnLowerer::new(decl, ast, &fn_ids)?;
        let func = ctx.lower()?;
        let id = program
            .add_function(func)
            .map_err(|_| FrontendError::Duplicate {
                name: decl.name.clone(),
            })?;
        call_effects.insert(id, ctx.effects);
    }
    let main = fn_ids["main"];
    program.set_main(main).expect("main id is in range");

    Ok(CompiledProgram {
        program,
        regions: ast.regions.clone(),
        call_effects,
    })
}

fn region_of<'a>(ast: &'a Program, name: &str) -> Option<&'a RegionDecl> {
    ast.regions.iter().find(|r| r.name == name)
}

fn mem_region(r: &RegionDecl) -> MemRegion {
    let space = match r.space {
        RegionSpace::X => MemSpace::X,
        RegionSpace::Y => MemSpace::Y,
    };
    MemRegion::new(space, r.base, r.len)
}

struct FnLowerer<'a> {
    decl: &'a FnDecl,
    ast: &'a Program,
    fn_ids: &'a BTreeMap<String, FuncId>,
    func: Function,
    block: BlockId,
    vars: BTreeMap<String, Reg>,
    scratch_used: [bool; (SCRATCH_END - SCRATCH_BASE) as usize],
    effects: BTreeMap<MopId, CallEffects>,
}

impl<'a> FnLowerer<'a> {
    fn new(
        decl: &'a FnDecl,
        ast: &'a Program,
        fn_ids: &'a BTreeMap<String, FuncId>,
    ) -> Result<FnLowerer<'a>, FrontendError> {
        let mut func = Function::new(&decl.name);
        let block = func.add_block();
        Ok(FnLowerer {
            decl,
            ast,
            fn_ids,
            func,
            block,
            vars: BTreeMap::new(),
            scratch_used: [false; (SCRATCH_END - SCRATCH_BASE) as usize],
            effects: BTreeMap::new(),
        })
    }

    fn lower(&mut self) -> Result<Function, FrontendError> {
        let body = self.decl.body.clone();
        self.stmts(&body)?;
        // Implicit terminator.
        let term = if self.decl.name == "main" {
            Mop::halt()
        } else {
            Mop::ret()
        };
        self.push(term);
        self.func.compute_edges();
        Ok(std::mem::replace(&mut self.func, Function::new("")))
    }

    fn push(&mut self, mop: Mop) -> MopId {
        self.func.push_mop(self.block, mop)
    }

    fn alloc_scratch(&mut self) -> Result<Reg, FrontendError> {
        match self.scratch_used.iter().position(|used| !used) {
            Some(i) => {
                self.scratch_used[i] = true;
                Ok(Reg(SCRATCH_BASE + i as u8))
            }
            None => Err(FrontendError::RegisterPressure {
                func: self.decl.name.clone(),
            }),
        }
    }

    fn free(&mut self, reg: Reg, is_scratch: bool) {
        if is_scratch {
            let i = usize::from(reg.0 - SCRATCH_BASE);
            debug_assert!(self.scratch_used[i], "double free of scratch {reg}");
            self.scratch_used[i] = false;
        }
    }

    fn var(&self, name: &str) -> Result<Reg, FrontendError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| FrontendError::UnknownIdent {
                name: name.to_owned(),
            })
    }

    fn define_var(&mut self, name: &str) -> Result<Reg, FrontendError> {
        if let Some(&r) = self.vars.get(name) {
            return Ok(r);
        }
        let idx = self.vars.len();
        if idx >= usize::from(SCRATCH_BASE) {
            return Err(FrontendError::RegisterPressure {
                func: self.decl.name.clone(),
            });
        }
        let r = Reg(idx as u8);
        self.vars.insert(name.to_owned(), r);
        Ok(r)
    }

    fn stmts(&mut self, stmts: &[Stmt]) -> Result<(), FrontendError> {
        for s in stmts {
            self.stmt(s)?;
        }
        Ok(())
    }

    fn stmt(&mut self, stmt: &Stmt) -> Result<(), FrontendError> {
        match stmt {
            Stmt::Let(name, value) | Stmt::Assign(name, value) => {
                if matches!(stmt, Stmt::Assign(..)) && !self.vars.contains_key(name) {
                    return Err(FrontendError::UnknownIdent { name: name.clone() });
                }
                let (src, s) = self.expr(value)?;
                let dst = self.define_var(name)?;
                if src != dst {
                    self.push(Mop::mov(dst, src));
                }
                self.free(src, s);
                Ok(())
            }
            Stmt::Store(name, index, value) => {
                let region = region_of(self.ast, name)
                    .ok_or_else(|| FrontendError::UnknownIdent { name: name.clone() })?
                    .clone();
                let (val, vs) = self.expr(value)?;
                let (addr, as_) = self.expr(index)?;
                let tmp = self.alloc_scratch()?;
                self.push(Mop::alu(
                    AluOp::Add,
                    tmp,
                    addr,
                    Operand::Imm(region.base as i32),
                ));
                let agu = match region.space {
                    RegionSpace::X => AGU_X,
                    RegionSpace::Y => AGU_Y,
                };
                self.push(Mop::agu_from_reg(agu, tmp));
                match region.space {
                    RegionSpace::X => self.push(Mop::store_x(val, agu)),
                    RegionSpace::Y => self.push(Mop::store_y(val, agu)),
                };
                self.free(tmp, true);
                self.free(addr, as_);
                self.free(val, vs);
                Ok(())
            }
            Stmt::Call(name) => {
                let callee = self
                    .fn_ids
                    .get(name)
                    .copied()
                    .ok_or_else(|| FrontendError::UnknownFunction { name: name.clone() })?;
                let mop = self.push(Mop::call(callee));
                // Record the callee's declared memory effects at this site.
                let callee_decl = &self.ast.functions[callee.index()];
                let mut eff = CallEffects::default();
                for r in &callee_decl.reads {
                    let region = region_of(self.ast, r)
                        .ok_or_else(|| FrontendError::UnknownIdent { name: r.clone() })?;
                    eff.reads.push(mem_region(region));
                }
                for w in &callee_decl.writes {
                    let region = region_of(self.ast, w)
                        .ok_or_else(|| FrontendError::UnknownIdent { name: w.clone() })?;
                    eff.writes.push(mem_region(region));
                }
                self.effects.insert(mop, eff);
                Ok(())
            }
            Stmt::If(cond, then_body, else_body) => {
                let (c, cs) = self.expr(cond)?;
                let then_b = self.func.add_block();
                let else_b = self.func.add_block();
                let join_b = self.func.add_block();
                self.push(Mop::branch_nz(c, then_b, else_b));
                self.free(c, cs);
                self.block = then_b;
                self.stmts(then_body)?;
                self.push(Mop::jump(join_b));
                self.block = else_b;
                self.stmts(else_body)?;
                self.push(Mop::jump(join_b));
                self.block = join_b;
                Ok(())
            }
            Stmt::While(cond, body) => {
                let cond_b = self.func.add_block();
                let body_b = self.func.add_block();
                let exit_b = self.func.add_block();
                self.push(Mop::jump(cond_b));
                self.block = cond_b;
                let (c, cs) = self.expr(cond)?;
                self.push(Mop::branch_nz(c, body_b, exit_b));
                self.free(c, cs);
                self.block = body_b;
                self.stmts(body)?;
                self.push(Mop::jump(cond_b));
                self.block = exit_b;
                Ok(())
            }
            Stmt::Return => {
                let term = if self.decl.name == "main" {
                    Mop::halt()
                } else {
                    Mop::ret()
                };
                self.push(term);
                // Anything after a return lands in a fresh (unreachable) block.
                self.block = self.func.add_block();
                Ok(())
            }
        }
    }

    /// Lowers an expression; returns the result register and whether it is a
    /// scratch register that the caller must free.
    fn expr(&mut self, e: &Expr) -> Result<(Reg, bool), FrontendError> {
        match e {
            Expr::Int(v) => {
                let r = self.alloc_scratch()?;
                self.push(Mop::load_imm(r, *v));
                Ok((r, true))
            }
            Expr::Var(name) => Ok((self.var(name)?, false)),
            Expr::Index(name, index) => {
                let region = region_of(self.ast, name)
                    .ok_or_else(|| FrontendError::UnknownIdent { name: name.clone() })?
                    .clone();
                let (idx, is) = self.expr(index)?;
                let addr = self.alloc_scratch()?;
                self.push(Mop::alu(
                    AluOp::Add,
                    addr,
                    idx,
                    Operand::Imm(region.base as i32),
                ));
                let agu = match region.space {
                    RegionSpace::X => AGU_X,
                    RegionSpace::Y => AGU_Y,
                };
                self.push(Mop::agu_from_reg(agu, addr));
                // Reuse the address scratch for the loaded value.
                match region.space {
                    RegionSpace::X => self.push(Mop::load_x(addr, agu)),
                    RegionSpace::Y => self.push(Mop::load_y(addr, agu)),
                };
                self.free(idx, is);
                // `addr` now holds the value; it remains allocated... but it
                // was allocated after idx, so the out-of-order free above is
                // only safe because we free idx *after* addr stays live.
                Ok((addr, true))
            }
            Expr::Un(op, inner) => {
                let (x, xs) = self.expr(inner)?;
                let r = self.alloc_scratch()?;
                match op {
                    UnOp::Neg => self.push(Mop::alu(AluOp::Sub, r, Operand::Imm(0), x)),
                    UnOp::Not => self.push(Mop::alu(AluOp::CmpEq, r, x, Operand::Imm(0))),
                };
                self.free(x, xs);
                Ok((r, true))
            }
            Expr::Bin(op, lhs, rhs) => {
                let (a, asc) = self.expr(lhs)?;
                let (b, bsc) = self.expr(rhs)?;
                let (alu, swap, negate) = match op {
                    BinOp::Add => (AluOp::Add, false, false),
                    BinOp::Sub => (AluOp::Sub, false, false),
                    BinOp::Mul => (AluOp::Mul, false, false),
                    BinOp::Div => (AluOp::Div, false, false),
                    BinOp::Rem => (AluOp::Rem, false, false),
                    BinOp::And | BinOp::LogicAnd => (AluOp::And, false, false),
                    BinOp::Or | BinOp::LogicOr => (AluOp::Or, false, false),
                    BinOp::Xor => (AluOp::Xor, false, false),
                    BinOp::Shl => (AluOp::Shl, false, false),
                    BinOp::Shr => (AluOp::Shr, false, false),
                    BinOp::Eq => (AluOp::CmpEq, false, false),
                    BinOp::Ne => (AluOp::CmpEq, false, true),
                    BinOp::Lt => (AluOp::CmpLt, false, false),
                    BinOp::Ge => (AluOp::CmpLt, false, true),
                    BinOp::Gt => (AluOp::CmpLt, true, false),
                    BinOp::Le => (AluOp::CmpLt, true, true),
                };
                // Normalise logical operands to 0/1 first.
                let (a, asc, b, bsc) = if matches!(op, BinOp::LogicAnd | BinOp::LogicOr) {
                    let na = self.normalise_bool(a, asc)?;
                    let nb = self.normalise_bool(b, bsc)?;
                    (na, true, nb, true)
                } else {
                    (a, asc, b, bsc)
                };
                let (x, y) = if swap { (b, a) } else { (a, b) };
                // Free operands, then allocate the result (the ALU reads its
                // operands before writing, so aliasing the result register
                // with a freed operand slot is safe).
                self.free(b, bsc);
                self.free(a, asc);
                let r = self.alloc_scratch()?;
                self.push(Mop::alu(alu, r, x, y));
                if negate {
                    self.push(Mop::alu(AluOp::Xor, r, r, Operand::Imm(1)));
                }
                Ok((r, true))
            }
        }
    }

    /// Produces `1` if the register is non-zero, `0` otherwise, in a fresh
    /// scratch register, freeing the input.
    fn normalise_bool(&mut self, r: Reg, is_scratch: bool) -> Result<Reg, FrontendError> {
        let out = self.alloc_scratch()?;
        self.push(Mop::alu(AluOp::CmpEq, out, r, Operand::Imm(0)));
        self.push(Mop::alu(AluOp::Xor, out, out, Operand::Imm(1)));
        self.free(r, is_scratch);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_asip::{CycleModel, ExecOptions};

    fn run(src: &str) -> (CompiledProgram, Kernel) {
        let mut compiled = compile(src).expect("compiles");
        let mut kernel = Kernel::new(256, 256);
        let opts = ExecOptions {
            cycle_model: CycleModel::PerMop,
            ..ExecOptions::default()
        };
        profile(&mut compiled, &mut kernel, &opts).expect("executes");
        (compiled, kernel)
    }

    #[test]
    fn arithmetic_to_memory() {
        let (_, kernel) =
            run("xmem out[4] @ 0; fn main() { out[0] = 2 + 3 * 4; out[1] = (2 + 3) * 4; }");
        assert_eq!(kernel.xdm.read(0).unwrap(), 14);
        assert_eq!(kernel.xdm.read(1).unwrap(), 20);
    }

    #[test]
    fn comparisons_and_logic() {
        let (_, kernel) = run("ymem out[8] @ 0; fn main() {
                out[0] = 1 < 2; out[1] = 2 <= 2; out[2] = 3 > 4; out[3] = 3 >= 4;
                out[4] = 5 == 5; out[5] = 5 != 5; out[6] = 1 && 0; out[7] = 2 || 0;
            }");
        let got = kernel.ydm.dump(0, 8).unwrap();
        assert_eq!(got, vec![1, 1, 0, 0, 1, 0, 0, 1]);
    }

    #[test]
    fn division_and_remainder() {
        let (_, kernel) = run("xmem o[4] @ 0; fn main() {
                o[0] = 17 / 5; o[1] = 17 % 5; o[2] = -17 / 5; o[3] = 7 / 0;
            }");
        assert_eq!(kernel.xdm.dump(0, 4).unwrap(), vec![3, 2, -3, 0]);
    }

    #[test]
    fn unary_ops() {
        let (_, kernel) = run("xmem o[2] @ 0; fn main() { o[0] = -7; o[1] = !0 + !9; }");
        assert_eq!(kernel.xdm.read(0).unwrap(), -7);
        assert_eq!(kernel.xdm.read(1).unwrap(), 1);
    }

    #[test]
    fn while_loop_sums() {
        let (_, kernel) = run("xmem data[8] @ 0; ymem out[1] @ 0;
             fn main() {
                 let i = 0;
                 while (i < 8) { data[i] = i * i; i = i + 1; }
                 let acc = 0; i = 0;
                 while (i < 8) { acc = acc + data[i]; i = i + 1; }
                 out[0] = acc;
             }");
        assert_eq!(kernel.ydm.read(0).unwrap(), (0..8).map(|i| i * i).sum());
    }

    #[test]
    fn if_else_branches() {
        let (_, kernel) = run("xmem o[2] @ 0; fn main() {
                if (1 < 2) { o[0] = 10; } else { o[0] = 20; }
                if (2 < 1) { o[1] = 10; } else { o[1] = 20; }
            }");
        assert_eq!(kernel.xdm.dump(0, 2).unwrap(), vec![10, 20]);
    }

    #[test]
    fn calls_with_effects() {
        let src = "xmem a[4] @ 0; ymem b[4] @ 0;
            fn fill() writes a { let i = 0; while (i < 4) { a[i] = i + 1; i = i + 1; } }
            fn copy() reads a writes b { let i = 0; while (i < 4) { b[i] = a[i]; i = i + 1; } }
            fn main() { fill(); copy(); }";
        let (compiled, kernel) = run(src);
        assert_eq!(kernel.ydm.dump(0, 4).unwrap(), vec![1, 2, 3, 4]);
        // Call effects were recorded for main's two calls.
        let main = compiled.program.function_by_name("main").unwrap();
        let opts = compiled.cdfg_options(main);
        assert_eq!(opts.call_effects.len(), 2);
        let effs: Vec<_> = opts.call_effects.values().collect();
        assert!(effs[0].reads.is_empty());
        assert_eq!(effs[1].reads.len(), 1);
    }

    #[test]
    fn profile_counts_loop_blocks() {
        let (compiled, _) =
            run("xmem d[1] @ 0; fn main() { let i = 0; while (i < 5) { d[0] = i; i = i + 1; } }");
        let main = compiled.program.function_by_name("main").unwrap();
        let f = compiled.program.function(main).unwrap();
        // Some block ran exactly 5 times (the loop body).
        assert!(f.blocks().iter().any(|b| b.exec_count() == 5));
    }

    #[test]
    fn early_return() {
        let (_, kernel) = run("xmem o[1] @ 0;
             fn f() writes o { o[0] = 1; return; }
             fn main() { f(); if (o[0] == 1) { o[0] = 42; } }");
        assert_eq!(kernel.xdm.read(0).unwrap(), 42);
    }

    #[test]
    fn errors() {
        assert!(matches!(compile("fn f() { }"), Err(FrontendError::NoMain)));
        assert!(matches!(
            compile("fn main() { g(); }"),
            Err(FrontendError::UnknownFunction { .. })
        ));
        assert!(matches!(
            compile("fn main() { x = 1; }"),
            Err(FrontendError::UnknownIdent { .. })
        ));
        assert!(matches!(
            compile("fn main() { } fn main() { }"),
            Err(FrontendError::Duplicate { .. })
        ));
        assert!(matches!(
            compile("xmem a[1] @ 0; xmem a[1] @ 2; fn main() { }"),
            Err(FrontendError::Duplicate { .. })
        ));
    }

    #[test]
    fn shadowing_regions_by_scalars_is_rejected() {
        assert!(matches!(
            compile("xmem a[1] @ 0; fn a() { } fn main() { }"),
            Err(FrontendError::Duplicate { .. })
        ));
    }

    #[test]
    fn deep_expressions_hit_register_pressure() {
        // 8 nested additions of literals exceed the 6-deep scratch pool.
        let src = "fn main() { let x = 1 + (1 + (1 + (1 + (1 + (1 + (1 + (1 + 1))))))); }";
        assert!(matches!(
            compile(src),
            Err(FrontendError::RegisterPressure { .. })
        ));
    }
}
