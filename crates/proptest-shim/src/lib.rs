//! Offline stand-in for the `proptest` crate.
//!
//! The build environment for this repository cannot reach crates.io, so the
//! workspace routes the `proptest` dev-dependency to this crate (see the
//! root `Cargo.toml`). It implements the subset of the proptest API that the
//! partita test-suites use: the [`proptest!`] harness macro, [`Strategy`]
//! with `prop_map`/`prop_flat_map`/`boxed`, range and tuple strategies,
//! [`Just`], [`prop_oneof!`], [`collection::vec`], [`any`], and the
//! `prop_assert*` macros.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (via the
//!   assertion message) but is not minimised.
//! * **Deterministic seeding.** Each test derives its RNG seed from the test
//!   function's name, so runs are reproducible without a `proptest-regressions`
//!   file. Set `PROPTEST_RNG_SEED` to explore a different stream.
//! * The default case count is 64 (upstream: 256); every suite in this
//!   repository sets its own count explicitly via
//!   [`ProptestConfig::with_cases`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Re-exports that mirror `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Arbitrary,
        BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };
}

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic SplitMix64 generator used to produce test cases.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from an explicit seed.
    #[must_use]
    pub fn from_seed(seed: u64) -> TestRng {
        TestRng { state: seed }
    }

    /// Derives a per-test seed from the test name (stable across runs), or
    /// from `PROPTEST_RNG_SEED` when set.
    #[must_use]
    pub fn for_test(name: &str) -> TestRng {
        if let Ok(s) = std::env::var("PROPTEST_RNG_SEED") {
            if let Ok(seed) = s.trim().parse::<u64>() {
                return TestRng::from_seed(seed ^ fnv1a(name));
            }
        }
        TestRng::from_seed(0x0DAC_1999_u64 ^ fnv1a(name))
    }

    /// Next 64-bit value of the stream.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw below `n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform draw in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x1_0000_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Strategy core
// ---------------------------------------------------------------------------

/// A generator of random values of one type.
///
/// Mirrors `proptest::strategy::Strategy` minus shrinking: a strategy only
/// needs to produce fresh values.
pub trait Strategy {
    /// The type of the generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Generates an intermediate value, then a value from the strategy `f`
    /// builds out of it.
    fn prop_flat_map<S, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S: Strategy,
        F: Fn(Self::Value) -> S,
    {
        FlatMap { inner: self, f }
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// A type-erased strategy.
pub struct BoxedStrategy<V>(Box<dyn Strategy<Value = V>>);

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        self.0.new_value(rng)
    }
}

impl<V> fmt::Debug for BoxedStrategy<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("BoxedStrategy")
    }
}

/// The result of [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn new_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.new_value(rng))
    }
}

/// The result of [`Strategy::prop_flat_map`].
#[derive(Debug, Clone)]
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn new_value(&self, rng: &mut TestRng) -> S2::Value {
        (self.f)(self.inner.new_value(rng)).new_value(rng)
    }
}

/// Always generates a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn new_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between type-erased alternatives (built by [`prop_oneof!`]).
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union over `options` (must be non-empty).
    #[must_use]
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Union<V> {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn new_value(&self, rng: &mut TestRng) -> V {
        let idx = rng.below(self.options.len() as u64) as usize;
        self.options[idx].new_value(rng)
    }
}

impl<V> fmt::Debug for Union<V> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Union({} arms)", self.options.len())
    }
}

// Integer range strategies.
macro_rules! impl_int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u128;
                let draw = (rng.next_u64() as u128) % span;
                (self.start as i128 + draw as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start() <= self.end(), "empty range strategy");
                let span = (*self.end() as i128 - *self.start() as i128) as u128 + 1;
                let draw = ((rng.next_u64() as u128) << 64 | rng.next_u64() as u128) % span;
                (*self.start() as i128 + draw as i128) as $t
            }
        }
    )*};
}
impl_int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

// Float range strategies (uniform; excludes the end like upstream).
macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn new_value(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let unit = rng.unit_f64() as $t;
                self.start + unit * (self.end - self.start)
            }
        }
    )*};
}
impl_float_range_strategy!(f32, f64);

// Tuple strategies: generating a tuple generates each component in order.
macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn new_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($(ref $name,)+) = *self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

// ---------------------------------------------------------------------------
// any / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t { rng.next_u64() as $t }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn new_value(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T` (mirrors `proptest::prelude::any`).
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Boolean strategies (mirrors `proptest::bool`).
pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy for an arbitrary boolean.
    #[derive(Debug, Clone, Copy)]
    pub struct BoolAny;

    impl Strategy for BoolAny {
        type Value = bool;
        fn new_value(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// An arbitrary boolean (`prop::bool::ANY`).
    pub const ANY: BoolAny = BoolAny;
}

// ---------------------------------------------------------------------------
// Collections
// ---------------------------------------------------------------------------

/// Collection strategies (mirrors `proptest::collection`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length specification accepted by [`vec()`].
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize, // inclusive
    }

    /// Conversion into a [`SizeRange`].
    pub trait IntoSizeRange {
        /// Converts to the `[min, max]` length bounds.
        fn into_size_range(self) -> SizeRange;
    }

    impl IntoSizeRange for usize {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                min: self,
                max: self,
            }
        }
    }
    impl IntoSizeRange for Range<usize> {
        fn into_size_range(self) -> SizeRange {
            assert!(self.start < self.end, "empty vec size range");
            SizeRange {
                min: self.start,
                max: self.end - 1,
            }
        }
    }
    impl IntoSizeRange for RangeInclusive<usize> {
        fn into_size_range(self) -> SizeRange {
            SizeRange {
                min: *self.start(),
                max: *self.end(),
            }
        }
    }

    /// The strategy returned by [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + rng.below(span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }

    /// Generates vectors whose elements come from `element` and whose length
    /// lies in `size`.
    pub fn vec<S: Strategy>(element: S, size: impl IntoSizeRange) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into_size_range(),
        }
    }
}

// ---------------------------------------------------------------------------
// Test harness
// ---------------------------------------------------------------------------

/// Per-suite configuration (mirrors `proptest::test_runner::Config`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    #[must_use]
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property assertion.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: impl Into<String>) -> TestCaseError {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $cfg:expr;
     $( $(#[$meta:meta])* fn $name:ident( $($arg:pat in $strat:expr),+ $(,)? ) $body:block )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let __config: $crate::ProptestConfig = $cfg;
                let mut __rng = $crate::TestRng::for_test(concat!(module_path!(), "::", stringify!($name)));
                let __strategy = ( $( $strat, )+ );
                for __case in 0..__config.cases {
                    let __values = $crate::Strategy::new_value(&__strategy, &mut __rng);
                    let __shown = format!("{:?}", __values);
                    let ( $( $arg, )+ ) = __values;
                    let __result: ::core::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::core::result::Result::Ok(()) })();
                    if let ::core::result::Result::Err(e) = __result {
                        panic!(
                            "property `{}` failed at case {}/{}: {}\n    inputs: {}",
                            stringify!($name), __case + 1, __config.cases, e, __shown,
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), __l, __r,
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+), __l, __r,
        );
    }};
}

/// Asserts inequality inside a [`proptest!`] body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            __l,
        );
    }};
}

/// Composes a named strategy function (tiny subset of upstream's macro).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![ $( $crate::Strategy::boxed($strat) ),+ ])
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_cover_and_stay_in_bounds() {
        let mut rng = TestRng::from_seed(1);
        let s = 0u8..8;
        let mut seen = [false; 8];
        for _ in 0..400 {
            seen[s.new_value(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&b| b));
        let inc = 2usize..=5;
        for _ in 0..100 {
            let v = inc.new_value(&mut rng);
            assert!((2..=5).contains(&v));
        }
        let f = -1.5f64..2.5;
        for _ in 0..100 {
            let v = f.new_value(&mut rng);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn map_flat_map_union_vec_compose() {
        let mut rng = TestRng::from_seed(2);
        let strat = (1usize..=4).prop_flat_map(|n| {
            (
                crate::collection::vec(0u32..10, n),
                prop_oneof![Just(-1i32), Just(1i32)],
            )
                .prop_map(|(v, sign)| (v.len(), sign))
        });
        for _ in 0..200 {
            let (len, sign) = strat.new_value(&mut rng);
            assert!((1..=4).contains(&len));
            assert!(sign == -1 || sign == 1);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn harness_reaches_body(x in 0u32..100, ys in crate::collection::vec(0u8..4, 0..6)) {
            prop_assert!(x < 100);
            prop_assert!(ys.len() < 6);
            prop_assert_eq!(x, x);
            prop_assert_ne!(x as i64, -1i64);
        }
    }

    #[test]
    fn seeds_differ_per_test_name() {
        let mut a = TestRng::for_test("a");
        let mut b = TestRng::for_test("b");
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
