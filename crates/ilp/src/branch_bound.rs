//! Best-first branch-and-bound over the simplex LP relaxation, with an
//! optional multi-threaded search.
//!
//! The parallel search (see [`BranchBound::with_threads`]) runs a pool of
//! workers over [`std::thread::scope`]. Workers share a best-bound node pool
//! (a mutex-guarded heap other workers steal from) while diving depth-first
//! on one child of each expansion, and prune against a shared incumbent
//! whose score is mirrored in an atomic for lock-free reads. Each worker
//! owns a [`SimplexScratch`] so node LPs never re-allocate the tableau.
//!
//! # Determinism contract
//!
//! The reported solution is independent of thread count and interleaving:
//! nodes are pruned only when their bound is *strictly* worse than the
//! incumbent (ties stay alive), and the incumbent accepts an equal-objective
//! point only when its assignment is lexicographically smaller. The search
//! therefore always converges to the lexicographically smallest optimal
//! assignment, at 1 thread or 8. Budget-exhausted runs report whatever
//! incumbent was found in time and are exempt from the contract (they are
//! flagged via [`Termination`], never silently).

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering as AtomicOrdering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

use crate::cuts::CutSeparator;
use crate::simplex::{
    solve_with_basis, solve_with_bounds, solve_with_bounds_scratch, Basis, SimplexOps,
    SimplexOptions, SimplexScratch,
};
use crate::{IlpError, IlpSolution, Model, Sense, VarId};

const INT_TOL: f64 = 1e-6;

/// Tolerance under which two objective values count as tied (and pruning
/// must keep the node alive for the lexicographic tie-break).
const TIE_TOL: f64 = 1e-9;

/// Cap on root-probing LP re-solves; bounds the fixed cost probing adds on
/// models with many binaries.
const MAX_ROOT_PROBES: usize = 32;

/// Branch-and-bound solver for models with binary variables.
///
/// Nodes are explored best-bound-first; branching picks the most fractional
/// binary of the node's LP optimum. Search effort is bounded by a node budget
/// and an optional wall-clock deadline; [`BranchBound::run`] reports budget
/// exhaustion as a [`Termination`] alongside the best incumbent found so far
/// instead of discarding it. [`BranchBound::with_threads`] parallelises the
/// search without giving up reproducibility (see the module docs).
///
/// # Example
///
/// ```
/// use partita_ilp::{Model, Sense, Relation, BranchBound};
/// # fn main() -> Result<(), partita_ilp::IlpError> {
/// // Knapsack: max 6a + 5b + 4c, 5a + 4b + 3c <= 8.
/// let mut m = Model::new(Sense::Maximize);
/// let a = m.add_binary("a");
/// let b = m.add_binary("b");
/// let c = m.add_binary("c");
/// m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)]);
/// m.add_constraint([(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 8.0)?;
/// let s = BranchBound::new().solve(&m)?;
/// assert_eq!(s.objective.round() as i64, 10); // a + c
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BranchBound {
    max_nodes: usize,
    deadline: Option<Duration>,
    simplex: SimplexOptions,
    threads: usize,
    root_basis: Option<Arc<Basis>>,
    cancel: Option<Arc<AtomicBool>>,
    shared_bound: Option<Arc<SharedBound>>,
    node_cuts: Option<Arc<CutSeparator>>,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            max_nodes: 200_000,
            deadline: None,
            simplex: SimplexOptions::default(),
            threads: 1,
            root_basis: None,
            cancel: None,
            shared_bound: None,
            node_cuts: None,
        }
    }
}

/// A cross-solver objective bound: the best *feasible-point* score any
/// cooperating solver has published, mirrored in an atomic for lock-free
/// reads.
///
/// Racing solvers (the portfolio mode in `partita-core`) share one
/// `SharedBound` so an incumbent found by any racer tightens everyone's
/// pruning. Scores are normalised minimisation objectives (see
/// [`BranchBound`]'s determinism contract); because pruning keeps ties
/// alive, pruning against another racer's feasible score can never discard
/// the lexicographically smallest optimum — each solver that exhausts its
/// tree still reports the exact same solution it would have found alone.
///
/// # Example
///
/// ```
/// use partita_ilp::SharedBound;
/// let bound = SharedBound::new();
/// assert_eq!(bound.score(), f64::INFINITY);
/// bound.publish(42.0);
/// bound.publish(99.0); // Worse scores never loosen the bound.
/// assert_eq!(bound.score(), 42.0);
/// ```
#[derive(Debug)]
pub struct SharedBound {
    bits: AtomicU64,
}

impl Default for SharedBound {
    fn default() -> Self {
        SharedBound::new()
    }
}

impl SharedBound {
    /// Creates an empty bound (`+∞`: nothing published yet).
    #[must_use]
    pub fn new() -> SharedBound {
        SharedBound {
            bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// The best published score, `+∞` when none.
    #[must_use]
    pub fn score(&self) -> f64 {
        f64::from_bits(self.bits.load(AtomicOrdering::Relaxed))
    }

    /// Publishes a feasible-point score; only improvements are kept.
    pub fn publish(&self, score: f64) {
        if !score.is_finite() {
            return;
        }
        let mut current = self.bits.load(AtomicOrdering::Relaxed);
        loop {
            if score >= f64::from_bits(current) {
                return;
            }
            match self.bits.compare_exchange_weak(
                current,
                score.to_bits(),
                AtomicOrdering::Relaxed,
                AtomicOrdering::Relaxed,
            ) {
                Ok(_) => return,
                Err(now) => current = now,
            }
        }
    }
}

/// Search-effort counters of one worker thread (the serial search reports a
/// single worker).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkerStats {
    /// Nodes whose LP relaxation this worker solved.
    pub nodes_explored: usize,
    /// Nodes this worker pruned by bound.
    pub nodes_pruned: usize,
    /// Incumbent installations performed by this worker.
    pub incumbent_updates: usize,
    /// Simplex pivots across this worker's node LPs.
    pub simplex_iterations: usize,
    /// Nodes this worker took from the shared pool instead of its local
    /// dive stack — the work-stealing traffic (0 for the serial search,
    /// which has no pool).
    pub steals: usize,
    /// Deterministic simplex per-op counters (pivot breakdown, tableau
    /// builds, scratch-reuse hits) accumulated by this worker's
    /// [`SimplexScratch`].
    pub simplex_ops: SimplexOps,
}

impl WorkerStats {
    fn absorb(&mut self, other: WorkerStats) {
        self.nodes_explored += other.nodes_explored;
        self.nodes_pruned += other.nodes_pruned;
        self.incumbent_updates += other.incumbent_updates;
        self.simplex_iterations += other.simplex_iterations;
        self.steals += other.steals;
        self.simplex_ops.merge(other.simplex_ops);
    }
}

/// Statistics of a branch-and-bound run.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BranchBoundStats {
    /// Nodes whose LP relaxation was solved (all workers).
    pub nodes_explored: usize,
    /// Nodes pruned by bound (all workers).
    pub nodes_pruned: usize,
    /// Times the incumbent improved during the search (excludes a warm-start
    /// incumbent supplied by the caller).
    pub incumbent_updates: usize,
    /// Simplex pivots summed over every node LP solved.
    pub simplex_iterations: usize,
    /// Nodes taken from the shared pool rather than a local dive stack,
    /// summed over all workers (0 for the serial search).
    pub steals: usize,
    /// Whether a caller-supplied warm start was feasible and seeded the
    /// incumbent.
    pub warm_start_accepted: bool,
    /// Binaries permanently fixed by reduced-cost probing at the root
    /// (requires a warm-start incumbent).
    pub vars_fixed: usize,
    /// Worker threads that ran the search (1 for the serial path).
    pub threads: usize,
    /// Whether a caller-supplied root basis was installed and repaired by
    /// the dual simplex (`false` when no basis was supplied or it fell back
    /// to the cold two-phase solve).
    pub basis_reused: bool,
    /// Deterministic simplex per-op counters summed over every worker (the
    /// root's LP and probing work included).
    pub simplex_ops: SimplexOps,
    /// Per-worker breakdown of the aggregate counters above. Root-node work
    /// (the root LP and probing) is attributed to worker 0.
    pub per_worker: Vec<WorkerStats>,
}

impl BranchBoundStats {
    fn from_workers(
        root: WorkerStats,
        workers: Vec<WorkerStats>,
        warm_start_accepted: bool,
        vars_fixed: usize,
        basis_reused: bool,
    ) -> BranchBoundStats {
        let mut per_worker = if workers.is_empty() {
            vec![WorkerStats::default()]
        } else {
            workers
        };
        per_worker[0].absorb(root);
        let mut totals = WorkerStats::default();
        for w in &per_worker {
            totals.absorb(*w);
        }
        BranchBoundStats {
            nodes_explored: totals.nodes_explored,
            nodes_pruned: totals.nodes_pruned,
            incumbent_updates: totals.incumbent_updates,
            simplex_iterations: totals.simplex_iterations,
            steals: totals.steals,
            warm_start_accepted,
            vars_fixed,
            threads: per_worker.len(),
            basis_reused,
            simplex_ops: totals.simplex_ops,
            per_worker,
        }
    }
}

/// Why a branch-and-bound run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The search tree was exhausted: the incumbent is proven optimal.
    Optimal,
    /// The node budget ran out first; the incumbent (if any) is feasible but
    /// not proven optimal.
    NodeLimit,
    /// The wall-clock deadline passed first; the incumbent (if any) is
    /// feasible but not proven optimal.
    Deadline,
    /// A cooperating solver asked this run to stop (see
    /// [`BranchBound::with_cancel`]); the incumbent (if any) is feasible
    /// but not proven optimal *by this run*.
    Cancelled,
}

/// Outcome of [`BranchBound::run`]: the best incumbent (if any), why the
/// search stopped, and how much work it did.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchBoundRun {
    /// Best integer-feasible solution found, `None` when the budget ran out
    /// before any incumbent appeared.
    pub solution: Option<IlpSolution>,
    /// Why the search stopped.
    pub termination: Termination,
    /// Search-effort counters.
    pub stats: BranchBoundStats,
    /// The optimal basis of the root LP relaxation, reusable as
    /// [`BranchBound::with_root_basis`] input for the next same-shaped solve
    /// (`None` when the root was infeasible or its basis kept an artificial).
    pub root_basis: Option<Arc<Basis>>,
}

/// One branching decision on the path from the root to a node: variable
/// `var` had its box narrowed to `[lower, upper]`.
#[derive(Debug, Clone, Copy)]
struct BoundFix {
    var: usize,
    lower: f64,
    upper: f64,
}

/// A search node as a bound *delta* against the post-probe root bounds:
/// the branching decisions on the path from the root, in order.
///
/// The old representation carried two full `Vec<f64>` bound vectors per
/// node — two heap allocations and `2n` floats of traffic per expansion,
/// on paths that are almost always a handful of single-variable fixes.
/// Storing the fixes instead makes a node O(depth) and lets
/// [`NodeArena`] recycle the path vectors, so steady-state expansion
/// allocates nothing.
struct Node {
    /// Normalised bound (lower is better).
    score: f64,
    /// Branching fixes relative to the root bounds, applied in order on
    /// reconstruction (later fixes win, which is what branching means).
    path: Vec<BoundFix>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest score on top.
        // `total_cmp` keeps the heap order total even if a NaN score ever
        // slipped in (the old partial_cmp fallback silently equated it).
        other.score.total_cmp(&self.score)
    }
}

/// Per-worker node-reconstruction state: the scratch bound vectors a
/// popped node's path is materialised into, plus a free list that
/// recycles retired path vectors back into branching.
struct NodeArena {
    /// Reconstructed lower bounds of the node being expanded.
    lower: Vec<f64>,
    /// Reconstructed upper bounds of the node being expanded.
    upper: Vec<f64>,
    /// Retired path vectors, reused for new children oldest-capacity
    /// first. Bounded so a worker that closes far more nodes than it
    /// opens cannot hoard memory.
    free: Vec<Vec<BoundFix>>,
}

/// Cap on recycled path vectors held per worker.
const ARENA_FREE_CAP: usize = 64;

impl NodeArena {
    fn new() -> NodeArena {
        NodeArena {
            lower: Vec::new(),
            upper: Vec::new(),
            free: Vec::new(),
        }
    }

    /// Materialises `node`'s bounds into the arena's scratch vectors.
    fn reconstruct(&mut self, base_lower: &[f64], base_upper: &[f64], node: &Node) {
        self.lower.clear();
        self.lower.extend_from_slice(base_lower);
        self.upper.clear();
        self.upper.extend_from_slice(base_upper);
        for fix in &node.path {
            self.lower[fix.var] = fix.lower;
            self.upper[fix.var] = fix.upper;
        }
    }

    /// Hands out a recycled (empty) path vector, or a fresh one.
    fn take_vec(&mut self) -> Vec<BoundFix> {
        self.free.pop().unwrap_or_default()
    }

    /// Returns a closed node's path vector to the free list.
    fn retire(&mut self, mut path: Vec<BoundFix>) {
        if self.free.len() < ARENA_FREE_CAP && path.capacity() > 0 {
            path.clear();
            self.free.push(path);
        }
    }
}

/// `true` when a node with bound `bound` cannot contain a solution that is
/// strictly better than *or tied with* the incumbent. Ties must survive so
/// the lexicographic tie-break is independent of search order.
fn prunable(bound: f64, incumbent_score: f64) -> bool {
    bound > incumbent_score + TIE_TOL
}

/// `true` when `a` is lexicographically smaller than `b` under
/// [`f64::total_cmp`], element by element.
///
/// This is *the* tie-break of the exact-solver determinism contract (see
/// `docs/BACKENDS.md`): every exact backend — branch-and-bound, exhaustive
/// enumeration and the implicit-enumeration backends layered on top of this
/// crate — must report, among equal-objective optima (within `1e-9`), the
/// assignment this predicate ranks smallest. Exported so out-of-crate
/// backends share the identical comparison instead of re-implementing it.
#[must_use]
pub fn lex_less(a: &[f64], b: &[f64]) -> bool {
    for (x, y) in a.iter().zip(b) {
        match x.total_cmp(y) {
            Ordering::Less => return true,
            Ordering::Greater => return false,
            Ordering::Equal => {}
        }
    }
    false
}

/// The best integer-feasible point found so far, keyed by its normalised
/// (minimisation) score with assignment-lexicographic tie-breaking.
struct Incumbent {
    score: f64,
    solution: Option<IlpSolution>,
}

impl Incumbent {
    fn new() -> Incumbent {
        Incumbent {
            score: f64::INFINITY,
            solution: None,
        }
    }

    fn improves(&self, score: f64, values: &[f64]) -> bool {
        match &self.solution {
            None => true,
            Some(sol) => {
                score < self.score - TIE_TOL
                    || (score <= self.score + TIE_TOL && lex_less(values, &sol.values))
            }
        }
    }

    fn install(&mut self, score: f64, objective: f64, values: Vec<f64>) {
        // `min` guards against the stored score drifting upward across
        // repeated lexicographic replacements inside the tie tolerance.
        self.score = self.score.min(score);
        self.solution = Some(IlpSolution { objective, values });
    }
}

/// How the search consults and updates the incumbent: a plain struct on the
/// serial path, a mutex + atomic score mirror when workers share it.
trait IncumbentView {
    /// Current best normalised score (may be slightly stale on the shared
    /// path, which only ever under-prunes).
    fn current_score(&self) -> f64;
    /// Offers a feasible point (`score` = normalised objective); returns
    /// `true` when it was installed.
    fn offer(&mut self, score: f64, objective: f64, values: Vec<f64>) -> bool;
}

impl IncumbentView for Incumbent {
    fn current_score(&self) -> f64 {
        self.score
    }

    fn offer(&mut self, score: f64, objective: f64, values: Vec<f64>) -> bool {
        if self.improves(score, &values) {
            self.install(score, objective, values);
            true
        } else {
            false
        }
    }
}

/// The shared incumbent of the parallel search: solution under a mutex, the
/// score mirrored into an atomic so pruning never takes the lock.
struct SharedIncumbent {
    cell: Mutex<Incumbent>,
    score_bits: AtomicU64,
}

impl SharedIncumbent {
    fn new(seed: Incumbent) -> SharedIncumbent {
        let bits = seed.score.to_bits();
        SharedIncumbent {
            cell: Mutex::new(seed),
            score_bits: AtomicU64::new(bits),
        }
    }
}

impl IncumbentView for &SharedIncumbent {
    fn current_score(&self) -> f64 {
        f64::from_bits(self.score_bits.load(AtomicOrdering::Relaxed))
    }

    fn offer(&mut self, score: f64, objective: f64, values: Vec<f64>) -> bool {
        // Cheap lock-free reject for the common case of a dominated point.
        if score > self.current_score() + TIE_TOL {
            return false;
        }
        let mut cell = self.cell.lock().expect("incumbent lock");
        if cell.improves(score, &values) {
            cell.install(score, objective, values);
            self.score_bits
                .store(cell.score.to_bits(), AtomicOrdering::Relaxed);
            true
        } else {
            false
        }
    }
}

/// Couples a run's own incumbent with an optional cross-solver
/// [`SharedBound`]: pruning reads the tighter of the two, installations are
/// re-published for the other racers. The underlying incumbent never
/// adopts *points* from outside — only scores — so an exhausted run still
/// reports its own lexicographically smallest optimum.
struct BoundView<'a> {
    inner: &'a mut dyn IncumbentView,
    external: Option<&'a SharedBound>,
}

impl IncumbentView for BoundView<'_> {
    fn current_score(&self) -> f64 {
        let own = self.inner.current_score();
        match self.external {
            Some(ext) => own.min(ext.score()),
            None => own,
        }
    }

    fn offer(&mut self, score: f64, objective: f64, values: Vec<f64>) -> bool {
        let installed = self.inner.offer(score, objective, values);
        if installed {
            if let Some(ext) = self.external {
                ext.publish(score);
            }
        }
        installed
    }
}

/// Immutable per-run search context shared by the root, the serial loop and
/// every parallel worker.
struct SearchCtx<'a> {
    model: &'a Model,
    binaries: &'a [VarId],
    minimize: bool,
    simplex: SimplexOptions,
    /// Per-node cover-cut separation (see [`BranchBound::with_node_cuts`]).
    cuts: Option<&'a CutSeparator>,
}

impl SearchCtx<'_> {
    fn norm(&self, obj: f64) -> f64 {
        if self.minimize {
            obj
        } else {
            -obj
        }
    }

    /// Rounds the binaries of `values` in place and offers the point when
    /// feasible; returns whether the incumbent improved.
    fn offer_rounded(&self, mut values: Vec<f64>, inc: &mut dyn IncumbentView) -> bool {
        for &v in self.binaries {
            values[v.index()] = values[v.index()].round();
        }
        if !self.model.is_feasible(&values, 1e-6) {
            return false;
        }
        let objective = self.model.objective().eval(&values);
        inc.offer(self.norm(objective), objective, values)
    }

    /// Solves a node's LP and either closes the node (infeasible, pruned or
    /// integer-feasible) or returns the down/up children to enqueue. The
    /// node's bounds are reconstructed from its delta path into `arena`;
    /// closed nodes retire their path vector back into the arena.
    #[allow(clippy::too_many_arguments)]
    fn expand(
        &self,
        scratch: &mut SimplexScratch,
        arena: &mut NodeArena,
        base_lower: &[f64],
        base_upper: &[f64],
        node: Node,
        inc: &mut dyn IncumbentView,
        stats: &mut WorkerStats,
    ) -> Result<Option<(Node, Node)>, IlpError> {
        arena.reconstruct(base_lower, base_upper, &node);
        let lp = match solve_with_bounds_scratch(
            self.model,
            &arena.lower,
            &arena.upper,
            self.simplex,
            scratch,
        ) {
            Ok(lp) => lp,
            Err(IlpError::Infeasible) => {
                arena.retire(node.path);
                return Ok(None);
            }
            Err(e) => return Err(e),
        };
        stats.simplex_iterations += lp.iterations;
        let mut bound = self.norm(lp.objective);
        if prunable(bound, inc.current_score()) {
            stats.nodes_pruned += 1;
            arena.retire(node.path);
            return Ok(None);
        }

        // Per-node cover cuts (opt-in): separate against this node's LP
        // optimum and re-solve with the cuts appended. Cuts never exclude
        // integer points, so the tightened bound is valid for the whole
        // subtree; they are discarded after the node, keeping every node's
        // evaluation independent of search order (and hence deterministic).
        if let Some(sep) = self.cuts {
            let cuts = sep.separate(&lp.values);
            if !cuts.is_empty() {
                let mut patched = self.model.clone();
                for (i, cut) in cuts.iter().enumerate() {
                    cut.apply(&mut patched, format!("node_cover_{i}"))?;
                }
                match solve_with_bounds(&patched, &arena.lower, &arena.upper, self.simplex) {
                    Ok(cut_lp) => {
                        stats.simplex_iterations += cut_lp.iterations;
                        bound = bound.max(self.norm(cut_lp.objective));
                    }
                    Err(IlpError::Infeasible) => {
                        stats.nodes_pruned += 1;
                        arena.retire(node.path);
                        return Ok(None);
                    }
                    Err(e) => return Err(e),
                }
                if prunable(bound, inc.current_score()) {
                    stats.nodes_pruned += 1;
                    arena.retire(node.path);
                    return Ok(None);
                }
            }
        }

        // Rounding heuristic: snapping the LP optimum to the nearest
        // integers often yields a feasible incumbent immediately on
        // coverage-style models, which tightens pruning dramatically.
        if self.offer_rounded(lp.values.clone(), inc) {
            stats.incumbent_updates += 1;
        }

        // Branch on the fractional binary with the largest
        // objective×fractionality impact: deciding heavy variables first
        // moves the bound fastest (plain most-fractional branching
        // enumerates plateaus on coverage models).
        let frac = self
            .binaries
            .iter()
            .map(|&v| (v, lp.value(v)))
            .filter(|(_, x)| (x - x.round()).abs() > INT_TOL)
            .max_by(|a, b| {
                let weight = |(v, x): &(VarId, f64)| {
                    let f = (x - x.round()).abs();
                    let c = self.model.objective().coeff(*v).abs().max(1e-6);
                    f * c
                };
                weight(a).total_cmp(&weight(b))
            });

        match frac {
            None => {
                // Integer feasible: snap binaries and record.
                if self.offer_rounded(lp.values, inc) {
                    stats.incumbent_updates += 1;
                }
                arena.retire(node.path);
                Ok(None)
            }
            Some((v, x)) => {
                // Branch down (x = 0) and up (x = 1): each child is the
                // parent's path plus one fix. The up child copies the path
                // into a recycled vector; the down child reuses the
                // parent's vector outright, so steady-state branching
                // allocates nothing.
                let vi = v.index();
                let mut up_path = arena.take_vec();
                up_path.extend_from_slice(&node.path);
                up_path.push(BoundFix {
                    var: vi,
                    lower: x.ceil(),
                    upper: arena.upper[vi],
                });
                let mut down_path = node.path;
                down_path.push(BoundFix {
                    var: vi,
                    lower: arena.lower[vi],
                    upper: x.floor(),
                });
                let down = Node {
                    score: bound,
                    path: down_path,
                };
                let up = Node {
                    score: bound,
                    path: up_path,
                };
                Ok(Some((down, up)))
            }
        }
    }
}

/// State of the shared node pool: the stealable heap plus termination
/// bookkeeping.
struct PoolState {
    heap: BinaryHeap<Node>,
    idle: usize,
    done: bool,
    termination: Termination,
    error: Option<IlpError>,
}

/// Everything the parallel workers share.
struct Shared<'a> {
    ctx: SearchCtx<'a>,
    /// Post-probe root bounds every node's delta path is relative to.
    base_lower: Vec<f64>,
    base_upper: Vec<f64>,
    pool: Mutex<PoolState>,
    available: Condvar,
    incumbent: SharedIncumbent,
    /// Global count of nodes taken for exploration (the root counts as 1).
    explored: AtomicUsize,
    max_nodes: usize,
    deadline: Option<Duration>,
    started: Instant,
    threads: usize,
    cancel: Option<&'a AtomicBool>,
    ext_bound: Option<&'a SharedBound>,
}

impl Shared<'_> {
    /// Stops the search because a budget ran out; the first stop wins.
    fn stop(&self, termination: Termination) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.termination == Termination::Optimal {
            pool.termination = termination;
        }
        pool.done = true;
        self.available.notify_all();
    }

    /// Aborts the search on a solver error; the first error wins.
    fn fail(&self, error: IlpError) {
        let mut pool = self.pool.lock().expect("pool lock");
        if pool.error.is_none() {
            pool.error = Some(error);
        }
        pool.done = true;
        self.available.notify_all();
    }
}

/// One parallel worker: steal a node (or pop the local dive stack), expand
/// it, keep one child local and publish the other to the shared pool.
fn worker(shared: &Shared<'_>) -> WorkerStats {
    let mut stats = WorkerStats::default();
    let mut scratch = SimplexScratch::new();
    let mut arena = NodeArena::new();
    worker_loop(shared, &mut stats, &mut scratch, &mut arena);
    stats.simplex_ops = scratch.take_ops();
    stats
}

/// The worker's search loop, factored out so every exit path funnels the
/// scratch's accumulated op counters into the worker's stats exactly once.
fn worker_loop(
    shared: &Shared<'_>,
    stats: &mut WorkerStats,
    scratch: &mut SimplexScratch,
    arena: &mut NodeArena,
) {
    let mut local: Vec<Node> = Vec::new();
    let mut inc_cell = &shared.incumbent;
    let mut inc = BoundView {
        inner: &mut inc_cell,
        external: shared.ext_bound,
    };
    loop {
        let node = match local.pop() {
            Some(n) => n,
            None => {
                let mut pool = shared.pool.lock().expect("pool lock");
                loop {
                    if pool.done {
                        return;
                    }
                    if let Some(n) = pool.heap.pop() {
                        stats.steals += 1;
                        break n;
                    }
                    pool.idle += 1;
                    if pool.idle == shared.threads {
                        // Every worker is out of work and the pool is
                        // empty: the tree is exhausted.
                        pool.done = true;
                        shared.available.notify_all();
                        return;
                    }
                    pool = shared.available.wait(pool).expect("pool lock");
                    pool.idle -= 1;
                }
            }
        };
        if prunable(node.score, inc.current_score()) {
            stats.nodes_pruned += 1;
            arena.retire(node.path);
            continue;
        }
        let taken = shared.explored.fetch_add(1, AtomicOrdering::Relaxed);
        if taken >= shared.max_nodes {
            shared.stop(Termination::NodeLimit);
            return;
        }
        if shared
            .deadline
            .is_some_and(|d| shared.started.elapsed() >= d)
        {
            shared.stop(Termination::Deadline);
            return;
        }
        if shared
            .cancel
            .is_some_and(|c| c.load(AtomicOrdering::Relaxed))
        {
            shared.stop(Termination::Cancelled);
            return;
        }
        stats.nodes_explored += 1;
        match shared.ctx.expand(
            scratch,
            arena,
            &shared.base_lower,
            &shared.base_upper,
            node,
            &mut inc,
            stats,
        ) {
            Ok(Some((down, up))) => {
                // Dive on the down child; make the up child stealable.
                local.push(down);
                let mut pool = shared.pool.lock().expect("pool lock");
                pool.heap.push(up);
                self::notify_one(shared, &pool);
            }
            Ok(None) => {}
            Err(e) => {
                shared.fail(e);
                return;
            }
        }
    }
}

/// Wakes one idle worker when new work lands in the pool.
fn notify_one(shared: &Shared<'_>, pool: &PoolState) {
    if pool.idle > 0 {
        shared.available.notify_one();
    }
}

impl BranchBound {
    /// Creates a solver with default limits.
    #[must_use]
    pub fn new() -> BranchBound {
        BranchBound::default()
    }

    /// Overrides the node limit.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: usize) -> BranchBound {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets a wall-clock deadline, checked once per node.
    ///
    /// The LP solve of the node in flight is never interrupted, so a run may
    /// overshoot the deadline by one node's worth of simplex work.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> BranchBound {
        self.deadline = Some(deadline);
        self
    }

    /// Sets the number of worker threads (clamped to at least 1).
    ///
    /// The reported solution is identical across thread counts for runs
    /// that terminate [`Termination::Optimal`] — see the module docs for
    /// the determinism contract. Node/prune counts and budget-exhausted
    /// incumbents may differ.
    #[must_use]
    pub fn with_threads(mut self, threads: usize) -> BranchBound {
        self.threads = threads.max(1);
        self
    }

    /// Supplies a retained root-LP basis from a previous solve of a
    /// same-shaped model (see [`BranchBoundRun::root_basis`]). The root LP
    /// re-installs it and repairs primal feasibility with dual-simplex
    /// pivots instead of running two-phase from scratch; an incompatible or
    /// stale basis silently falls back to the cold solve, so this can never
    /// change the reported solution — only the work done to reach it.
    #[must_use]
    pub fn with_root_basis(mut self, basis: Arc<Basis>) -> BranchBound {
        self.root_basis = Some(basis);
        self
    }

    /// Installs a cooperative cancellation flag, checked once per node like
    /// the deadline. When another party sets the flag, the run stops with
    /// [`Termination::Cancelled`] and keeps its best incumbent — portfolio
    /// racing uses this to stop losers once a winner is proven.
    #[must_use]
    pub fn with_cancel(mut self, cancel: Arc<AtomicBool>) -> BranchBound {
        self.cancel = Some(cancel);
        self
    }

    /// Shares a cross-solver incumbent-score bound (see [`SharedBound`]).
    /// The run prunes against the tighter of its own incumbent and the
    /// shared score, and publishes every incumbent it installs. Because
    /// pruning keeps ties, a run that still terminates
    /// [`Termination::Optimal`] reports exactly the solution it would have
    /// found alone — only the node counts change.
    #[must_use]
    pub fn with_shared_bound(mut self, bound: Arc<SharedBound>) -> BranchBound {
        self.shared_bound = Some(bound);
        self
    }

    /// Enables per-node cover-cut separation (see [`crate::cuts`]): each
    /// fractional node re-solves its LP with the separated cuts appended
    /// and keeps the tightened bound. Cuts never exclude integer points, so
    /// the reported solution is unchanged; node and pivot counts move.
    #[must_use]
    pub fn with_node_cuts(mut self, cuts: Arc<CutSeparator>) -> BranchBound {
        self.node_cuts = Some(cuts);
        self
    }

    /// Solves `model` to proven optimality.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] when no integer assignment satisfies the
    /// constraints, [`IlpError::Unbounded`] when the relaxation is unbounded,
    /// [`IlpError::NodeLimit`] when the node budget is exhausted,
    /// [`IlpError::DeadlineExceeded`] when the deadline passes first. Budget
    /// errors discard any incumbent; use [`BranchBound::run`] to keep it.
    pub fn solve(&self, model: &Model) -> Result<IlpSolution, IlpError> {
        let (sol, _stats) = self.solve_with_stats(model)?;
        Ok(sol)
    }

    /// Solves to proven optimality and also returns search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`BranchBound::solve`].
    pub fn solve_with_stats(
        &self,
        model: &Model,
    ) -> Result<(IlpSolution, BranchBoundStats), IlpError> {
        let run = self.run(model, None)?;
        match run.termination {
            Termination::Optimal => {
                let sol = run.solution.expect("optimal termination implies incumbent");
                Ok((sol, run.stats))
            }
            Termination::NodeLimit => Err(IlpError::NodeLimit {
                limit: self.max_nodes,
            }),
            Termination::Deadline => Err(IlpError::DeadlineExceeded),
            Termination::Cancelled => Err(IlpError::Cancelled),
        }
    }

    /// Runs the search under the configured budgets.
    ///
    /// `warm_start` optionally seeds the incumbent with a known feasible
    /// point (full-length variable assignment, binaries integral); an
    /// infeasible or malformed warm start is ignored rather than rejected, so
    /// callers can pass a heuristic guess unconditionally. Budget exhaustion
    /// is reported through [`BranchBoundRun::termination`], not as an error,
    /// and keeps the best incumbent found so far.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] when the search proves no integer assignment
    /// exists, [`IlpError::Unbounded`] when the relaxation is unbounded,
    /// [`IlpError::IterationLimit`] when a node LP exceeds the simplex pivot
    /// cap.
    pub fn run(
        &self,
        model: &Model,
        warm_start: Option<&[f64]>,
    ) -> Result<BranchBoundRun, IlpError> {
        match warm_start {
            Some(values) => self.run_seeded(model, &[values.to_vec()]),
            None => self.run_seeded(model, &[]),
        }
    }

    /// The incumbent-injection hook behind [`BranchBound::run`]: like `run`,
    /// but seeds the incumbent with *every* feasible candidate in
    /// `warm_starts` (the best one — under the lexicographic tie-break —
    /// wins). Sweep orchestration chains the previous sweep point's optimum
    /// alongside a heuristic guess this way; infeasible or malformed
    /// candidates are skipped, never an error.
    ///
    /// # Errors
    ///
    /// Same as [`BranchBound::run`].
    pub fn run_seeded(
        &self,
        model: &Model,
        warm_starts: &[Vec<f64>],
    ) -> Result<BranchBoundRun, IlpError> {
        let n = model.num_vars();
        let minimize = model.sense() == Sense::Minimize;
        let started = Instant::now();
        let binaries = model.binary_vars();
        let ctx = SearchCtx {
            model,
            binaries: &binaries,
            minimize,
            simplex: self.simplex,
            cuts: self.node_cuts.as_deref(),
        };
        let cancel = self.cancel.as_deref();
        let ext_bound = self.shared_bound.as_deref();
        let cancelled = || cancel.is_some_and(|c| c.load(AtomicOrdering::Relaxed));
        // The tightest known feasible score: our incumbent or a racer's.
        let effective = |own: f64| match ext_bound {
            Some(ext) => own.min(ext.score()),
            None => own,
        };

        let mut incumbent = Incumbent::new();
        let mut warm_start_accepted = false;

        // Seed the incumbent from every warm start that checks out: the
        // bound prunes against the best of them from the very first node.
        for values in warm_starts {
            let integral = binaries.iter().all(|&v| {
                values
                    .get(v.index())
                    .is_some_and(|x| x.fract().abs() <= INT_TOL)
            });
            if values.len() == n && integral && model.is_feasible(values, 1e-6) {
                let objective = model.objective().eval(values);
                incumbent.offer(ctx.norm(objective), objective, values.clone());
                warm_start_accepted = true;
            }
        }
        if warm_start_accepted {
            if let Some(ext) = self.shared_bound.as_deref() {
                ext.publish(incumbent.score);
            }
        }

        let mut root_stats = WorkerStats::default();
        let mut vars_fixed = 0usize;
        let finish = |incumbent: Incumbent,
                      termination: Termination,
                      root_stats: WorkerStats,
                      workers: Vec<WorkerStats>,
                      vars_fixed: usize,
                      basis_reused: bool,
                      root_basis: Option<Arc<Basis>>| {
            let stats = BranchBoundStats::from_workers(
                root_stats,
                workers,
                warm_start_accepted,
                vars_fixed,
                basis_reused,
            );
            match termination {
                Termination::Optimal => match incumbent.solution {
                    Some(sol) => Ok(BranchBoundRun {
                        solution: Some(sol),
                        termination: Termination::Optimal,
                        stats,
                        root_basis,
                    }),
                    None => Err(IlpError::Infeasible),
                },
                t => Ok(BranchBoundRun {
                    solution: incumbent.solution,
                    termination: t,
                    stats,
                    root_basis,
                }),
            }
        };

        // The budgets are checked before every node, the root included.
        if self.max_nodes == 0 {
            return finish(
                incumbent,
                Termination::NodeLimit,
                root_stats,
                vec![],
                0,
                false,
                None,
            );
        }
        if self.deadline.is_some_and(|d| started.elapsed() >= d) {
            return finish(
                incumbent,
                Termination::Deadline,
                root_stats,
                vec![],
                0,
                false,
                None,
            );
        }
        if cancelled() {
            return finish(
                incumbent,
                Termination::Cancelled,
                root_stats,
                vec![],
                0,
                false,
                None,
            );
        }

        // The post-probe values of these become the base bounds every
        // node's delta path is reconstructed against.
        let mut base_lower = Vec::with_capacity(n);
        let mut base_upper = Vec::with_capacity(n);
        for i in 0..n {
            let (l, u) = model.var_bounds(VarId(i)).expect("var exists");
            base_lower.push(l);
            base_upper.push(u);
        }

        // Root expansion runs serially (also under `threads > 1`): it hosts
        // the one-shot reduced-cost probing and seeds the pool. The root LP
        // runs at full tableau shape so a retained basis from a previous
        // same-shaped solve can be re-installed and dual-repaired, and so
        // its own optimal basis can be handed to the next solve.
        let mut scratch = SimplexScratch::new();
        root_stats.nodes_explored += 1;
        let (lp, basis_reused, root_basis_out) = match solve_with_basis(
            model,
            &base_lower,
            &base_upper,
            self.simplex,
            &mut scratch,
            self.root_basis.as_deref(),
        ) {
            Ok(bs) => (Some(bs.solution), bs.reused, bs.basis.map(Arc::new)),
            Err(IlpError::Infeasible) => (None, false, None),
            Err(e) => return Err(e),
        };
        let children = match lp {
            None => None,
            Some(lp) => {
                root_stats.simplex_iterations += lp.iterations;
                let bound = ctx.norm(lp.objective);
                if prunable(bound, effective(incumbent.score)) {
                    // Only possible when a warm start or racer already
                    // dominates.
                    root_stats.nodes_pruned += 1;
                    None
                } else {
                    if ctx.offer_rounded(lp.values.clone(), &mut incumbent) {
                        root_stats.incumbent_updates += 1;
                        if let Some(ext) = ext_bound {
                            ext.publish(incumbent.score);
                        }
                    }

                    // Reduced-cost probing, once, at the root: a warm start
                    // supplies a tight incumbent before any search happens,
                    // so flipping a binary that sits at a bound in the root
                    // LP and re-solving tells us whether that flip can ever
                    // pay off. If the probed LP bound is strictly worse than
                    // the incumbent (or infeasible), the binary is fixed at
                    // its LP value for the entire tree. Without a warm start
                    // the first incumbent only appears after the root LP,
                    // too late to narrow the tree from node one.
                    if warm_start_accepted && incumbent.solution.is_some() {
                        let mut candidates: Vec<(VarId, f64)> = binaries
                            .iter()
                            .map(|&v| (v, lp.value(v)))
                            .filter(|&(v, x)| {
                                base_lower[v.index()] < base_upper[v.index()]
                                    && (x <= INT_TOL || x >= 1.0 - INT_TOL)
                            })
                            .collect();
                        candidates.sort_by(|a, b| {
                            let c = |v: VarId| model.objective().coeff(v).abs();
                            c(b.0).total_cmp(&c(a.0))
                        });
                        for (v, x) in candidates.into_iter().take(MAX_ROOT_PROBES) {
                            if self.deadline.is_some_and(|d| started.elapsed() >= d) || cancelled()
                            {
                                break;
                            }
                            let flipped = if x <= INT_TOL { 1.0 } else { 0.0 };
                            let (saved_l, saved_u) = (base_lower[v.index()], base_upper[v.index()]);
                            base_lower[v.index()] = flipped;
                            base_upper[v.index()] = flipped;
                            let fixable = match solve_with_bounds_scratch(
                                model,
                                &base_lower,
                                &base_upper,
                                self.simplex,
                                &mut scratch,
                            ) {
                                Ok(probe) => {
                                    root_stats.simplex_iterations += probe.iterations;
                                    prunable(ctx.norm(probe.objective), incumbent.score)
                                }
                                Err(IlpError::Infeasible) => true,
                                Err(e) => return Err(e),
                            };
                            if fixable {
                                // The flip cannot beat (or tie) the
                                // incumbent: pin the binary to its
                                // relaxation value for all descendants.
                                base_lower[v.index()] = x.round();
                                base_upper[v.index()] = x.round();
                                vars_fixed += 1;
                            } else {
                                base_lower[v.index()] = saved_l;
                                base_upper[v.index()] = saved_u;
                            }
                        }
                    }

                    // Branch the root exactly like any other node.
                    let frac = binaries
                        .iter()
                        .map(|&v| (v, lp.value(v)))
                        .filter(|(_, x)| (x - x.round()).abs() > INT_TOL)
                        .max_by(|a, b| {
                            let weight = |(v, x): &(VarId, f64)| {
                                let f = (x - x.round()).abs();
                                let c = model.objective().coeff(*v).abs().max(1e-6);
                                f * c
                            };
                            weight(a).total_cmp(&weight(b))
                        });
                    match frac {
                        None => {
                            if ctx.offer_rounded(lp.values, &mut incumbent) {
                                root_stats.incumbent_updates += 1;
                                if let Some(ext) = ext_bound {
                                    ext.publish(incumbent.score);
                                }
                            }
                            None
                        }
                        Some((v, x)) => {
                            // The root's children are single-fix delta
                            // paths against the post-probe base bounds.
                            let vi = v.index();
                            let down = Node {
                                score: bound,
                                path: vec![BoundFix {
                                    var: vi,
                                    lower: base_lower[vi],
                                    upper: x.floor(),
                                }],
                            };
                            let up = Node {
                                score: bound,
                                path: vec![BoundFix {
                                    var: vi,
                                    lower: x.ceil(),
                                    upper: base_upper[vi],
                                }],
                            };
                            Some((down, up))
                        }
                    }
                }
            }
        };

        // Root LP + probing op counters belong to the root's ledger; the
        // scratch keeps accumulating for the serial loop below, whose delta
        // is drained into the serial worker's stats at every exit.
        root_stats.simplex_ops = scratch.take_ops();

        let Some((down, up)) = children else {
            return finish(
                incumbent,
                Termination::Optimal,
                root_stats,
                vec![],
                vars_fixed,
                basis_reused,
                root_basis_out,
            );
        };

        if self.threads <= 1 {
            // Serial best-first loop, reusing the root's scratch.
            let mut stats = WorkerStats::default();
            let mut arena = NodeArena::new();
            let mut heap = BinaryHeap::new();
            heap.push(down);
            heap.push(up);
            let mut explored = 1usize; // the root
            while let Some(node) = heap.pop() {
                if prunable(node.score, effective(incumbent.score)) {
                    stats.nodes_pruned += 1;
                    arena.retire(node.path);
                    continue;
                }
                if explored >= self.max_nodes {
                    stats.simplex_ops = scratch.take_ops();
                    return finish(
                        incumbent,
                        Termination::NodeLimit,
                        root_stats,
                        vec![stats],
                        vars_fixed,
                        basis_reused,
                        root_basis_out,
                    );
                }
                if self.deadline.is_some_and(|d| started.elapsed() >= d) {
                    stats.simplex_ops = scratch.take_ops();
                    return finish(
                        incumbent,
                        Termination::Deadline,
                        root_stats,
                        vec![stats],
                        vars_fixed,
                        basis_reused,
                        root_basis_out,
                    );
                }
                if cancelled() {
                    stats.simplex_ops = scratch.take_ops();
                    return finish(
                        incumbent,
                        Termination::Cancelled,
                        root_stats,
                        vec![stats],
                        vars_fixed,
                        basis_reused,
                        root_basis_out,
                    );
                }
                explored += 1;
                stats.nodes_explored += 1;
                let expanded = {
                    let mut view = BoundView {
                        inner: &mut incumbent,
                        external: ext_bound,
                    };
                    ctx.expand(
                        &mut scratch,
                        &mut arena,
                        &base_lower,
                        &base_upper,
                        node,
                        &mut view,
                        &mut stats,
                    )?
                };
                if let Some((down, up)) = expanded {
                    heap.push(down);
                    heap.push(up);
                }
            }
            stats.simplex_ops = scratch.take_ops();
            return finish(
                incumbent,
                Termination::Optimal,
                root_stats,
                vec![stats],
                vars_fixed,
                basis_reused,
                root_basis_out,
            );
        }

        // Parallel search: seed the pool with the root's children and let
        // the workers steal.
        let mut heap = BinaryHeap::new();
        heap.push(down);
        heap.push(up);
        let shared = Shared {
            ctx,
            base_lower,
            base_upper,
            pool: Mutex::new(PoolState {
                heap,
                idle: 0,
                done: false,
                termination: Termination::Optimal,
                error: None,
            }),
            available: Condvar::new(),
            incumbent: SharedIncumbent::new(incumbent),
            explored: AtomicUsize::new(1), // the root
            max_nodes: self.max_nodes,
            deadline: self.deadline,
            started,
            threads: self.threads,
            cancel,
            ext_bound,
        };

        let mut workers: Vec<WorkerStats> = Vec::with_capacity(self.threads);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.threads)
                .map(|_| s.spawn(|| worker(&shared)))
                .collect();
            for h in handles {
                workers.push(h.join().expect("branch-and-bound worker panicked"));
            }
        });

        let PoolState {
            termination, error, ..
        } = shared.pool.into_inner().expect("pool lock");
        if let Some(e) = error {
            return Err(e);
        }
        let incumbent = shared.incumbent.cell.into_inner().expect("incumbent lock");
        finish(
            incumbent,
            termination,
            root_stats,
            workers,
            vars_fixed,
            basis_reused,
            root_basis_out,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    #[test]
    fn set_cover_minimum_area() {
        // The paper-shaped problem: pick IMPs to cover a gain requirement at
        // minimum area. min 3a + 14b + 15c s.t. gains 115a + 41b + 162c >= 150.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 3.0), (b, 14.0), (c, 15.0)]);
        m.add_constraint([(a, 115.0), (b, 41.0), (c, 162.0)], Relation::Ge, 150.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        // c alone reaches 162 >= 150 at area 15; a+b costs 17.
        assert_eq!(s.objective.round() as i64, 15);
        assert!(!s.is_set(a) && !s.is_set(b) && s.is_set(c));
    }

    #[test]
    fn infeasible_binary_model() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        m.add_constraint([(a, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(BranchBound::new().solve(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn conflict_constraints_respected() {
        // max a + b with a + b <= 1 (SC-PC conflict shape).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 1.0), (b, 1.0)]);
        m.add_constraint([(a, 1.0), (b, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective.round() as i64, 1);
        assert_eq!(s.value(a).round() as i64 + s.value(b).round() as i64, 1);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min 10z + y s.t. y >= 3 - 5z, y >= 0, z binary.
        // z=0 -> y=3 cost 3; z=1 -> y=0 cost 10. Optimum 3.
        let mut m = Model::new(Sense::Minimize);
        let z = m.add_binary("z");
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(z, 10.0), (y, 1.0)]);
        m.add_constraint([(y, 1.0), (z, 5.0)], Relation::Ge, 3.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(!s.is_set(z));
    }

    /// A 12-binary model whose relaxation stays fractional, so one node is
    /// never enough to prove optimality.
    fn tight_budget_model() -> (Model, Vec<VarId>) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        // Odd-sum style constraint keeps relaxation fractional.
        m.add_constraint(vars.iter().map(|&v| (v, 2.0)), Relation::Le, 11.0)
            .unwrap();
        (m, vars)
    }

    #[test]
    fn node_limit_enforced() {
        let (m, _) = tight_budget_model();
        let solver = BranchBound::new().with_max_nodes(1);
        // One node is enough only if the relaxation happens to be integral;
        // here it is not, so we must hit the limit.
        assert_eq!(solver.solve(&m), Err(IlpError::NodeLimit { limit: 1 }));
    }

    #[test]
    fn run_keeps_incumbent_on_node_limit() {
        // min 2a + 3b s.t. 3a + 5b >= 4. Root LP picks b = 0.8 (fractional),
        // and rounding it up to b = 1 is feasible, so the root already yields
        // an incumbent before the 1-node budget runs out.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 2.0), (b, 3.0)]);
        m.add_constraint([(a, 3.0), (b, 5.0)], Relation::Ge, 4.0)
            .unwrap();
        let run = BranchBound::new().with_max_nodes(1).run(&m, None).unwrap();
        assert_eq!(run.termination, Termination::NodeLimit);
        // The rounding heuristic finds a feasible point at the root, so the
        // incumbent survives budget exhaustion instead of being discarded.
        let sol = run.solution.expect("rounding heuristic seeds an incumbent");
        assert!(m.is_feasible(&sol.values, 1e-6));
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(run.stats.nodes_explored, 1);
    }

    #[test]
    fn deadline_zero_stops_immediately() {
        let (m, _) = tight_budget_model();
        let run = BranchBound::new()
            .with_deadline(Duration::ZERO)
            .run(&m, None)
            .unwrap();
        assert_eq!(run.termination, Termination::Deadline);
        assert_eq!(run.stats.nodes_explored, 0);
        assert!(run.solution.is_none());
    }

    #[test]
    fn deadline_maps_to_error_in_solve() {
        let (m, _) = tight_budget_model();
        let solver = BranchBound::new().with_deadline(Duration::ZERO);
        assert_eq!(solver.solve(&m), Err(IlpError::DeadlineExceeded));
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        let (m, vars) = tight_budget_model();
        // All-zero is feasible (0 <= 11); a valid if weak warm start.
        let warm = vec![0.0; vars.len()];
        let run = BranchBound::new().run(&m, Some(&warm)).unwrap();
        assert!(run.stats.warm_start_accepted);
        assert_eq!(run.termination, Termination::Optimal);
        // Optimum picks 5 variables (2*5 = 10 <= 11).
        let sol = run.solution.unwrap();
        assert_eq!(sol.objective.round() as i64, 5);
    }

    #[test]
    fn infeasible_warm_start_ignored() {
        let (m, vars) = tight_budget_model();
        // All-ones violates the knapsack row (24 > 11).
        let warm = vec![1.0; vars.len()];
        let run = BranchBound::new().run(&m, Some(&warm)).unwrap();
        assert!(!run.stats.warm_start_accepted);
        assert_eq!(run.termination, Termination::Optimal);
    }

    #[test]
    fn run_seeded_takes_best_of_multiple_seeds() {
        let (m, vars) = tight_budget_model();
        // Maximisation: the all-zero seed is feasible but weak (objective 0),
        // the 5-ones seed is the optimum, all-ones is infeasible (skipped).
        let weak = vec![0.0; vars.len()];
        let mut strong = vec![0.0; vars.len()];
        for v in vars.iter().take(5) {
            strong[v.index()] = 1.0;
        }
        let infeasible = vec![1.0; vars.len()];
        let seeded = BranchBound::new()
            .run_seeded(&m, &[infeasible, weak, strong.clone()])
            .unwrap();
        assert!(seeded.stats.warm_start_accepted);
        assert_eq!(seeded.termination, Termination::Optimal);
        // The best seed wins: the run behaves exactly like one warm-started
        // with the strong point alone.
        let single = BranchBound::new().run(&m, Some(&strong)).unwrap();
        assert_eq!(seeded.solution, single.solution);
        assert_eq!(seeded.stats.nodes_explored, single.stats.nodes_explored);
    }

    #[test]
    fn run_seeded_with_no_seeds_matches_cold_run() {
        let (m, _) = tight_budget_model();
        let cold = BranchBound::new().run(&m, None).unwrap();
        let seeded = BranchBound::new().run_seeded(&m, &[]).unwrap();
        assert!(!seeded.stats.warm_start_accepted);
        assert_eq!(cold.solution, seeded.solution);
        assert_eq!(cold.stats.nodes_explored, seeded.stats.nodes_explored);
    }

    #[test]
    fn warm_start_prunes_search() {
        // Seeding the true optimum must not explore more nodes than the cold
        // run, and on this model strictly fewer.
        let (m, vars) = tight_budget_model();
        let cold = BranchBound::new().run(&m, None).unwrap();
        let mut warm_values = vec![0.0; vars.len()];
        for v in vars.iter().take(5) {
            warm_values[v.index()] = 1.0;
        }
        let warm = BranchBound::new().run(&m, Some(&warm_values)).unwrap();
        assert!(warm.stats.warm_start_accepted);
        assert!(
            warm.stats.nodes_explored <= cold.stats.nodes_explored,
            "warm {} > cold {}",
            warm.stats.nodes_explored,
            cold.stats.nodes_explored
        );
    }

    #[test]
    fn root_probing_fixes_vars_and_prunes() {
        // min 10a + 2b + 2c s.t. 3b + 3c >= 4. Optimum is b = c = 1 (obj 4);
        // the root LP is fractional (b = 1, c = 1/3) and rounds down to an
        // infeasible point, so the cold run has to branch its way to an
        // incumbent. Warm-starting with the optimum lets root probing fix
        // both a (flipping it to 1 costs 10 > 4) and b (flipping it to 0 is
        // infeasible), leaving only c to branch on.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 10.0), (b, 2.0), (c, 2.0)]);
        m.add_constraint([(b, 3.0), (c, 3.0)], Relation::Ge, 4.0)
            .unwrap();

        let cold = BranchBound::new().run(&m, None).unwrap();
        let warm_point = vec![0.0, 1.0, 1.0];
        let warm = BranchBound::new().run(&m, Some(&warm_point)).unwrap();

        assert!(warm.stats.warm_start_accepted);
        assert!(warm.stats.vars_fixed >= 2, "{:?}", warm.stats);
        assert_eq!(cold.stats.vars_fixed, 0);
        let (cs, ws) = (cold.solution.unwrap(), warm.solution.unwrap());
        assert_eq!(cs.objective.round() as i64, 4);
        assert_eq!(ws.objective.round() as i64, 4);
        assert!(
            warm.stats.nodes_explored < cold.stats.nodes_explored,
            "warm {} !< cold {}",
            warm.stats.nodes_explored,
            cold.stats.nodes_explored
        );
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        m.add_constraint([(a, 1.0)], Relation::Ge, 1.0).unwrap();
        let (s, stats) = BranchBound::new().solve_with_stats(&m).unwrap();
        assert_eq!(s.objective.round() as i64, 1);
        assert!(stats.nodes_explored >= 1);
        assert!(stats.incumbent_updates >= 1);
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.per_worker.len(), 1);
        assert_eq!(stats.per_worker[0].nodes_explored, stats.nodes_explored);
    }

    #[test]
    fn simplex_ops_threaded_into_stats() {
        let (m, _) = tight_budget_model();
        for threads in [1usize, 4] {
            let run = BranchBound::new()
                .with_threads(threads)
                .run(&m, None)
                .unwrap();
            let ops = run.stats.simplex_ops;
            assert!(ops.tableau_builds >= 1, "threads {threads}: {ops:?}");
            assert!(ops.total_pivots() > 0, "threads {threads}: {ops:?}");
            // The serial loop (and each worker) reuses its scratch, so only
            // the first same-or-larger-shape build may allocate.
            assert!(ops.scratch_reuses > 0, "threads {threads}: {ops:?}");
            let mut sum = SimplexOps::default();
            for w in &run.stats.per_worker {
                sum.merge(w.simplex_ops);
            }
            assert_eq!(sum, ops, "per-worker ops must sum to the aggregate");
        }
    }

    #[test]
    fn no_constraints_picks_bound_values() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 2.0), (b, -3.0)]);
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective.round() as i64, -3);
        assert!(!s.is_set(a) && s.is_set(b));
    }

    #[test]
    fn parallel_matches_serial_objective() {
        let (m, _) = tight_budget_model();
        let serial = BranchBound::new().solve(&m).unwrap();
        for threads in [2, 4, 8] {
            let par = BranchBound::new().with_threads(threads).solve(&m).unwrap();
            assert!(
                (serial.objective - par.objective).abs() < 1e-6,
                "threads {threads}: {} vs {}",
                serial.objective,
                par.objective
            );
            assert_eq!(serial.values, par.values, "threads {threads}");
        }
    }

    #[test]
    fn tie_break_is_lexicographic_across_thread_counts() {
        // min a + b s.t. 2a + 2b >= 1: the root LP sits at a fractional
        // vertex (0.5, 0), and branching discovers the two tied optima
        // (1,0) and (0,1) in different subtrees. Because tied nodes are
        // never pruned and the incumbent breaks ties lexicographically,
        // every thread count and interleaving must report the
        // lexicographically smallest optimum (0,1).
        for threads in [1usize, 2, 4] {
            for _ in 0..5 {
                let mut m = Model::new(Sense::Minimize);
                let a = m.add_binary("a");
                let b = m.add_binary("b");
                m.set_objective([(a, 1.0), (b, 1.0)]);
                m.add_constraint([(a, 2.0), (b, 2.0)], Relation::Ge, 1.0)
                    .unwrap();
                let s = BranchBound::new().with_threads(threads).solve(&m).unwrap();
                assert_eq!(s.objective.round() as i64, 1, "threads {threads}");
                assert_eq!(
                    (s.value(a).round() as i64, s.value(b).round() as i64),
                    (0, 1),
                    "threads {threads}"
                );
            }
        }
    }

    #[test]
    fn parallel_respects_node_budget() {
        let (m, _) = tight_budget_model();
        let run = BranchBound::new()
            .with_threads(4)
            .with_max_nodes(2)
            .run(&m, None)
            .unwrap();
        assert_eq!(run.termination, Termination::NodeLimit);
        assert!(run.stats.nodes_explored <= 2);
    }

    #[test]
    fn parallel_reports_per_worker_stats() {
        let (m, _) = tight_budget_model();
        let run = BranchBound::new().with_threads(3).run(&m, None).unwrap();
        assert_eq!(run.termination, Termination::Optimal);
        assert_eq!(run.stats.threads, 3);
        assert_eq!(run.stats.per_worker.len(), 3);
        let sum: usize = run.stats.per_worker.iter().map(|w| w.nodes_explored).sum();
        assert_eq!(sum, run.stats.nodes_explored);
    }

    #[test]
    fn root_basis_chains_across_rhs_patches() {
        // Solve, patch the gain row's RHS, re-solve with the retained root
        // basis: the answer must match the cold solve of the patched model
        // and the reuse must be visible in the stats.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 3.0), (b, 14.0), (c, 15.0)]);
        m.add_constraint([(a, 115.0), (b, 41.0), (c, 162.0)], Relation::Ge, 150.0)
            .unwrap();
        let first = BranchBound::new().run_seeded(&m, &[]).unwrap();
        let basis = first.root_basis.clone().expect("root basis retained");

        m.set_constraint_rhs(0, 200.0).unwrap();
        let cold = BranchBound::new().run_seeded(&m, &[]).unwrap();
        let warm = BranchBound::new()
            .with_root_basis(basis)
            .run_seeded(&m, &[])
            .unwrap();
        assert!(warm.stats.basis_reused, "same-shape basis must install");
        assert!(!cold.stats.basis_reused);
        assert_eq!(warm.solution, cold.solution);
        assert_eq!(warm.termination, Termination::Optimal);
        assert!(warm.root_basis.is_some(), "reuse re-exports a basis");
    }

    #[test]
    fn poisoned_root_basis_never_changes_the_answer() {
        let (m, _) = tight_budget_model();
        let cold = BranchBound::new().run_seeded(&m, &[]).unwrap();
        // Wrong shape entirely: rejected at install time, cold path runs.
        let poison = Arc::new(Basis::slack(3, 2));
        let warm = BranchBound::new()
            .with_root_basis(poison)
            .run_seeded(&m, &[])
            .unwrap();
        assert!(!warm.stats.basis_reused);
        assert_eq!(warm.solution, cold.solution);
        assert_eq!(warm.stats.nodes_explored, cold.stats.nodes_explored);
    }

    #[test]
    fn pre_set_cancel_terminates_with_cancelled() {
        let (m, _) = tight_budget_model();
        for threads in [1usize, 4] {
            let flag = Arc::new(AtomicBool::new(true));
            let run = BranchBound::new()
                .with_threads(threads)
                .with_cancel(flag)
                .run(&m, None)
                .unwrap();
            assert_eq!(run.termination, Termination::Cancelled, "threads {threads}");
        }
    }

    #[test]
    fn cancelled_solve_maps_to_error() {
        let (m, _) = tight_budget_model();
        let flag = Arc::new(AtomicBool::new(true));
        let solver = BranchBound::new().with_cancel(flag);
        assert_eq!(solver.solve(&m), Err(IlpError::Cancelled));
    }

    #[test]
    fn shared_bound_is_published_and_consumed() {
        let (m, _) = tight_budget_model();
        let baseline = BranchBound::new().run(&m, None).unwrap();

        // Publishing happens: a fresh bound ends up at the optimum's score.
        let bound = Arc::new(SharedBound::new());
        let run = BranchBound::new()
            .with_shared_bound(bound.clone())
            .run(&m, None)
            .unwrap();
        assert_eq!(run.termination, Termination::Optimal);
        let sol = run.solution.as_ref().unwrap();
        assert_eq!(bound.score(), -sol.objective); // Maximisation: normalised.

        // Consuming happens: a pre-published optimal score prunes at least
        // as hard as a warm start, and the reported solution is unchanged
        // (ties survive external pruning by construction).
        let primed = Arc::new(SharedBound::new());
        primed.publish(-sol.objective);
        let pruned = BranchBound::new()
            .with_shared_bound(primed)
            .run(&m, None)
            .unwrap();
        assert_eq!(pruned.termination, Termination::Optimal);
        assert_eq!(pruned.solution, baseline.solution);
        assert!(
            pruned.stats.nodes_explored <= baseline.stats.nodes_explored,
            "external bound must not grow the tree: {} > {}",
            pruned.stats.nodes_explored,
            baseline.stats.nodes_explored
        );
    }

    #[test]
    fn node_cuts_preserve_the_solution() {
        // A knapsack whose LP bound is weak: per-node covers tighten it but
        // the reported optimum must be byte-identical.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..8).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.set_objective(vars.iter().map(|&v| (v, 5.0)));
        m.add_constraint(vars.iter().map(|&v| (v, 3.0)), Relation::Le, 7.0)
            .unwrap();
        let plain = BranchBound::new().run(&m, None).unwrap();
        let sep = Arc::new(CutSeparator::from_model(&m, &[]));
        let cut = BranchBound::new()
            .with_node_cuts(sep)
            .run(&m, None)
            .unwrap();
        assert_eq!(plain.solution, cut.solution);
        assert_eq!(cut.termination, Termination::Optimal);
    }

    #[test]
    fn parallel_infeasible_model_detected() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 1.0), (b, 1.0)]);
        m.add_constraint([(a, 1.0), (b, 1.0)], Relation::Ge, 3.0)
            .unwrap();
        assert_eq!(
            BranchBound::new().with_threads(4).solve(&m),
            Err(IlpError::Infeasible)
        );
    }
}
