//! Best-first branch-and-bound over the simplex LP relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;
use std::time::{Duration, Instant};

use crate::simplex::{solve_with_bounds, SimplexOptions};
use crate::{IlpError, IlpSolution, Model, Sense, VarId};

const INT_TOL: f64 = 1e-6;

/// Cap on root-probing LP re-solves; bounds the fixed cost probing adds on
/// models with many binaries.
const MAX_ROOT_PROBES: usize = 32;

/// Branch-and-bound solver for models with binary variables.
///
/// Nodes are explored best-bound-first; branching picks the most fractional
/// binary of the node's LP optimum. Search effort is bounded by a node budget
/// and an optional wall-clock deadline; [`BranchBound::run`] reports budget
/// exhaustion as a [`Termination`] alongside the best incumbent found so far
/// instead of discarding it.
///
/// # Example
///
/// ```
/// use partita_ilp::{Model, Sense, Relation, BranchBound};
/// # fn main() -> Result<(), partita_ilp::IlpError> {
/// // Knapsack: max 6a + 5b + 4c, 5a + 4b + 3c <= 8.
/// let mut m = Model::new(Sense::Maximize);
/// let a = m.add_binary("a");
/// let b = m.add_binary("b");
/// let c = m.add_binary("c");
/// m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)]);
/// m.add_constraint([(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 8.0)?;
/// let s = BranchBound::new().solve(&m)?;
/// assert_eq!(s.objective.round() as i64, 10); // a + c
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BranchBound {
    max_nodes: usize,
    deadline: Option<Duration>,
    simplex: SimplexOptions,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            max_nodes: 200_000,
            deadline: None,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Statistics of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchBoundStats {
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Nodes pruned by bound.
    pub nodes_pruned: usize,
    /// Times the incumbent improved during the search (excludes a warm-start
    /// incumbent supplied by the caller).
    pub incumbent_updates: usize,
    /// Simplex pivots summed over every node LP solved.
    pub simplex_iterations: usize,
    /// Whether a caller-supplied warm start was feasible and seeded the
    /// incumbent.
    pub warm_start_accepted: bool,
    /// Binaries permanently fixed by reduced-cost probing at the root
    /// (requires a warm-start incumbent).
    pub vars_fixed: usize,
}

/// Why a branch-and-bound run stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Termination {
    /// The search tree was exhausted: the incumbent is proven optimal.
    Optimal,
    /// The node budget ran out first; the incumbent (if any) is feasible but
    /// not proven optimal.
    NodeLimit,
    /// The wall-clock deadline passed first; the incumbent (if any) is
    /// feasible but not proven optimal.
    Deadline,
}

/// Outcome of [`BranchBound::run`]: the best incumbent (if any), why the
/// search stopped, and how much work it did.
#[derive(Debug, Clone, PartialEq)]
pub struct BranchBoundRun {
    /// Best integer-feasible solution found, `None` when the budget ran out
    /// before any incumbent appeared.
    pub solution: Option<IlpSolution>,
    /// Why the search stopped.
    pub termination: Termination,
    /// Search-effort counters.
    pub stats: BranchBoundStats,
}

struct Node {
    /// Normalised bound (lower is better).
    score: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest score on top.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
    }
}

impl BranchBound {
    /// Creates a solver with default limits.
    #[must_use]
    pub fn new() -> BranchBound {
        BranchBound::default()
    }

    /// Overrides the node limit.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: usize) -> BranchBound {
        self.max_nodes = max_nodes;
        self
    }

    /// Sets a wall-clock deadline, checked once per node.
    ///
    /// The LP solve of the node in flight is never interrupted, so a run may
    /// overshoot the deadline by one node's worth of simplex work.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Duration) -> BranchBound {
        self.deadline = Some(deadline);
        self
    }

    /// Solves `model` to proven optimality.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] when no integer assignment satisfies the
    /// constraints, [`IlpError::Unbounded`] when the relaxation is unbounded,
    /// [`IlpError::NodeLimit`] when the node budget is exhausted,
    /// [`IlpError::DeadlineExceeded`] when the deadline passes first. Budget
    /// errors discard any incumbent; use [`BranchBound::run`] to keep it.
    pub fn solve(&self, model: &Model) -> Result<IlpSolution, IlpError> {
        let (sol, _stats) = self.solve_with_stats(model)?;
        Ok(sol)
    }

    /// Solves to proven optimality and also returns search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`BranchBound::solve`].
    pub fn solve_with_stats(
        &self,
        model: &Model,
    ) -> Result<(IlpSolution, BranchBoundStats), IlpError> {
        let run = self.run(model, None)?;
        match run.termination {
            Termination::Optimal => {
                let sol = run.solution.expect("optimal termination implies incumbent");
                Ok((sol, run.stats))
            }
            Termination::NodeLimit => Err(IlpError::NodeLimit {
                limit: self.max_nodes,
            }),
            Termination::Deadline => Err(IlpError::DeadlineExceeded),
        }
    }

    /// Runs the search under the configured budgets.
    ///
    /// `warm_start` optionally seeds the incumbent with a known feasible
    /// point (full-length variable assignment, binaries integral); an
    /// infeasible or malformed warm start is ignored rather than rejected, so
    /// callers can pass a heuristic guess unconditionally. Budget exhaustion
    /// is reported through [`BranchBoundRun::termination`], not as an error,
    /// and keeps the best incumbent found so far.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] when the search proves no integer assignment
    /// exists, [`IlpError::Unbounded`] when the relaxation is unbounded,
    /// [`IlpError::IterationLimit`] when a node LP exceeds the simplex pivot
    /// cap.
    pub fn run(
        &self,
        model: &Model,
        warm_start: Option<&[f64]>,
    ) -> Result<BranchBoundRun, IlpError> {
        let n = model.num_vars();
        let minimize = model.sense() == Sense::Minimize;
        let norm = |obj: f64| if minimize { obj } else { -obj };
        let started = Instant::now();
        let binaries = model.binary_vars();

        let mut stats = BranchBoundStats::default();
        let mut incumbent: Option<IlpSolution> = None;
        let mut incumbent_score = f64::INFINITY;

        // Seed the incumbent from the warm start when it checks out: the
        // bound prunes against it from the very first node.
        if let Some(values) = warm_start {
            let integral = binaries.iter().all(|&v| {
                values
                    .get(v.index())
                    .is_some_and(|x| x.fract().abs() <= INT_TOL)
            });
            if values.len() == n && integral && model.is_feasible(values, 1e-6) {
                let objective = model.objective().eval(values);
                incumbent_score = norm(objective);
                incumbent = Some(IlpSolution {
                    objective,
                    values: values.to_vec(),
                });
                stats.warm_start_accepted = true;
            }
        }

        let mut root_lower = Vec::with_capacity(n);
        let mut root_upper = Vec::with_capacity(n);
        for i in 0..n {
            let (l, u) = model.var_bounds(VarId(i)).expect("var exists");
            root_lower.push(l);
            root_upper.push(u);
        }

        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        heap.push(Node {
            score: f64::NEG_INFINITY,
            lower: root_lower,
            upper: root_upper,
        });

        let mut root = true;

        while let Some(mut node) = heap.pop() {
            if node.score >= incumbent_score - 1e-9 {
                stats.nodes_pruned += 1;
                continue;
            }
            if stats.nodes_explored >= self.max_nodes {
                return Ok(BranchBoundRun {
                    solution: incumbent,
                    termination: Termination::NodeLimit,
                    stats,
                });
            }
            if self.deadline.is_some_and(|d| started.elapsed() >= d) {
                return Ok(BranchBoundRun {
                    solution: incumbent,
                    termination: Termination::Deadline,
                    stats,
                });
            }
            stats.nodes_explored += 1;

            let lp = match solve_with_bounds(model, &node.lower, &node.upper, self.simplex) {
                Ok(lp) => lp,
                Err(IlpError::Infeasible) => {
                    if root && heap.is_empty() && incumbent.is_none() {
                        return Err(IlpError::Infeasible);
                    }
                    root = false;
                    continue;
                }
                Err(e) => return Err(e),
            };
            root = false;
            stats.simplex_iterations += lp.iterations;
            let bound = norm(lp.objective);
            if bound >= incumbent_score - 1e-9 {
                stats.nodes_pruned += 1;
                continue;
            }

            // Rounding heuristic: snapping the LP optimum to the nearest
            // integers often yields a feasible incumbent immediately on
            // coverage-style models, which tightens pruning dramatically.
            {
                let mut rounded = lp.values.clone();
                for &v in &binaries {
                    rounded[v.index()] = rounded[v.index()].round();
                }
                if model.is_feasible(&rounded, 1e-6) {
                    let objective = model.objective().eval(&rounded);
                    let score = norm(objective);
                    if score < incumbent_score {
                        incumbent_score = score;
                        incumbent = Some(IlpSolution {
                            objective,
                            values: rounded,
                        });
                        stats.incumbent_updates += 1;
                    }
                }
            }

            // Reduced-cost probing, once, at the root: a warm start supplies
            // a tight incumbent before any search happens, so flipping a
            // binary that sits at a bound in the root LP and re-solving tells
            // us whether that flip can ever pay off. If the probed LP bound
            // already meets the incumbent (or is infeasible), the binary is
            // fixed at its LP value for the entire tree. Without a warm start
            // the first incumbent only appears after the root LP, too late to
            // narrow the tree from node one.
            if stats.nodes_explored == 1 && stats.warm_start_accepted && incumbent.is_some() {
                let mut candidates: Vec<(VarId, f64)> = binaries
                    .iter()
                    .map(|&v| (v, lp.value(v)))
                    .filter(|&(v, x)| {
                        node.lower[v.index()] < node.upper[v.index()]
                            && (x <= INT_TOL || x >= 1.0 - INT_TOL)
                    })
                    .collect();
                candidates.sort_by(|a, b| {
                    let c = |v: VarId| model.objective().coeff(v).abs();
                    c(b.0).partial_cmp(&c(a.0)).unwrap_or(Ordering::Equal)
                });
                for (v, x) in candidates.into_iter().take(MAX_ROOT_PROBES) {
                    if self.deadline.is_some_and(|d| started.elapsed() >= d) {
                        break;
                    }
                    let flipped = if x <= INT_TOL { 1.0 } else { 0.0 };
                    let (saved_l, saved_u) = (node.lower[v.index()], node.upper[v.index()]);
                    node.lower[v.index()] = flipped;
                    node.upper[v.index()] = flipped;
                    let fixable =
                        match solve_with_bounds(model, &node.lower, &node.upper, self.simplex) {
                            Ok(probe) => {
                                stats.simplex_iterations += probe.iterations;
                                norm(probe.objective) >= incumbent_score - 1e-9
                            }
                            Err(IlpError::Infeasible) => true,
                            Err(e) => return Err(e),
                        };
                    if fixable {
                        // The flip cannot beat the incumbent: pin the binary
                        // to its relaxation value for all descendants.
                        node.lower[v.index()] = x.round();
                        node.upper[v.index()] = x.round();
                        stats.vars_fixed += 1;
                    } else {
                        node.lower[v.index()] = saved_l;
                        node.upper[v.index()] = saved_u;
                    }
                }
            }

            // Branch on the fractional binary with the largest
            // objective×fractionality impact: deciding heavy variables first
            // moves the bound fastest (plain most-fractional branching
            // enumerates plateaus on coverage models).
            let frac = binaries
                .iter()
                .map(|&v| (v, lp.value(v)))
                .filter(|(_, x)| (x - x.round()).abs() > INT_TOL)
                .max_by(|a, b| {
                    let weight = |(v, x): &(VarId, f64)| {
                        let f = (x - x.round()).abs();
                        let c = model.objective().coeff(*v).abs().max(1e-6);
                        f * c
                    };
                    weight(a).partial_cmp(&weight(b)).unwrap_or(Ordering::Equal)
                });

            match frac {
                None => {
                    // Integer feasible: snap binaries and record.
                    let mut values = lp.values.clone();
                    for &v in &binaries {
                        values[v.index()] = values[v.index()].round();
                    }
                    let objective = model.objective().eval(&values);
                    let score = norm(objective);
                    if score < incumbent_score {
                        incumbent_score = score;
                        incumbent = Some(IlpSolution { objective, values });
                        stats.incumbent_updates += 1;
                    }
                }
                Some((v, x)) => {
                    // Branch down (x = 0) and up (x = 1).
                    let mut down = Node {
                        score: bound,
                        lower: node.lower.clone(),
                        upper: node.upper.clone(),
                    };
                    down.upper[v.index()] = x.floor();
                    let mut up = Node {
                        score: bound,
                        lower: node.lower,
                        upper: node.upper,
                    };
                    up.lower[v.index()] = x.ceil();
                    heap.push(down);
                    heap.push(up);
                }
            }
        }

        match incumbent {
            Some(sol) => Ok(BranchBoundRun {
                solution: Some(sol),
                termination: Termination::Optimal,
                stats,
            }),
            None => Err(IlpError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    #[test]
    fn set_cover_minimum_area() {
        // The paper-shaped problem: pick IMPs to cover a gain requirement at
        // minimum area. min 3a + 14b + 15c s.t. gains 115a + 41b + 162c >= 150.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 3.0), (b, 14.0), (c, 15.0)]);
        m.add_constraint([(a, 115.0), (b, 41.0), (c, 162.0)], Relation::Ge, 150.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        // c alone reaches 162 >= 150 at area 15; a+b costs 17.
        assert_eq!(s.objective.round() as i64, 15);
        assert!(!s.is_set(a) && !s.is_set(b) && s.is_set(c));
    }

    #[test]
    fn infeasible_binary_model() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        m.add_constraint([(a, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(BranchBound::new().solve(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn conflict_constraints_respected() {
        // max a + b with a + b <= 1 (SC-PC conflict shape).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 1.0), (b, 1.0)]);
        m.add_constraint([(a, 1.0), (b, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective.round() as i64, 1);
        assert_eq!(s.value(a).round() as i64 + s.value(b).round() as i64, 1);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min 10z + y s.t. y >= 3 - 5z, y >= 0, z binary.
        // z=0 -> y=3 cost 3; z=1 -> y=0 cost 10. Optimum 3.
        let mut m = Model::new(Sense::Minimize);
        let z = m.add_binary("z");
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(z, 10.0), (y, 1.0)]);
        m.add_constraint([(y, 1.0), (z, 5.0)], Relation::Ge, 3.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(!s.is_set(z));
    }

    /// A 12-binary model whose relaxation stays fractional, so one node is
    /// never enough to prove optimality.
    fn tight_budget_model() -> (Model, Vec<VarId>) {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        // Odd-sum style constraint keeps relaxation fractional.
        m.add_constraint(vars.iter().map(|&v| (v, 2.0)), Relation::Le, 11.0)
            .unwrap();
        (m, vars)
    }

    #[test]
    fn node_limit_enforced() {
        let (m, _) = tight_budget_model();
        let solver = BranchBound::new().with_max_nodes(1);
        // One node is enough only if the relaxation happens to be integral;
        // here it is not, so we must hit the limit.
        assert_eq!(solver.solve(&m), Err(IlpError::NodeLimit { limit: 1 }));
    }

    #[test]
    fn run_keeps_incumbent_on_node_limit() {
        // min 2a + 3b s.t. 3a + 5b >= 4. Root LP picks b = 0.8 (fractional),
        // and rounding it up to b = 1 is feasible, so the root already yields
        // an incumbent before the 1-node budget runs out.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 2.0), (b, 3.0)]);
        m.add_constraint([(a, 3.0), (b, 5.0)], Relation::Ge, 4.0)
            .unwrap();
        let run = BranchBound::new().with_max_nodes(1).run(&m, None).unwrap();
        assert_eq!(run.termination, Termination::NodeLimit);
        // The rounding heuristic finds a feasible point at the root, so the
        // incumbent survives budget exhaustion instead of being discarded.
        let sol = run.solution.expect("rounding heuristic seeds an incumbent");
        assert!(m.is_feasible(&sol.values, 1e-6));
        assert_eq!(sol.objective.round() as i64, 3);
        assert_eq!(run.stats.nodes_explored, 1);
    }

    #[test]
    fn deadline_zero_stops_immediately() {
        let (m, _) = tight_budget_model();
        let run = BranchBound::new()
            .with_deadline(Duration::ZERO)
            .run(&m, None)
            .unwrap();
        assert_eq!(run.termination, Termination::Deadline);
        assert_eq!(run.stats.nodes_explored, 0);
        assert!(run.solution.is_none());
    }

    #[test]
    fn deadline_maps_to_error_in_solve() {
        let (m, _) = tight_budget_model();
        let solver = BranchBound::new().with_deadline(Duration::ZERO);
        assert_eq!(solver.solve(&m), Err(IlpError::DeadlineExceeded));
    }

    #[test]
    fn warm_start_seeds_incumbent() {
        let (m, vars) = tight_budget_model();
        // All-zero is feasible (0 <= 11); a valid if weak warm start.
        let warm = vec![0.0; vars.len()];
        let run = BranchBound::new().run(&m, Some(&warm)).unwrap();
        assert!(run.stats.warm_start_accepted);
        assert_eq!(run.termination, Termination::Optimal);
        // Optimum picks 5 variables (2*5 = 10 <= 11).
        let sol = run.solution.unwrap();
        assert_eq!(sol.objective.round() as i64, 5);
    }

    #[test]
    fn infeasible_warm_start_ignored() {
        let (m, vars) = tight_budget_model();
        // All-ones violates the knapsack row (24 > 11).
        let warm = vec![1.0; vars.len()];
        let run = BranchBound::new().run(&m, Some(&warm)).unwrap();
        assert!(!run.stats.warm_start_accepted);
        assert_eq!(run.termination, Termination::Optimal);
    }

    #[test]
    fn warm_start_prunes_search() {
        // Seeding the true optimum must not explore more nodes than the cold
        // run, and on this model strictly fewer.
        let (m, vars) = tight_budget_model();
        let cold = BranchBound::new().run(&m, None).unwrap();
        let mut warm_values = vec![0.0; vars.len()];
        for v in vars.iter().take(5) {
            warm_values[v.index()] = 1.0;
        }
        let warm = BranchBound::new().run(&m, Some(&warm_values)).unwrap();
        assert!(warm.stats.warm_start_accepted);
        assert!(
            warm.stats.nodes_explored <= cold.stats.nodes_explored,
            "warm {} > cold {}",
            warm.stats.nodes_explored,
            cold.stats.nodes_explored
        );
    }

    #[test]
    fn root_probing_fixes_vars_and_prunes() {
        // min 10a + 2b + 2c s.t. 3b + 3c >= 4. Optimum is b = c = 1 (obj 4);
        // the root LP is fractional (b = 1, c = 1/3) and rounds down to an
        // infeasible point, so the cold run has to branch its way to an
        // incumbent. Warm-starting with the optimum lets root probing fix
        // both a (flipping it to 1 costs 10 > 4) and b (flipping it to 0 is
        // infeasible), leaving only c to branch on.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 10.0), (b, 2.0), (c, 2.0)]);
        m.add_constraint([(b, 3.0), (c, 3.0)], Relation::Ge, 4.0)
            .unwrap();

        let cold = BranchBound::new().run(&m, None).unwrap();
        let warm_point = vec![0.0, 1.0, 1.0];
        let warm = BranchBound::new().run(&m, Some(&warm_point)).unwrap();

        assert!(warm.stats.warm_start_accepted);
        assert!(warm.stats.vars_fixed >= 2, "{:?}", warm.stats);
        assert_eq!(cold.stats.vars_fixed, 0);
        let (cs, ws) = (cold.solution.unwrap(), warm.solution.unwrap());
        assert_eq!(cs.objective.round() as i64, 4);
        assert_eq!(ws.objective.round() as i64, 4);
        assert!(
            warm.stats.nodes_explored < cold.stats.nodes_explored,
            "warm {} !< cold {}",
            warm.stats.nodes_explored,
            cold.stats.nodes_explored
        );
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        m.add_constraint([(a, 1.0)], Relation::Ge, 1.0).unwrap();
        let (s, stats) = BranchBound::new().solve_with_stats(&m).unwrap();
        assert_eq!(s.objective.round() as i64, 1);
        assert!(stats.nodes_explored >= 1);
        assert!(stats.incumbent_updates >= 1);
    }

    #[test]
    fn no_constraints_picks_bound_values() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 2.0), (b, -3.0)]);
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective.round() as i64, -3);
        assert!(!s.is_set(a) && s.is_set(b));
    }
}
