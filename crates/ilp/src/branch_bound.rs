//! Best-first branch-and-bound over the simplex LP relaxation.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::simplex::{solve_with_bounds, SimplexOptions};
use crate::{IlpError, IlpSolution, Model, Sense, VarId};

const INT_TOL: f64 = 1e-6;

/// Branch-and-bound solver for models with binary variables.
///
/// Nodes are explored best-bound-first; branching picks the most fractional
/// binary of the node's LP optimum.
///
/// # Example
///
/// ```
/// use partita_ilp::{Model, Sense, Relation, BranchBound};
/// # fn main() -> Result<(), partita_ilp::IlpError> {
/// // Knapsack: max 6a + 5b + 4c, 5a + 4b + 3c <= 8.
/// let mut m = Model::new(Sense::Maximize);
/// let a = m.add_binary("a");
/// let b = m.add_binary("b");
/// let c = m.add_binary("c");
/// m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)]);
/// m.add_constraint([(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 8.0)?;
/// let s = BranchBound::new().solve(&m)?;
/// assert_eq!(s.objective.round() as i64, 10); // a + c
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct BranchBound {
    max_nodes: usize,
    simplex: SimplexOptions,
}

impl Default for BranchBound {
    fn default() -> Self {
        BranchBound {
            max_nodes: 200_000,
            simplex: SimplexOptions::default(),
        }
    }
}

/// Statistics of a branch-and-bound run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BranchBoundStats {
    /// Nodes whose LP relaxation was solved.
    pub nodes_explored: usize,
    /// Nodes pruned by bound.
    pub nodes_pruned: usize,
}

struct Node {
    /// Normalised bound (lower is better).
    score: f64,
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; we want the smallest score on top.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
    }
}

impl BranchBound {
    /// Creates a solver with default limits.
    #[must_use]
    pub fn new() -> BranchBound {
        BranchBound::default()
    }

    /// Overrides the node limit.
    #[must_use]
    pub fn with_max_nodes(mut self, max_nodes: usize) -> BranchBound {
        self.max_nodes = max_nodes;
        self
    }

    /// Solves `model` to proven optimality.
    ///
    /// # Errors
    ///
    /// [`IlpError::Infeasible`] when no integer assignment satisfies the
    /// constraints, [`IlpError::Unbounded`] when the relaxation is unbounded,
    /// [`IlpError::NodeLimit`] when the node budget is exhausted.
    pub fn solve(&self, model: &Model) -> Result<IlpSolution, IlpError> {
        let (sol, _stats) = self.solve_with_stats(model)?;
        Ok(sol)
    }

    /// Solves and also returns search statistics.
    ///
    /// # Errors
    ///
    /// Same as [`BranchBound::solve`].
    pub fn solve_with_stats(
        &self,
        model: &Model,
    ) -> Result<(IlpSolution, BranchBoundStats), IlpError> {
        let n = model.num_vars();
        let minimize = model.sense() == Sense::Minimize;
        let norm = |obj: f64| if minimize { obj } else { -obj };

        let mut root_lower = Vec::with_capacity(n);
        let mut root_upper = Vec::with_capacity(n);
        for i in 0..n {
            let (l, u) = model.var_bounds(VarId(i)).expect("var exists");
            root_lower.push(l);
            root_upper.push(u);
        }

        let mut stats = BranchBoundStats::default();
        let mut heap: BinaryHeap<Node> = BinaryHeap::new();
        heap.push(Node {
            score: f64::NEG_INFINITY,
            lower: root_lower,
            upper: root_upper,
        });

        let binaries = model.binary_vars();
        let mut incumbent: Option<IlpSolution> = None;
        let mut incumbent_score = f64::INFINITY;
        let mut root = true;

        while let Some(node) = heap.pop() {
            if node.score >= incumbent_score - 1e-9 {
                stats.nodes_pruned += 1;
                continue;
            }
            if stats.nodes_explored >= self.max_nodes {
                return Err(IlpError::NodeLimit {
                    limit: self.max_nodes,
                });
            }
            stats.nodes_explored += 1;

            let lp = match solve_with_bounds(model, &node.lower, &node.upper, self.simplex) {
                Ok(lp) => lp,
                Err(IlpError::Infeasible) => {
                    if root && heap.is_empty() && incumbent.is_none() {
                        return Err(IlpError::Infeasible);
                    }
                    root = false;
                    continue;
                }
                Err(e) => return Err(e),
            };
            root = false;
            let bound = norm(lp.objective);
            if bound >= incumbent_score - 1e-9 {
                stats.nodes_pruned += 1;
                continue;
            }

            // Rounding heuristic: snapping the LP optimum to the nearest
            // integers often yields a feasible incumbent immediately on
            // coverage-style models, which tightens pruning dramatically.
            {
                let mut rounded = lp.values.clone();
                for &v in &binaries {
                    rounded[v.index()] = rounded[v.index()].round();
                }
                if model.is_feasible(&rounded, 1e-6) {
                    let objective = model.objective().eval(&rounded);
                    let score = norm(objective);
                    if score < incumbent_score {
                        incumbent_score = score;
                        incumbent = Some(IlpSolution {
                            objective,
                            values: rounded,
                            nodes_explored: stats.nodes_explored,
                        });
                    }
                }
            }

            // Branch on the fractional binary with the largest
            // objective×fractionality impact: deciding heavy variables first
            // moves the bound fastest (plain most-fractional branching
            // enumerates plateaus on coverage models).
            let frac = binaries
                .iter()
                .map(|&v| (v, lp.value(v)))
                .filter(|(_, x)| (x - x.round()).abs() > INT_TOL)
                .max_by(|a, b| {
                    let weight = |(v, x): &(VarId, f64)| {
                        let f = (x - x.round()).abs();
                        let c = model.objective().coeff(*v).abs().max(1e-6);
                        f * c
                    };
                    weight(a)
                        .partial_cmp(&weight(b))
                        .unwrap_or(Ordering::Equal)
                });

            match frac {
                None => {
                    // Integer feasible: snap binaries and record.
                    let mut values = lp.values.clone();
                    for &v in &binaries {
                        values[v.index()] = values[v.index()].round();
                    }
                    let objective = model.objective().eval(&values);
                    let score = norm(objective);
                    if score < incumbent_score {
                        incumbent_score = score;
                        incumbent = Some(IlpSolution {
                            objective,
                            values,
                            nodes_explored: stats.nodes_explored,
                        });
                    }
                }
                Some((v, x)) => {
                    // Branch down (x = 0) and up (x = 1).
                    let mut down = Node {
                        score: bound,
                        lower: node.lower.clone(),
                        upper: node.upper.clone(),
                    };
                    down.upper[v.index()] = x.floor();
                    let mut up = Node {
                        score: bound,
                        lower: node.lower,
                        upper: node.upper,
                    };
                    up.lower[v.index()] = x.ceil();
                    heap.push(down);
                    heap.push(up);
                }
            }
        }

        match incumbent {
            Some(mut sol) => {
                sol.nodes_explored = stats.nodes_explored;
                Ok((sol, stats))
            }
            None => Err(IlpError::Infeasible),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Relation;

    #[test]
    fn set_cover_minimum_area() {
        // The paper-shaped problem: pick IMPs to cover a gain requirement at
        // minimum area. min 3a + 14b + 15c s.t. gains 115a + 41b + 162c >= 150.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 3.0), (b, 14.0), (c, 15.0)]);
        m.add_constraint([(a, 115.0), (b, 41.0), (c, 162.0)], Relation::Ge, 150.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        // c alone reaches 162 >= 150 at area 15; a+b costs 17.
        assert_eq!(s.objective.round() as i64, 15);
        assert!(!s.is_set(a) && !s.is_set(b) && s.is_set(c));
    }

    #[test]
    fn infeasible_binary_model() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        m.add_constraint([(a, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(BranchBound::new().solve(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn conflict_constraints_respected() {
        // max a + b with a + b <= 1 (SC-PC conflict shape).
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 1.0), (b, 1.0)]);
        m.add_constraint([(a, 1.0), (b, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective.round() as i64, 1);
        assert_eq!(s.value(a).round() as i64 + s.value(b).round() as i64, 1);
    }

    #[test]
    fn mixed_continuous_and_binary() {
        // min 10z + y s.t. y >= 3 - 5z, y >= 0, z binary.
        // z=0 -> y=3 cost 3; z=1 -> y=0 cost 10. Optimum 3.
        let mut m = Model::new(Sense::Minimize);
        let z = m.add_binary("z");
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(z, 10.0), (y, 1.0)]);
        m.add_constraint([(y, 1.0), (z, 5.0)], Relation::Ge, 3.0)
            .unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
        assert!(!s.is_set(z));
    }

    #[test]
    fn node_limit_enforced() {
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..12).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        // Odd-sum style constraint keeps relaxation fractional.
        m.add_constraint(vars.iter().map(|&v| (v, 2.0)), Relation::Le, 11.0)
            .unwrap();
        let solver = BranchBound::new().with_max_nodes(1);
        // One node is enough only if the relaxation happens to be integral;
        // here it is not, so we must hit the limit.
        assert_eq!(solver.solve(&m), Err(IlpError::NodeLimit { limit: 1 }));
    }

    #[test]
    fn stats_reported() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        m.add_constraint([(a, 1.0)], Relation::Ge, 1.0).unwrap();
        let (s, stats) = BranchBound::new().solve_with_stats(&m).unwrap();
        assert_eq!(s.objective.round() as i64, 1);
        assert!(stats.nodes_explored >= 1);
    }

    #[test]
    fn no_constraints_picks_bound_values() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 2.0), (b, -3.0)]);
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective.round() as i64, -3);
        assert!(!s.is_set(a) && s.is_set(b));
    }
}
