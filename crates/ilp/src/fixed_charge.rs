//! Fixed-charge linearization (paper §4.1, citing Taha \[10\]).
//!
//! The objective term `Σ_k z_k·a_k` charges the area of IP *k* exactly once
//! when any IMP using it is selected. The paper linearises the indicator
//! `z_k = 1 ⇔ Σ_{i,j} s_{ijk}·x_{ij} > 0` with
//!
//! ```text
//! Σ s_ijk · x_ij ≤ M · z_k      (M ≥ Σ x_ij, z_k ∈ {0,1})
//! ```
//!
//! and lets the minimisation objective force `z_k = 0` when unused.

use crate::{IlpError, Model, Relation, VarId};

/// Links an indicator `z` so that it must be 1 whenever any of `users` is 1.
///
/// Adds the constraint `Σ users − M·z ≤ 0` with `M = users.len()` (the
/// tightest valid big-M for 0/1 users). The caller puts the fixed charge on
/// `z` in the objective; minimisation then drives `z` to 0 when no user is
/// selected.
///
/// # Errors
///
/// Propagates [`IlpError::UnknownVariable`] from the underlying constraint.
///
/// # Example
///
/// ```
/// use partita_ilp::{Model, Sense, Relation, BranchBound, fixed_charge};
/// # fn main() -> Result<(), partita_ilp::IlpError> {
/// let mut m = Model::new(Sense::Minimize);
/// let x1 = m.add_binary("x1");
/// let x2 = m.add_binary("x2");
/// let z = m.add_binary("z");
/// // Area 5 charged once if either x is chosen; require gain >= 1.
/// m.set_objective([(z, 5.0)]);
/// m.add_constraint([(x1, 1.0), (x2, 1.0)], Relation::Ge, 1.0)?;
/// fixed_charge::link_indicator(&mut m, z, &[x1, x2])?;
/// let s = BranchBound::new().solve(&m)?;
/// assert_eq!(s.objective.round() as i64, 5); // z forced to 1
/// # Ok(())
/// # }
/// ```
pub fn link_indicator(model: &mut Model, z: VarId, users: &[VarId]) -> Result<(), IlpError> {
    if users.is_empty() {
        // No users can ever force z; pin it to 0 so the charge vanishes.
        return model.add_constraint([(z, 1.0)], Relation::Le, 0.0);
    }
    let big_m = users.len() as f64;
    let mut terms: Vec<(VarId, f64)> = users.iter().map(|&u| (u, 1.0)).collect();
    terms.push((z, -big_m));
    model.add_labeled_constraint(terms, Relation::Le, 0.0, Some("fixed-charge"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBound, Sense};

    #[test]
    fn unused_indicator_is_driven_to_zero() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let z = m.add_binary("z");
        m.set_objective([(z, 5.0), (x, 1.0)]);
        link_indicator(&mut m, z, &[x]).unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert_eq!(s.objective, 0.0);
        assert!(!s.is_set(z));
    }

    #[test]
    fn any_user_forces_indicator() {
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_binary("x1");
        let x2 = m.add_binary("x2");
        let x3 = m.add_binary("x3");
        let z = m.add_binary("z");
        m.set_objective([(z, 7.0)]);
        // Force two users on.
        m.add_constraint([(x1, 1.0)], Relation::Ge, 1.0).unwrap();
        m.add_constraint([(x3, 1.0)], Relation::Ge, 1.0).unwrap();
        link_indicator(&mut m, z, &[x1, x2, x3]).unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert!(s.is_set(z));
        assert_eq!(s.objective.round() as i64, 7); // charged once, not twice
    }

    #[test]
    fn empty_users_pins_indicator_off() {
        let mut m = Model::new(Sense::Minimize);
        let z = m.add_binary("z");
        m.set_objective([(z, -3.0)]); // even a rewarding z must stay 0
        link_indicator(&mut m, z, &[]).unwrap();
        let s = BranchBound::new().solve(&m).unwrap();
        assert!(!s.is_set(z));
    }
}
