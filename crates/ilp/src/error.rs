//! Error type for model construction and solving.

use std::error::Error;
use std::fmt;

use crate::VarId;

/// Errors raised by the ILP stack.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum IlpError {
    /// A variable id does not belong to the model.
    UnknownVariable(VarId),
    /// A constraint index does not belong to the model.
    UnknownConstraint(usize),
    /// A coefficient or bound is not finite.
    NonFiniteCoefficient {
        /// Where the bad value appeared.
        context: &'static str,
        /// The offending value.
        value: f64,
    },
    /// The LP relaxation is infeasible.
    Infeasible,
    /// The LP relaxation is unbounded.
    Unbounded,
    /// The simplex iteration limit was exceeded.
    IterationLimit {
        /// Configured limit.
        limit: usize,
    },
    /// Branch-and-bound exceeded its node limit without proving optimality.
    NodeLimit {
        /// Configured limit.
        limit: usize,
    },
    /// Branch-and-bound ran past its wall-clock deadline without proving
    /// optimality.
    DeadlineExceeded,
    /// A cooperative cancellation flag stopped the solve before it proved
    /// optimality (see [`crate::BranchBound::with_cancel`]).
    Cancelled,
    /// The exhaustive solver was asked for too many binaries.
    TooManyBinaries {
        /// Number of binaries in the model.
        count: usize,
        /// Supported maximum.
        max: usize,
    },
    /// A simplex tolerance option is NaN or negative.
    InvalidTolerance {
        /// Which [`crate::simplex::SimplexOptions`] field was rejected.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// The tableau was poisoned by non-finite arithmetic (overflow feeding
    /// `inf - inf` during pivoting) and pivot selection can no longer be
    /// trusted.
    NumericalInstability {
        /// The pivot-selection step that detected the poisoned value.
        context: &'static str,
    },
}

impl fmt::Display for IlpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IlpError::UnknownVariable(v) => write!(f, "unknown variable {v}"),
            IlpError::UnknownConstraint(i) => write!(f, "unknown constraint index {i}"),
            IlpError::NonFiniteCoefficient { context, value } => {
                write!(f, "non-finite coefficient {value} in {context}")
            }
            IlpError::Infeasible => f.write_str("model is infeasible"),
            IlpError::Unbounded => f.write_str("model is unbounded"),
            IlpError::IterationLimit { limit } => {
                write!(f, "simplex exceeded {limit} iterations")
            }
            IlpError::NodeLimit { limit } => {
                write!(f, "branch-and-bound exceeded {limit} nodes")
            }
            IlpError::DeadlineExceeded => f.write_str("branch-and-bound ran past its deadline"),
            IlpError::Cancelled => f.write_str("solve was cancelled by a cooperating solver"),
            IlpError::TooManyBinaries { count, max } => {
                write!(
                    f,
                    "exhaustive solver supports at most {max} binaries, got {count}"
                )
            }
            IlpError::InvalidTolerance { name, value } => {
                write!(
                    f,
                    "simplex option {name} must be finite and >= 0, got {value}"
                )
            }
            IlpError::NumericalInstability { context } => {
                write!(
                    f,
                    "tableau poisoned by non-finite arithmetic during {context}"
                )
            }
        }
    }
}

impl Error for IlpError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(IlpError::Infeasible.to_string(), "model is infeasible");
        assert!(IlpError::IterationLimit { limit: 9 }
            .to_string()
            .contains('9'));
    }

    #[test]
    fn is_send_sync_error() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<IlpError>();
    }
}
