//! 0/1 integer linear programming for the Partita S-instruction selector.
//!
//! The DAC'99 paper formulates optimal IP/interface selection as an ILP
//! (§4.1) and uses the *fixed charge problem* linearization of Taha's
//! textbook for the IP-area indicator variables. This crate provides the
//! whole stack, built from scratch:
//!
//! * [`Model`] — variables (continuous / binary), linear constraints and a
//!   linear objective;
//! * [`simplex`] — a dense two-phase primal simplex for LP relaxations;
//! * [`BranchBound`] — best-first branch-and-bound over the LP relaxation;
//! * [`fixed_charge`] — the `Σ s·x ≤ M·z` linearization helper used for the
//!   "IP area counted once" objective term;
//! * [`solve_binary_exhaustive`] — a brute-force reference solver used by
//!   the property-test suite to validate branch-and-bound.
//!
//! # Example
//!
//! ```
//! use partita_ilp::{Model, Relation, Sense, BranchBound};
//!
//! # fn main() -> Result<(), partita_ilp::IlpError> {
//! // Minimise 3a + 2b subject to a + b >= 1 (a, b binary).
//! let mut m = Model::new(Sense::Minimize);
//! let a = m.add_binary("a");
//! let b = m.add_binary("b");
//! m.set_objective([(a, 3.0), (b, 2.0)]);
//! m.add_constraint([(a, 1.0), (b, 1.0)], Relation::Ge, 1.0)?;
//! let sol = BranchBound::new().solve(&m)?;
//! assert_eq!(sol.objective.round() as i64, 2);
//! assert_eq!(sol.value(b).round() as i64, 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod branch_bound;
pub mod cuts;
mod error;
mod exhaustive;
mod expr;
pub mod fixed_charge;
mod model;
pub mod simplex;
mod solution;

pub use branch_bound::{
    lex_less, BranchBound, BranchBoundRun, BranchBoundStats, SharedBound, Termination, WorkerStats,
};
pub use error::IlpError;
pub use exhaustive::{
    run_binary_exhaustive, solve_binary_exhaustive, solve_binary_exhaustive_counted, ExhaustiveRun,
    MAX_EXHAUSTIVE_BINARIES,
};
pub use expr::LinExpr;
pub use model::{Model, Relation, Sense, VarId, VarKind};
pub use simplex::{solve_with_basis, Basis, BasisSolve, SimplexOps};
pub use solution::{IlpSolution, LpSolution};

// The service daemon shares models, bases and solutions across worker
// threads; these compile-time assertions pin the `Send + Sync` bounds so a
// future `Rc`/`RefCell`/raw-pointer field turns up here, not as a distant
// type error inside the daemon's thread scope.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Model>();
    assert_send_sync::<Basis>();
    assert_send_sync::<IlpSolution>();
    assert_send_sync::<LpSolution>();
    assert_send_sync::<BranchBound>();
    assert_send_sync::<BranchBoundStats>();
    assert_send_sync::<IlpError>();
    // Portfolio racing shares these across racer threads.
    assert_send_sync::<SharedBound>();
    assert_send_sync::<cuts::CutSeparator>();
    assert_send_sync::<ExhaustiveRun>();
};
