//! Dense two-phase primal simplex.
//!
//! Solves the LP relaxation of a [`Model`] with per-variable bound overrides
//! (used by branch-and-bound to fix binaries). The implementation is a
//! textbook tableau simplex with Bland's anti-cycling rule:
//!
//! 1. shift every variable by its lower bound so all variables are ≥ 0,
//! 2. add explicit rows for finite upper bounds,
//! 3. convert to equalities with slack/surplus columns, normalise `b ≥ 0`,
//! 4. phase 1 minimises the sum of one artificial per row,
//! 5. phase 2 minimises the (sense-normalised) objective.
//!
//! Problem sizes in this repository are small (≲ 100 structural variables,
//! ≲ 300 rows), so a dense tableau is the right tool.

// The tableau code intentionally uses explicit row/column indices: the
// simplex pivots read much closer to the textbook presentation that way.
#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

use crate::{IlpError, LpSolution, Model, Relation, Sense};

const EPS: f64 = 1e-10;

/// Options for the simplex solver.
///
/// The three tolerances used to be scattered magic literals
/// (`1e-6`/`1e-7`/`1e-9`) inside the solve path; they are hoisted here so
/// every feasibility decision in one solve uses one consistent set, and so
/// callers can tighten or relax them deliberately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Hard cap on pivots across both phases.
    pub max_iterations: usize,
    /// Constraint-satisfaction slack: phase-1 residuals below this count as
    /// feasible, and pinned-point / constant-constraint checks allow this
    /// much violation.
    pub feasibility_tol: f64,
    /// Smallest tableau element treated as a usable pivot when driving
    /// artificials out of the basis.
    pub pivot_tol: f64,
    /// Objective values within this of zero are snapped to exactly zero.
    pub objective_tol: f64,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 50_000,
            feasibility_tol: 1e-6,
            pivot_tol: 1e-7,
            objective_tol: 1e-9,
        }
    }
}

impl SimplexOptions {
    /// Overrides the feasibility tolerance.
    #[must_use]
    pub fn with_feasibility_tol(mut self, tol: f64) -> SimplexOptions {
        self.feasibility_tol = tol;
        self
    }

    /// Overrides the pivot tolerance.
    #[must_use]
    pub fn with_pivot_tol(mut self, tol: f64) -> SimplexOptions {
        self.pivot_tol = tol;
        self
    }

    /// Overrides the objective zero-snap tolerance.
    #[must_use]
    pub fn with_objective_tol(mut self, tol: f64) -> SimplexOptions {
        self.objective_tol = tol;
        self
    }
}

/// Reusable buffers for repeated LP solves.
///
/// Branch-and-bound solves one LP per node, and the tableau is by far the
/// largest allocation of each solve. A scratch kept per worker lets
/// [`solve_with_bounds_scratch`] reuse the tableau rows, the basis vector and
/// the row bookkeeping across nodes instead of re-allocating them.
/// Capacities only grow, so a scratch warmed up on the root LP serves every
/// descendant without further allocation.
#[derive(Debug, Default)]
pub struct SimplexScratch {
    /// Tableau rows (`m + 1` rows of `width` columns), pooled across solves.
    tableau: Vec<Vec<f64>>,
    /// Basis column per row.
    basis: Vec<usize>,
    /// Per-row `(relation, shifted rhs)` collected before the tableau is
    /// sized (the artificial-variable count depends on it).
    row_meta: Vec<(Relation, f64)>,
    /// Variable index backing each upper-bound row.
    bound_vars: Vec<usize>,
}

impl SimplexScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> SimplexScratch {
        SimplexScratch::default()
    }
}

/// Solves the LP relaxation of `model` with the model's own bounds.
///
/// # Errors
///
/// [`IlpError::Infeasible`], [`IlpError::Unbounded`] or
/// [`IlpError::IterationLimit`].
pub fn solve_relaxation(model: &Model, options: SimplexOptions) -> Result<LpSolution, IlpError> {
    let n = model.num_vars();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for i in 0..n {
        let (l, u) = model
            .var_bounds(crate::VarId(i))
            .expect("index within num_vars");
        lower.push(l);
        upper.push(u);
    }
    solve_with_bounds(model, &lower, &upper, options)
}

/// Solves the LP relaxation with overridden variable bounds.
///
/// # Errors
///
/// [`IlpError::Infeasible`], [`IlpError::Unbounded`] or
/// [`IlpError::IterationLimit`]. Also infeasible when `lower > upper` for
/// any variable.
pub fn solve_with_bounds(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
) -> Result<LpSolution, IlpError> {
    solve_with_bounds_scratch(model, lower, upper, options, &mut SimplexScratch::new())
}

/// Like [`solve_with_bounds`], reusing the buffers in `scratch` for the
/// tableau and row bookkeeping. Repeated callers (one LP per
/// branch-and-bound node) should hold one scratch per worker thread.
///
/// # Errors
///
/// Same as [`solve_with_bounds`].
pub fn solve_with_bounds_scratch(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
) -> Result<LpSolution, IlpError> {
    let n = model.num_vars();
    assert_eq!(lower.len(), n, "lower bounds arity");
    assert_eq!(upper.len(), n, "upper bounds arity");
    for i in 0..n {
        if lower[i] > upper[i] + EPS {
            return Err(IlpError::Infeasible);
        }
    }

    // Eliminate fixed variables (lb == ub): branch-and-bound pins binaries
    // this way, and dropping their columns (and bound rows) keeps the
    // tableau small deep in the search tree.
    let fixed: Vec<bool> = (0..n).map(|i| upper[i] - lower[i] <= EPS).collect();
    if fixed.iter().any(|&f| f) && !fixed.iter().all(|&f| f) {
        return solve_reduced(model, lower, upper, &fixed, options, scratch);
    }
    if fixed.iter().all(|&f| f) && n > 0 {
        // Everything pinned: just evaluate feasibility.
        let values: Vec<f64> = lower.to_vec();
        if !feasible_point(model, &values, options.feasibility_tol) {
            return Err(IlpError::Infeasible);
        }
        return Ok(LpSolution {
            objective: model.objective().eval(&values),
            values,
            iterations: 0,
        });
    }

    // Pass 1 — row metadata in shifted space y = x - lower: the constraint
    // rows' shifted rhs, then one upper-bound row y_i <= u_i - l_i per
    // finite-width variable. The artificial count (and so the tableau
    // width) depends on this, hence the separate pass before any
    // coefficients are written.
    let SimplexScratch {
        tableau,
        basis,
        row_meta,
        bound_vars,
    } = scratch;
    row_meta.clear();
    bound_vars.clear();
    for c in model.constraints() {
        let mut shift = 0.0;
        for (v, k) in c.expr.terms() {
            shift += k * lower[v.index()];
        }
        row_meta.push((c.relation, c.rhs - c.expr.constant() - shift));
    }
    for i in 0..n {
        let width = upper[i] - lower[i];
        if width.is_finite() {
            row_meta.push((Relation::Le, width));
            bound_vars.push(i);
        }
    }

    let m = row_meta.len();
    // Normalise every row to rhs >= 0 and decide its initial basis column:
    // a `<=` row whose slack keeps coefficient +1 starts basic on its slack
    // (no artificial needed); `>=`/`=`/negated rows get an artificial.
    // Columns: n structural + m slack/surplus + one artificial per row that
    // needs one + 1 rhs.
    let slack0 = n;
    let needs_artificial = |relation: Relation, rhs: f64| {
        let negated = rhs < 0.0;
        match relation {
            Relation::Le => negated,
            Relation::Ge => !negated,
            Relation::Eq => true,
        }
    };
    let art0 = n + m;
    let n_art = row_meta
        .iter()
        .filter(|&&(rel, rhs)| needs_artificial(rel, rhs))
        .count();
    let width = n + m + n_art + 1;
    let rhs_col = width - 1;
    if tableau.len() < m + 1 {
        tableau.resize_with(m + 1, Vec::new);
    }
    for row in &mut tableau[..m + 1] {
        row.clear();
        row.resize(width, 0.0);
    }
    let t = &mut tableau[..m + 1]; // last row = objective
    basis.clear();
    basis.resize(m, usize::MAX);

    // Pass 2 — fill the coefficients straight into the pooled tableau rows.
    let n_constraints = model.constraints().len();
    let mut next_art = art0;
    for (r, &(relation, raw_rhs)) in row_meta.iter().enumerate() {
        let mut sign = 1.0;
        let mut rhs = raw_rhs;
        if rhs < 0.0 {
            sign = -1.0;
            rhs = -rhs;
        }
        if r < n_constraints {
            for (v, k) in model.constraints()[r].expr.terms() {
                t[r][v.index()] = sign * k;
            }
        } else {
            t[r][bound_vars[r - n_constraints]] = sign;
        }
        match relation {
            Relation::Le => t[r][slack0 + r] = sign,
            Relation::Ge => t[r][slack0 + r] = -sign,
            Relation::Eq => {}
        }
        t[r][rhs_col] = rhs;
        if needs_artificial(relation, raw_rhs) {
            t[r][next_art] = 1.0;
            basis[r] = next_art;
            next_art += 1;
        } else {
            basis[r] = slack0 + r;
        }
    }
    debug_assert_eq!(next_art, art0 + n_art);

    let mut iters = 0usize;
    if n_art > 0 {
        // Phase 1: minimise the sum of artificials. The objective row holds
        // reduced costs; price out the artificial basis rows.
        for j in 0..width {
            t[m][j] = 0.0;
        }
        for a in art0..art0 + n_art {
            t[m][a] = 1.0;
        }
        for r in 0..m {
            if basis[r] >= art0 {
                for j in 0..width {
                    t[m][j] -= t[r][j];
                }
            }
        }
        run_simplex(t, basis, m, art0, rhs_col, &mut iters, options)?;
        let phase1 = -t[m][rhs_col];
        if phase1 > options.feasibility_tol {
            return Err(IlpError::Infeasible);
        }
    }

    // Drive artificials out of the basis where possible; drop redundant rows
    // by leaving them (their rhs is 0 and artificial stays basic at 0 — we
    // forbid artificials from re-entering in phase 2 instead of removing).
    for r in 0..m {
        if basis[r] >= art0 && t[r][rhs_col].abs() <= options.pivot_tol {
            if let Some(j) = (0..art0).find(|&j| t[r][j].abs() > options.pivot_tol) {
                pivot(t, basis, r, j, rhs_col);
            }
        }
    }

    // Phase 2 objective.
    let minimize = model.sense() == Sense::Minimize;
    let mut cost = vec![0.0; width];
    for (v, c) in model.objective().terms() {
        cost[v.index()] = if minimize { c } else { -c };
    }
    for j in 0..width {
        t[m][j] = cost[j];
    }
    t[m][rhs_col] = 0.0;
    // Price out current basis.
    for r in 0..m {
        let cb = cost[basis[r]];
        if cb != 0.0 {
            for j in 0..width {
                t[m][j] -= cb * t[r][j];
            }
        }
    }

    run_simplex(t, basis, m, art0, rhs_col, &mut iters, options)?;

    // Extract y values, translate back to x.
    let mut y = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            y[basis[r]] = t[r][rhs_col];
        }
    }
    let values: Vec<f64> = (0..n).map(|i| y[i] + lower[i]).collect();
    let mut objective = model.objective().constant()
        + model
            .objective()
            .terms()
            .iter()
            .map(|(v, c)| c * values[v.index()])
            .sum::<f64>();
    // Clean tiny noise.
    if objective.abs() < options.objective_tol {
        objective = 0.0;
    }
    Ok(LpSolution {
        objective,
        values,
        iterations: iters,
    })
}

/// Runs simplex iterations on the tableau until optimality.
///
/// Artificial columns (`j >= art_start`) are never allowed to enter.
fn run_simplex(
    t: &mut [Vec<f64>],
    basis: &mut [usize],
    m: usize,
    art_start: usize,
    rhs_col: usize,
    iters: &mut usize,
    options: SimplexOptions,
) -> Result<(), IlpError> {
    loop {
        *iters += 1;
        if *iters > options.max_iterations {
            return Err(IlpError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        // Bland's rule: smallest index with negative reduced cost.
        let entering = (0..art_start).find(|&j| t[m][j] < -EPS);
        let Some(e) = entering else {
            return Ok(()); // optimal
        };
        // Ratio test, Bland tie-break on basis index.
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = t[r][e];
            if a > EPS {
                let ratio = t[r][rhs_col] / a;
                match leave {
                    None => leave = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - EPS
                            || ((ratio - lratio).abs() <= EPS && basis[r] < basis[lr])
                        {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((lr, _)) = leave else {
            return Err(IlpError::Unbounded);
        };
        pivot(t, basis, lr, e, rhs_col);
    }
}

/// Pivots on `(row, col)`.
fn pivot(t: &mut [Vec<f64>], basis: &mut [usize], row: usize, col: usize, rhs_col: usize) {
    let p = t[row][col];
    debug_assert!(p.abs() > 1e-12, "pivot on ~zero element");
    let inv = 1.0 / p;
    for v in t[row].iter_mut() {
        *v *= inv;
    }
    let pivot_row = t[row].clone();
    for (r, trow) in t.iter_mut().enumerate() {
        if r != row {
            let factor = trow[col];
            if factor != 0.0 {
                for (j, v) in trow.iter_mut().enumerate() {
                    *v -= factor * pivot_row[j];
                }
            }
        }
    }
    basis[row] = col;
    let _ = rhs_col;
}

/// Checks a fully pinned assignment against the model's constraints.
fn feasible_point(model: &Model, values: &[f64], tol: f64) -> bool {
    model.constraints().iter().all(|c| {
        let lhs = c.expr.eval(values);
        match c.relation {
            Relation::Le => lhs <= c.rhs + tol,
            Relation::Ge => lhs >= c.rhs - tol,
            Relation::Eq => (lhs - c.rhs).abs() <= tol,
        }
    })
}

/// Solves with the fixed variables substituted out of the model.
fn solve_reduced(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    fixed: &[bool],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
) -> Result<LpSolution, IlpError> {
    let n = model.num_vars();
    // Map original -> reduced indices.
    let mut reduced_index = vec![usize::MAX; n];
    let mut free: Vec<usize> = Vec::new();
    for i in 0..n {
        if !fixed[i] {
            reduced_index[i] = free.len();
            free.push(i);
        }
    }
    let mut reduced = Model::new(model.sense());
    let mut rlower = Vec::with_capacity(free.len());
    let mut rupper = Vec::with_capacity(free.len());
    for &i in &free {
        // Kind is irrelevant for the relaxation; keep continuous.
        reduced.add_continuous(format!("r{i}"), lower[i], upper[i]);
        rlower.push(lower[i]);
        rupper.push(upper[i]);
    }
    for c in model.constraints() {
        let mut terms: Vec<(crate::VarId, f64)> = Vec::new();
        let mut shift = 0.0;
        for (v, k) in c.expr.terms() {
            if fixed[v.index()] {
                shift += k * lower[v.index()];
            } else {
                terms.push((crate::VarId(reduced_index[v.index()]), k));
            }
        }
        let rhs = c.rhs - c.expr.constant() - shift;
        if terms.is_empty() {
            // Constant constraint: check it outright.
            let tol = options.feasibility_tol;
            let ok = match c.relation {
                Relation::Le => 0.0 <= rhs + tol,
                Relation::Ge => 0.0 >= rhs - tol,
                Relation::Eq => rhs.abs() <= tol,
            };
            if !ok {
                return Err(IlpError::Infeasible);
            }
            continue;
        }
        reduced
            .add_constraint(terms, c.relation, rhs)
            .expect("reduced terms reference fresh vars");
    }
    let mut objective: Vec<(crate::VarId, f64)> = Vec::new();
    for (v, k) in model.objective().terms() {
        if !fixed[v.index()] {
            objective.push((crate::VarId(reduced_index[v.index()]), k));
        }
    }
    reduced.set_objective(objective);

    let sub = solve_with_bounds_scratch(&reduced, &rlower, &rupper, options, scratch)?;
    let mut values = vec![0.0; n];
    for i in 0..n {
        values[i] = if fixed[i] {
            lower[i]
        } else {
            sub.values[reduced_index[i]]
        };
    }
    Ok(LpSolution {
        objective: model.objective().eval(&values),
        values,
        iterations: sub.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Relation, Sense};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + y >= 2, x <= 1.5 => obj 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.5);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 2.0);
    }

    #[test]
    fn maximization_with_le() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic): 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 3.0), (y, 5.0)]);
        m.add_constraint([(x, 1.0)], Relation::Le, 4.0).unwrap();
        m.add_constraint([(y, 2.0)], Relation::Le, 12.0).unwrap();
        m.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + 2y s.t. x + y = 3, y >= 1 => x=2, y=1, obj 4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 1.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 4.0);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(
            solve_relaxation(&m, SimplexOptions::default()),
            Err(IlpError::Infeasible)
        );
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], Relation::Ge, 0.0).unwrap();
        assert_eq!(
            solve_relaxation(&m, SimplexOptions::default()),
            Err(IlpError::Unbounded)
        );
    }

    #[test]
    fn bound_overrides_fix_variables() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        // Fix x = 1.
        let s = solve_with_bounds(&m, &[1.0, 0.0], &[1.0, 1.0], SimplexOptions::default()).unwrap();
        approx(s.value(x), 1.0);
        approx(s.objective, 1.0);
        // Contradictory bounds are infeasible.
        assert_eq!(
            solve_with_bounds(&m, &[1.0, 0.0], &[0.0, 1.0], SimplexOptions::default()),
            Err(IlpError::Infeasible)
        );
    }

    #[test]
    fn negative_lower_bounds_shift_correctly() {
        // min x s.t. x >= -5, x <= -2 => -5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", -5.0, -2.0);
        m.set_objective([(x, 1.0)]);
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, -5.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Redundant constraints produce degenerate pivots; Bland must halt.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        for _ in 0..4 {
            m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
                .unwrap();
        }
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Ge, 2.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 1.0);
    }

    /// A phase-1 residual of 1e-8 sits between the old ad-hoc thresholds
    /// (infeasibility cut-off 1e-6, objective snap 1e-9). With the default
    /// feasibility tolerance the point passes as feasible; tightening the
    /// tolerance below the residual flips the verdict to infeasible — the
    /// decision now belongs to [`SimplexOptions`], not a buried literal.
    #[test]
    fn feasibility_tolerance_decides_boundary_phase1_exit() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        // Requires x >= 1 + 1e-8 while x <= 1: violated by exactly 1e-8.
        m.add_constraint([(x, 1.0)], Relation::Ge, 1.0 + 1e-8)
            .unwrap();
        let lax = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(lax.value(x), 1.0);
        let tight = SimplexOptions::default().with_feasibility_tol(1e-9);
        assert_eq!(solve_relaxation(&m, tight), Err(IlpError::Infeasible));
        // The same knob governs the fully pinned fast path.
        assert!(solve_with_bounds(&m, &[1.0], &[1.0], SimplexOptions::default()).is_ok());
        assert_eq!(
            solve_with_bounds(&m, &[1.0], &[1.0], tight),
            Err(IlpError::Infeasible)
        );
    }

    #[test]
    fn fractional_relaxation_of_binary_model() {
        // min x+y with x+y >= 1 relaxes to any point on the line; objective 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Ge, 1.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 0.5);
    }
}
