//! Dense two-phase primal simplex, with warm-started dual-simplex repair.
//!
//! Solves the LP relaxation of a [`Model`] with per-variable bound overrides
//! (used by branch-and-bound to fix binaries). The implementation is a
//! textbook tableau simplex over a flat, single-allocation row-major
//! tableau (the private `Tableau` view over [`SimplexScratch`]'s buffer):
//!
//! 1. shift every variable by its lower bound so all variables are ≥ 0,
//! 2. add explicit rows for finite upper bounds,
//! 3. convert to equalities with slack/surplus columns, normalise `b ≥ 0`,
//! 4. phase 1 minimises the sum of one artificial per row,
//! 5. phase 2 minimises the (sense-normalised) objective.
//!
//! Pivot columns are chosen by Dantzig's rule (most negative reduced cost)
//! with a deterministic fallback to Bland's rule after a configurable
//! streak of degenerate pivots ([`SimplexOptions::bland_stall`]), so the
//! solver keeps Dantzig's pivot counts without giving up the anti-cycling
//! termination guarantee: any non-terminating run must end in an infinite
//! all-degenerate stretch, and inside such a stretch the fallback engages
//! and stays engaged (only an objective improvement re-arms Dantzig), at
//! which point Bland's rule terminates it.
//!
//! [`solve_with_basis`] additionally accepts a [`Basis`] retained from a
//! previous optimal solve of a same-shaped model. After a pure RHS or bound
//! patch the old basis stays *dual* feasible, so instead of a phase-1
//! restart the solver re-installs the basis and repairs primal feasibility
//! with dual-simplex pivots. Any incompatibility — shape mismatch, singular
//! basis matrix, lost dual feasibility, iteration trouble — silently falls
//! back to the cold two-phase path, so a poisoned or stale basis can cost
//! time but never correctness.
//!
//! Problem sizes in this repository are small (≲ 100 structural variables,
//! ≲ 300 rows), so a dense tableau is the right tool.

// The tableau code intentionally uses explicit row/column indices: the
// simplex pivots read much closer to the textbook presentation that way.
#![allow(clippy::needless_range_loop, clippy::manual_memcpy)]

use crate::{IlpError, LpSolution, Model, Relation, Sense};

const EPS: f64 = 1e-10;

/// Options for the simplex solver.
///
/// The three tolerances used to be scattered magic literals
/// (`1e-6`/`1e-7`/`1e-9`) inside the solve path; they are hoisted here so
/// every feasibility decision in one solve uses one consistent set, and so
/// callers can tighten or relax them deliberately.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimplexOptions {
    /// Hard cap on pivots across both phases.
    pub max_iterations: usize,
    /// Constraint-satisfaction slack: phase-1 residuals below this count as
    /// feasible, and pinned-point / constant-constraint checks allow this
    /// much violation.
    pub feasibility_tol: f64,
    /// Smallest tableau element treated as a usable pivot when driving
    /// artificials out of the basis.
    pub pivot_tol: f64,
    /// Objective values within this of zero are snapped to exactly zero.
    pub objective_tol: f64,
    /// Consecutive degenerate pivots tolerated under the Dantzig entering
    /// rule before the solver falls back to Bland's rule for the remainder
    /// of the degenerate stretch (an objective improvement re-arms
    /// Dantzig). `0` switches on the very first degenerate pivot.
    pub bland_stall: usize,
}

impl Default for SimplexOptions {
    fn default() -> Self {
        SimplexOptions {
            max_iterations: 50_000,
            feasibility_tol: 1e-6,
            pivot_tol: 1e-7,
            objective_tol: 1e-9,
            bland_stall: 12,
        }
    }
}

/// Rejects a NaN or negative tolerance at construction time.
fn checked_tol(name: &'static str, tol: f64) -> f64 {
    assert!(
        tol.is_finite() && tol >= 0.0,
        "simplex option {name} must be finite and >= 0, got {tol}"
    );
    tol
}

impl SimplexOptions {
    /// Overrides the feasibility tolerance.
    ///
    /// # Panics
    ///
    /// On a NaN, infinite or negative tolerance.
    #[must_use]
    pub fn with_feasibility_tol(mut self, tol: f64) -> SimplexOptions {
        self.feasibility_tol = checked_tol("feasibility_tol", tol);
        self
    }

    /// Overrides the pivot tolerance.
    ///
    /// # Panics
    ///
    /// On a NaN, infinite or negative tolerance.
    #[must_use]
    pub fn with_pivot_tol(mut self, tol: f64) -> SimplexOptions {
        self.pivot_tol = checked_tol("pivot_tol", tol);
        self
    }

    /// Overrides the objective zero-snap tolerance.
    ///
    /// # Panics
    ///
    /// On a NaN, infinite or negative tolerance.
    #[must_use]
    pub fn with_objective_tol(mut self, tol: f64) -> SimplexOptions {
        self.objective_tol = checked_tol("objective_tol", tol);
        self
    }

    /// Overrides the Dantzig→Bland degenerate-stall threshold.
    #[must_use]
    pub fn with_bland_stall(mut self, stall: usize) -> SimplexOptions {
        self.bland_stall = stall;
        self
    }

    /// Validates the tolerances: every solve entry point calls this, so a
    /// struct-literal-built options value (the fields are public) cannot
    /// smuggle a NaN or negative tolerance into the pivot comparisons.
    ///
    /// # Errors
    ///
    /// [`IlpError::InvalidTolerance`] naming the offending field.
    pub fn validate(&self) -> Result<(), IlpError> {
        for (name, value) in [
            ("feasibility_tol", self.feasibility_tol),
            ("pivot_tol", self.pivot_tol),
            ("objective_tol", self.objective_tol),
        ] {
            if !value.is_finite() || value < 0.0 {
                return Err(IlpError::InvalidTolerance { name, value });
            }
        }
        Ok(())
    }
}

/// Deterministic per-operation counters of the simplex layer, accumulated
/// in a [`SimplexScratch`] across every solve that reuses it.
///
/// All counts are exact operation tallies — no timers — so they reproduce
/// bit-for-bit on any machine for a fixed model sequence, which is what
/// lets the benchsuite gate on them portably.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SimplexOps {
    /// Phase-1 (feasibility) pivots, including the pivots that drive
    /// residual artificials out of a degenerate phase-1 basis.
    pub phase1_pivots: usize,
    /// Phase-2 (optimality) pivots.
    pub phase2_pivots: usize,
    /// Dual-simplex repair pivots, including the direct pivots that
    /// re-install a warm basis.
    pub dual_pivots: usize,
    /// Pivots spent lex-canonicalising optimal root vertices.
    pub lex_pivots: usize,
    /// Tableaus built (one per LP solved at tableau level).
    pub tableau_builds: usize,
    /// Tableau builds whose flat buffer was already large enough — the
    /// scratch-reuse hits that skipped a heap allocation.
    pub scratch_reuses: usize,
    /// Times the entering rule fell back from Dantzig to Bland inside a
    /// degenerate stall.
    pub bland_activations: usize,
}

impl SimplexOps {
    /// Sum of all pivot counters.
    #[must_use]
    pub fn total_pivots(&self) -> usize {
        self.phase1_pivots + self.phase2_pivots + self.dual_pivots + self.lex_pivots
    }

    /// Adds `other`'s counters into `self`.
    pub fn merge(&mut self, other: SimplexOps) {
        self.phase1_pivots += other.phase1_pivots;
        self.phase2_pivots += other.phase2_pivots;
        self.dual_pivots += other.dual_pivots;
        self.lex_pivots += other.lex_pivots;
        self.tableau_builds += other.tableau_builds;
        self.scratch_reuses += other.scratch_reuses;
        self.bland_activations += other.bland_activations;
    }
}

/// Reusable buffers for repeated LP solves.
///
/// Branch-and-bound solves one LP per node, and the tableau is by far the
/// largest allocation of each solve. A scratch kept per worker lets
/// [`solve_with_bounds_scratch`] reuse the flat tableau buffer, the basis
/// vector and the row bookkeeping across nodes instead of re-allocating
/// them. Capacities only grow, so a scratch warmed up on the root LP serves
/// every descendant without further allocation.
#[derive(Debug, Default)]
pub struct SimplexScratch {
    /// The flat row-major tableau: `(m + 1) * width` cells (the last row is
    /// the objective), pooled across solves.
    cells: Vec<f64>,
    /// Basis column per row.
    basis: Vec<usize>,
    /// Per-row `(relation, shifted rhs)` collected before the tableau is
    /// sized (the artificial-variable count depends on it).
    row_meta: Vec<(Relation, f64)>,
    /// Variable index backing each upper-bound row.
    bound_vars: Vec<usize>,
    /// Per-op counters accumulated across every solve through this scratch.
    ops: SimplexOps,
}

impl SimplexScratch {
    /// Creates an empty scratch; buffers grow on first use.
    #[must_use]
    pub fn new() -> SimplexScratch {
        SimplexScratch::default()
    }

    /// The per-op counters accumulated so far.
    #[must_use]
    pub fn ops(&self) -> SimplexOps {
        self.ops
    }

    /// Returns the accumulated counters and resets them to zero, so a
    /// caller can attribute deltas to search phases.
    pub fn take_ops(&mut self) -> SimplexOps {
        std::mem::take(&mut self.ops)
    }
}

/// A flat row-major tableau view: `rows × width` cells in one allocation.
///
/// Replaces the old `Vec<Vec<f64>>` layout — one pointer chase and one
/// allocation per *solve* instead of per *row*, and rows sit contiguously
/// so the pivot's row-combination loop streams the whole tableau.
struct Tableau<'a> {
    cells: &'a mut [f64],
    width: usize,
}

impl<'a> Tableau<'a> {
    fn new(cells: &'a mut [f64], width: usize) -> Tableau<'a> {
        debug_assert!(width > 0 && cells.len().is_multiple_of(width));
        Tableau { cells, width }
    }

    #[inline]
    fn row(&self, r: usize) -> &[f64] {
        &self.cells[r * self.width..(r + 1) * self.width]
    }

    #[inline]
    fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.cells[r * self.width..(r + 1) * self.width]
    }

    #[inline]
    fn at(&self, r: usize, c: usize) -> f64 {
        self.cells[r * self.width + c]
    }

    #[inline]
    fn set(&mut self, r: usize, c: usize, v: f64) {
        self.cells[r * self.width + c] = v;
    }

    /// Pivots on `(row, col)`: normalises the pivot row in place, then
    /// eliminates `col` from every other row. `split_at_mut` hands the
    /// pivot row out by reference, so no row is cloned — the floating-point
    /// operations (and their order) are exactly those of the old
    /// clone-the-pivot-row implementation, keeping results byte-identical.
    fn pivot(&mut self, basis: &mut [usize], row: usize, col: usize) {
        let w = self.width;
        let p = self.at(row, col);
        debug_assert!(p.abs() > 1e-12, "pivot on ~zero element");
        let inv = 1.0 / p;
        for v in self.row_mut(row) {
            *v *= inv;
        }
        let (head, rest) = self.cells.split_at_mut(row * w);
        let (pivot_row, tail) = rest.split_at_mut(w);
        for trow in head.chunks_exact_mut(w).chain(tail.chunks_exact_mut(w)) {
            let factor = trow[col];
            if factor != 0.0 {
                for (v, &pv) in trow.iter_mut().zip(&*pivot_row) {
                    *v -= factor * pv;
                }
            }
        }
        basis[row] = col;
    }
}

/// Solves the LP relaxation of `model` with the model's own bounds.
///
/// # Errors
///
/// [`IlpError::Infeasible`], [`IlpError::Unbounded`],
/// [`IlpError::IterationLimit`], [`IlpError::InvalidTolerance`] or
/// [`IlpError::NumericalInstability`].
pub fn solve_relaxation(model: &Model, options: SimplexOptions) -> Result<LpSolution, IlpError> {
    let n = model.num_vars();
    let mut lower = Vec::with_capacity(n);
    let mut upper = Vec::with_capacity(n);
    for i in 0..n {
        let (l, u) = model
            .var_bounds(crate::VarId(i))
            .expect("index within num_vars");
        lower.push(l);
        upper.push(u);
    }
    solve_with_bounds(model, &lower, &upper, options)
}

/// Solves the LP relaxation with overridden variable bounds.
///
/// # Errors
///
/// [`IlpError::Infeasible`], [`IlpError::Unbounded`] or
/// [`IlpError::IterationLimit`]. Also infeasible when `lower > upper` for
/// any variable, [`IlpError::NonFiniteCoefficient`] for NaN bounds, and
/// [`IlpError::InvalidTolerance`] for poisoned options.
pub fn solve_with_bounds(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
) -> Result<LpSolution, IlpError> {
    solve_with_bounds_scratch(model, lower, upper, options, &mut SimplexScratch::new())
}

/// Checks a bound-override pair: NaN bounds are a typed error (they would
/// otherwise poison every shifted coefficient), crossed bounds are plain
/// infeasibility.
fn check_bounds(lower: &[f64], upper: &[f64]) -> Result<(), IlpError> {
    for (&l, &u) in lower.iter().zip(upper) {
        if l.is_nan() || u.is_nan() {
            return Err(IlpError::NonFiniteCoefficient {
                context: "bound override",
                value: if l.is_nan() { l } else { u },
            });
        }
        if l > u + EPS {
            return Err(IlpError::Infeasible);
        }
    }
    Ok(())
}

/// Like [`solve_with_bounds`], reusing the buffers in `scratch` for the
/// tableau and row bookkeeping. Repeated callers (one LP per
/// branch-and-bound node) should hold one scratch per worker thread.
///
/// # Errors
///
/// Same as [`solve_with_bounds`].
pub fn solve_with_bounds_scratch(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
) -> Result<LpSolution, IlpError> {
    options.validate()?;
    let n = model.num_vars();
    assert_eq!(lower.len(), n, "lower bounds arity");
    assert_eq!(upper.len(), n, "upper bounds arity");
    check_bounds(lower, upper)?;

    // Eliminate fixed variables (lb == ub): branch-and-bound pins binaries
    // this way, and dropping their columns (and bound rows) keeps the
    // tableau small deep in the search tree.
    let fixed: Vec<bool> = (0..n).map(|i| upper[i] - lower[i] <= EPS).collect();
    if fixed.iter().any(|&f| f) && !fixed.iter().all(|&f| f) {
        return solve_reduced(model, lower, upper, &fixed, options, scratch);
    }
    if fixed.iter().all(|&f| f) && n > 0 {
        // Everything pinned: just evaluate feasibility.
        let values: Vec<f64> = lower.to_vec();
        if !feasible_point(model, &values, options.feasibility_tol) {
            return Err(IlpError::Infeasible);
        }
        return Ok(LpSolution {
            objective: model.objective().eval(&values),
            values,
            iterations: 0,
        });
    }

    let (solution, _) = solve_full(model, lower, upper, options, scratch, false)?;
    Ok(solution)
}

/// A retained simplex basis: the basic column of every tableau row of a
/// full-shape solve, in row order.
///
/// Columns index the canonical tableau layout (`build_tableau`):
/// structural variables first (`0..num_vars`), then one slack/surplus per
/// row. A basis extracted from an optimal solve never contains artificial
/// columns ([`solve_with_basis`] returns `None` instead when one is stuck
/// basic in a degenerate row). The basis stays installable across any pure
/// RHS or bound-value patch of the model, because neither changes the
/// row/column shape.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Basis {
    /// Basic column per row.
    cols: Vec<usize>,
    /// Structural-variable count the columns were indexed against.
    num_vars: usize,
}

impl Basis {
    /// The all-slack basis of an `num_vars × num_rows` tableau. Always
    /// installable on a matching shape but primal- and dual-infeasible for
    /// most models — the fault-injection suite uses it as a deliberately
    /// poisoned warm start.
    #[must_use]
    pub fn slack(num_vars: usize, num_rows: usize) -> Basis {
        Basis {
            cols: (0..num_rows).map(|r| num_vars + r).collect(),
            num_vars,
        }
    }

    /// Rows this basis spans.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.cols.len()
    }

    /// Structural-variable count the basis was extracted against.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Whether the basis fits a tableau of the given shape: row and
    /// structural-variable counts match, every column is structural or
    /// slack (never artificial), and no column repeats.
    fn compatible(&self, shape: Shape) -> bool {
        if self.num_vars != shape.n || self.cols.len() != shape.m {
            return false;
        }
        let mut seen = vec![false; shape.art0];
        self.cols
            .iter()
            .all(|&c| c < shape.art0 && !std::mem::replace(&mut seen[c], true))
    }
}

/// Result of a [`solve_with_basis`] call.
#[derive(Debug, Clone, PartialEq)]
pub struct BasisSolve {
    /// The optimal LP solution.
    pub solution: LpSolution,
    /// The optimal basis, reusable for the next same-shaped solve (`None`
    /// when a degenerate artificial stayed basic).
    pub basis: Option<Basis>,
    /// Whether the warm basis was installed and repaired (`false` means the
    /// cold two-phase path ran — no warm basis given, or it fell back).
    pub reused: bool,
}

/// Solves the LP relaxation at full tableau shape, optionally warm-started
/// from a retained [`Basis`].
///
/// Unlike [`solve_with_bounds_scratch`] this never eliminates fixed
/// variables, so the tableau shape depends only on the model's row/column
/// structure — the invariant that makes a basis from one solve installable
/// in the next after RHS/bound patches. With a compatible warm basis the
/// solve skips phase 1 entirely: the basis is re-installed by direct
/// pivoting and primal feasibility is repaired with dual-simplex steps.
/// Every warm-path failure mode degrades to the cold two-phase solve.
///
/// # Errors
///
/// [`IlpError::Infeasible`], [`IlpError::Unbounded`] or
/// [`IlpError::IterationLimit`] — all diagnosed by the cold path (the warm
/// path never reports infeasibility on its own authority). Also
/// [`IlpError::NonFiniteCoefficient`] for NaN bounds and
/// [`IlpError::InvalidTolerance`] for poisoned options.
pub fn solve_with_basis(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
    warm: Option<&Basis>,
) -> Result<BasisSolve, IlpError> {
    options.validate()?;
    let n = model.num_vars();
    assert_eq!(lower.len(), n, "lower bounds arity");
    assert_eq!(upper.len(), n, "upper bounds arity");
    check_bounds(lower, upper)?;
    if let Some(basis) = warm {
        if let Some(solve) = try_warm_solve(model, lower, upper, options, scratch, basis) {
            return Ok(solve);
        }
    }
    let (solution, basis) = solve_full(model, lower, upper, options, scratch, true)?;
    Ok(BasisSolve {
        solution,
        basis,
        reused: false,
    })
}

/// Tableau geometry computed by [`build_tableau`].
#[derive(Debug, Clone, Copy)]
struct Shape {
    /// Structural variables.
    n: usize,
    /// Rows (constraints + finite-width bound rows).
    m: usize,
    /// First artificial column (also the slack/surplus column count plus
    /// `n`).
    art0: usize,
    /// Artificial columns.
    n_art: usize,
    /// Total tableau width, rhs column included.
    width: usize,
    /// Right-hand-side column.
    rhs_col: usize,
}

/// Whether a row needs an artificial variable to start basic: a `<=` row
/// whose slack keeps coefficient +1 starts basic on its slack; `>=`/`=`/
/// negated rows get an artificial.
fn needs_artificial(relation: Relation, rhs: f64) -> bool {
    let negated = rhs < 0.0;
    match relation {
        Relation::Le => negated,
        Relation::Ge => !negated,
        Relation::Eq => true,
    }
}

/// Builds the phase-0 tableau into `scratch` and returns its geometry.
///
/// Pass 1 collects row metadata in shifted space `y = x - lower`: the
/// constraint rows' shifted rhs, then one upper-bound row
/// `y_i <= u_i - l_i` per finite-width variable (zero-width rows included —
/// pinned variables keep their row so the shape never changes). The
/// artificial count (and so the tableau width) depends on it, hence the
/// separate pass before any coefficients are written. Pass 2 fills the
/// coefficients straight into the pooled flat buffer, normalising every
/// row to rhs ≥ 0.
fn build_tableau(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    scratch: &mut SimplexScratch,
) -> Shape {
    let n = model.num_vars();
    let SimplexScratch {
        cells,
        basis,
        row_meta,
        bound_vars,
        ops,
    } = scratch;
    row_meta.clear();
    bound_vars.clear();
    for c in model.constraints() {
        let mut shift = 0.0;
        for (v, k) in c.expr.terms() {
            shift += k * lower[v.index()];
        }
        row_meta.push((c.relation, c.rhs - c.expr.constant() - shift));
    }
    for i in 0..n {
        let width = upper[i] - lower[i];
        if width.is_finite() {
            row_meta.push((Relation::Le, width));
            bound_vars.push(i);
        }
    }

    let m = row_meta.len();
    let slack0 = n;
    let art0 = n + m;
    let n_art = row_meta
        .iter()
        .filter(|&&(rel, rhs)| needs_artificial(rel, rhs))
        .count();
    let width = n + m + n_art + 1;
    let rhs_col = width - 1;
    let needed = (m + 1) * width; // last row = objective
    ops.tableau_builds += 1;
    if cells.capacity() >= needed {
        ops.scratch_reuses += 1;
    }
    cells.clear();
    cells.resize(needed, 0.0);
    let mut t = Tableau::new(&mut cells[..needed], width);
    basis.clear();
    basis.resize(m, usize::MAX);

    let n_constraints = model.constraints().len();
    let mut next_art = art0;
    for (r, &(relation, raw_rhs)) in row_meta.iter().enumerate() {
        let mut sign = 1.0;
        let mut rhs = raw_rhs;
        if rhs < 0.0 {
            sign = -1.0;
            rhs = -rhs;
        }
        if r < n_constraints {
            for (v, k) in model.constraints()[r].expr.terms() {
                t.set(r, v.index(), sign * k);
            }
        } else {
            t.set(r, bound_vars[r - n_constraints], sign);
        }
        match relation {
            Relation::Le => t.set(r, slack0 + r, sign),
            Relation::Ge => t.set(r, slack0 + r, -sign),
            Relation::Eq => {}
        }
        t.set(r, rhs_col, rhs);
        if needs_artificial(relation, raw_rhs) {
            t.set(r, next_art, 1.0);
            basis[r] = next_art;
            next_art += 1;
        } else {
            basis[r] = slack0 + r;
        }
    }
    debug_assert_eq!(next_art, art0 + n_art);
    Shape {
        n,
        m,
        art0,
        n_art,
        width,
        rhs_col,
    }
}

/// Installs the sense-normalised phase-2 cost row and prices out the
/// current basis.
fn install_cost_row(model: &Model, t: &mut Tableau<'_>, basis: &[usize], shape: Shape) {
    let minimize = model.sense() == Sense::Minimize;
    let m = shape.m;
    let mut cost = vec![0.0; shape.width];
    for (v, c) in model.objective().terms() {
        cost[v.index()] = if minimize { c } else { -c };
    }
    for j in 0..shape.width {
        t.set(m, j, cost[j]);
    }
    t.set(m, shape.rhs_col, 0.0);
    for r in 0..m {
        let cb = cost[basis[r]];
        if cb != 0.0 {
            for j in 0..shape.width {
                let v = t.at(m, j) - cb * t.at(r, j);
                t.set(m, j, v);
            }
        }
    }
}

/// Extracts the solution (and the reusable basis) from an optimal tableau.
fn extract(
    model: &Model,
    lower: &[f64],
    t: &Tableau<'_>,
    basis: &[usize],
    shape: Shape,
    iterations: usize,
    options: SimplexOptions,
) -> (LpSolution, Option<Basis>) {
    let Shape {
        n,
        m,
        art0,
        rhs_col,
        ..
    } = shape;
    let mut y = vec![0.0; n];
    for r in 0..m {
        if basis[r] < n {
            y[basis[r]] = t.at(r, rhs_col);
        }
    }
    let values: Vec<f64> = (0..n).map(|i| y[i] + lower[i]).collect();
    let mut objective = model.objective().constant()
        + model
            .objective()
            .terms()
            .iter()
            .map(|(v, c)| c * values[v.index()])
            .sum::<f64>();
    // Clean tiny noise.
    if objective.abs() < options.objective_tol {
        objective = 0.0;
    }
    // A degenerate artificial stuck basic (redundant row) makes the basis
    // unusable as a warm start; hand back `None` rather than a basis that
    // could never be re-installed.
    let out = if basis[..m].iter().all(|&b| b < art0) {
        Some(Basis {
            cols: basis[..m].to_vec(),
            num_vars: n,
        })
    } else {
        None
    };
    (
        LpSolution {
            objective,
            values,
            iterations,
        },
        out,
    )
}

/// Which primal phase a [`run_simplex`] call is running — selects the
/// pivot counter it charges.
#[derive(Clone, Copy, PartialEq, Eq)]
enum PrimalPhase {
    One,
    Two,
}

/// Cold full-shape solve: the classic two-phase simplex over
/// [`build_tableau`], returning the optimal basis alongside the solution.
fn solve_full(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
    lex: bool,
) -> Result<(LpSolution, Option<Basis>), IlpError> {
    let shape = build_tableau(model, lower, upper, scratch);
    let Shape {
        m,
        art0,
        n_art,
        width,
        rhs_col,
        ..
    } = shape;
    let SimplexScratch {
        cells, basis, ops, ..
    } = scratch;
    let mut t = Tableau::new(&mut cells[..(m + 1) * width], width);

    let mut iters = 0usize;
    if n_art > 0 {
        // Phase 1: minimise the sum of artificials. The objective row holds
        // reduced costs; price out the artificial basis rows.
        for j in 0..width {
            t.set(m, j, 0.0);
        }
        for a in art0..art0 + n_art {
            t.set(m, a, 1.0);
        }
        for r in 0..m {
            if basis[r] >= art0 {
                for j in 0..width {
                    let v = t.at(m, j) - t.at(r, j);
                    t.set(m, j, v);
                }
            }
        }
        run_simplex(
            &mut t,
            basis,
            m,
            art0,
            rhs_col,
            &mut iters,
            options,
            ops,
            PrimalPhase::One,
        )?;
        let phase1 = -t.at(m, rhs_col);
        if phase1 > options.feasibility_tol {
            return Err(IlpError::Infeasible);
        }
    }

    // Drive artificials out of the basis where possible; drop redundant rows
    // by leaving them (their rhs is 0 and artificial stays basic at 0 — we
    // forbid artificials from re-entering in phase 2 instead of removing).
    for r in 0..m {
        if basis[r] >= art0 && t.at(r, rhs_col).abs() <= options.pivot_tol {
            if let Some(j) = (0..art0).find(|&j| t.at(r, j).abs() > options.pivot_tol) {
                t.pivot(basis, r, j);
                ops.phase1_pivots += 1;
            }
        }
    }

    install_cost_row(model, &mut t, basis, shape);
    run_simplex(
        &mut t,
        basis,
        m,
        art0,
        rhs_col,
        &mut iters,
        options,
        ops,
        PrimalPhase::Two,
    )?;
    if lex {
        lex_canonicalize(&mut t, basis, shape, &mut iters, options, ops);
    }
    let (solution, out_basis) = extract(model, lower, &t, basis, shape, iters, options);
    Ok((solution, out_basis))
}

/// Attempts the warm path: re-install `warm` on a freshly built tableau,
/// repair primal feasibility with dual-simplex pivots, finish with primal
/// cleanup. Returns `None` on any incompatibility — the caller then runs
/// the cold path on a rebuilt tableau, so a bad basis costs time, never
/// correctness.
fn try_warm_solve(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
    warm: &Basis,
) -> Option<BasisSolve> {
    let shape = build_tableau(model, lower, upper, scratch);
    if !warm.compatible(shape) {
        return None;
    }
    let Shape {
        m,
        art0,
        width,
        rhs_col,
        ..
    } = shape;
    let SimplexScratch {
        cells, basis, ops, ..
    } = scratch;
    let mut t = Tableau::new(&mut cells[..(m + 1) * width], width);

    // Re-install the basis by direct Gaussian pivoting: each stored column
    // claims the not-yet-assigned row where it has the largest magnitude.
    // A near-zero best pivot means the basis matrix went singular under the
    // patched coefficients — bail out to the cold path.
    let mut assigned = vec![false; m];
    for &col in &warm.cols {
        let mut best: Option<(usize, f64)> = None;
        for r in 0..m {
            if !assigned[r] {
                let a = t.at(r, col).abs();
                if best.is_none_or(|(_, b)| a > b) {
                    best = Some((r, a));
                }
            }
        }
        let (r, magnitude) = best?;
        if magnitude <= options.pivot_tol {
            return None;
        }
        t.pivot(basis, r, col);
        ops.dual_pivots += 1;
        assigned[r] = true;
    }

    install_cost_row(model, &mut t, basis, shape);

    // Classify the re-installed vertex. A pure RHS/bound patch keeps the
    // old optimal basis dual-feasible, so the usual case is a short run of
    // dual pivots; a basis that lost dual feasibility but kept primal
    // feasibility is finished by the primal phase below; one that lost both
    // is not worth repairing.
    let primal_feasible =
        |t: &Tableau<'_>| (0..m).all(|r| t.at(r, rhs_col) >= -options.feasibility_tol);
    let dual_feasible = (0..art0).all(|j| t.at(m, j) >= -EPS);
    if !primal_feasible(&t) {
        if !dual_feasible {
            return None;
        }
        let mut iters = 0usize;
        run_dual_simplex(&mut t, basis, m, art0, rhs_col, &mut iters, options, ops).ok()?;
    }

    // Primal cleanup: a no-op when the dual repair already reached
    // optimality, otherwise drives out any remaining negative reduced
    // costs. Errors (unbounded, iteration limit) defer to the cold path.
    let mut iters = 0usize;
    run_simplex(
        &mut t,
        basis,
        m,
        art0,
        rhs_col,
        &mut iters,
        options,
        ops,
        PrimalPhase::Two,
    )
    .ok()?;
    if !primal_feasible(&t) {
        // Numerically drifted repair: let the cold path decide.
        return None;
    }
    // Land on the same canonical vertex the cold path reports, so basis
    // reuse can never leak into the returned assignment.
    lex_canonicalize(&mut t, basis, shape, &mut iters, options, ops);
    let (solution, out_basis) = extract(model, lower, &t, basis, shape, iters, options);
    Some(BasisSolve {
        solution,
        basis: out_basis,
        reused: true,
    })
}

/// Drives an optimal tableau to the lexicographically smallest optimal
/// vertex: among the columns whose reduced cost is (near) zero — the only
/// moves that keep the objective optimal — minimise `x_0`, then `x_1`, and
/// so on, locking each variable's value before the next phase.
///
/// Root LPs go through here so the reported vertex is a pure function of
/// the model, never of the starting basis: a cold two-phase solve and a
/// basis-repaired re-solve land on the same vertex even when the optimal
/// face is degenerate. Branch-and-bound's assignment-lexicographic
/// tie-break relies on that — an alternative optimum surfacing only under
/// a warm basis would otherwise leak the basis into the final selection.
/// Node LPs skip it (they never start from a foreign basis, so the
/// deterministic entering/leaving rules already make them reproducible).
fn lex_canonicalize(
    t: &mut Tableau<'_>,
    basis: &mut [usize],
    shape: Shape,
    iters: &mut usize,
    options: SimplexOptions,
    ops: &mut SimplexOps,
) {
    let Shape {
        n,
        m,
        art0,
        rhs_col,
        ..
    } = shape;
    // Columns allowed to enter: zero reduced cost under the (already
    // optimal) phase-2 objective. Basic columns price to exactly zero, so
    // the filter naturally keeps them eligible to re-enter after leaving.
    let mut allowed: Vec<bool> = (0..art0)
        .map(|j| t.at(m, j).abs() <= options.objective_tol)
        .collect();
    let mut in_basis = vec![false; art0];
    for r in 0..m {
        if basis[r] < art0 {
            in_basis[basis[r]] = true;
        }
    }
    // No nonbasic degrees of freedom on the optimal face ⇒ unique vertex.
    if (0..art0).all(|j| in_basis[j] || !allowed[j]) {
        return;
    }
    let mut s = vec![0.0; shape.width];
    for j in 0..n {
        let Some(rj) = (0..m).find(|&r| basis[r] == j) else {
            // Nonbasic ⇒ already at its (shifted) lower bound, the lex
            // minimum. Forbid it from entering so later phases keep it there.
            allowed[j] = false;
            continue;
        };
        // Secondary objective e_j priced out against the basis: minimising
        // it minimises the basic value x_j without touching the phase-2
        // objective (pivots are restricted to its zero-reduced-cost columns).
        for (c, v) in s.iter_mut().enumerate() {
            *v = -t.at(rj, c);
        }
        s[j] = 0.0;
        loop {
            if *iters >= options.max_iterations {
                return; // give up canonicalising, the vertex is still optimal
            }
            let entering = (0..art0).find(|&e| allowed[e] && s[e] < -EPS);
            let Some(e) = entering else { break };
            let mut leave: Option<(usize, f64)> = None;
            for r in 0..m {
                let a = t.at(r, e);
                if a > EPS {
                    let ratio = t.at(r, rhs_col) / a;
                    match leave {
                        None => leave = Some((r, ratio)),
                        Some((lr, lratio)) => {
                            if ratio < lratio - EPS
                                || ((ratio - lratio).abs() <= EPS && basis[r] < basis[lr])
                            {
                                leave = Some((r, ratio));
                            }
                        }
                    }
                }
            }
            let Some((lr, _)) = leave else { break };
            *iters += 1;
            t.pivot(basis, lr, e);
            ops.lex_pivots += 1;
            // Keep the secondary row priced out against the new basis.
            let factor = s[e];
            if factor != 0.0 {
                for (c, v) in s.iter_mut().enumerate() {
                    *v -= factor * t.at(lr, c);
                }
            }
        }
        // Lock x_j: any column that would move it again is banned from
        // entering in later phases.
        for (e, ok) in allowed.iter_mut().enumerate() {
            if *ok && s[e].abs() > options.objective_tol {
                *ok = false;
            }
        }
    }
}

/// Runs dual-simplex iterations until primal feasibility is restored.
///
/// Requires a dual-feasible cost row. The leaving row is the most negative
/// rhs (ties to the lowest row index); the entering column minimises the
/// dual ratio `|reduced cost / pivot|` over the row's negative entries
/// (ties to the lowest column index — Bland-style, for determinism).
/// Returns [`IlpError::Infeasible`] when a negative row has no negative
/// entry; callers on the warm path treat that as a fallback trigger rather
/// than a verdict.
#[allow(clippy::too_many_arguments)]
fn run_dual_simplex(
    t: &mut Tableau<'_>,
    basis: &mut [usize],
    m: usize,
    art_start: usize,
    rhs_col: usize,
    iters: &mut usize,
    options: SimplexOptions,
    ops: &mut SimplexOps,
) -> Result<(), IlpError> {
    loop {
        *iters += 1;
        if *iters > options.max_iterations {
            return Err(IlpError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            let v = t.at(r, rhs_col);
            if v.is_nan() {
                return Err(IlpError::NumericalInstability {
                    context: "dual leaving-row selection",
                });
            }
            if v < -options.feasibility_tol && leave.is_none_or(|(_, best)| v < best) {
                leave = Some((r, v));
            }
        }
        let Some((lr, _)) = leave else {
            return Ok(()); // primal feasible
        };
        let mut enter: Option<(usize, f64)> = None;
        for j in 0..art_start {
            let a = t.at(lr, j);
            if a < -EPS {
                let ratio = t.at(m, j) / -a;
                if ratio.is_nan() {
                    return Err(IlpError::NumericalInstability {
                        context: "dual ratio test",
                    });
                }
                if enter.is_none_or(|(ej, best)| {
                    ratio < best - EPS || ((ratio - best).abs() <= EPS && j < ej)
                }) {
                    enter = Some((j, ratio));
                }
            }
        }
        let Some((e, _)) = enter else {
            return Err(IlpError::Infeasible);
        };
        t.pivot(basis, lr, e);
        ops.dual_pivots += 1;
    }
}

/// Runs primal simplex iterations on the tableau until optimality.
///
/// The entering column follows Dantzig's rule — most negative reduced
/// cost, ties to the lowest index — until
/// [`SimplexOptions::bland_stall`] consecutive degenerate pivots, after
/// which Bland's rule (lowest negative index) takes over until the
/// objective improves again. The ratio test breaks ties on the lowest
/// basis index throughout. Artificial columns (`j >= art_start`) are never
/// allowed to enter. A NaN in the cost row, the pivot column or a ratio is
/// reported as [`IlpError::NumericalInstability`] instead of being
/// silently skipped by the comparisons.
#[allow(clippy::too_many_arguments)]
fn run_simplex(
    t: &mut Tableau<'_>,
    basis: &mut [usize],
    m: usize,
    art_start: usize,
    rhs_col: usize,
    iters: &mut usize,
    options: SimplexOptions,
    ops: &mut SimplexOps,
    phase: PrimalPhase,
) -> Result<(), IlpError> {
    let mut bland = false;
    let mut stall = 0usize;
    loop {
        *iters += 1;
        if *iters > options.max_iterations {
            return Err(IlpError::IterationLimit {
                limit: options.max_iterations,
            });
        }
        // Entering column: one full scan of the cost row finds the first
        // negative (Bland), the most negative (Dantzig) and any NaN.
        let mut first_neg: Option<usize> = None;
        let mut most_neg: Option<usize> = None;
        let mut best = -EPS;
        let cost = &t.row(m)[..art_start];
        for (j, &c) in cost.iter().enumerate() {
            if c.is_nan() {
                return Err(IlpError::NumericalInstability {
                    context: "entering-column selection",
                });
            }
            if c < -EPS && first_neg.is_none() {
                first_neg = Some(j);
            }
            if c < best {
                best = c;
                most_neg = Some(j);
            }
        }
        let entering = if bland { first_neg } else { most_neg };
        let Some(e) = entering else {
            return Ok(()); // optimal
        };
        // Ratio test, ties to the lowest basis index.
        let mut leave: Option<(usize, f64)> = None;
        for r in 0..m {
            let a = t.at(r, e);
            if a.is_nan() {
                return Err(IlpError::NumericalInstability {
                    context: "pivot-column scan",
                });
            }
            if a > EPS {
                let ratio = t.at(r, rhs_col) / a;
                if ratio.is_nan() {
                    return Err(IlpError::NumericalInstability {
                        context: "ratio test",
                    });
                }
                match leave {
                    None => leave = Some((r, ratio)),
                    Some((lr, lratio)) => {
                        if ratio < lratio - EPS
                            || ((ratio - lratio).abs() <= EPS && basis[r] < basis[lr])
                        {
                            leave = Some((r, ratio));
                        }
                    }
                }
            }
        }
        let Some((lr, lratio)) = leave else {
            return Err(IlpError::Unbounded);
        };
        // Degenerate-stall accounting: a zero-ratio pivot leaves the
        // objective unchanged. A long enough streak arms Bland's rule; any
        // objective movement re-arms Dantzig.
        if lratio <= EPS {
            stall += 1;
            if !bland && stall > options.bland_stall {
                bland = true;
                ops.bland_activations += 1;
            }
        } else {
            stall = 0;
            bland = false;
        }
        t.pivot(basis, lr, e);
        match phase {
            PrimalPhase::One => ops.phase1_pivots += 1,
            PrimalPhase::Two => ops.phase2_pivots += 1,
        }
    }
}

/// Checks a fully pinned assignment against the model's constraints.
fn feasible_point(model: &Model, values: &[f64], tol: f64) -> bool {
    model.constraints().iter().all(|c| {
        let lhs = c.expr.eval(values);
        match c.relation {
            Relation::Le => lhs <= c.rhs + tol,
            Relation::Ge => lhs >= c.rhs - tol,
            Relation::Eq => (lhs - c.rhs).abs() <= tol,
        }
    })
}

/// Solves with the fixed variables substituted out of the model.
fn solve_reduced(
    model: &Model,
    lower: &[f64],
    upper: &[f64],
    fixed: &[bool],
    options: SimplexOptions,
    scratch: &mut SimplexScratch,
) -> Result<LpSolution, IlpError> {
    let n = model.num_vars();
    // Map original -> reduced indices.
    let mut reduced_index = vec![usize::MAX; n];
    let mut free: Vec<usize> = Vec::new();
    for i in 0..n {
        if !fixed[i] {
            reduced_index[i] = free.len();
            free.push(i);
        }
    }
    let mut reduced = Model::new(model.sense());
    let mut rlower = Vec::with_capacity(free.len());
    let mut rupper = Vec::with_capacity(free.len());
    for &i in &free {
        // Kind is irrelevant for the relaxation; keep continuous.
        reduced.add_continuous(format!("r{i}"), lower[i], upper[i]);
        rlower.push(lower[i]);
        rupper.push(upper[i]);
    }
    for c in model.constraints() {
        let mut terms: Vec<(crate::VarId, f64)> = Vec::new();
        let mut shift = 0.0;
        for (v, k) in c.expr.terms() {
            if fixed[v.index()] {
                shift += k * lower[v.index()];
            } else {
                terms.push((crate::VarId(reduced_index[v.index()]), k));
            }
        }
        let rhs = c.rhs - c.expr.constant() - shift;
        if terms.is_empty() {
            // Constant constraint: check it outright.
            let tol = options.feasibility_tol;
            let ok = match c.relation {
                Relation::Le => 0.0 <= rhs + tol,
                Relation::Ge => 0.0 >= rhs - tol,
                Relation::Eq => rhs.abs() <= tol,
            };
            if !ok {
                return Err(IlpError::Infeasible);
            }
            continue;
        }
        reduced
            .add_constraint(terms, c.relation, rhs)
            .expect("reduced terms reference fresh vars");
    }
    let mut objective: Vec<(crate::VarId, f64)> = Vec::new();
    for (v, k) in model.objective().terms() {
        if !fixed[v.index()] {
            objective.push((crate::VarId(reduced_index[v.index()]), k));
        }
    }
    reduced.set_objective(objective);

    let sub = solve_with_bounds_scratch(&reduced, &rlower, &rupper, options, scratch)?;
    let mut values = vec![0.0; n];
    for i in 0..n {
        values[i] = if fixed[i] {
            lower[i]
        } else {
            sub.values[reduced_index[i]]
        };
    }
    Ok(LpSolution {
        objective: model.objective().eval(&values),
        values,
        iterations: sub.iterations,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Model, Relation, Sense, VarId};

    fn approx(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-6, "{a} != {b}");
    }

    #[test]
    fn simple_minimization() {
        // min x + y s.t. x + y >= 2, x <= 1.5 => obj 2.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.5);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 2.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 2.0);
    }

    #[test]
    fn maximization_with_le() {
        // max 3x + 5y s.t. x <= 4, 2y <= 12, 3x + 2y <= 18 (classic): 36.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 3.0), (y, 5.0)]);
        m.add_constraint([(x, 1.0)], Relation::Le, 4.0).unwrap();
        m.add_constraint([(y, 2.0)], Relation::Le, 12.0).unwrap();
        m.add_constraint([(x, 3.0), (y, 2.0)], Relation::Le, 18.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 36.0);
        approx(s.value(x), 2.0);
        approx(s.value(y), 6.0);
    }

    #[test]
    fn equality_constraint() {
        // min x + 2y s.t. x + y = 3, y >= 1 => x=2, y=1, obj 4.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 1.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 2.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Eq, 3.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 4.0);
        approx(s.value(y), 1.0);
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(
            solve_relaxation(&m, SimplexOptions::default()),
            Err(IlpError::Infeasible)
        );
    }

    #[test]
    fn unbounded_detected() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0)]);
        m.add_constraint([(x, 1.0)], Relation::Ge, 0.0).unwrap();
        assert_eq!(
            solve_relaxation(&m, SimplexOptions::default()),
            Err(IlpError::Unbounded)
        );
    }

    #[test]
    fn bound_overrides_fix_variables() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
            .unwrap();
        // Fix x = 1.
        let s = solve_with_bounds(&m, &[1.0, 0.0], &[1.0, 1.0], SimplexOptions::default()).unwrap();
        approx(s.value(x), 1.0);
        approx(s.objective, 1.0);
        // Contradictory bounds are infeasible.
        assert_eq!(
            solve_with_bounds(&m, &[1.0, 0.0], &[0.0, 1.0], SimplexOptions::default()),
            Err(IlpError::Infeasible)
        );
    }

    #[test]
    fn negative_lower_bounds_shift_correctly() {
        // min x s.t. x >= -5, x <= -2 => -5.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", -5.0, -2.0);
        m.set_objective([(x, 1.0)]);
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, -5.0);
    }

    #[test]
    fn degenerate_problem_terminates() {
        // Redundant constraints produce degenerate pivots; the Dantzig rule
        // with the Bland stall fallback must halt.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        for _ in 0..4 {
            m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
                .unwrap();
        }
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Ge, 2.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 1.0);
    }

    /// A phase-1 residual of 1e-8 sits between the old ad-hoc thresholds
    /// (infeasibility cut-off 1e-6, objective snap 1e-9). With the default
    /// feasibility tolerance the point passes as feasible; tightening the
    /// tolerance below the residual flips the verdict to infeasible — the
    /// decision now belongs to [`SimplexOptions`], not a buried literal.
    #[test]
    fn feasibility_tolerance_decides_boundary_phase1_exit() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 1.0);
        m.set_objective([(x, 1.0)]);
        // Requires x >= 1 + 1e-8 while x <= 1: violated by exactly 1e-8.
        m.add_constraint([(x, 1.0)], Relation::Ge, 1.0 + 1e-8)
            .unwrap();
        let lax = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(lax.value(x), 1.0);
        let tight = SimplexOptions::default().with_feasibility_tol(1e-9);
        assert_eq!(solve_relaxation(&m, tight), Err(IlpError::Infeasible));
        // The same knob governs the fully pinned fast path.
        assert!(solve_with_bounds(&m, &[1.0], &[1.0], SimplexOptions::default()).is_ok());
        assert_eq!(
            solve_with_bounds(&m, &[1.0], &[1.0], tight),
            Err(IlpError::Infeasible)
        );
    }

    #[test]
    fn fractional_relaxation_of_binary_model() {
        // min x+y with x+y >= 1 relaxes to any point on the line; objective 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective([(x, 1.0), (y, 1.0)]);
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Ge, 1.0)
            .unwrap();
        let s = solve_relaxation(&m, SimplexOptions::default()).unwrap();
        approx(s.objective, 0.5);
    }

    /// A small Ge-heavy model exercised by the warm-start tests: the gain
    /// rows mirror the selector's Eq.2 shape, so an RHS patch is exactly a
    /// "retarget the required gain" delta.
    fn gain_model() -> (Model, VarId, VarId) {
        // min 3x + 2y s.t. 4x + 3y >= rhs0, x + 2y >= 1.
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 5.0);
        let y = m.add_continuous("y", 0.0, 5.0);
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_constraint([(x, 4.0), (y, 3.0)], Relation::Ge, 6.0)
            .unwrap();
        m.add_constraint([(x, 1.0), (y, 2.0)], Relation::Ge, 1.0)
            .unwrap();
        (m, x, y)
    }

    #[test]
    fn cold_solve_with_basis_matches_two_phase() {
        let (m, _, _) = gain_model();
        let lower = vec![0.0; 2];
        let upper = vec![5.0; 2];
        let opts = SimplexOptions::default();
        let cold = solve_with_bounds(&m, &lower, &upper, opts).unwrap();
        let mut scratch = SimplexScratch::default();
        let warm = solve_with_basis(&m, &lower, &upper, opts, &mut scratch, None).unwrap();
        assert!(!warm.reused);
        assert!(warm.basis.is_some(), "optimal basis must be retained");
        approx(warm.solution.objective, cold.objective);
        for (a, b) in warm.solution.values.iter().zip(&cold.values) {
            approx(*a, *b);
        }
    }

    #[test]
    fn rhs_patch_resolve_with_basis_matches_cold() {
        let (mut m, _, _) = gain_model();
        let lower = vec![0.0; 2];
        let upper = vec![5.0; 2];
        let opts = SimplexOptions::default();
        let mut scratch = SimplexScratch::default();
        let first = solve_with_basis(&m, &lower, &upper, opts, &mut scratch, None).unwrap();
        let basis = first.basis.expect("retained basis");
        // Patch both gain rows (tighten one, relax the other) and re-solve.
        m.set_constraint_rhs(0, 9.5).unwrap();
        m.set_constraint_rhs(1, 0.25).unwrap();
        let warm = solve_with_basis(&m, &lower, &upper, opts, &mut scratch, Some(&basis)).unwrap();
        let cold = solve_with_bounds(&m, &lower, &upper, opts).unwrap();
        assert!(warm.reused, "dual repair must accept a same-shape basis");
        approx(warm.solution.objective, cold.objective);
        for (a, b) in warm.solution.values.iter().zip(&cold.values) {
            approx(*a, *b);
        }
    }

    #[test]
    fn bound_pin_resolve_with_basis_matches_cold() {
        let (m, _, _) = gain_model();
        let opts = SimplexOptions::default();
        let mut scratch = SimplexScratch::default();
        let lower = vec![0.0; 2];
        let upper = vec![5.0; 2];
        let first = solve_with_basis(&m, &lower, &upper, opts, &mut scratch, None).unwrap();
        let basis = first.basis.expect("retained basis");
        // Pin x to zero (a retired-column delta) — same tableau shape, so
        // the stale basis installs and repairs.
        let pinned_upper = vec![0.0, 5.0];
        let warm =
            solve_with_basis(&m, &lower, &pinned_upper, opts, &mut scratch, Some(&basis)).unwrap();
        let cold = solve_with_bounds(&m, &lower, &pinned_upper, opts).unwrap();
        approx(warm.solution.objective, cold.objective);
        approx(warm.solution.values[0], 0.0);
        for (a, b) in warm.solution.values.iter().zip(&cold.values) {
            approx(*a, *b);
        }
    }

    #[test]
    fn poisoned_basis_falls_back_to_cold() {
        let (m, _, _) = gain_model();
        let opts = SimplexOptions::default();
        let lower = vec![0.0; 2];
        let upper = vec![5.0; 2];
        let cold = solve_with_bounds(&m, &lower, &upper, opts).unwrap();
        let mut scratch = SimplexScratch::default();
        // 2 structural vars, 2 constraint rows + 2 bound rows: the
        // all-slack basis installs (and, being dual-feasible for a
        // min-cost model, may legitimately be repaired); a wrong-shape
        // basis is rejected outright. Either way the answer must equal the
        // cold one, never a spurious infeasible.
        for poison in [Basis::slack(2, 4), Basis::slack(3, 7)] {
            let got =
                solve_with_basis(&m, &lower, &upper, opts, &mut scratch, Some(&poison)).unwrap();
            approx(got.solution.objective, cold.objective);
            for (a, b) in got.solution.values.iter().zip(&cold.values) {
                approx(*a, *b);
            }
        }
        let wrong_shape = Basis::slack(3, 7);
        let got =
            solve_with_basis(&m, &lower, &upper, opts, &mut scratch, Some(&wrong_shape)).unwrap();
        assert!(!got.reused, "wrong-shape basis must fall back cold");
    }

    #[test]
    fn warm_infeasible_patch_reports_infeasible_via_cold_path() {
        let (mut m, _, _) = gain_model();
        let opts = SimplexOptions::default();
        let lower = vec![0.0; 2];
        let upper = vec![5.0; 2];
        let mut scratch = SimplexScratch::default();
        let first = solve_with_basis(&m, &lower, &upper, opts, &mut scratch, None).unwrap();
        let basis = first.basis.expect("retained basis");
        // Push the first gain row beyond any reachable value: 4x+3y <= 35.
        m.set_constraint_rhs(0, 100.0).unwrap();
        assert_eq!(
            solve_with_basis(&m, &lower, &upper, opts, &mut scratch, Some(&basis)),
            Err(IlpError::Infeasible),
            "infeasibility must be diagnosed by the cold path"
        );
    }

    #[test]
    fn nan_bound_override_is_a_typed_error() {
        let (m, _, _) = gain_model();
        let got = solve_with_bounds(&m, &[f64::NAN, 0.0], &[5.0, 5.0], SimplexOptions::default());
        assert!(
            matches!(
                got,
                Err(IlpError::NonFiniteCoefficient {
                    context: "bound override",
                    ..
                })
            ),
            "{got:?}"
        );
        let mut scratch = SimplexScratch::default();
        let got = solve_with_basis(
            &m,
            &[0.0, 0.0],
            &[5.0, f64::NAN],
            SimplexOptions::default(),
            &mut scratch,
            None,
        );
        assert!(
            matches!(got, Err(IlpError::NonFiniteCoefficient { .. })),
            "{got:?}"
        );
    }

    #[test]
    fn poisoned_options_are_a_typed_error() {
        let (m, _, _) = gain_model();
        for (name, opts) in [
            (
                "feasibility_tol",
                SimplexOptions {
                    feasibility_tol: f64::NAN,
                    ..SimplexOptions::default()
                },
            ),
            (
                "pivot_tol",
                SimplexOptions {
                    pivot_tol: -1e-9,
                    ..SimplexOptions::default()
                },
            ),
            (
                "objective_tol",
                SimplexOptions {
                    objective_tol: f64::INFINITY,
                    ..SimplexOptions::default()
                },
            ),
        ] {
            let got = solve_relaxation(&m, opts);
            match got {
                Err(IlpError::InvalidTolerance { name: got_name, .. }) => {
                    assert_eq!(got_name, name);
                }
                other => panic!("{name}: expected InvalidTolerance, got {other:?}"),
            }
        }
    }

    #[test]
    #[should_panic(expected = "feasibility_tol")]
    fn builder_rejects_nan_tolerance_at_construction() {
        let _ = SimplexOptions::default().with_feasibility_tol(f64::NAN);
    }

    /// Overflow poisoning: huge coefficients against a tiny pivot element
    /// overflow to ±inf during elimination, and the next combination step
    /// produces `inf - inf = NaN` in the tableau. The old comparison-based
    /// selection silently skipped NaN entries (`NaN > EPS` is false),
    /// which could misreport unboundedness or loop; the scan now reports a
    /// typed error instead of panicking or lying.
    #[test]
    fn poisoned_tableau_is_a_typed_error_not_a_panic() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, f64::INFINITY);
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        // A near-zero pivot (1e-9, just above EPS) scaled by 1/1e-9 blows
        // the 1e308 coefficients past f64::MAX.
        m.add_constraint([(x, 1e-9), (y, 1e308)], Relation::Ge, 1.0)
            .unwrap();
        m.add_constraint([(x, 1e308), (y, 1e308)], Relation::Ge, 1e308)
            .unwrap();
        let got = solve_relaxation(&m, SimplexOptions::default());
        match got {
            Err(
                IlpError::NumericalInstability { .. }
                | IlpError::Infeasible
                | IlpError::Unbounded
                | IlpError::IterationLimit { .. },
            ) => {}
            other => panic!("poisoned tableau must fail typed, got {other:?}"),
        }
    }

    #[test]
    fn ops_counters_track_builds_and_reuse() {
        let (m, _, _) = gain_model();
        let opts = SimplexOptions::default();
        let mut scratch = SimplexScratch::new();
        let lower = vec![0.0; 2];
        let upper = vec![5.0; 2];
        solve_with_bounds_scratch(&m, &lower, &upper, opts, &mut scratch).unwrap();
        let first = scratch.ops();
        assert_eq!(first.tableau_builds, 1);
        assert_eq!(first.scratch_reuses, 0, "first build must allocate");
        assert!(first.total_pivots() > 0);
        solve_with_bounds_scratch(&m, &lower, &upper, opts, &mut scratch).unwrap();
        let second = scratch.ops();
        assert_eq!(second.tableau_builds, 2);
        assert_eq!(second.scratch_reuses, 1, "same shape must reuse the buffer");
        // take_ops drains and resets.
        let taken = scratch.take_ops();
        assert_eq!(taken, second);
        assert_eq!(scratch.ops(), SimplexOps::default());
    }

    /// The Dantzig→Bland fallback provably engages on a degenerate stall:
    /// with `bland_stall = 0` every degenerate pivot beyond the first in a
    /// streak runs under Bland's rule, and the activation is counted. The
    /// redundant-constraint model pivots through a degenerate vertex, so
    /// at least one activation must be recorded — and the optimum must be
    /// identical to the default-rule solve.
    #[test]
    fn bland_fallback_activates_on_degenerate_stall() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_continuous("x", 0.0, 10.0);
        let y = m.add_continuous("y", 0.0, 10.0);
        m.set_objective([(x, 1.0), (y, 1.0)]);
        for _ in 0..4 {
            m.add_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0)
                .unwrap();
        }
        m.add_constraint([(x, 2.0), (y, 2.0)], Relation::Ge, 2.0)
            .unwrap();
        let mut scratch = SimplexScratch::new();
        let eager = SimplexOptions::default().with_bland_stall(0);
        let s =
            solve_with_bounds_scratch(&m, &[0.0, 0.0], &[10.0, 10.0], eager, &mut scratch).unwrap();
        approx(s.objective, 1.0);
        assert!(
            scratch.ops().bland_activations >= 1,
            "degenerate streak must arm Bland: {:?}",
            scratch.ops()
        );
    }
}
