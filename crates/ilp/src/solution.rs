//! Solution containers.

use crate::VarId;

/// An optimal solution of an LP relaxation.
#[derive(Debug, Clone, PartialEq)]
pub struct LpSolution {
    /// Optimal objective value in the model's own sense.
    pub objective: f64,
    /// Value per variable, indexed by [`VarId`].
    pub values: Vec<f64>,
    /// Simplex pivots spent producing this solution (both phases).
    pub iterations: usize,
}

impl LpSolution {
    /// Value of one variable (0 for out-of-range ids).
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }
}

/// An optimal integer solution.
///
/// Search effort (nodes explored, pruning counts, simplex iterations) is
/// reported separately via [`crate::BranchBoundStats`] so the solution type
/// stays a pure value: two solutions assigning the same point compare equal
/// regardless of how hard the solver worked to find them.
#[derive(Debug, Clone, PartialEq)]
pub struct IlpSolution {
    /// Optimal objective value in the model's own sense.
    pub objective: f64,
    /// Value per variable, indexed by [`VarId`]; binaries are exactly 0 or 1.
    pub values: Vec<f64>,
}

impl IlpSolution {
    /// Value of one variable (0 for out-of-range ids).
    #[must_use]
    pub fn value(&self, var: VarId) -> f64 {
        self.values.get(var.index()).copied().unwrap_or(0.0)
    }

    /// `true` if the binary variable is set.
    #[must_use]
    pub fn is_set(&self, var: VarId) -> bool {
        self.value(var) > 0.5
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_defaults_to_zero() {
        let s = LpSolution {
            objective: 1.0,
            values: vec![0.5],
            iterations: 3,
        };
        assert_eq!(s.value(VarId(0)), 0.5);
        assert_eq!(s.value(VarId(9)), 0.0);
    }

    #[test]
    fn is_set_rounds() {
        let s = IlpSolution {
            objective: 0.0,
            values: vec![1.0, 0.0],
        };
        assert!(s.is_set(VarId(0)));
        assert!(!s.is_set(VarId(1)));
    }
}
