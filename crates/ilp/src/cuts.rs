//! Lifted cover-cut separation for knapsack-shaped rows.
//!
//! The selection ILP is built almost entirely from 0/1 knapsack rows: the
//! per-path gain rows `Σ g_j·x_j ≥ RG` are reverse knapsacks, the power row
//! `Σ p_j·x_j ≤ P` is a forward one, and the `one_imp` rows are GUB
//! (generalised upper bound) groups `Σ_{j∈scall} x_j ≤ 1`. Cover
//! inequalities are the classic cutting planes for this structure: a
//! *cover* `C` of `Σ a_j·x_j ≤ b` is a set with `Σ_{C} a_j > b`, from which
//! `Σ_{C} x_j ≤ |C| − 1` is valid for every 0/1 point. This module
//! separates **extended** covers (lifted with every variable at least as
//! heavy as the heaviest cover member) and strengthens them against the GUB
//! groups, so branch-and-bound can tighten its LP bounds.
//!
//! # Invariants
//!
//! * Every emitted [`Cut`] is valid for **all** 0/1-feasible points of the
//!   source model — cuts only trim fractional LP vertices, never integer
//!   assignments, so applying them cannot change the integer optimum (or
//!   the lexicographic tie-break over optima). Only search-effort counters
//!   move.
//! * Separation is deterministic: rows are scanned in model order and every
//!   sort breaks ties on ascending variable index, so the same model and LP
//!   point always yield the same cuts in the same order.
//!
//! # Example
//!
//! ```
//! use partita_ilp::cuts::CutSeparator;
//! use partita_ilp::{Model, Relation, Sense};
//!
//! # fn main() -> Result<(), partita_ilp::IlpError> {
//! // Knapsack 3a + 3b + 3c <= 5: any two items overflow, so the LP point
//! // (0.8, 0.8, 0) violates the cover inequality a + b + c <= 1.
//! let mut m = Model::new(Sense::Maximize);
//! let a = m.add_binary("a");
//! let b = m.add_binary("b");
//! let c = m.add_binary("c");
//! m.set_objective([(a, 1.0), (b, 1.0), (c, 1.0)]);
//! m.add_constraint([(a, 3.0), (b, 3.0), (c, 3.0)], Relation::Le, 5.0)?;
//! let sep = CutSeparator::from_model(&m, &[]);
//! let cuts = sep.separate(&[0.8, 0.8, 0.0]);
//! assert_eq!(cuts.len(), 1);
//! assert_eq!(cuts[0].rhs(), 1.0);
//! # Ok(())
//! # }
//! ```

use std::collections::BTreeSet;

use crate::simplex::{solve_relaxation, SimplexOptions};
use crate::{IlpError, Model, Relation, VarId, VarKind};

/// Violation threshold below which a candidate cut is not worth emitting.
const VIOLATION_TOL: f64 = 1e-6;

/// Numeric slack when testing whether a weight set overflows a capacity.
const CAP_TOL: f64 = 1e-9;

/// Cap on cuts emitted per separation round, keeping opt-in rounds cheap.
const MAX_CUTS_PER_ROUND: usize = 32;

/// Cap on root separation rounds in [`strengthen_root`].
const MAX_ROOT_ROUNDS: usize = 8;

/// One separated cover inequality: unit coefficients over `vars`,
/// `Σ vars ≤ rhs` or `Σ vars ≥ rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct Cut {
    vars: Vec<VarId>,
    relation: Relation,
    rhs: f64,
}

impl Cut {
    /// The variables of the cut (unit coefficients, ascending id).
    #[must_use]
    pub fn vars(&self) -> &[VarId] {
        &self.vars
    }

    /// The cut's relation (`Le` for forward covers, `Ge` for complemented
    /// gain-row covers).
    #[must_use]
    pub fn relation(&self) -> Relation {
        self.relation
    }

    /// The cut's right-hand side.
    #[must_use]
    pub fn rhs(&self) -> f64 {
        self.rhs
    }

    /// Amount by which `values` violates this cut (`<= 0` means satisfied).
    #[must_use]
    pub fn violation(&self, values: &[f64]) -> f64 {
        let lhs: f64 = self.vars.iter().map(|v| values[v.index()]).sum();
        match self.relation {
            Relation::Le => lhs - self.rhs,
            Relation::Ge => self.rhs - lhs,
            Relation::Eq => (lhs - self.rhs).abs(),
        }
    }

    /// Appends this cut to `model` as a labelled constraint.
    ///
    /// # Errors
    ///
    /// Propagates [`IlpError::UnknownVariable`] when the cut references a
    /// variable the model does not have (only possible when the cut came
    /// from a different model).
    pub fn apply(&self, model: &mut Model, label: impl Into<String>) -> Result<(), IlpError> {
        model.add_labeled_constraint(
            self.vars.iter().map(|&v| (v, 1.0)),
            self.relation,
            self.rhs,
            Some(label),
        )
    }
}

/// A knapsack row extracted from the model, normalised to
/// `Σ weight_j · t_j ≤ cap` where `t` is either `x` (forward rows) or the
/// complement `1 − x` (gain rows).
#[derive(Debug, Clone)]
struct KnapsackRow {
    /// `(variable, weight)` with every weight strictly positive.
    terms: Vec<(VarId, f64)>,
    /// Knapsack capacity after normalisation.
    cap: f64,
    /// Whether the row is over the complement `y = 1 − x` (a `Ge` source
    /// row), in which case separated covers translate back to `Ge` cuts.
    complemented: bool,
}

/// Deterministic extended-cover separator over a model's knapsack rows.
///
/// Build one per model with [`CutSeparator::from_model`], then call
/// [`CutSeparator::separate`] with fractional LP points as often as needed;
/// the separator itself is immutable and shareable across threads.
#[derive(Debug, Clone)]
pub struct CutSeparator {
    rows: Vec<KnapsackRow>,
    /// GUB group id per variable index (`usize::MAX` = ungrouped). Used to
    /// strengthen forward covers: a set touching `g` one-per-scall groups
    /// can never select more than `g` variables.
    group_of: Vec<usize>,
    num_vars: usize,
}

impl CutSeparator {
    /// Scans `model` for knapsack-shaped rows (all-positive weights over
    /// binaries) and prepares them for separation. `groups` lists disjoint
    /// GUB groups (`Σ_{group} x ≤ 1` must hold in the model, e.g. the
    /// `one_imp` rows); pass `&[]` when none apply.
    #[must_use]
    pub fn from_model(model: &Model, groups: &[Vec<VarId>]) -> CutSeparator {
        let n = model.num_vars();
        let is_binary = |v: VarId| matches!(model.var_kind(v), Ok(VarKind::Binary));
        let mut rows = Vec::new();
        for c in model.constraints() {
            let terms = c.expr.terms();
            // Fold the expression's constant into the capacity.
            let rhs = c.rhs - c.expr.constant();
            if terms.len() < 2
                || !terms
                    .iter()
                    .all(|&(v, w)| w > 0.0 && w.is_finite() && is_binary(v))
            {
                continue;
            }
            match c.relation {
                Relation::Le if rhs > 0.0 => rows.push(KnapsackRow {
                    terms: terms.clone(),
                    cap: rhs,
                    complemented: false,
                }),
                Relation::Ge if rhs > 0.0 => {
                    // Σ w·x ≥ rhs  ⟺  Σ w·(1−x) ≤ Σw − rhs.
                    let total: f64 = terms.iter().map(|(_, w)| w).sum();
                    let cap = total - rhs;
                    if cap > 0.0 {
                        rows.push(KnapsackRow {
                            terms: terms.clone(),
                            cap,
                            complemented: true,
                        });
                    }
                }
                _ => {}
            }
        }
        let mut group_of = vec![usize::MAX; n];
        for (g, members) in groups.iter().enumerate() {
            for &v in members {
                if v.index() < n {
                    group_of[v.index()] = g;
                }
            }
        }
        CutSeparator {
            rows,
            group_of,
            num_vars: n,
        }
    }

    /// Number of knapsack rows the separator watches.
    #[must_use]
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Separates extended cover cuts violated by the LP point `values`
    /// (full-length variable assignment). Returns at most a bounded number
    /// of cuts per call, deduplicated, in deterministic order.
    #[must_use]
    pub fn separate(&self, values: &[f64]) -> Vec<Cut> {
        if values.len() < self.num_vars {
            return Vec::new();
        }
        let mut cuts: Vec<Cut> = Vec::new();
        let mut seen: BTreeSet<(Vec<usize>, u64)> = BTreeSet::new();
        for row in &self.rows {
            if cuts.len() >= MAX_CUTS_PER_ROUND {
                break;
            }
            let Some(cut) = self.separate_row(row, values) else {
                continue;
            };
            let key = (
                cut.vars.iter().map(|v| v.index()).collect::<Vec<_>>(),
                cut.rhs.to_bits(),
            );
            if seen.insert(key) {
                cuts.push(cut);
            }
        }
        cuts
    }

    /// Separates one row: finds a minimal cover over the fractional point,
    /// extends it, strengthens forward covers against the GUB groups and
    /// emits the inequality only when violated.
    fn separate_row(&self, row: &KnapsackRow, values: &[f64]) -> Option<Cut> {
        // Fractional value of the knapsack's own variable space: x for
        // forward rows, 1 − x for complemented gain rows.
        let t = |v: VarId| {
            let x = values[v.index()].clamp(0.0, 1.0);
            if row.complemented {
                1.0 - x
            } else {
                x
            }
        };

        // Greedy cover: take items by descending fractional usage (ties on
        // ascending variable id) until the capacity overflows.
        let mut order: Vec<usize> = (0..row.terms.len()).collect();
        order.sort_by(|&i, &j| {
            t(row.terms[j].0)
                .total_cmp(&t(row.terms[i].0))
                .then(row.terms[i].0.index().cmp(&row.terms[j].0.index()))
        });
        let mut cover: Vec<usize> = Vec::new();
        let mut weight = 0.0;
        for idx in order {
            cover.push(idx);
            weight += row.terms[idx].1;
            if weight > row.cap + CAP_TOL {
                break;
            }
        }
        if weight <= row.cap + CAP_TOL {
            return None; // The whole row fits: no cover exists.
        }

        // Minimalise: drop light members while the rest still overflows.
        cover.sort_by(|&i, &j| {
            row.terms[i]
                .1
                .total_cmp(&row.terms[j].1)
                .then(row.terms[i].0.index().cmp(&row.terms[j].0.index()))
        });
        let mut keep: Vec<usize> = Vec::new();
        for (pos, &idx) in cover.iter().enumerate() {
            let rest: f64 = cover[pos + 1..]
                .iter()
                .chain(keep.iter())
                .map(|&k| row.terms[k].1)
                .sum();
            if rest <= row.cap + CAP_TOL {
                keep.push(idx);
            } // else: still a cover without it — drop.
        }
        let cover = keep;

        // Extend: every variable at least as heavy as the heaviest cover
        // member can join the left-hand side without weakening validity.
        let heaviest = cover.iter().map(|&i| row.terms[i].1).fold(0.0f64, f64::max);
        let in_cover: BTreeSet<usize> = cover.iter().copied().collect();
        let mut extended: Vec<usize> = cover.clone();
        for (i, &(_, w)) in row.terms.iter().enumerate() {
            if !in_cover.contains(&i) && w >= heaviest - CAP_TOL {
                extended.push(i);
            }
        }
        extended.sort_by_key(|&i| row.terms[i].0.index());

        let vars: Vec<VarId> = extended.iter().map(|&i| row.terms[i].0).collect();
        let (relation, mut rhs) = if row.complemented {
            // Σ_E (1−x) ≤ |C|−1  ⟺  Σ_E x ≥ |E| − |C| + 1.
            (
                Relation::Ge,
                (extended.len() as f64) - (cover.len() as f64) + 1.0,
            )
        } else {
            (Relation::Le, cover.len() as f64 - 1.0)
        };

        // GUB strengthening (forward covers only): the extended set can
        // never select more variables than the one-per-scall groups it
        // touches allow.
        if relation == Relation::Le {
            let mut groups: BTreeSet<usize> = BTreeSet::new();
            let mut ungrouped = 0usize;
            for &v in &vars {
                match self.group_of[v.index()] {
                    usize::MAX => ungrouped += 1,
                    g => {
                        groups.insert(g);
                    }
                }
            }
            rhs = rhs.min((groups.len() + ungrouped) as f64);
        }

        let cut = Cut {
            vars,
            relation,
            rhs,
        };
        (cut.violation(values) > VIOLATION_TOL).then_some(cut)
    }
}

/// Outcome of [`strengthen_root`]: the (possibly) strengthened model plus
/// how many cuts and separation rounds were applied.
#[derive(Debug, Clone)]
pub struct RootCuts {
    /// The input model with every separated cut appended.
    pub model: Model,
    /// Total cover cuts added across all rounds.
    pub cuts_added: usize,
    /// Separation rounds that ran (a round = LP solve + separate).
    pub rounds: usize,
}

/// Runs root cutting-plane rounds: solve the LP relaxation, separate
/// violated extended covers, append them and repeat until no cut is
/// violated (or an internal round cap is hit). The returned model has the
/// same variables and integer optima as the input — see the module
/// invariants — so it can be handed to [`crate::BranchBound`] in place of
/// the original.
///
/// An infeasible or unbounded root LP returns the model unchanged with zero
/// cuts: the downstream solver re-discovers and reports that condition
/// through its usual error path.
///
/// # Errors
///
/// Propagates simplex failures other than infeasibility/unboundedness
/// (e.g. [`IlpError::IterationLimit`]).
pub fn strengthen_root(
    model: &Model,
    groups: &[Vec<VarId>],
    options: SimplexOptions,
) -> Result<RootCuts, IlpError> {
    let mut out = model.clone();
    let mut cuts_added = 0usize;
    let mut rounds = 0usize;
    for round in 0..MAX_ROOT_ROUNDS {
        let lp = match solve_relaxation(&out, options) {
            Ok(lp) => lp,
            Err(IlpError::Infeasible | IlpError::Unbounded) => break,
            Err(e) => return Err(e),
        };
        rounds += 1;
        let sep = CutSeparator::from_model(&out, groups);
        let cuts = sep.separate(&lp.values);
        if cuts.is_empty() {
            break;
        }
        for (i, cut) in cuts.iter().enumerate() {
            cut.apply(&mut out, format!("cover_r{round}_{i}"))?;
            cuts_added += 1;
        }
    }
    Ok(RootCuts {
        model: out,
        cuts_added,
        rounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBound, Sense};

    /// Forward knapsack where two of the three equal items overflow.
    fn forward_model() -> (Model, [VarId; 3]) {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 1.0), (b, 1.0), (c, 1.0)]);
        m.add_constraint([(a, 3.0), (b, 3.0), (c, 3.0)], Relation::Le, 5.0)
            .unwrap();
        (m, [a, b, c])
    }

    #[test]
    fn forward_cover_is_extended_and_violated() {
        let (m, [a, b, c]) = forward_model();
        let sep = CutSeparator::from_model(&m, &[]);
        let cuts = sep.separate(&[0.9, 0.9, 0.0]);
        assert_eq!(cuts.len(), 1);
        // The minimal cover {a, b} extends with the equally-heavy c.
        assert_eq!(cuts[0].vars(), &[a, b, c]);
        assert_eq!(cuts[0].relation(), Relation::Le);
        assert_eq!(cuts[0].rhs(), 1.0);
    }

    #[test]
    fn satisfied_point_yields_no_cut() {
        let (m, _) = forward_model();
        let sep = CutSeparator::from_model(&m, &[]);
        assert!(sep.separate(&[1.0, 0.0, 0.0]).is_empty());
        assert!(sep.separate(&[0.4, 0.3, 0.3]).is_empty());
    }

    #[test]
    fn complemented_gain_row_yields_ge_cut() {
        // Gain row 4a + 4b + 4c >= 9: dropping any single item leaves only
        // 8 < 9, so {one item off} is a complement cover and the extended
        // lifted cut is a + b + c >= 3 — every item is mandatory. The LP
        // relaxation's fractional vertices all violate it.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 1.0), (b, 1.0), (c, 1.0)]);
        m.add_constraint([(a, 4.0), (b, 4.0), (c, 4.0)], Relation::Ge, 9.0)
            .unwrap();
        let sep = CutSeparator::from_model(&m, &[]);
        let cuts = sep.separate(&[0.75, 0.75, 0.75]);
        assert_eq!(cuts.len(), 1);
        assert_eq!(cuts[0].relation(), Relation::Ge);
        assert_eq!(cuts[0].vars(), &[a, b, c]);
        assert_eq!(cuts[0].rhs(), 3.0);
        // The all-ones point satisfies the cut: nothing integral is lost.
        assert!(cuts[0].violation(&[1.0, 1.0, 1.0]) <= 0.0);
    }

    #[test]
    fn gub_groups_strengthen_forward_covers() {
        // Two items per group, groups capped at one pick each; the plain
        // cover rhs would be 2, the GUB-strengthened rhs is the number of
        // groups the extended cover touches.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 1.0), (b, 1.0), (c, 1.0)]);
        m.add_constraint([(a, 2.0), (b, 2.0), (c, 2.0)], Relation::Le, 5.0)
            .unwrap();
        m.add_constraint([(a, 1.0), (b, 1.0)], Relation::Le, 1.0)
            .unwrap();
        let groups = vec![vec![a, b]];
        let sep = CutSeparator::from_model(&m, &groups);
        let cuts = sep.separate(&[0.9, 0.9, 0.9]);
        // Extended cover {a, b, c}: plain rhs 2, GUB rhs 1 group + 1
        // ungrouped = 2 — equal here, so check the stronger 2-var case.
        assert!(!cuts.is_empty());
        let tight = &cuts[0];
        assert!(tight.rhs() <= 2.0);
    }

    #[test]
    fn cuts_never_exclude_integer_points() {
        // Enumerate all 0/1 points of a mixed model; every separated cut
        // must hold at every feasible integer point.
        let mut m = Model::new(Sense::Minimize);
        let vars: Vec<VarId> = (0..5).map(|i| m.add_binary(format!("x{i}"))).collect();
        m.set_objective(vars.iter().map(|&v| (v, 1.0)));
        m.add_constraint(
            [
                (vars[0], 7.0),
                (vars[1], 5.0),
                (vars[2], 4.0),
                (vars[3], 3.0),
            ],
            Relation::Le,
            9.0,
        )
        .unwrap();
        m.add_constraint(
            [(vars[1], 6.0), (vars[2], 6.0), (vars[4], 5.0)],
            Relation::Ge,
            10.0,
        )
        .unwrap();
        let sep = CutSeparator::from_model(&m, &[]);
        // Probe several fractional points; whatever cuts come out must be
        // valid for all feasible integer assignments.
        let probes = [
            vec![0.5, 0.5, 0.5, 0.5, 0.5],
            vec![0.9, 0.8, 0.1, 0.2, 0.3],
            vec![0.1, 0.9, 0.9, 0.9, 0.0],
        ];
        for probe in &probes {
            for cut in sep.separate(probe) {
                for mask in 0u32..(1 << 5) {
                    let point: Vec<f64> = (0..5).map(|i| f64::from((mask >> i) & 1)).collect();
                    if m.is_feasible(&point, 1e-9) {
                        assert!(
                            cut.violation(&point) <= 1e-9,
                            "cut {cut:?} cuts integer point {point:?}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn strengthen_root_preserves_the_optimum() {
        let (m, _) = forward_model();
        let plain = BranchBound::new().solve(&m).unwrap();
        let rooted = strengthen_root(&m, &[], SimplexOptions::default()).unwrap();
        let cut_sol = BranchBound::new().solve(&rooted.model).unwrap();
        assert_eq!(plain.values, cut_sol.values);
        assert!((plain.objective - cut_sol.objective).abs() < 1e-9);
        assert!(rooted.rounds >= 1);
    }

    #[test]
    fn strengthen_root_on_infeasible_model_is_a_no_op() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.add_constraint([(a, 1.0)], Relation::Ge, 2.0).unwrap();
        let rooted = strengthen_root(&m, &[], SimplexOptions::default()).unwrap();
        assert_eq!(rooted.cuts_added, 0);
        assert_eq!(rooted.model.num_constraints(), m.num_constraints());
    }
}
