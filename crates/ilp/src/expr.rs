//! Linear expressions over model variables.

use std::collections::BTreeMap;
use std::fmt;

use crate::VarId;

/// A linear expression `Σ cᵢ·xᵢ + k`.
///
/// Terms on the same variable are merged; zero coefficients are dropped.
///
/// # Example
///
/// ```
/// use partita_ilp::{LinExpr, VarId};
/// let x = VarId(0);
/// let y = VarId(1);
/// let mut e = LinExpr::new();
/// e.add_term(x, 2.0);
/// e.add_term(y, -1.0);
/// e.add_term(x, 3.0);
/// assert_eq!(e.coeff(x), 5.0);
/// assert_eq!(e.terms().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct LinExpr {
    terms: BTreeMap<VarId, f64>,
    constant: f64,
}

impl LinExpr {
    /// The empty expression (`0`).
    #[must_use]
    pub fn new() -> LinExpr {
        LinExpr::default()
    }

    /// Adds `coeff · var`, merging with any existing term on `var`.
    pub fn add_term(&mut self, var: VarId, coeff: f64) -> &mut Self {
        let c = self.terms.entry(var).or_insert(0.0);
        *c += coeff;
        if c.abs() < 1e-300 {
            self.terms.remove(&var);
        }
        self
    }

    /// Adds a constant offset.
    pub fn add_constant(&mut self, k: f64) -> &mut Self {
        self.constant += k;
        self
    }

    /// The coefficient of `var` (0 when absent).
    #[must_use]
    pub fn coeff(&self, var: VarId) -> f64 {
        self.terms.get(&var).copied().unwrap_or(0.0)
    }

    /// The constant offset.
    #[must_use]
    pub fn constant(&self) -> f64 {
        self.constant
    }

    /// All `(variable, coefficient)` pairs in variable order.
    #[must_use]
    pub fn terms(&self) -> Vec<(VarId, f64)> {
        self.terms.iter().map(|(&v, &c)| (v, c)).collect()
    }

    /// Evaluates the expression for an assignment indexed by variable.
    #[must_use]
    pub fn eval(&self, values: &[f64]) -> f64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|(v, c)| c * values.get(v.index()).copied().unwrap_or(0.0))
                .sum::<f64>()
    }

    /// `true` if every coefficient and the constant are finite.
    #[must_use]
    pub fn is_finite(&self) -> bool {
        self.constant.is_finite() && self.terms.values().all(|c| c.is_finite())
    }
}

impl FromIterator<(VarId, f64)> for LinExpr {
    fn from_iter<I: IntoIterator<Item = (VarId, f64)>>(iter: I) -> LinExpr {
        let mut e = LinExpr::new();
        for (v, c) in iter {
            e.add_term(v, c);
        }
        e
    }
}

impl Extend<(VarId, f64)> for LinExpr {
    fn extend<I: IntoIterator<Item = (VarId, f64)>>(&mut self, iter: I) {
        for (v, c) in iter {
            self.add_term(v, c);
        }
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                write!(f, "{c}·{v}")?;
                first = false;
            } else if *c < 0.0 {
                write!(f, " - {}·{v}", -c)?;
            } else {
                write!(f, " + {c}·{v}")?;
            }
        }
        if self.constant != 0.0 || first {
            if first {
                write!(f, "{}", self.constant)?;
            } else {
                write!(f, " + {}", self.constant)?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_coefficients_are_dropped() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), 1.0);
        e.add_term(VarId(0), -1.0);
        assert!(e.terms().is_empty());
    }

    #[test]
    fn eval_uses_constant() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), 2.0).add_constant(1.0);
        assert_eq!(e.eval(&[3.0]), 7.0);
        // Missing values default to zero.
        assert_eq!(e.eval(&[]), 1.0);
    }

    #[test]
    fn collect_from_iterator() {
        let e: LinExpr = [(VarId(0), 1.0), (VarId(1), 2.0), (VarId(0), 1.0)]
            .into_iter()
            .collect();
        assert_eq!(e.coeff(VarId(0)), 2.0);
        assert_eq!(e.coeff(VarId(1)), 2.0);
    }

    #[test]
    fn display_formats_signs() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), 1.0).add_term(VarId(1), -2.0);
        assert_eq!(e.to_string(), "1·x0 - 2·x1");
        assert_eq!(LinExpr::new().to_string(), "0");
    }

    #[test]
    fn finiteness_check() {
        let mut e = LinExpr::new();
        e.add_term(VarId(0), f64::NAN);
        assert!(!e.is_finite());
    }
}
