//! Optimisation model: variables, constraints, objective.

use std::fmt;

use crate::{IlpError, LinExpr};

/// Identifier of a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct VarId(pub usize);

impl VarId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0
    }
}

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// Variable domain kind.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum VarKind {
    /// Continuous in `[lower, upper]`.
    Continuous,
    /// Binary (`{0, 1}`).
    Binary,
}

/// Optimisation direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sense {
    /// Minimise the objective.
    Minimize,
    /// Maximise the objective.
    Maximize,
}

/// Constraint relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Relation {
    /// `expr ≤ rhs`.
    Le,
    /// `expr ≥ rhs`.
    Ge,
    /// `expr = rhs`.
    Eq,
}

impl fmt::Display for Relation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub(crate) struct VarDef {
    pub name: String,
    pub kind: VarKind,
    pub lower: f64,
    pub upper: f64,
}

/// A linear constraint `expr (≤|≥|=) rhs`.
#[derive(Debug, Clone, PartialEq)]
pub struct ConstraintDef {
    /// Left-hand side expression (constant folded into `rhs`).
    pub expr: LinExpr,
    /// Relation.
    pub relation: Relation,
    /// Right-hand side.
    pub rhs: f64,
    /// Optional label for diagnostics.
    pub label: Option<String>,
}

/// A mixed binary/continuous linear model.
///
/// # Example
///
/// ```
/// use partita_ilp::{Model, Sense, Relation};
/// # fn main() -> Result<(), partita_ilp::IlpError> {
/// let mut m = Model::new(Sense::Minimize);
/// let x = m.add_binary("x");
/// m.set_objective([(x, 1.0)]);
/// m.add_constraint([(x, 1.0)], Relation::Ge, 1.0)?;
/// assert_eq!(m.num_vars(), 1);
/// assert_eq!(m.num_constraints(), 1);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Model {
    sense: Sense,
    vars: Vec<VarDef>,
    constraints: Vec<ConstraintDef>,
    objective: LinExpr,
}

impl Model {
    /// Creates an empty model with the given optimisation sense.
    #[must_use]
    pub fn new(sense: Sense) -> Model {
        Model {
            sense,
            vars: Vec::new(),
            constraints: Vec::new(),
            objective: LinExpr::new(),
        }
    }

    /// Optimisation sense.
    #[must_use]
    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Adds a binary variable.
    pub fn add_binary(&mut self, name: impl Into<String>) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            kind: VarKind::Binary,
            lower: 0.0,
            upper: 1.0,
        });
        id
    }

    /// Adds a continuous variable bounded to `[lower, upper]`.
    ///
    /// # Panics
    ///
    /// Panics if `lower > upper` or either bound is NaN.
    pub fn add_continuous(&mut self, name: impl Into<String>, lower: f64, upper: f64) -> VarId {
        assert!(
            !lower.is_nan() && !upper.is_nan() && lower <= upper,
            "invalid bounds [{lower}, {upper}]"
        );
        let id = VarId(self.vars.len());
        self.vars.push(VarDef {
            name: name.into(),
            kind: VarKind::Continuous,
            lower,
            upper,
        });
        id
    }

    /// Number of variables.
    #[must_use]
    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    /// Number of constraints.
    #[must_use]
    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Variable kind.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] for out-of-range ids.
    pub fn var_kind(&self, var: VarId) -> Result<VarKind, IlpError> {
        self.vars
            .get(var.index())
            .map(|v| v.kind)
            .ok_or(IlpError::UnknownVariable(var))
    }

    /// Variable name.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] for out-of-range ids.
    pub fn var_name(&self, var: VarId) -> Result<&str, IlpError> {
        self.vars
            .get(var.index())
            .map(|v| v.name.as_str())
            .ok_or(IlpError::UnknownVariable(var))
    }

    /// Variable bounds `(lower, upper)`.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] for out-of-range ids.
    pub fn var_bounds(&self, var: VarId) -> Result<(f64, f64), IlpError> {
        self.vars
            .get(var.index())
            .map(|v| (v.lower, v.upper))
            .ok_or(IlpError::UnknownVariable(var))
    }

    /// Ids of all binary variables.
    #[must_use]
    pub fn binary_vars(&self) -> Vec<VarId> {
        self.vars
            .iter()
            .enumerate()
            .filter(|(_, v)| v.kind == VarKind::Binary)
            .map(|(i, _)| VarId(i))
            .collect()
    }

    /// Sets the objective expression.
    pub fn set_objective(&mut self, terms: impl IntoIterator<Item = (VarId, f64)>) {
        self.objective = terms.into_iter().collect();
    }

    /// Sets the objective from a prebuilt expression.
    pub fn set_objective_expr(&mut self, expr: LinExpr) {
        self.objective = expr;
    }

    /// The objective expression.
    #[must_use]
    pub fn objective(&self) -> &LinExpr {
        &self.objective
    }

    /// Adds a constraint `Σ terms (≤|≥|=) rhs`.
    ///
    /// # Errors
    ///
    /// Returns [`IlpError::UnknownVariable`] if a term references a missing
    /// variable, or [`IlpError::NonFiniteCoefficient`] for NaN/∞ data.
    pub fn add_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> Result<(), IlpError> {
        self.add_labeled_constraint(terms, relation, rhs, None::<String>)
    }

    /// Adds a constraint with a diagnostic label.
    ///
    /// # Errors
    ///
    /// Same as [`Model::add_constraint`].
    pub fn add_labeled_constraint(
        &mut self,
        terms: impl IntoIterator<Item = (VarId, f64)>,
        relation: Relation,
        rhs: f64,
        label: Option<impl Into<String>>,
    ) -> Result<(), IlpError> {
        let expr: LinExpr = terms.into_iter().collect();
        for (v, c) in expr.terms() {
            if v.index() >= self.vars.len() {
                return Err(IlpError::UnknownVariable(v));
            }
            if !c.is_finite() {
                return Err(IlpError::NonFiniteCoefficient {
                    context: "constraint",
                    value: c,
                });
            }
        }
        if !rhs.is_finite() {
            return Err(IlpError::NonFiniteCoefficient {
                context: "constraint rhs",
                value: rhs,
            });
        }
        self.constraints.push(ConstraintDef {
            expr,
            relation,
            rhs,
            label: label.map(Into::into),
        });
        Ok(())
    }

    /// All constraints.
    #[must_use]
    pub fn constraints(&self) -> &[ConstraintDef] {
        &self.constraints
    }

    /// Overwrites a variable's bounds in place.
    ///
    /// This is the patch hook of the incremental re-solve layer: retiring a
    /// column pins it to `[0, 0]`, re-enabling it restores `[0, 1]`, with the
    /// row/column shape of the model untouched so a retained simplex basis
    /// stays installable.
    ///
    /// # Errors
    ///
    /// [`IlpError::UnknownVariable`] for out-of-range ids, or
    /// [`IlpError::NonFiniteCoefficient`] when `lower` is not finite, either
    /// bound is NaN, or `lower > upper`.
    pub fn set_var_bounds(&mut self, var: VarId, lower: f64, upper: f64) -> Result<(), IlpError> {
        if !lower.is_finite() || upper.is_nan() || lower > upper {
            return Err(IlpError::NonFiniteCoefficient {
                context: "variable bounds",
                value: if lower.is_finite() { upper } else { lower },
            });
        }
        let def = self
            .vars
            .get_mut(var.index())
            .ok_or(IlpError::UnknownVariable(var))?;
        def.lower = lower;
        def.upper = upper;
        Ok(())
    }

    /// Overwrites a constraint's right-hand side in place.
    ///
    /// The other patch hook of the incremental layer: a required-gain
    /// retarget is a pure RHS edit on the path's gain row, leaving every
    /// coefficient (and hence any retained basis) valid.
    ///
    /// # Errors
    ///
    /// [`IlpError::UnknownConstraint`] for out-of-range indices, or
    /// [`IlpError::NonFiniteCoefficient`] for a non-finite `rhs`.
    pub fn set_constraint_rhs(&mut self, index: usize, rhs: f64) -> Result<(), IlpError> {
        if !rhs.is_finite() {
            return Err(IlpError::NonFiniteCoefficient {
                context: "constraint rhs",
                value: rhs,
            });
        }
        let c = self
            .constraints
            .get_mut(index)
            .ok_or(IlpError::UnknownConstraint(index))?;
        c.rhs = rhs;
        Ok(())
    }

    /// Checks a full assignment against every constraint and the variable
    /// domains, within tolerance `tol`.
    #[must_use]
    pub fn is_feasible(&self, values: &[f64], tol: f64) -> bool {
        if values.len() != self.vars.len() {
            return false;
        }
        for (v, def) in values.iter().zip(&self.vars) {
            if *v < def.lower - tol || *v > def.upper + tol {
                return false;
            }
            if def.kind == VarKind::Binary && (v - v.round()).abs() > tol {
                return false;
            }
        }
        self.constraints.iter().all(|c| {
            let lhs = c.expr.eval(values);
            match c.relation {
                Relation::Le => lhs <= c.rhs + tol,
                Relation::Ge => lhs >= c.rhs - tol,
                Relation::Eq => (lhs - c.rhs).abs() <= tol,
            }
        })
    }
}

impl fmt::Display for Model {
    /// Renders the model in an LP-like text format for debugging:
    ///
    /// ```text
    /// minimize 3 x0 + 2 x1
    /// s.t.
    ///   c0: 1 x0 + 1 x1 >= 1
    /// binaries: x0 x1
    /// ```
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let sense = match self.sense {
            Sense::Minimize => "minimize",
            Sense::Maximize => "maximize",
        };
        writeln!(f, "{sense} {}", self.objective)?;
        writeln!(f, "s.t.")?;
        for (i, c) in self.constraints.iter().enumerate() {
            let label = c.label.as_deref().unwrap_or("");
            writeln!(
                f,
                "  c{i}{}{label}: {} {} {}",
                if label.is_empty() { "" } else { ":" },
                c.expr,
                c.relation,
                c.rhs
            )?;
        }
        let binaries: Vec<String> = self.binary_vars().iter().map(ToString::to_string).collect();
        if !binaries.is_empty() {
            writeln!(f, "binaries: {}", binaries.join(" "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unknown_variable_in_constraint_rejected() {
        let mut m = Model::new(Sense::Minimize);
        let err = m
            .add_constraint([(VarId(3), 1.0)], Relation::Le, 1.0)
            .unwrap_err();
        assert_eq!(err, IlpError::UnknownVariable(VarId(3)));
    }

    #[test]
    fn nan_rhs_rejected() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        assert!(matches!(
            m.add_constraint([(x, 1.0)], Relation::Le, f64::NAN),
            Err(IlpError::NonFiniteCoefficient { .. })
        ));
    }

    #[test]
    fn feasibility_checks_domains() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        m.add_constraint([(x, 1.0)], Relation::Le, 1.0).unwrap();
        assert!(m.is_feasible(&[1.0], 1e-9));
        assert!(!m.is_feasible(&[0.5], 1e-9)); // not integral
        assert!(!m.is_feasible(&[2.0], 1e-9)); // out of bounds
        assert!(!m.is_feasible(&[], 1e-9)); // wrong arity
    }

    #[test]
    fn binary_vars_listed() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let _c = m.add_continuous("c", 0.0, 5.0);
        let b = m.add_binary("b");
        assert_eq!(m.binary_vars(), vec![a, b]);
        assert_eq!(m.var_kind(a).unwrap(), VarKind::Binary);
        assert_eq!(m.var_name(b).unwrap(), "b");
        assert_eq!(m.var_bounds(_c).unwrap(), (0.0, 5.0));
    }

    #[test]
    fn display_renders_lp_format() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary("x");
        let y = m.add_binary("y");
        m.set_objective([(x, 3.0), (y, 2.0)]);
        m.add_labeled_constraint([(x, 1.0), (y, 1.0)], Relation::Ge, 1.0, Some("cover"))
            .unwrap();
        let text = m.to_string();
        assert!(text.starts_with("minimize"));
        assert!(text.contains(">= 1"));
        assert!(text.contains("cover"));
        assert!(text.contains("binaries: x0 x1"));
    }

    #[test]
    #[should_panic(expected = "invalid bounds")]
    fn bad_bounds_panic() {
        let mut m = Model::new(Sense::Minimize);
        let _ = m.add_continuous("c", 2.0, 1.0);
    }
}
