//! Brute-force reference solver for validation.

use std::sync::atomic::{AtomicBool, Ordering as AtomicOrdering};
use std::time::{Duration, Instant};

use crate::branch_bound::lex_less;
use crate::simplex::{solve_with_bounds, SimplexOptions};
use crate::{IlpError, IlpSolution, Model, Sense, Termination, VarId, VarKind};

/// Maximum number of binaries the exhaustive solver accepts.
pub const MAX_EXHAUSTIVE_BINARIES: usize = 24;

/// Tie window within which the lexicographic tie-break applies (matches
/// branch-and-bound's `TIE_TOL`).
const TIE_TOL: f64 = 1e-9;

/// How many assignments are enumerated between deadline/cancel polls.
const POLL_STRIDE: u64 = 256;

/// Outcome of [`run_binary_exhaustive`]: the best feasible assignment seen
/// (if any), why the enumeration stopped, and how far it got.
#[derive(Debug, Clone, PartialEq)]
pub struct ExhaustiveRun {
    /// Best integer-feasible solution found so far; `None` when every
    /// enumerated assignment was infeasible.
    pub solution: Option<IlpSolution>,
    /// [`Termination::Optimal`] only when every assignment was enumerated.
    pub termination: Termination,
    /// Number of binary assignments actually checked.
    pub assignments_checked: usize,
}

/// Budget-aware exhaustive enumeration over the binary assignments of
/// `model`, with the same tie-break contract as [`crate::BranchBound`]: the
/// reported solution is the lexicographically smallest optimal assignment,
/// so exact backends agree byte-for-byte.
///
/// `max_assignments` bounds how many assignments are checked; `deadline`
/// and `cancel` are polled every few hundred assignments. An exhausted
/// budget returns the best incumbent found so far with an honest
/// [`Termination`], never an error.
///
/// # Errors
///
/// [`IlpError::TooManyBinaries`] for more than
/// [`MAX_EXHAUSTIVE_BINARIES`] binaries; simplex errors propagate for
/// mixed models.
pub fn run_binary_exhaustive(
    model: &Model,
    max_assignments: usize,
    deadline: Option<Duration>,
    cancel: Option<&AtomicBool>,
) -> Result<ExhaustiveRun, IlpError> {
    let binaries = model.binary_vars();
    if binaries.len() > MAX_EXHAUSTIVE_BINARIES {
        return Err(IlpError::TooManyBinaries {
            count: binaries.len(),
            max: MAX_EXHAUSTIVE_BINARIES,
        });
    }
    let started = Instant::now();
    let n = model.num_vars();
    let pure_binary = (0..n).all(|i| {
        model
            .var_kind(VarId(i))
            .map(|k| k == VarKind::Binary)
            .unwrap_or(false)
    });
    let minimize = model.sense() == Sense::Minimize;
    let norm = |obj: f64| if minimize { obj } else { -obj };

    let mut best: Option<IlpSolution> = None;
    let mut best_score = f64::INFINITY;
    let mut checked = 0usize;
    let mut termination = Termination::Optimal;

    let total = 1u64 << binaries.len();
    for mask in 0..total {
        if checked >= max_assignments {
            termination = Termination::NodeLimit;
            break;
        }
        if mask % POLL_STRIDE == 0 {
            if deadline.is_some_and(|d| started.elapsed() >= d) {
                termination = Termination::Deadline;
                break;
            }
            if cancel.is_some_and(|c| c.load(AtomicOrdering::Relaxed)) {
                termination = Termination::Cancelled;
                break;
            }
        }
        checked += 1;
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for i in 0..n {
            let (l, u) = model.var_bounds(VarId(i)).expect("var exists");
            lower.push(l);
            upper.push(u);
        }
        for (bit, &v) in binaries.iter().enumerate() {
            let val = if mask & (1 << bit) != 0 { 1.0 } else { 0.0 };
            lower[v.index()] = val;
            upper[v.index()] = val;
        }

        let candidate = if pure_binary {
            let values = lower.clone();
            if model.is_feasible(&values, 1e-7) {
                Some((model.objective().eval(&values), values))
            } else {
                None
            }
        } else {
            match solve_with_bounds(model, &lower, &upper, SimplexOptions::default()) {
                Ok(lp) => Some((lp.objective, lp.values)),
                Err(IlpError::Infeasible) => None,
                Err(e) => return Err(e),
            }
        };

        if let Some((objective, values)) = candidate {
            let score = norm(objective);
            let improves = match &best {
                None => true,
                Some(sol) => {
                    score < best_score - TIE_TOL
                        || (score <= best_score + TIE_TOL && lex_less(&values, &sol.values))
                }
            };
            if improves {
                best_score = best_score.min(score);
                best = Some(IlpSolution { objective, values });
            }
        }
    }

    Ok(ExhaustiveRun {
        solution: best,
        termination,
        assignments_checked: checked,
    })
}

/// Solves `model` by enumerating every assignment of its binary variables.
///
/// Pure-binary models are checked directly; models with continuous variables
/// solve an LP per assignment. This is the oracle that the property-test
/// suite compares [`crate::BranchBound`] against.
///
/// # Errors
///
/// [`IlpError::TooManyBinaries`] for more than
/// [`MAX_EXHAUSTIVE_BINARIES`] binaries, [`IlpError::Infeasible`] when no
/// assignment is feasible.
pub fn solve_binary_exhaustive(model: &Model) -> Result<IlpSolution, IlpError> {
    solve_binary_exhaustive_counted(model).map(|(sol, _)| sol)
}

/// Like [`solve_binary_exhaustive`], also returning the number of binary
/// assignments enumerated (for solve telemetry).
///
/// # Errors
///
/// Same as [`solve_binary_exhaustive`].
pub fn solve_binary_exhaustive_counted(model: &Model) -> Result<(IlpSolution, usize), IlpError> {
    let run = run_binary_exhaustive(model, usize::MAX, None, None)?;
    debug_assert_eq!(run.termination, Termination::Optimal);
    run.solution
        .ok_or(IlpError::Infeasible)
        .map(|sol| (sol, run.assignments_checked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBound, Relation};

    #[test]
    fn matches_branch_bound_on_knapsack() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)]);
        m.add_constraint([(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 8.0)
            .unwrap();
        let e = solve_binary_exhaustive(&m).unwrap();
        let bb = BranchBound::new().solve(&m).unwrap();
        assert!((e.objective - bb.objective).abs() < 1e-6);
    }

    #[test]
    fn too_many_binaries_rejected() {
        let mut m = Model::new(Sense::Minimize);
        for i in 0..30 {
            m.add_binary(format!("x{i}"));
        }
        assert!(matches!(
            solve_binary_exhaustive(&m),
            Err(IlpError::TooManyBinaries { count: 30, .. })
        ));
    }

    #[test]
    fn infeasible_reported() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.add_constraint([(a, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(solve_binary_exhaustive(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn tie_break_matches_branch_bound() {
        // min a + b s.t. 2a + 2b >= 1 has two tied optima (1,0) and (0,1);
        // both exact solvers must report the lexicographically smallest
        // assignment (0,1) so differential comparisons are byte-stable.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 1.0), (b, 1.0)]);
        m.add_constraint([(a, 2.0), (b, 2.0)], Relation::Ge, 1.0)
            .unwrap();
        let e = solve_binary_exhaustive(&m).unwrap();
        let bb = BranchBound::new().solve(&m).unwrap();
        assert_eq!(e.values, bb.values);
        assert_eq!(
            (e.value(a).round() as i64, e.value(b).round() as i64),
            (0, 1)
        );
    }

    #[test]
    fn assignment_budget_reports_node_limit() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        m.set_objective([(a, 1.0), (b, 1.0)]);
        let run = run_binary_exhaustive(&m, 2, None, None).unwrap();
        assert_eq!(run.termination, Termination::NodeLimit);
        assert_eq!(run.assignments_checked, 2);
        // The all-zero assignment is feasible, so an incumbent survives.
        assert!(run.solution.is_some());
    }

    #[test]
    fn pre_set_cancel_stops_before_any_work() {
        use std::sync::atomic::{AtomicBool, Ordering};
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        let flag = AtomicBool::new(true);
        let run = run_binary_exhaustive(&m, usize::MAX, None, Some(&flag)).unwrap();
        assert_eq!(run.termination, Termination::Cancelled);
        assert_eq!(run.assignments_checked, 0);
        assert!(run.solution.is_none());
        flag.store(false, Ordering::Relaxed);
        let run = run_binary_exhaustive(&m, usize::MAX, None, Some(&flag)).unwrap();
        assert_eq!(run.termination, Termination::Optimal);
    }

    #[test]
    fn zero_deadline_reports_deadline() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.set_objective([(a, 1.0)]);
        let run =
            run_binary_exhaustive(&m, usize::MAX, Some(std::time::Duration::ZERO), None).unwrap();
        assert_eq!(run.termination, Termination::Deadline);
        assert!(run.solution.is_none());
    }

    #[test]
    fn mixed_model_uses_lp_per_assignment() {
        let mut m = Model::new(Sense::Minimize);
        let z = m.add_binary("z");
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(z, 10.0), (y, 1.0)]);
        m.add_constraint([(y, 1.0), (z, 5.0)], Relation::Ge, 3.0)
            .unwrap();
        let s = solve_binary_exhaustive(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
    }
}
