//! Brute-force reference solver for validation.

use crate::simplex::{solve_with_bounds, SimplexOptions};
use crate::{IlpError, IlpSolution, Model, Sense, VarId, VarKind};

/// Maximum number of binaries the exhaustive solver accepts.
pub const MAX_EXHAUSTIVE_BINARIES: usize = 24;

/// Solves `model` by enumerating every assignment of its binary variables.
///
/// Pure-binary models are checked directly; models with continuous variables
/// solve an LP per assignment. This is the oracle that the property-test
/// suite compares [`crate::BranchBound`] against.
///
/// # Errors
///
/// [`IlpError::TooManyBinaries`] for more than
/// [`MAX_EXHAUSTIVE_BINARIES`] binaries, [`IlpError::Infeasible`] when no
/// assignment is feasible.
pub fn solve_binary_exhaustive(model: &Model) -> Result<IlpSolution, IlpError> {
    solve_binary_exhaustive_counted(model).map(|(sol, _)| sol)
}

/// Like [`solve_binary_exhaustive`], also returning the number of binary
/// assignments enumerated (for solve telemetry).
///
/// # Errors
///
/// Same as [`solve_binary_exhaustive`].
pub fn solve_binary_exhaustive_counted(model: &Model) -> Result<(IlpSolution, usize), IlpError> {
    let binaries = model.binary_vars();
    if binaries.len() > MAX_EXHAUSTIVE_BINARIES {
        return Err(IlpError::TooManyBinaries {
            count: binaries.len(),
            max: MAX_EXHAUSTIVE_BINARIES,
        });
    }
    let n = model.num_vars();
    let pure_binary = (0..n).all(|i| {
        model
            .var_kind(VarId(i))
            .map(|k| k == VarKind::Binary)
            .unwrap_or(false)
    });
    let minimize = model.sense() == Sense::Minimize;
    let norm = |obj: f64| if minimize { obj } else { -obj };

    let mut best: Option<IlpSolution> = None;
    let mut best_score = f64::INFINITY;
    let assignments_checked = 1usize << binaries.len();

    for mask in 0u64..(1u64 << binaries.len()) {
        let mut lower = Vec::with_capacity(n);
        let mut upper = Vec::with_capacity(n);
        for i in 0..n {
            let (l, u) = model.var_bounds(VarId(i)).expect("var exists");
            lower.push(l);
            upper.push(u);
        }
        for (bit, &v) in binaries.iter().enumerate() {
            let val = if mask & (1 << bit) != 0 { 1.0 } else { 0.0 };
            lower[v.index()] = val;
            upper[v.index()] = val;
        }

        let candidate = if pure_binary {
            let values = lower.clone();
            if model.is_feasible(&values, 1e-7) {
                Some((model.objective().eval(&values), values))
            } else {
                None
            }
        } else {
            match solve_with_bounds(model, &lower, &upper, SimplexOptions::default()) {
                Ok(lp) => Some((lp.objective, lp.values)),
                Err(IlpError::Infeasible) => None,
                Err(e) => return Err(e),
            }
        };

        if let Some((objective, values)) = candidate {
            let score = norm(objective);
            if score < best_score {
                best_score = score;
                best = Some(IlpSolution { objective, values });
            }
        }
    }

    best.ok_or(IlpError::Infeasible)
        .map(|sol| (sol, assignments_checked))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BranchBound, Relation};

    #[test]
    fn matches_branch_bound_on_knapsack() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary("a");
        let b = m.add_binary("b");
        let c = m.add_binary("c");
        m.set_objective([(a, 6.0), (b, 5.0), (c, 4.0)]);
        m.add_constraint([(a, 5.0), (b, 4.0), (c, 3.0)], Relation::Le, 8.0)
            .unwrap();
        let e = solve_binary_exhaustive(&m).unwrap();
        let bb = BranchBound::new().solve(&m).unwrap();
        assert!((e.objective - bb.objective).abs() < 1e-6);
    }

    #[test]
    fn too_many_binaries_rejected() {
        let mut m = Model::new(Sense::Minimize);
        for i in 0..30 {
            m.add_binary(format!("x{i}"));
        }
        assert!(matches!(
            solve_binary_exhaustive(&m),
            Err(IlpError::TooManyBinaries { count: 30, .. })
        ));
    }

    #[test]
    fn infeasible_reported() {
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_binary("a");
        m.add_constraint([(a, 1.0)], Relation::Ge, 2.0).unwrap();
        assert_eq!(solve_binary_exhaustive(&m), Err(IlpError::Infeasible));
    }

    #[test]
    fn mixed_model_uses_lp_per_assignment() {
        let mut m = Model::new(Sense::Minimize);
        let z = m.add_binary("z");
        let y = m.add_continuous("y", 0.0, f64::INFINITY);
        m.set_objective([(z, 10.0), (y, 1.0)]);
        m.add_constraint([(y, 1.0), (z, 5.0)], Relation::Ge, 3.0)
            .unwrap();
        let s = solve_binary_exhaustive(&m).unwrap();
        assert!((s.objective - 3.0).abs() < 1e-6);
    }
}
