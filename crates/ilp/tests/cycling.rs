//! Degenerate-LP cycling suite: classic tableaus on which the plain
//! Dantzig entering rule is known to cycle forever must terminate here,
//! because the solver falls back to Bland's rule after a bounded run of
//! degenerate (zero-progress) pivots — and the fallback is observable in
//! the per-op counters, so these tests prove the rule actually fires
//! rather than the instance merely being easy.

use partita_ilp::simplex::{solve_with_bounds_scratch, SimplexOptions, SimplexScratch};
use partita_ilp::{Model, Relation, Sense};

/// Beale's 1955 counterexample: under Dantzig's most-negative-cost rule
/// with a lowest-index ratio tie-break, the simplex revisits its starting
/// basis every six pivots and never terminates. Optimum: objective
/// `-1/20` at `x = (1/25, 0, 1, 0)`.
fn beale() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_continuous("x1", 0.0, f64::INFINITY);
    let x2 = m.add_continuous("x2", 0.0, f64::INFINITY);
    let x3 = m.add_continuous("x3", 0.0, f64::INFINITY);
    let x4 = m.add_continuous("x4", 0.0, f64::INFINITY);
    m.set_objective([(x1, -0.75), (x2, 150.0), (x3, -0.02), (x4, 6.0)]);
    m.add_constraint(
        [(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)],
        Relation::Le,
        0.0,
    )
    .expect("row 1");
    m.add_constraint(
        [(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)],
        Relation::Le,
        0.0,
    )
    .expect("row 2");
    m.add_constraint([(x3, 1.0)], Relation::Le, 1.0)
        .expect("row 3");
    m
}

/// Kuhn's cycling example (a second, independent trap): maximise
/// `2x1 + 3x2 - x3 - 12x4` over two degenerate rows through the origin.
/// Written as minimisation of the negated objective; the LP is unbounded
/// once the solver escapes the degenerate vertex, which is itself the
/// tell — a cycling solver never discovers unboundedness.
fn kuhn() -> Model {
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_continuous("x1", 0.0, f64::INFINITY);
    let x2 = m.add_continuous("x2", 0.0, f64::INFINITY);
    let x3 = m.add_continuous("x3", 0.0, f64::INFINITY);
    let x4 = m.add_continuous("x4", 0.0, f64::INFINITY);
    m.set_objective([(x1, -2.0), (x2, -3.0), (x3, 1.0), (x4, 12.0)]);
    m.add_constraint(
        [(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)],
        Relation::Le,
        0.0,
    )
    .expect("row 1");
    m.add_constraint(
        [(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
        Relation::Le,
        0.0,
    )
    .expect("row 2");
    m
}

fn full_bounds(m: &Model) -> (Vec<f64>, Vec<f64>) {
    (0..m.num_vars())
        .map(|i| m.var_bounds(partita_ilp::VarId(i)).expect("var in range"))
        .unzip()
}

#[test]
fn beale_terminates_at_the_known_optimum_via_bland_fallback() {
    let m = beale();
    let (lower, upper) = full_bounds(&m);
    // A stall threshold of zero arms Bland on the *first* degenerate
    // pivot, so the anti-cycling rule is guaranteed in play from the
    // start of the degenerate run.
    let options = SimplexOptions::default().with_bland_stall(0);
    let mut scratch = SimplexScratch::new();
    let sol = solve_with_bounds_scratch(&m, &lower, &upper, options, &mut scratch)
        .expect("Beale's LP is feasible and bounded");
    assert!(
        (sol.objective - (-0.05)).abs() < 1e-9,
        "Beale optimum is -1/20, got {}",
        sol.objective
    );
    assert!(
        sol.iterations < options.max_iterations,
        "termination must come from optimality, not the iteration limit"
    );
    let ops = scratch.ops();
    assert!(
        ops.bland_activations >= 1,
        "the degenerate start must trip the Bland fallback at stall 0"
    );
}

#[test]
fn beale_terminates_under_the_default_stall_threshold_too() {
    // The production configuration: Dantzig until the stall counter trips.
    // Termination at the right objective proves the default threshold is
    // low enough to break Beale's six-pivot cycle.
    let m = beale();
    let (lower, upper) = full_bounds(&m);
    let options = SimplexOptions::default();
    let mut scratch = SimplexScratch::new();
    let sol = solve_with_bounds_scratch(&m, &lower, &upper, options, &mut scratch)
        .expect("Beale's LP is feasible and bounded");
    assert!(
        (sol.objective - (-0.05)).abs() < 1e-9,
        "got {}",
        sol.objective
    );
    assert!(sol.iterations < options.max_iterations);
}

#[test]
fn kuhn_escapes_the_degenerate_vertex_and_proves_unboundedness() {
    let m = kuhn();
    let (lower, upper) = full_bounds(&m);
    let options = SimplexOptions::default().with_bland_stall(0);
    let mut scratch = SimplexScratch::new();
    let result = solve_with_bounds_scratch(&m, &lower, &upper, options, &mut scratch);
    assert!(
        matches!(result, Err(partita_ilp::IlpError::Unbounded)),
        "Kuhn's LP is unbounded below; a cycling solver would hit the \
         iteration limit instead, got {result:?}"
    );
}

#[test]
fn stall_threshold_is_deterministic_across_repeat_solves() {
    // Same model, same options, one reused scratch: the pivot trajectory —
    // including where the Bland fallback fires — must replay exactly.
    let m = beale();
    let (lower, upper) = full_bounds(&m);
    let options = SimplexOptions::default().with_bland_stall(0);
    let mut runs = Vec::new();
    for _ in 0..3 {
        let mut scratch = SimplexScratch::new();
        let sol =
            solve_with_bounds_scratch(&m, &lower, &upper, options, &mut scratch).expect("feasible");
        runs.push((
            sol.iterations,
            sol.objective.to_bits(),
            scratch.ops().phase2_pivots,
            scratch.ops().bland_activations,
        ));
    }
    assert_eq!(runs[0], runs[1]);
    assert_eq!(runs[1], runs[2]);
}
