//! Property tests: branch-and-bound must match exhaustive enumeration on
//! random 0/1 models shaped like the paper's selection problems.

use proptest::prelude::*;

use partita_ilp::{
    fixed_charge, solve_binary_exhaustive, BranchBound, IlpError, Model, Relation, Sense,
    Termination,
};

/// A random selection instance: minimise area subject to gain covers and
/// pairwise conflicts — exactly the structure of the paper's Problem 2.
#[derive(Debug, Clone)]
struct Instance {
    areas: Vec<u32>,
    gains: Vec<u32>,
    required: u32,
    conflicts: Vec<(usize, usize)>,
}

fn instance_strategy(max_vars: usize) -> impl Strategy<Value = Instance> {
    (2..=max_vars).prop_flat_map(|n| {
        (
            proptest::collection::vec(1u32..30, n),
            proptest::collection::vec(0u32..100, n),
            0u32..160,
            proptest::collection::vec((0..n, 0..n), 0..4),
        )
            .prop_map(|(areas, gains, required, raw_conflicts)| {
                let conflicts = raw_conflicts.into_iter().filter(|(a, b)| a != b).collect();
                Instance {
                    areas,
                    gains,
                    required,
                    conflicts,
                }
            })
    })
}

fn build_model(inst: &Instance) -> Model {
    let mut m = Model::new(Sense::Minimize);
    let vars: Vec<_> = (0..inst.areas.len())
        .map(|i| m.add_binary(format!("x{i}")))
        .collect();
    m.set_objective(
        vars.iter()
            .zip(&inst.areas)
            .map(|(&v, &a)| (v, f64::from(a))),
    );
    m.add_constraint(
        vars.iter()
            .zip(&inst.gains)
            .map(|(&v, &g)| (v, f64::from(g))),
        Relation::Ge,
        f64::from(inst.required),
    )
    .expect("gain constraint");
    for &(a, b) in &inst.conflicts {
        m.add_constraint([(vars[a], 1.0), (vars[b], 1.0)], Relation::Le, 1.0)
            .expect("conflict constraint");
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn branch_bound_matches_exhaustive(inst in instance_strategy(10)) {
        let m = build_model(&inst);
        let exact = solve_binary_exhaustive(&m);
        let bb = BranchBound::new().solve(&m);
        match (exact, bb) {
            (Ok(e), Ok(b)) => {
                prop_assert!((e.objective - b.objective).abs() < 1e-6,
                    "objective mismatch: exhaustive {} vs b&b {}", e.objective, b.objective);
                prop_assert!(m.is_feasible(&b.values, 1e-6));
            }
            (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
            (e, b) => prop_assert!(false, "status mismatch: {e:?} vs {b:?}"),
        }
    }

    #[test]
    fn parallel_matches_serial(inst in instance_strategy(10), threads in 2usize..=8) {
        // The shared-incumbent path: a parallel solve must agree with the
        // serial one on feasibility, objective *and* the tie-broken
        // assignment, whatever the worker count or interleaving.
        let m = build_model(&inst);
        let serial = BranchBound::new().solve(&m);
        let parallel = BranchBound::new().with_threads(threads).solve(&m);
        match (serial, parallel) {
            (Ok(s), Ok(p)) => {
                prop_assert!((s.objective - p.objective).abs() < 1e-6,
                    "objective mismatch at {threads} threads: serial {} vs parallel {}",
                    s.objective, p.objective);
                prop_assert_eq!(s.values, p.values,
                    "assignment mismatch at {} threads", threads);
            }
            (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
            (s, p) => prop_assert!(false, "status mismatch at {threads} threads: {s:?} vs {p:?}"),
        }
    }

    #[test]
    fn budget_exhaustion_is_never_a_silent_optimal(
        inst in instance_strategy(12),
        threads in 1usize..=4,
        max_nodes in 1usize..=3,
    ) {
        // Starving the search must surface as a budget termination with a
        // feasible (or absent) incumbent — never as a wrong "optimal". Runs
        // that do finish within the tiny budget must match exhaustive.
        let m = build_model(&inst);
        let run = BranchBound::new()
            .with_threads(threads)
            .with_max_nodes(max_nodes)
            .run(&m, None);
        match run {
            Ok(run) => {
                if let Some(sol) = &run.solution {
                    prop_assert!(m.is_feasible(&sol.values, 1e-6),
                        "incumbent infeasible under {:?}", run.termination);
                }
                match run.termination {
                    Termination::Optimal => {
                        let sol = run.solution.expect("optimal implies incumbent");
                        let exact = solve_binary_exhaustive(&m).expect("b&b found a point");
                        prop_assert!((sol.objective - exact.objective).abs() < 1e-6,
                            "claimed optimal {} but exhaustive found {}",
                            sol.objective, exact.objective);
                    }
                    Termination::NodeLimit => {
                        prop_assert!(run.stats.nodes_explored <= max_nodes);
                    }
                    Termination::Deadline | Termination::Cancelled => {
                        prop_assert!(false, "no deadline or cancel flag was set")
                    }
                }
            }
            Err(IlpError::Infeasible) => {
                prop_assert!(solve_binary_exhaustive(&m).is_err(),
                    "b&b claimed infeasible but exhaustive found a point");
            }
            Err(e) => prop_assert!(false, "unexpected error: {e:?}"),
        }
    }

    #[test]
    fn fixed_charge_indicators_agree(inst in instance_strategy(8)) {
        // Attach a fixed-charge indicator to the even-indexed variables and
        // check both solvers still agree (the z var mimics shared IP area).
        let mut m = build_model(&inst);
        let users: Vec<_> = m.binary_vars().into_iter().step_by(2).collect();
        let z = m.add_binary("z");
        let mut obj: Vec<_> = m
            .binary_vars()
            .iter()
            .filter(|v| v.index() < inst.areas.len())
            .map(|&v| (v, f64::from(inst.areas[v.index()])))
            .collect();
        obj.push((z, 13.0));
        m.set_objective(obj);
        fixed_charge::link_indicator(&mut m, z, &users).expect("link");
        let exact = solve_binary_exhaustive(&m);
        let bb = BranchBound::new().solve(&m);
        match (exact, bb) {
            (Ok(e), Ok(b)) => {
                prop_assert!((e.objective - b.objective).abs() < 1e-6);
            }
            (Err(IlpError::Infeasible), Err(IlpError::Infeasible)) => {}
            (e, b) => prop_assert!(false, "status mismatch: {e:?} vs {b:?}"),
        }
    }
}
