//! Radix-2 fast Fourier transform (the JPEG system's FFT IP).

use std::error::Error;
use std::fmt;

use super::Complex;

/// Error raised for invalid FFT sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FftError {
    len: usize,
}

impl fmt::Display for FftError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fft length {} is not a power of two", self.len)
    }
}

impl Error for FftError {}

/// In-place iterative radix-2 decimation-in-time FFT.
///
/// # Errors
///
/// Returns [`FftError`] when `data.len()` is not a power of two.
///
/// # Example
///
/// ```
/// use partita_ip::func::{fft, Complex};
/// let mut x = vec![Complex::ONE; 4];
/// fft(&mut x)?;
/// assert!((x[0].re - 4.0).abs() < 1e-12); // DC bin
/// assert!(x[1].abs() < 1e-12);
/// # Ok::<(), partita_ip::func::FftError>(())
/// ```
pub fn fft(data: &mut [Complex]) -> Result<(), FftError> {
    fft_dir(data, -1.0)
}

/// Inverse FFT (scaled by `1/N`).
///
/// # Errors
///
/// Returns [`FftError`] when `data.len()` is not a power of two.
pub fn ifft(data: &mut [Complex]) -> Result<(), FftError> {
    fft_dir(data, 1.0)?;
    let scale = 1.0 / data.len() as f64;
    for v in data.iter_mut() {
        *v = v.scale(scale);
    }
    Ok(())
}

fn fft_dir(data: &mut [Complex], sign: f64) -> Result<(), FftError> {
    let n = data.len();
    if n == 0 || n & (n - 1) != 0 {
        return Err(FftError { len: n });
    }
    // Bit-reversal permutation (a 1-point transform is the identity).
    let bits = n.trailing_zeros();
    if bits == 0 {
        return Ok(());
    }
    for i in 0..n {
        let j = (i as u64).reverse_bits() >> (64 - bits) as u64;
        let j = j as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterflies.
    let mut len = 2;
    while len <= n {
        let ang = sign * 2.0 * std::f64::consts::PI / len as f64;
        let wlen = Complex::from_polar_unit(ang);
        for start in (0..n).step_by(len) {
            let mut w = Complex::ONE;
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2] * w;
                data[start + k] = u + v;
                data[start + k + len / 2] = u - v;
                w = w * wlen;
            }
        }
        len <<= 1;
    }
    Ok(())
}

/// O(N²) reference DFT used to validate the FFT.
#[must_use]
pub fn dft_naive(x: &[Complex]) -> Vec<Complex> {
    let n = x.len();
    (0..n)
        .map(|k| {
            let mut acc = Complex::ZERO;
            for (t, &v) in x.iter().enumerate() {
                let ang = -2.0 * std::f64::consts::PI * (k * t) as f64 / n as f64;
                acc = acc + v * Complex::from_polar_unit(ang);
            }
            acc
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: Complex, b: Complex, tol: f64) -> bool {
        (a - b).abs() < tol
    }

    #[test]
    fn matches_naive_dft() {
        let x: Vec<Complex> = (0..16)
            .map(|i| Complex::new((i as f64 * 0.7).sin(), (i as f64 * 1.3).cos()))
            .collect();
        let reference = dft_naive(&x);
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for (f, r) in fast.iter().zip(&reference) {
            assert!(close(*f, *r, 1e-9), "{f:?} vs {r:?}");
        }
    }

    #[test]
    fn roundtrip_identity() {
        let x: Vec<Complex> = (0..32)
            .map(|i| Complex::new(i as f64, -(i as f64)))
            .collect();
        let mut y = x.clone();
        fft(&mut y).unwrap();
        ifft(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            assert!(close(*a, *b, 1e-9));
        }
    }

    #[test]
    fn impulse_has_flat_spectrum() {
        let mut x = vec![Complex::ZERO; 8];
        x[0] = Complex::ONE;
        fft(&mut x).unwrap();
        for v in &x {
            assert!(close(*v, Complex::ONE, 1e-12));
        }
    }

    #[test]
    fn non_power_of_two_rejected() {
        let mut x = vec![Complex::ZERO; 6];
        assert!(fft(&mut x).is_err());
        let mut e = vec![];
        assert!(fft(&mut e).is_err());
        assert!(FftError { len: 6 }.to_string().contains("6"));
    }

    #[test]
    fn single_point_is_identity() {
        let mut x = vec![Complex::new(3.5, -1.0)];
        fft(&mut x).unwrap();
        assert!(close(x[0], Complex::new(3.5, -1.0), 1e-12));
    }

    #[test]
    fn parseval_energy_conserved() {
        let x: Vec<Complex> = (0..64)
            .map(|i| Complex::new((i as f64).sin(), 0.0))
            .collect();
        let time_energy: f64 = x.iter().map(|v| v.abs().powi(2)).sum();
        let mut y = x;
        fft(&mut y).unwrap();
        let freq_energy: f64 = y.iter().map(|v| v.abs().powi(2)).sum::<f64>() / 64.0;
        assert!((time_energy - freq_energy).abs() < 1e-6);
    }
}
