//! Cross-correlation (the GSM codec's pitch/LTP search primitive).

/// Cross-correlation `r[l] = Σ_n x[n] · y[n+l]` for lags `0..max_lag`.
///
/// Out-of-range `y` samples are treated as zero.
///
/// # Example
///
/// ```
/// use partita_ip::func::cross_correlate;
/// let r = cross_correlate(&[1, 2], &[0, 1, 2], 3);
/// assert_eq!(r, vec![2, 5, 2]); // lag 1 aligns the sequences
/// ```
#[must_use]
pub fn cross_correlate(x: &[i32], y: &[i32], max_lag: usize) -> Vec<i64> {
    (0..max_lag)
        .map(|lag| {
            x.iter()
                .enumerate()
                .filter_map(|(n, &xv)| y.get(n + lag).map(|&yv| i64::from(xv) * i64::from(yv)))
                .sum()
        })
        .collect()
}

/// Lag of the correlation peak over `0..max_lag` (the LTP lag estimate).
///
/// Returns `None` when `max_lag == 0`.
#[must_use]
pub fn normalized_peak_lag(x: &[i32], y: &[i32], max_lag: usize) -> Option<usize> {
    let r = cross_correlate(x, y, max_lag);
    r.iter()
        .enumerate()
        .max_by_key(|&(_, v)| *v)
        .map(|(lag, _)| lag)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_lag_is_dot_product() {
        let r = cross_correlate(&[1, 2, 3], &[4, 5, 6], 1);
        assert_eq!(r[0], 4 + 10 + 18);
    }

    #[test]
    fn finds_embedded_delay() {
        // y is x delayed by 3 samples.
        let x = [5, -2, 7, 1];
        let mut y = vec![0i32; 3];
        y.extend_from_slice(&x);
        assert_eq!(normalized_peak_lag(&x, &y, 6), Some(3));
    }

    #[test]
    fn empty_inputs() {
        assert!(cross_correlate(&[], &[], 4).iter().all(|&v| v == 0));
        assert_eq!(normalized_peak_lag(&[1], &[1], 0), None);
    }

    #[test]
    fn handles_negative_values() {
        let r = cross_correlate(&[-1, -1], &[-1, -1], 2);
        assert_eq!(r, vec![2, 1]);
    }
}
