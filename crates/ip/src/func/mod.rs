//! Reference functional implementations of the IP blocks the paper names.
//!
//! These are the "golden models": the co-simulator replays them when the
//! kernel hands data to an IP, and the examples use them to show that an
//! accelerated program computes the same results as the software path.
//!
//! Integer kernels (FIR, IIR, correlator, quantizer, interpolator, zig-zag,
//! complex multiply) are bit-exact in `i64`; the transform kernels (DCT,
//! FFT) use `f64` with documented tolerances.

mod cmul;
mod corr;
mod dct;
mod fft;
mod fir;
mod iir;
mod interp;
mod quant;
mod zigzag;

pub use cmul::{cmul_i32, cmul_slice, Complex};
pub use corr::{cross_correlate, normalized_peak_lag};
pub use dct::{dct1d, dct2d, idct1d, idct2d};
pub use fft::{dft_naive, fft, ifft, FftError};
pub use fir::{fir_direct, FirFilter};
pub use iir::{iir_df1, Biquad};
pub use interp::interpolate;
pub use quant::{dequantize_uniform, quantize_table, quantize_uniform};
pub use zigzag::{zigzag_indices, zigzag_inverse, zigzag_scan};
