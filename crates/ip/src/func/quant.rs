//! Quantizers (GSM RPE quantisation, JPEG coefficient quantisation).

/// Uniform mid-tread quantizer: `round(x / step)`, clamped to
/// `[-levels, levels]`.
///
/// # Panics
///
/// Panics if `step == 0`.
///
/// # Example
///
/// ```
/// use partita_ip::func::quantize_uniform;
/// assert_eq!(quantize_uniform(&[0, 7, 13, -13], 8, 3), vec![0, 1, 2, -2]);
/// ```
#[must_use]
pub fn quantize_uniform(x: &[i32], step: i32, levels: i32) -> Vec<i32> {
    assert!(step != 0, "quantizer step must be non-zero");
    x.iter()
        .map(|&v| {
            let half = step / 2;
            let q = if v >= 0 {
                (v + half) / step
            } else {
                -((-v + half) / step)
            };
            q.clamp(-levels, levels)
        })
        .collect()
}

/// Inverse of [`quantize_uniform`]: `q · step`.
#[must_use]
pub fn dequantize_uniform(q: &[i32], step: i32) -> Vec<i32> {
    q.iter().map(|&v| v * step).collect()
}

/// Table-driven quantizer (JPEG-style): element-wise `round(x / table)`.
///
/// # Panics
///
/// Panics if lengths differ or any table entry is zero.
#[must_use]
pub fn quantize_table(x: &[i32], table: &[i32]) -> Vec<i32> {
    assert_eq!(x.len(), table.len(), "value/table length mismatch");
    x.iter()
        .zip(table)
        .map(|(&v, &t)| {
            assert!(t != 0, "quantisation table entry must be non-zero");
            let half = t / 2;
            if v >= 0 {
                (v + half) / t
            } else {
                -((-v + half) / t)
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symmetric_around_zero() {
        let q = quantize_uniform(&[9, -9], 4, 100);
        assert_eq!(q[0], -q[1]);
    }

    #[test]
    fn clamping_limits_levels() {
        assert_eq!(quantize_uniform(&[1000, -1000], 1, 7), vec![7, -7]);
    }

    #[test]
    fn quantize_dequantize_error_bounded() {
        let step = 16;
        let xs: Vec<i32> = (-100..100).collect();
        let q = quantize_uniform(&xs, step, 1000);
        let back = dequantize_uniform(&q, step);
        for (x, b) in xs.iter().zip(&back) {
            assert!((x - b).abs() <= step / 2, "{x} -> {b}");
        }
    }

    #[test]
    fn table_quantizer_elementwise() {
        assert_eq!(quantize_table(&[16, 33, -7], &[16, 16, 8]), vec![1, 2, -1]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn table_length_mismatch_panics() {
        let _ = quantize_table(&[1, 2], &[1]);
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_step_panics() {
        let _ = quantize_uniform(&[1], 0, 1);
    }
}
