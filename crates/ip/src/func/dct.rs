//! Discrete cosine transforms (JPEG's 2D-DCT built from two 1D-DCT passes,
//! exactly the hierarchy of the paper's Fig. 11).

use std::f64::consts::PI;

/// Orthonormal DCT-II of an arbitrary-length slice.
///
/// `X[k] = c(k) · Σ_n x[n] · cos(π(2n+1)k / 2N)` with
/// `c(0) = √(1/N)`, `c(k>0) = √(2/N)`.
#[must_use]
pub fn dct1d(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|k| {
            let c = if k == 0 {
                (1.0 / n as f64).sqrt()
            } else {
                (2.0 / n as f64).sqrt()
            };
            c * x
                .iter()
                .enumerate()
                .map(|(i, &v)| {
                    v * (PI * (2.0 * i as f64 + 1.0) * k as f64 / (2.0 * n as f64)).cos()
                })
                .sum::<f64>()
        })
        .collect()
}

/// Inverse of [`dct1d`] (DCT-III with matching normalisation).
#[must_use]
pub fn idct1d(x: &[f64]) -> Vec<f64> {
    let n = x.len();
    if n == 0 {
        return Vec::new();
    }
    (0..n)
        .map(|i| {
            x.iter()
                .enumerate()
                .map(|(k, &v)| {
                    let c = if k == 0 {
                        (1.0 / n as f64).sqrt()
                    } else {
                        (2.0 / n as f64).sqrt()
                    };
                    c * v * (PI * (2.0 * i as f64 + 1.0) * k as f64 / (2.0 * n as f64)).cos()
                })
                .sum()
        })
        .collect()
}

/// Separable 2D DCT of a row-major `rows × cols` block: 1D DCT over every
/// row, then over every column — the composition the paper's JPEG IP
/// hierarchy exposes ("2D-DCT consists of two 1D-DCTs").
///
/// # Panics
///
/// Panics if `block.len() != rows * cols`.
#[must_use]
pub fn dct2d(block: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    assert_eq!(block.len(), rows * cols, "block shape mismatch");
    transform2d(block, rows, cols, dct1d)
}

/// Inverse 2D DCT.
///
/// # Panics
///
/// Panics if `block.len() != rows * cols`.
#[must_use]
pub fn idct2d(block: &[f64], rows: usize, cols: usize) -> Vec<f64> {
    assert_eq!(block.len(), rows * cols, "block shape mismatch");
    transform2d(block, rows, cols, idct1d)
}

fn transform2d(block: &[f64], rows: usize, cols: usize, pass: fn(&[f64]) -> Vec<f64>) -> Vec<f64> {
    // Rows.
    let mut tmp = vec![0.0; rows * cols];
    for r in 0..rows {
        let out = pass(&block[r * cols..(r + 1) * cols]);
        tmp[r * cols..(r + 1) * cols].copy_from_slice(&out);
    }
    // Columns.
    let mut out = vec![0.0; rows * cols];
    let mut col = vec![0.0; rows];
    for c in 0..cols {
        for r in 0..rows {
            col[r] = tmp[r * cols + c];
        }
        let t = pass(&col);
        for r in 0..rows {
            out[r * cols + c] = t[r];
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: &[f64], b: &[f64], tol: f64) {
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b) {
            assert!((x - y).abs() < tol, "{x} vs {y}");
        }
    }

    #[test]
    fn dc_of_constant_signal() {
        let x = vec![2.0; 8];
        let y = dct1d(&x);
        assert!((y[0] - 2.0 * 8.0f64.sqrt()).abs() < 1e-12);
        for v in &y[1..] {
            assert!(v.abs() < 1e-12);
        }
    }

    #[test]
    fn roundtrip_1d() {
        let x: Vec<f64> = (0..16).map(|i| ((i * 7) % 13) as f64 - 6.0).collect();
        assert_close(&idct1d(&dct1d(&x)), &x, 1e-10);
    }

    #[test]
    fn roundtrip_2d() {
        let block: Vec<f64> = (0..64).map(|i| ((i * 31) % 17) as f64).collect();
        let freq = dct2d(&block, 8, 8);
        assert_close(&idct2d(&freq, 8, 8), &block, 1e-9);
    }

    #[test]
    fn orthonormal_energy_preserved() {
        let x: Vec<f64> = (0..8).map(|i| (i as f64).cos()).collect();
        let y = dct1d(&x);
        let ex: f64 = x.iter().map(|v| v * v).sum();
        let ey: f64 = y.iter().map(|v| v * v).sum();
        assert!((ex - ey).abs() < 1e-10);
    }

    #[test]
    fn non_square_blocks() {
        let block: Vec<f64> = (0..12).map(f64::from).collect();
        let freq = dct2d(&block, 3, 4);
        assert_close(&idct2d(&freq, 3, 4), &block, 1e-10);
    }

    #[test]
    fn empty_input() {
        assert!(dct1d(&[]).is_empty());
        assert!(idct1d(&[]).is_empty());
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_shape_panics() {
        let _ = dct2d(&[1.0; 5], 2, 3);
    }
}
