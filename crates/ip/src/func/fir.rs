//! Finite impulse response filtering.

/// Direct-form FIR: `y[n] = Σ_k h[k] · x[n−k]`, zero-padded history.
///
/// Returns one output per input sample, accumulated in `i64` (no overflow
/// for |x|,|h| < 2³¹ and taps ≤ 2).
///
/// # Example
///
/// ```
/// use partita_ip::func::fir_direct;
/// // Moving sum of 2.
/// assert_eq!(fir_direct(&[1, 2, 3], &[1, 1]), vec![1, 3, 5]);
/// ```
#[must_use]
pub fn fir_direct(x: &[i32], h: &[i32]) -> Vec<i64> {
    x.iter()
        .enumerate()
        .map(|(n, _)| {
            h.iter()
                .enumerate()
                .filter(|&(k, _)| k <= n)
                .map(|(k, &hk)| i64::from(hk) * i64::from(x[n - k]))
                .sum()
        })
        .collect()
}

/// A streaming FIR filter with internal delay line — the shape of the
/// hardware block: one sample in, one sample out.
///
/// # Example
///
/// ```
/// use partita_ip::func::FirFilter;
/// let mut f = FirFilter::new(vec![1, 1]);
/// assert_eq!(f.step(1), 1);
/// assert_eq!(f.step(2), 3);
/// assert_eq!(f.step(3), 5);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FirFilter {
    taps: Vec<i32>,
    delay: Vec<i32>,
    pos: usize,
}

impl FirFilter {
    /// Creates a filter with the given taps.
    ///
    /// # Panics
    ///
    /// Panics if `taps` is empty.
    #[must_use]
    pub fn new(taps: Vec<i32>) -> FirFilter {
        assert!(!taps.is_empty(), "FIR filter needs at least one tap");
        let n = taps.len();
        FirFilter {
            taps,
            delay: vec![0; n],
            pos: 0,
        }
    }

    /// The filter taps.
    #[must_use]
    pub fn taps(&self) -> &[i32] {
        &self.taps
    }

    /// Pushes one sample and returns the filtered output.
    pub fn step(&mut self, x: i32) -> i64 {
        let n = self.taps.len();
        self.delay[self.pos] = x;
        let mut acc = 0i64;
        for (k, &h) in self.taps.iter().enumerate() {
            let idx = (self.pos + n - k) % n;
            acc += i64::from(h) * i64::from(self.delay[idx]);
        }
        self.pos = (self.pos + 1) % n;
        acc
    }

    /// Clears the delay line.
    pub fn reset(&mut self) {
        self.delay.fill(0);
        self.pos = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_filter() {
        assert_eq!(fir_direct(&[5, -3, 7], &[1]), vec![5, -3, 7]);
    }

    #[test]
    fn streaming_matches_direct() {
        let taps = vec![3, -1, 4, 1, -5];
        let x: Vec<i32> = (0..32).map(|i| (i * 17 % 23) - 11).collect();
        let direct = fir_direct(&x, &taps);
        let mut f = FirFilter::new(taps);
        let streamed: Vec<i64> = x.iter().map(|&s| f.step(s)).collect();
        assert_eq!(streamed, direct);
    }

    #[test]
    fn reset_clears_state() {
        let mut f = FirFilter::new(vec![1, 1]);
        f.step(9);
        f.reset();
        assert_eq!(f.step(1), 1);
    }

    #[test]
    fn linearity() {
        let taps = vec![2, 0, -3];
        let a: Vec<i32> = vec![1, 4, -2, 8];
        let b: Vec<i32> = vec![5, -1, 0, 3];
        let sum: Vec<i32> = a.iter().zip(&b).map(|(x, y)| x + y).collect();
        let ya = fir_direct(&a, &taps);
        let yb = fir_direct(&b, &taps);
        let ys = fir_direct(&sum, &taps);
        for i in 0..4 {
            assert_eq!(ys[i], ya[i] + yb[i]);
        }
    }

    #[test]
    #[should_panic(expected = "at least one tap")]
    fn empty_taps_rejected() {
        let _ = FirFilter::new(vec![]);
    }
}
