//! Complex multiplication — the paper's C-MUL IP (JPEG system, Table 3).

use std::ops::{Add, Mul, Neg, Sub};

/// A complex number over `f64`, used by the FFT/DCT kernels.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Zero.
    pub const ZERO: Complex = Complex { re: 0.0, im: 0.0 };
    /// One.
    pub const ONE: Complex = Complex { re: 1.0, im: 0.0 };

    /// Creates `re + i·im`.
    #[must_use]
    pub fn new(re: f64, im: f64) -> Complex {
        Complex { re, im }
    }

    /// `e^{iθ}`.
    #[must_use]
    pub fn from_polar_unit(theta: f64) -> Complex {
        Complex::new(theta.cos(), theta.sin())
    }

    /// Complex conjugate.
    #[must_use]
    pub fn conj(self) -> Complex {
        Complex::new(self.re, -self.im)
    }

    /// Magnitude.
    #[must_use]
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Scales by a real factor.
    #[must_use]
    pub fn scale(self, k: f64) -> Complex {
        Complex::new(self.re * k, self.im * k)
    }
}

impl Add for Complex {
    type Output = Complex;
    fn add(self, rhs: Complex) -> Complex {
        Complex::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex {
    type Output = Complex;
    fn sub(self, rhs: Complex) -> Complex {
        Complex::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex {
    type Output = Complex;
    fn mul(self, rhs: Complex) -> Complex {
        Complex::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Neg for Complex {
    type Output = Complex;
    fn neg(self) -> Complex {
        Complex::new(-self.re, -self.im)
    }
}

/// Integer complex multiply: `(ar + i·ai)(br + i·bi)` in `i64`.
///
/// This is exactly the four-multiplier/two-adder datapath of the C-MUL IP.
///
/// # Example
///
/// ```
/// use partita_ip::func::cmul_i32;
/// assert_eq!(cmul_i32((1, 2), (3, 4)), (-5, 10));
/// ```
#[must_use]
pub fn cmul_i32(a: (i32, i32), b: (i32, i32)) -> (i64, i64) {
    let (ar, ai) = (i64::from(a.0), i64::from(a.1));
    let (br, bi) = (i64::from(b.0), i64::from(b.1));
    (ar * br - ai * bi, ar * bi + ai * br)
}

/// Element-wise complex multiply of two equal-length slices.
///
/// # Panics
///
/// Panics if lengths differ.
#[must_use]
pub fn cmul_slice(a: &[(i32, i32)], b: &[(i32, i32)]) -> Vec<(i64, i64)> {
    assert_eq!(a.len(), b.len(), "complex slice length mismatch");
    a.iter().zip(b).map(|(&x, &y)| cmul_i32(x, y)).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(cmul_i32((0, 1), (0, 1)), (-1, 0));
    }

    #[test]
    fn conjugate_product_is_norm() {
        let a = (3, 4);
        let (re, im) = cmul_i32(a, (a.0, -a.1));
        assert_eq!((re, im), (25, 0));
    }

    #[test]
    fn complex_ops() {
        let a = Complex::new(1.0, 2.0);
        let b = Complex::new(3.0, -1.0);
        assert_eq!(a + b, Complex::new(4.0, 1.0));
        assert_eq!(a - b, Complex::new(-2.0, 3.0));
        assert_eq!(a * b, Complex::new(5.0, 5.0));
        assert_eq!(-a, Complex::new(-1.0, -2.0));
        assert_eq!(a.conj(), Complex::new(1.0, -2.0));
        assert!((Complex::new(3.0, 4.0).abs() - 5.0).abs() < 1e-12);
        assert_eq!(a.scale(2.0), Complex::new(2.0, 4.0));
    }

    #[test]
    fn polar_unit_circle() {
        let c = Complex::from_polar_unit(std::f64::consts::FRAC_PI_2);
        assert!(c.re.abs() < 1e-12);
        assert!((c.im - 1.0).abs() < 1e-12);
    }

    #[test]
    fn slice_multiply() {
        let out = cmul_slice(&[(1, 0), (0, 1)], &[(2, 0), (0, 2)]);
        assert_eq!(out, vec![(2, 0), (-2, 0)]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_slices_panic() {
        let _ = cmul_slice(&[(1, 1)], &[]);
    }
}
