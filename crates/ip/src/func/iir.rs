//! Infinite impulse response filtering (fixed-point, direct form I).

/// Fixed-point scale: coefficients are Q16 (`coeff / 65536`).
pub const Q: i64 = 1 << 16;

/// Direct-form-I IIR: `y[n] = (Σ b[k]·x[n−k] − Σ_{k≥1} a[k]·y[n−k]) / Q`.
///
/// `a[0]` is assumed to be `Q` (unity) and is ignored.
///
/// # Example
///
/// ```
/// use partita_ip::func::iir_df1;
/// // One-pole smoother: y[n] = x[n] + 0.5 y[n-1].
/// let q = partita_ip::func::Biquad::Q;
/// let y = iir_df1(&[1024, 0, 0, 0], &[q as i64], &[q as i64, -(q as i64) / 2]);
/// assert_eq!(y[0], 1024);
/// assert_eq!(y[1], 512);
/// assert_eq!(y[2], 256);
/// ```
#[must_use]
pub fn iir_df1(x: &[i32], b: &[i64], a: &[i64]) -> Vec<i64> {
    let mut y: Vec<i64> = Vec::with_capacity(x.len());
    for n in 0..x.len() {
        let mut acc: i64 = 0;
        for (k, &bk) in b.iter().enumerate() {
            if k <= n {
                acc += bk * i64::from(x[n - k]);
            }
        }
        for (k, &ak) in a.iter().enumerate().skip(1) {
            if k <= n {
                acc -= ak * y[n - k];
            }
        }
        y.push(acc / Q);
    }
    y
}

/// A streaming biquad section (direct form I, Q16 coefficients).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Biquad {
    b: [i64; 3],
    a: [i64; 2], // a1, a2 (a0 = Q implied)
    x_hist: [i64; 2],
    y_hist: [i64; 2],
}

impl Biquad {
    /// The fixed-point unity value.
    pub const Q: i64 = Q;

    /// Creates a biquad from Q16 numerator `b0..b2` and denominator
    /// `a1, a2` coefficients.
    #[must_use]
    pub fn new(b: [i64; 3], a: [i64; 2]) -> Biquad {
        Biquad {
            b,
            a,
            x_hist: [0; 2],
            y_hist: [0; 2],
        }
    }

    /// Pushes one sample and returns the filtered output.
    pub fn step(&mut self, x: i32) -> i64 {
        let x0 = i64::from(x);
        let acc = self.b[0] * x0 + self.b[1] * self.x_hist[0] + self.b[2] * self.x_hist[1]
            - self.a[0] * self.y_hist[0]
            - self.a[1] * self.y_hist[1];
        let y0 = acc / Q;
        self.x_hist = [x0, self.x_hist[0]];
        self.y_hist = [y0, self.y_hist[0]];
        y0
    }

    /// Clears the filter state.
    pub fn reset(&mut self) {
        self.x_hist = [0; 2];
        self.y_hist = [0; 2];
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_feedforward_matches_fir() {
        let x = [3, -1, 4, 1];
        let y = iir_df1(&x, &[Q, Q], &[Q]);
        // Same as FIR [1, 1].
        assert_eq!(y, vec![3, 2, 3, 5]);
    }

    #[test]
    fn one_pole_decay() {
        let x = [1000, 0, 0, 0, 0];
        let y = iir_df1(&x, &[Q], &[Q, -Q / 2]);
        assert_eq!(y, vec![1000, 500, 250, 125, 62]);
    }

    #[test]
    fn biquad_matches_batch() {
        let b = [Q / 4, Q / 2, Q / 4];
        let a = [-Q / 3, Q / 8];
        let x: Vec<i32> = (0..24).map(|i| ((i * 37) % 41) - 20).collect();
        let batch = iir_df1(&x, &b, &[Q, a[0], a[1]]);
        let mut bq = Biquad::new(b, a);
        let streamed: Vec<i64> = x.iter().map(|&s| bq.step(s)).collect();
        // Direct-form I with history-based rounding matches the batch form
        // except for division rounding interactions; with these coefficients
        // and inputs the division is exact at each step.
        assert_eq!(streamed.len(), batch.len());
        for (s, d) in streamed.iter().zip(&batch) {
            assert!((s - d).abs() <= 1, "streamed {s} vs batch {d}");
        }
    }

    #[test]
    fn reset_clears_memory() {
        let mut bq = Biquad::new([Q, 0, 0], [-Q / 2, 0]);
        bq.step(100);
        bq.reset();
        assert_eq!(bq.step(0), 0);
    }
}
