//! Zig-zag coefficient scan (the JPEG system's ZIG_ZAG IP, Table 3).

/// The zig-zag visiting order of an `n × n` block as row-major indices.
///
/// # Example
///
/// ```
/// use partita_ip::func::zigzag_indices;
/// assert_eq!(zigzag_indices(2), vec![0, 1, 2, 3]);
/// assert_eq!(zigzag_indices(3), vec![0, 1, 3, 6, 4, 2, 5, 7, 8]);
/// ```
#[must_use]
pub fn zigzag_indices(n: usize) -> Vec<usize> {
    let mut out = Vec::with_capacity(n * n);
    for s in 0..(2 * n).saturating_sub(1) {
        if s % 2 == 0 {
            // Up-right: row decreasing.
            let r0 = s.min(n - 1);
            let c0 = s - r0;
            let (mut r, mut c) = (r0 as isize, c0 as isize);
            while r >= 0 && (c as usize) < n {
                out.push(r as usize * n + c as usize);
                r -= 1;
                c += 1;
            }
        } else {
            // Down-left: column decreasing.
            let c0 = s.min(n - 1);
            let r0 = s - c0;
            let (mut r, mut c) = (r0 as isize, c0 as isize);
            while c >= 0 && (r as usize) < n {
                out.push(r as usize * n + c as usize);
                r += 1;
                c -= 1;
            }
        }
    }
    if n == 0 {
        out.clear();
    }
    out
}

/// Scans a row-major `n × n` block in zig-zag order.
///
/// # Panics
///
/// Panics if `block.len() != n * n`.
#[must_use]
pub fn zigzag_scan(block: &[i32], n: usize) -> Vec<i32> {
    assert_eq!(block.len(), n * n, "block shape mismatch");
    zigzag_indices(n).into_iter().map(|i| block[i]).collect()
}

/// Undoes [`zigzag_scan`].
///
/// # Panics
///
/// Panics if `scanned.len() != n * n`.
#[must_use]
pub fn zigzag_inverse(scanned: &[i32], n: usize) -> Vec<i32> {
    assert_eq!(scanned.len(), n * n, "scan length mismatch");
    let mut out = vec![0; n * n];
    for (pos, idx) in zigzag_indices(n).into_iter().enumerate() {
        out[idx] = scanned[pos];
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jpeg_8x8_order_prefix() {
        // The canonical JPEG zig-zag starts 0, 1, 8, 16, 9, 2, 3, 10, ...
        let idx = zigzag_indices(8);
        assert_eq!(&idx[..8], &[0, 1, 8, 16, 9, 2, 3, 10]);
        assert_eq!(idx.len(), 64);
        assert_eq!(*idx.last().unwrap(), 63);
    }

    #[test]
    fn indices_are_a_permutation() {
        for n in 1..=9 {
            let mut idx = zigzag_indices(n);
            idx.sort_unstable();
            assert_eq!(idx, (0..n * n).collect::<Vec<_>>(), "n = {n}");
        }
    }

    #[test]
    fn scan_then_inverse_is_identity() {
        let block: Vec<i32> = (0..49).collect();
        let scanned = zigzag_scan(&block, 7);
        assert_eq!(zigzag_inverse(&scanned, 7), block);
    }

    #[test]
    fn low_frequencies_come_first() {
        // Energy compaction: index sum (r+c) must be non-decreasing.
        let idx = zigzag_indices(8);
        let diag: Vec<usize> = idx.iter().map(|i| i / 8 + i % 8).collect();
        assert!(diag.windows(2).all(|w| w[1] >= w[0] || w[1] + 1 >= w[0]));
        assert_eq!(diag[0], 0);
        assert_eq!(*diag.last().unwrap(), 14);
    }

    #[test]
    fn trivial_sizes() {
        assert_eq!(zigzag_indices(0), Vec::<usize>::new());
        assert_eq!(zigzag_indices(1), vec![0]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn bad_block_panics() {
        let _ = zigzag_scan(&[1, 2, 3], 2);
    }
}
