//! Interpolation filter — the paper's example of an IP whose input and
//! output data rates differ (§3, "Different input and output data rates"),
//! which rules out the type-0 software interface.

use super::fir_direct;

/// Upsamples `x` by factor `l` (zero stuffing) and smooths with FIR `h`.
///
/// Produces `l` outputs per input — the rate mismatch that forces the
/// interface selector away from type 0.
///
/// # Panics
///
/// Panics if `l == 0`.
///
/// # Example
///
/// ```
/// use partita_ip::func::interpolate;
/// // Linear interpolation by 2 with the triangle kernel [1, 2, 1] (gain 2).
/// let y = interpolate(&[2, 4], 2, &[1, 2, 1]);
/// assert_eq!(y, vec![2, 4, 6, 8]); // 6 = 2 + 4, the interpolated midpoint
/// ```
#[must_use]
pub fn interpolate(x: &[i32], l: usize, h: &[i32]) -> Vec<i64> {
    assert!(l > 0, "interpolation factor must be positive");
    let mut up: Vec<i32> = Vec::with_capacity(x.len() * l);
    for &v in x {
        up.push(v);
        up.extend(std::iter::repeat_n(0, l - 1));
    }
    fir_direct(&up, h)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_rate_is_l_times_input_rate() {
        let y = interpolate(&[1, 2, 3], 4, &[1]);
        assert_eq!(y.len(), 12);
    }

    #[test]
    fn factor_one_is_plain_fir() {
        let x = [3, 1, 4];
        assert_eq!(interpolate(&x, 1, &[1, 1]), fir_direct(&x, &[1, 1]));
    }

    #[test]
    fn zero_stuffing_positions() {
        let y = interpolate(&[7, 9], 3, &[1]);
        assert_eq!(y, vec![7, 0, 0, 9, 0, 0]);
    }

    #[test]
    fn linear_interpolation_midpoints() {
        // Triangle kernel scaled by 2: midpoint = (a + b).
        let y = interpolate(&[10, 20, 30], 2, &[1, 2, 1]);
        // y[n] = up[n] + 2·up[n−1] + up[n−2] over up = [10,0,20,0,30,0].
        assert_eq!(y[1], 20); // 2·10 (sample, gain 2)
        assert_eq!(y[2], 30); // 20 + 10 (midpoint · 2... = x0 + x1)
        assert_eq!(y[3], 40); // 2·20
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_factor_panics() {
        let _ = interpolate(&[1], 0, &[1]);
    }
}
