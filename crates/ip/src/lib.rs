//! Hardware IP block models and functional DSP kernels.
//!
//! The paper (§3, §5) accelerates s-calls with reusable IP blocks — filters,
//! correlators, quantizers, DCT/FFT engines, complex multipliers, zig-zag
//! scanners. This crate provides:
//!
//! * [`IpBlock`] — the structural/timing model the interface selector needs:
//!   port counts, input/output data rates, pipeline latency, area, protocol,
//!   and the set of functions the block implements (an *S-IP* implements
//!   one function, an *M-IP* several — Definition 2);
//! * [`IpLibrary`] — a searchable collection of blocks;
//! * [`func`] — reference functional implementations of every block the
//!   paper names, used by the co-simulator and the examples.
//!
//! # Example
//!
//! ```
//! use partita_ip::{IpBlock, IpFunction, IpLibrary};
//! use partita_mop::AreaTenths;
//!
//! let fir = IpBlock::builder("fir16")
//!     .function(IpFunction::Fir)
//!     .ports(2, 2)
//!     .rates(4, 4)
//!     .latency(8)
//!     .area(AreaTenths::from_units(3))
//!     .build();
//! let mut lib = IpLibrary::new();
//! let id = lib.add(fir);
//! assert!(lib.block(id).unwrap().supports(&IpFunction::Fir));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod func;
mod library;
mod model;

pub use library::IpLibrary;
pub use model::{IpBlock, IpBlockBuilder, IpFunction, IpId, Protocol};
