//! A searchable collection of IP blocks.

use crate::{IpBlock, IpFunction, IpId};

/// The IP library handed to the S-instruction generator.
///
/// # Example
///
/// ```
/// use partita_ip::{IpBlock, IpFunction, IpLibrary};
/// let mut lib = IpLibrary::new();
/// lib.add(IpBlock::builder("fir_a").function(IpFunction::Fir).build());
/// lib.add(IpBlock::builder("fir_b").function(IpFunction::Fir).build());
/// assert_eq!(lib.supporting(&IpFunction::Fir).len(), 2);
/// assert!(lib.supporting(&IpFunction::Fft).is_empty());
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IpLibrary {
    blocks: Vec<IpBlock>,
}

impl IpLibrary {
    /// Creates an empty library.
    #[must_use]
    pub fn new() -> IpLibrary {
        IpLibrary::default()
    }

    /// Adds a block and returns its id within this library.
    pub fn add(&mut self, mut block: IpBlock) -> IpId {
        let id = IpId::from_index(self.blocks.len());
        block.set_id(id);
        self.blocks.push(block);
        id
    }

    /// Looks up a block by id.
    #[must_use]
    pub fn block(&self, id: IpId) -> Option<&IpBlock> {
        self.blocks.get(id.index())
    }

    /// Looks up a block by name.
    #[must_use]
    pub fn block_by_name(&self, name: &str) -> Option<&IpBlock> {
        self.blocks.iter().find(|b| b.name() == name)
    }

    /// Number of blocks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// `true` if the library holds no blocks.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Iterates over all blocks.
    pub fn iter(&self) -> std::slice::Iter<'_, IpBlock> {
        self.blocks.iter()
    }

    /// All blocks that implement `f`.
    #[must_use]
    pub fn supporting(&self, f: &IpFunction) -> Vec<&IpBlock> {
        self.blocks.iter().filter(|b| b.supports(f)).collect()
    }
}

impl<'a> IntoIterator for &'a IpLibrary {
    type Item = &'a IpBlock;
    type IntoIter = std::slice::Iter<'a, IpBlock>;
    fn into_iter(self) -> Self::IntoIter {
        self.blocks.iter()
    }
}

impl Extend<IpBlock> for IpLibrary {
    fn extend<T: IntoIterator<Item = IpBlock>>(&mut self, iter: T) {
        for b in iter {
            self.add(b);
        }
    }
}

impl FromIterator<IpBlock> for IpLibrary {
    fn from_iter<T: IntoIterator<Item = IpBlock>>(iter: T) -> IpLibrary {
        let mut lib = IpLibrary::new();
        lib.extend(iter);
        lib
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_assigned_sequentially() {
        let mut lib = IpLibrary::new();
        let a = lib.add(IpBlock::builder("a").function(IpFunction::Fir).build());
        let b = lib.add(IpBlock::builder("b").function(IpFunction::Fft).build());
        assert_eq!(a, IpId(0));
        assert_eq!(b, IpId(1));
        assert_eq!(lib.block(b).unwrap().name(), "b");
        assert_eq!(lib.block(IpId(5)), None);
    }

    #[test]
    fn lookup_by_name() {
        let lib: IpLibrary = [IpBlock::builder("dct").function(IpFunction::Dct1d).build()]
            .into_iter()
            .collect();
        assert!(lib.block_by_name("dct").is_some());
        assert!(lib.block_by_name("nope").is_none());
        assert_eq!(lib.len(), 1);
        assert!(!lib.is_empty());
    }

    #[test]
    fn iteration() {
        let mut lib = IpLibrary::new();
        lib.extend([
            IpBlock::builder("a").function(IpFunction::Fir).build(),
            IpBlock::builder("b").function(IpFunction::Iir).build(),
        ]);
        let names: Vec<_> = (&lib).into_iter().map(|b| b.name()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(lib.iter().count(), 2);
    }
}
