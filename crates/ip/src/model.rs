//! Structural and timing model of an IP block.

use std::fmt;

use partita_mop::{AreaTenths, Cycles};

/// Identifier of an IP block inside an [`crate::IpLibrary`].
///
/// Displayed as `IP12` to match the paper's tables.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct IpId(pub u32);

impl IpId {
    /// Raw index.
    #[must_use]
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Creates an id from a raw index.
    ///
    /// # Panics
    ///
    /// Panics if `index` does not fit in `u32`.
    #[must_use]
    pub fn from_index(index: usize) -> IpId {
        IpId(u32::try_from(index).expect("ip index overflows u32"))
    }
}

impl fmt::Display for IpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "IP{}", self.0)
    }
}

/// The DSP function(s) an IP block can perform.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
#[non_exhaustive]
pub enum IpFunction {
    /// Finite impulse response filter.
    Fir,
    /// Infinite impulse response filter.
    Iir,
    /// Cross-correlator.
    Correlator,
    /// Quantizer.
    Quantizer,
    /// Interpolation filter (output rate differs from input rate).
    InterpFilter,
    /// One-dimensional DCT.
    Dct1d,
    /// Two-dimensional DCT.
    Dct2d,
    /// Fast Fourier transform.
    Fft,
    /// Complex multiplier.
    ComplexMul,
    /// Zig-zag scan of a coefficient block.
    ZigZag,
    /// Any other function, named.
    Custom(String),
}

impl fmt::Display for IpFunction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IpFunction::Fir => f.write_str("fir"),
            IpFunction::Iir => f.write_str("iir"),
            IpFunction::Correlator => f.write_str("correlator"),
            IpFunction::Quantizer => f.write_str("quantizer"),
            IpFunction::InterpFilter => f.write_str("interp_filter"),
            IpFunction::Dct1d => f.write_str("dct1d"),
            IpFunction::Dct2d => f.write_str("dct2d"),
            IpFunction::Fft => f.write_str("fft"),
            IpFunction::ComplexMul => f.write_str("cmul"),
            IpFunction::ZigZag => f.write_str("zig_zag"),
            IpFunction::Custom(name) => f.write_str(name),
        }
    }
}

/// On-wire protocol of the IP, consumed by the protocol transformer.
///
/// The paper standardises on a synchronous pipelined protocol and borrows
/// published transformers for the rest; the interface crate models the
/// transformer as a fixed per-transfer latency for non-synchronous blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Protocol {
    /// Synchronous (and typically pipelined) — the standard, zero-cost case.
    #[default]
    Synchronous,
    /// Two-phase request/acknowledge handshake.
    Handshake,
    /// Valid/ready streaming.
    Stream,
}

/// An IP block: the structural facts the interface selector needs.
///
/// Timing model (paper §3): a pipelined block producing `n` results runs for
/// `latency + in_rate·(n−1)` cycles; a non-pipelined block runs for
/// `latency·n`.
#[derive(Debug, Clone, PartialEq)]
pub struct IpBlock {
    id: IpId,
    name: String,
    functions: Vec<IpFunction>,
    in_ports: u8,
    out_ports: u8,
    in_rate: u32,
    out_rate: u32,
    latency: u32,
    pipelined: bool,
    area: AreaTenths,
    protocol: Protocol,
}

impl IpBlock {
    /// Starts building a block with the given name.
    #[must_use]
    pub fn builder(name: impl Into<String>) -> IpBlockBuilder {
        IpBlockBuilder::new(name)
    }

    /// The block's library id (set when added to a library).
    #[must_use]
    pub fn id(&self) -> IpId {
        self.id
    }

    pub(crate) fn set_id(&mut self, id: IpId) {
        self.id = id;
    }

    /// The block's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The functions this block implements.
    #[must_use]
    pub fn functions(&self) -> &[IpFunction] {
        &self.functions
    }

    /// `true` if this is a multi-function block (*M-IP*, Definition 2).
    #[must_use]
    pub fn is_multi_function(&self) -> bool {
        self.functions.len() > 1
    }

    /// `true` if the block implements `f`.
    #[must_use]
    pub fn supports(&self, f: &IpFunction) -> bool {
        self.functions.contains(f)
    }

    /// Number of input ports.
    #[must_use]
    pub fn in_ports(&self) -> u8 {
        self.in_ports
    }

    /// Number of output ports.
    #[must_use]
    pub fn out_ports(&self) -> u8 {
        self.out_ports
    }

    /// Input data rate: cycles between successive input samples.
    #[must_use]
    pub fn in_rate(&self) -> u32 {
        self.in_rate
    }

    /// Output data rate: cycles between successive results.
    #[must_use]
    pub fn out_rate(&self) -> u32 {
        self.out_rate
    }

    /// `true` if input and output rates differ (e.g. an interpolation
    /// filter) — such blocks cannot use a type-0 interface (paper §3).
    #[must_use]
    pub fn has_rate_mismatch(&self) -> bool {
        self.in_rate != self.out_rate
    }

    /// Latency from first input to first output, in IP clock cycles.
    #[must_use]
    pub fn latency(&self) -> u32 {
        self.latency
    }

    /// `true` if the datapath is pipelined.
    #[must_use]
    pub fn is_pipelined(&self) -> bool {
        self.pipelined
    }

    /// Silicon area of the bare block (`A_IP`).
    #[must_use]
    pub fn area(&self) -> AreaTenths {
        self.area
    }

    /// On-wire protocol.
    #[must_use]
    pub fn protocol(&self) -> Protocol {
        self.protocol
    }

    /// Total execution time `T_IP` for processing `items` samples.
    ///
    /// Pipelined: `latency + in_rate·(items − 1)`. Non-pipelined: each item
    /// occupies the whole datapath for `latency` cycles.
    #[must_use]
    pub fn execution_cycles(&self, items: u64) -> Cycles {
        if items == 0 {
            return Cycles::ZERO;
        }
        if self.pipelined {
            Cycles(u64::from(self.latency)) + Cycles(u64::from(self.in_rate)).scaled(items - 1)
        } else {
            Cycles(u64::from(self.latency)).scaled(items)
        }
    }
}

/// Builder for [`IpBlock`] (defaults: 2/2 ports, rate 4/4, latency 4,
/// pipelined, synchronous, area 0).
#[derive(Debug, Clone)]
pub struct IpBlockBuilder {
    name: String,
    functions: Vec<IpFunction>,
    in_ports: u8,
    out_ports: u8,
    in_rate: u32,
    out_rate: u32,
    latency: u32,
    pipelined: bool,
    area: AreaTenths,
    protocol: Protocol,
}

impl IpBlockBuilder {
    fn new(name: impl Into<String>) -> IpBlockBuilder {
        IpBlockBuilder {
            name: name.into(),
            functions: Vec::new(),
            in_ports: 2,
            out_ports: 2,
            in_rate: 4,
            out_rate: 4,
            latency: 4,
            pipelined: true,
            area: AreaTenths::ZERO,
            protocol: Protocol::Synchronous,
        }
    }

    /// Adds a supported function (call repeatedly for an M-IP).
    #[must_use]
    pub fn function(mut self, f: IpFunction) -> Self {
        self.functions.push(f);
        self
    }

    /// Sets input/output port counts.
    #[must_use]
    pub fn ports(mut self, inputs: u8, outputs: u8) -> Self {
        self.in_ports = inputs;
        self.out_ports = outputs;
        self
    }

    /// Sets input/output data rates in cycles per sample.
    ///
    /// # Panics
    ///
    /// Panics if either rate is zero.
    #[must_use]
    pub fn rates(mut self, input: u32, output: u32) -> Self {
        assert!(input > 0 && output > 0, "data rates must be positive");
        self.in_rate = input;
        self.out_rate = output;
        self
    }

    /// Sets the first-input-to-first-output latency.
    #[must_use]
    pub fn latency(mut self, cycles: u32) -> Self {
        self.latency = cycles;
        self
    }

    /// Marks the datapath as non-pipelined.
    #[must_use]
    pub fn not_pipelined(mut self) -> Self {
        self.pipelined = false;
        self
    }

    /// Sets the block area.
    #[must_use]
    pub fn area(mut self, area: AreaTenths) -> Self {
        self.area = area;
        self
    }

    /// Sets the on-wire protocol.
    #[must_use]
    pub fn protocol(mut self, protocol: Protocol) -> Self {
        self.protocol = protocol;
        self
    }

    /// Finalises the block.
    ///
    /// # Panics
    ///
    /// Panics if no function was declared — a block that implements nothing
    /// cannot back an S-instruction.
    #[must_use]
    pub fn build(self) -> IpBlock {
        assert!(
            !self.functions.is_empty(),
            "an IP block must implement at least one function"
        );
        IpBlock {
            id: IpId(0),
            name: self.name,
            functions: self.functions,
            in_ports: self.in_ports,
            out_ports: self.out_ports,
            in_rate: self.in_rate,
            out_rate: self.out_rate,
            latency: self.latency,
            pipelined: self.pipelined,
            area: self.area,
            protocol: self.protocol,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fir_block() -> IpBlock {
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .ports(2, 2)
            .rates(4, 4)
            .latency(10)
            .area(AreaTenths::from_units(3))
            .build()
    }

    #[test]
    fn pipelined_execution_time() {
        let b = fir_block();
        assert_eq!(b.execution_cycles(0), Cycles::ZERO);
        assert_eq!(b.execution_cycles(1), Cycles(10));
        assert_eq!(b.execution_cycles(5), Cycles(10 + 4 * 4));
    }

    #[test]
    fn non_pipelined_execution_time() {
        let b = IpBlock::builder("slow")
            .function(IpFunction::Quantizer)
            .latency(6)
            .not_pipelined()
            .build();
        assert_eq!(b.execution_cycles(3), Cycles(18));
        assert!(!b.is_pipelined());
    }

    #[test]
    fn mip_detection() {
        let m = IpBlock::builder("dsp-multi")
            .function(IpFunction::Fir)
            .function(IpFunction::Iir)
            .build();
        assert!(m.is_multi_function());
        assert!(m.supports(&IpFunction::Iir));
        assert!(!m.supports(&IpFunction::Fft));
        assert!(!fir_block().is_multi_function());
    }

    #[test]
    fn rate_mismatch_flag() {
        let interp = IpBlock::builder("interp")
            .function(IpFunction::InterpFilter)
            .rates(4, 2)
            .build();
        assert!(interp.has_rate_mismatch());
        assert!(!fir_block().has_rate_mismatch());
    }

    #[test]
    fn display_matches_paper_table_style() {
        assert_eq!(IpId(12).to_string(), "IP12");
        assert_eq!(IpFunction::ZigZag.to_string(), "zig_zag");
        assert_eq!(IpFunction::Custom("lpc".into()).to_string(), "lpc");
    }

    #[test]
    #[should_panic(expected = "at least one function")]
    fn functionless_block_rejected() {
        let _ = IpBlock::builder("nothing").build();
    }

    #[test]
    #[should_panic(expected = "rates must be positive")]
    fn zero_rate_rejected() {
        let _ = IpBlock::builder("x").function(IpFunction::Fir).rates(0, 4);
    }

    #[test]
    fn defaults_are_sane() {
        let b = IpBlock::builder("d").function(IpFunction::Fft).build();
        assert_eq!(b.in_ports(), 2);
        assert_eq!(b.in_rate(), 4);
        assert!(b.is_pipelined());
        assert_eq!(b.protocol(), Protocol::Synchronous);
        assert_eq!(b.area(), AreaTenths::ZERO);
    }
}
