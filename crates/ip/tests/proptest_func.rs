//! Property tests over the functional DSP kernels.

use proptest::prelude::*;

use partita_ip::func::{
    cmul_i32, cross_correlate, dct1d, dequantize_uniform, dft_naive, fft, fir_direct, idct1d, ifft,
    interpolate, quantize_uniform, zigzag_inverse, zigzag_scan, Complex, FirFilter,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn fft_matches_naive_dft(raw in proptest::collection::vec(-100.0f64..100.0, 1..5usize)) {
        // Round length up to a power of two by zero padding.
        let n = raw.len().next_power_of_two();
        let mut x: Vec<Complex> = raw.iter().map(|&v| Complex::new(v, 0.0)).collect();
        x.resize(n, Complex::ZERO);
        let reference = dft_naive(&x);
        let mut fast = x.clone();
        fft(&mut fast).unwrap();
        for (f, r) in fast.iter().zip(&reference) {
            prop_assert!((*f - *r).abs() < 1e-6);
        }
    }

    #[test]
    fn fft_ifft_roundtrip(raw in proptest::collection::vec((-50.0f64..50.0, -50.0f64..50.0), 1..33usize)) {
        let n = raw.len().next_power_of_two();
        let mut x: Vec<Complex> = raw.iter().map(|&(r, i)| Complex::new(r, i)).collect();
        x.resize(n, Complex::ZERO);
        let mut y = x.clone();
        fft(&mut y).unwrap();
        ifft(&mut y).unwrap();
        for (a, b) in x.iter().zip(&y) {
            prop_assert!((*a - *b).abs() < 1e-8);
        }
    }

    #[test]
    fn dct_roundtrip(x in proptest::collection::vec(-100.0f64..100.0, 1..32usize)) {
        let back = idct1d(&dct1d(&x));
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() < 1e-8);
        }
    }

    #[test]
    fn streaming_fir_matches_direct(
        taps in proptest::collection::vec(-20i32..20, 1..8usize),
        x in proptest::collection::vec(-1000i32..1000, 0..64usize),
    ) {
        let direct = fir_direct(&x, &taps);
        let mut f = FirFilter::new(taps);
        let streamed: Vec<i64> = x.iter().map(|&s| f.step(s)).collect();
        prop_assert_eq!(streamed, direct);
    }

    #[test]
    fn zigzag_is_invertible(n in 1usize..10, seed in any::<u64>()) {
        let block: Vec<i32> = (0..n * n).map(|i| ((seed >> (i % 48)) & 0xff) as i32).collect();
        let scanned = zigzag_scan(&block, n);
        prop_assert_eq!(zigzag_inverse(&scanned, n), block);
    }

    #[test]
    fn quantizer_error_bounded(
        x in proptest::collection::vec(-10_000i32..10_000, 0..64usize),
        step in 1i32..64,
    ) {
        let q = quantize_uniform(&x, step, i32::MAX / 128);
        let back = dequantize_uniform(&q, step);
        for (a, b) in x.iter().zip(&back) {
            prop_assert!((a - b).abs() <= step / 2 + 1);
        }
    }

    #[test]
    fn correlation_is_symmetric_at_zero_lag(
        x in proptest::collection::vec(-100i32..100, 1..32usize),
    ) {
        let r_xy = cross_correlate(&x, &x, 1);
        prop_assert!(r_xy[0] >= 0); // autocorrelation at lag 0 is energy
    }

    #[test]
    fn cmul_modulus_is_multiplicative(a in (-1000i32..1000, -1000i32..1000), b in (-1000i32..1000, -1000i32..1000)) {
        let (re, im) = cmul_i32(a, b);
        let lhs = re * re + im * im;
        let na = i64::from(a.0) * i64::from(a.0) + i64::from(a.1) * i64::from(a.1);
        let nb = i64::from(b.0) * i64::from(b.0) + i64::from(b.1) * i64::from(b.1);
        prop_assert_eq!(lhs, na * nb);
    }

    #[test]
    fn interpolation_length(x in proptest::collection::vec(-50i32..50, 0..20usize), l in 1usize..6) {
        let y = interpolate(&x, l, &[1, 2, 1]);
        prop_assert_eq!(y.len(), x.len() * l);
    }
}
