//! Architectural state: register file, dual data memories, AGU.

use partita_mop::Reg;

use crate::ExecError;

/// One of the kernel's data memories (XDM or YDM).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DataMemory {
    name: &'static str,
    words: Vec<i32>,
}

impl DataMemory {
    /// Creates a zeroed memory of `size` words.
    #[must_use]
    pub fn new(name: &'static str, size: u32) -> DataMemory {
        DataMemory {
            name,
            words: vec![0; size as usize],
        }
    }

    /// Memory size in words.
    #[must_use]
    pub fn size(&self) -> u32 {
        self.words.len() as u32
    }

    /// Reads one word.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemOutOfBounds`] outside the configured size.
    pub fn read(&self, addr: u32) -> Result<i32, ExecError> {
        self.words
            .get(addr as usize)
            .copied()
            .ok_or(ExecError::MemOutOfBounds {
                memory: self.name,
                addr,
                size: self.size(),
            })
    }

    /// Writes one word.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemOutOfBounds`] outside the configured size.
    pub fn write(&mut self, addr: u32, value: i32) -> Result<(), ExecError> {
        let size = self.size();
        match self.words.get_mut(addr as usize) {
            Some(w) => {
                *w = value;
                Ok(())
            }
            None => Err(ExecError::MemOutOfBounds {
                memory: self.name,
                addr,
                size,
            }),
        }
    }

    /// Bulk-loads `data` starting at `base` (convenience for tests/examples).
    ///
    /// # Errors
    ///
    /// [`ExecError::MemOutOfBounds`] if the slice does not fit.
    pub fn load(&mut self, base: u32, data: &[i32]) -> Result<(), ExecError> {
        for (i, &v) in data.iter().enumerate() {
            self.write(base + i as u32, v)?;
        }
        Ok(())
    }

    /// Reads `len` words starting at `base`.
    ///
    /// # Errors
    ///
    /// [`ExecError::MemOutOfBounds`] if the range does not fit.
    pub fn dump(&self, base: u32, len: u32) -> Result<Vec<i32>, ExecError> {
        (base..base + len).map(|a| self.read(a)).collect()
    }
}

/// The address-generation unit: four pointer registers, two per memory side
/// (a0/a1 address XDM, a2/a3 address YDM).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Agu {
    ptrs: [u32; 4],
}

impl Agu {
    /// Creates an AGU with all pointers at zero.
    #[must_use]
    pub fn new() -> Agu {
        Agu::default()
    }

    /// Current value of pointer `idx`.
    ///
    /// # Errors
    ///
    /// [`ExecError::BadAguIndex`] for `idx >= 4`.
    pub fn ptr(&self, idx: u8) -> Result<u32, ExecError> {
        self.ptrs
            .get(idx as usize)
            .copied()
            .ok_or(ExecError::BadAguIndex(idx))
    }

    /// Sets pointer `idx` to an absolute address.
    ///
    /// # Errors
    ///
    /// [`ExecError::BadAguIndex`] for `idx >= 4`.
    pub fn set(&mut self, idx: u8, addr: u32) -> Result<(), ExecError> {
        match self.ptrs.get_mut(idx as usize) {
            Some(p) => {
                *p = addr;
                Ok(())
            }
            None => Err(ExecError::BadAguIndex(idx)),
        }
    }

    /// Adds a signed step to pointer `idx` (wrapping at `u32` like hardware).
    ///
    /// # Errors
    ///
    /// [`ExecError::BadAguIndex`] for `idx >= 4`.
    pub fn step(&mut self, idx: u8, step: i32) -> Result<(), ExecError> {
        match self.ptrs.get_mut(idx as usize) {
            Some(p) => {
                *p = p.wrapping_add_signed(step);
                Ok(())
            }
            None => Err(ExecError::BadAguIndex(idx)),
        }
    }

    /// Validates that `idx` addresses the X side (pointers 0 and 1).
    ///
    /// # Errors
    ///
    /// [`ExecError::WrongAguSide`] or [`ExecError::BadAguIndex`].
    pub fn require_x(idx: u8) -> Result<(), ExecError> {
        match idx {
            0 | 1 => Ok(()),
            2 | 3 => Err(ExecError::WrongAguSide {
                agu: idx,
                expected: "X",
            }),
            _ => Err(ExecError::BadAguIndex(idx)),
        }
    }

    /// Validates that `idx` addresses the Y side (pointers 2 and 3).
    ///
    /// # Errors
    ///
    /// [`ExecError::WrongAguSide`] or [`ExecError::BadAguIndex`].
    pub fn require_y(idx: u8) -> Result<(), ExecError> {
        match idx {
            2 | 3 => Ok(()),
            0 | 1 => Err(ExecError::WrongAguSide {
                agu: idx,
                expected: "Y",
            }),
            _ => Err(ExecError::BadAguIndex(idx)),
        }
    }
}

/// The kernel's full architectural state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Kernel {
    regs: [i32; 16],
    /// X data memory.
    pub xdm: DataMemory,
    /// Y data memory.
    pub ydm: DataMemory,
    /// Address-generation unit.
    pub agu: Agu,
}

impl Kernel {
    /// Creates a kernel with the given memory sizes (in words).
    #[must_use]
    pub fn new(xdm_size: u32, ydm_size: u32) -> Kernel {
        Kernel {
            regs: [0; 16],
            xdm: DataMemory::new("X", xdm_size),
            ydm: DataMemory::new("Y", ydm_size),
            agu: Agu::new(),
        }
    }

    /// Reads a register (register indices wrap into the 16-entry file).
    #[must_use]
    pub fn reg(&self, r: Reg) -> i32 {
        self.regs[r.0 as usize % 16]
    }

    /// Writes a register.
    pub fn set_reg(&mut self, r: Reg, value: i32) {
        self.regs[r.0 as usize % 16] = value;
    }

    /// Resets registers and AGU (memories keep their contents).
    pub fn reset_datapath(&mut self) {
        self.regs = [0; 16];
        self.agu = Agu::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_roundtrip_and_bounds() {
        let mut m = DataMemory::new("X", 8);
        m.write(3, -7).unwrap();
        assert_eq!(m.read(3).unwrap(), -7);
        assert!(matches!(
            m.read(8),
            Err(ExecError::MemOutOfBounds { addr: 8, .. })
        ));
        assert!(m.write(9, 0).is_err());
    }

    #[test]
    fn bulk_load_dump() {
        let mut m = DataMemory::new("Y", 16);
        m.load(4, &[1, 2, 3]).unwrap();
        assert_eq!(m.dump(4, 3).unwrap(), vec![1, 2, 3]);
        assert!(m.load(15, &[1, 2]).is_err());
    }

    #[test]
    fn agu_sides() {
        assert!(Agu::require_x(0).is_ok());
        assert!(Agu::require_x(1).is_ok());
        assert!(matches!(
            Agu::require_x(2),
            Err(ExecError::WrongAguSide { expected: "X", .. })
        ));
        assert!(Agu::require_y(3).is_ok());
        assert!(Agu::require_y(0).is_err());
        assert!(matches!(Agu::require_y(7), Err(ExecError::BadAguIndex(7))));
    }

    #[test]
    fn agu_step_wraps() {
        let mut a = Agu::new();
        a.set(0, 5).unwrap();
        a.step(0, -2).unwrap();
        assert_eq!(a.ptr(0).unwrap(), 3);
        a.step(0, -10).unwrap(); // wraps like hardware modular arithmetic
        assert_eq!(a.ptr(0).unwrap(), 3u32.wrapping_sub(10));
        assert!(a.ptr(9).is_err());
        assert!(a.set(4, 0).is_err());
        assert!(a.step(4, 1).is_err());
    }

    #[test]
    fn register_file_wraps_indices() {
        let mut k = Kernel::new(4, 4);
        k.set_reg(Reg(17), 9); // wraps to r1
        assert_eq!(k.reg(Reg(1)), 9);
        k.reset_datapath();
        assert_eq!(k.reg(Reg(1)), 0);
    }
}
