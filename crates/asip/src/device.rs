//! The kernel↔IP device boundary.
//!
//! Interface templates (paper Figs 4–7) move data between the kernel and an
//! attached IP/buffer fabric through `ipw`/`ipr`/`ipstart`/`bufw`/`bufr`
//! µ-operations. The executor forwards them to an [`IpDevice`]; the
//! `partita-interface` crate implements the real co-simulated device.

use std::collections::VecDeque;

use crate::ExecError;

/// The device attached to the kernel's IP port.
///
/// `tick` is called once per kernel cycle so devices can model pipelined
/// progress while the kernel runs code in parallel (Fig. 2).
pub trait IpDevice {
    /// Kernel writes `value` to IP input port `port`.
    ///
    /// # Errors
    ///
    /// Device-specific; surfaced as [`ExecError`].
    fn write_port(&mut self, port: u8, value: i32) -> Result<(), ExecError>;

    /// Kernel reads IP output port `port`.
    ///
    /// # Errors
    ///
    /// Device-specific; surfaced as [`ExecError`].
    fn read_port(&mut self, port: u8) -> Result<i32, ExecError>;

    /// Kernel asserts the start strobe (`IP_start = 1`, Fig. 5).
    ///
    /// # Errors
    ///
    /// Device-specific; surfaced as [`ExecError`].
    fn start(&mut self) -> Result<(), ExecError>;

    /// Kernel writes `value` into interface buffer `buf`.
    ///
    /// # Errors
    ///
    /// Device-specific; surfaced as [`ExecError`].
    fn write_buffer(&mut self, buf: u8, value: i32) -> Result<(), ExecError>;

    /// Kernel reads the next word from interface buffer `buf`.
    ///
    /// # Errors
    ///
    /// Device-specific; surfaced as [`ExecError`].
    fn read_buffer(&mut self, buf: u8) -> Result<i32, ExecError>;

    /// One kernel clock elapsed.
    fn tick(&mut self) {}

    /// `true` while the device still has work in flight.
    fn busy(&self) -> bool {
        false
    }
}

/// A device that rejects every access — the default when no IP is attached.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullDevice;

impl IpDevice for NullDevice {
    fn write_port(&mut self, _port: u8, _value: i32) -> Result<(), ExecError> {
        Err(ExecError::NoDeviceAttached)
    }
    fn read_port(&mut self, _port: u8) -> Result<i32, ExecError> {
        Err(ExecError::NoDeviceAttached)
    }
    fn start(&mut self) -> Result<(), ExecError> {
        Err(ExecError::NoDeviceAttached)
    }
    fn write_buffer(&mut self, _buf: u8, _value: i32) -> Result<(), ExecError> {
        Err(ExecError::NoDeviceAttached)
    }
    fn read_buffer(&mut self, _buf: u8) -> Result<i32, ExecError> {
        Err(ExecError::NoDeviceAttached)
    }
}

/// A loopback device for tests: port writes are queued and read back FIFO;
/// buffers are simple FIFOs; every access is recorded.
#[derive(Debug, Clone, Default)]
pub struct RecordingDevice {
    fifo: VecDeque<i32>,
    buffers: Vec<VecDeque<i32>>,
    /// Number of `start` strobes observed.
    pub starts: usize,
    /// Log of `(operation, port/buffer, value)` tuples.
    pub log: Vec<(&'static str, u8, i32)>,
}

impl RecordingDevice {
    /// Creates a device with `buffers` FIFO buffers.
    #[must_use]
    pub fn new(buffers: usize) -> RecordingDevice {
        RecordingDevice {
            fifo: VecDeque::new(),
            buffers: vec![VecDeque::new(); buffers],
            starts: 0,
            log: Vec::new(),
        }
    }
}

impl IpDevice for RecordingDevice {
    fn write_port(&mut self, port: u8, value: i32) -> Result<(), ExecError> {
        self.log.push(("ipw", port, value));
        self.fifo.push_back(value);
        Ok(())
    }

    fn read_port(&mut self, port: u8) -> Result<i32, ExecError> {
        let v = self.fifo.pop_front().unwrap_or(0);
        self.log.push(("ipr", port, v));
        Ok(v)
    }

    fn start(&mut self) -> Result<(), ExecError> {
        self.starts += 1;
        self.log.push(("start", 0, 0));
        Ok(())
    }

    fn write_buffer(&mut self, buf: u8, value: i32) -> Result<(), ExecError> {
        self.log.push(("bufw", buf, value));
        self.buffers
            .get_mut(buf as usize)
            .ok_or(ExecError::NoDeviceAttached)?
            .push_back(value);
        Ok(())
    }

    fn read_buffer(&mut self, buf: u8) -> Result<i32, ExecError> {
        let v = self
            .buffers
            .get_mut(buf as usize)
            .ok_or(ExecError::NoDeviceAttached)?
            .pop_front()
            .unwrap_or(0);
        self.log.push(("bufr", buf, v));
        Ok(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn null_device_rejects_everything() {
        let mut d = NullDevice;
        assert!(d.write_port(0, 1).is_err());
        assert!(d.read_port(0).is_err());
        assert!(d.start().is_err());
        assert!(d.write_buffer(0, 1).is_err());
        assert!(d.read_buffer(0).is_err());
        assert!(!d.busy());
    }

    #[test]
    fn recording_device_loops_back() {
        let mut d = RecordingDevice::new(1);
        d.write_port(0, 42).unwrap();
        assert_eq!(d.read_port(1).unwrap(), 42);
        d.write_buffer(0, 7).unwrap();
        assert_eq!(d.read_buffer(0).unwrap(), 7);
        d.start().unwrap();
        assert_eq!(d.starts, 1);
        assert_eq!(d.log.len(), 5);
        assert!(d.read_buffer(3).is_err());
    }
}
