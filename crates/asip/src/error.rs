//! Execution errors.

use std::error::Error;
use std::fmt;

use partita_mop::{FuncId, MopError};

/// Errors raised while simulating a program on the kernel.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum ExecError {
    /// Data-memory access outside the configured size.
    MemOutOfBounds {
        /// `"X"` or `"Y"`.
        memory: &'static str,
        /// The offending address.
        addr: u32,
        /// Memory size in words.
        size: u32,
    },
    /// An X-side memory access used a Y-side AGU pointer or vice versa.
    WrongAguSide {
        /// The pointer index used.
        agu: u8,
        /// The side required (`"X"` or `"Y"`).
        expected: &'static str,
    },
    /// An AGU pointer index outside 0..4.
    BadAguIndex(u8),
    /// The program has no entry function.
    NoMainFunction,
    /// Call to a function that does not exist.
    UnknownCallee(FuncId),
    /// Call stack exceeded the configured depth.
    CallDepthExceeded {
        /// Configured limit.
        limit: usize,
    },
    /// The step budget ran out (runaway loop protection).
    StepLimitExceeded {
        /// Configured limit.
        limit: u64,
    },
    /// An IP/buffer operation ran with no device attached.
    NoDeviceAttached,
    /// The attached device rejected an access (timing violation, unknown
    /// buffer, underflow, ...).
    DeviceFault(String),
    /// An underlying IR error.
    Ir(MopError),
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::MemOutOfBounds { memory, addr, size } => {
                write!(f, "{memory}-memory access at {addr} outside size {size}")
            }
            ExecError::WrongAguSide { agu, expected } => {
                write!(f, "agu pointer a{agu} is not on the {expected} side")
            }
            ExecError::BadAguIndex(a) => write!(f, "agu pointer index {a} out of range"),
            ExecError::NoMainFunction => f.write_str("program has no entry function"),
            ExecError::UnknownCallee(id) => write!(f, "call to unknown function {id}"),
            ExecError::CallDepthExceeded { limit } => {
                write!(f, "call depth exceeded limit of {limit}")
            }
            ExecError::StepLimitExceeded { limit } => {
                write!(f, "step budget of {limit} exhausted")
            }
            ExecError::NoDeviceAttached => {
                f.write_str("ip/buffer operation executed with no device attached")
            }
            ExecError::DeviceFault(msg) => write!(f, "ip device fault: {msg}"),
            ExecError::Ir(e) => write!(f, "ir error: {e}"),
        }
    }
}

impl Error for ExecError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ExecError::Ir(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MopError> for ExecError {
    fn from(e: MopError) -> ExecError {
        ExecError::Ir(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_source() {
        let e = ExecError::MemOutOfBounds {
            memory: "X",
            addr: 9,
            size: 4,
        };
        assert!(e.to_string().contains("X-memory"));
        let wrapped = ExecError::from(MopError::UnknownFunction(FuncId(1)));
        assert!(wrapped.source().is_some());
    }
}
