//! Instruction-set model: the P/C/S instruction classes of paper §2.
//!
//! * **P-class** — primitive instructions "essential in all applications"
//!   (simple arithmetic, branch, call); always present.
//! * **C-class** — application-specific µ-coded instructions that control
//!   all kernel units.
//! * **S-class** — "the instructions used to incorporate the IPs into the
//!   instruction set": one per merged (IP set, interface) selection.
//!
//! After selection, "all newly generated instructions are encoded in the
//! instruction space"; this module accounts for that encoding: opcode width,
//! remaining encoding room, and the µ-ROM footprint of the µ-coded classes.

use std::fmt;

use partita_mop::Function;

use crate::{MicroRom, RomStats};

/// An instruction class.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrClass {
    /// Primitive kernel instruction.
    P,
    /// Application-specific µ-coded instruction.
    C,
    /// IP-backed accelerator instruction.
    S,
}

impl fmt::Display for InstrClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            InstrClass::P => "P",
            InstrClass::C => "C",
            InstrClass::S => "S",
        })
    }
}

/// One encoded instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Mnemonic.
    pub name: String,
    /// Class.
    pub class: InstrClass,
    /// Assigned opcode (set by [`InstructionSet::encode`]).
    pub opcode: Option<u32>,
}

/// The ASIP's instruction set under construction.
///
/// # Example
///
/// ```
/// use partita_asip::{InstructionSet, InstrClass};
/// let mut isa = InstructionSet::with_baseline_p_class();
/// isa.add(InstrClass::C, "mac_block");
/// isa.add(InstrClass::S, "s_fir_if0");
/// let enc = isa.encode();
/// assert!(enc.opcode_bits >= 5);
/// assert_eq!(enc.used, isa.len());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct InstructionSet {
    instructions: Vec<Instruction>,
}

/// The baseline P-class mnemonics (arithmetic, logic, memory, control) that
/// every generated ASIP supports.
pub const BASELINE_P_CLASS: [&str; 18] = [
    "add", "sub", "mul", "and", "or", "xor", "shl", "shr", "min", "max", "cmpeq", "cmplt", "ld",
    "st", "ldi", "br", "call", "ret",
];

impl InstructionSet {
    /// An empty instruction set.
    #[must_use]
    pub fn new() -> InstructionSet {
        InstructionSet::default()
    }

    /// An instruction set pre-populated with the baseline P-class.
    #[must_use]
    pub fn with_baseline_p_class() -> InstructionSet {
        let mut isa = InstructionSet::new();
        for name in BASELINE_P_CLASS {
            isa.add(InstrClass::P, name);
        }
        isa
    }

    /// Adds an instruction (unencoded).
    pub fn add(&mut self, class: InstrClass, name: impl Into<String>) {
        self.instructions.push(Instruction {
            name: name.into(),
            class,
            opcode: None,
        });
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// `true` when no instructions are defined.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Instructions of one class.
    #[must_use]
    pub fn of_class(&self, class: InstrClass) -> Vec<&Instruction> {
        self.instructions
            .iter()
            .filter(|i| i.class == class)
            .collect()
    }

    /// All instructions.
    #[must_use]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Assigns sequential opcodes (P first, then C, then S) and reports the
    /// encoding-space usage.
    pub fn encode(&mut self) -> Encoding {
        let mut opcode = 0u32;
        for class in [InstrClass::P, InstrClass::C, InstrClass::S] {
            for instr in self.instructions.iter_mut().filter(|i| i.class == class) {
                instr.opcode = Some(opcode);
                opcode += 1;
            }
        }
        let used = opcode as usize;
        let opcode_bits = usize::BITS - used.saturating_sub(1).leading_zeros();
        let opcode_bits = (opcode_bits as usize).max(1);
        Encoding {
            used,
            opcode_bits,
            free_slots: (1usize << opcode_bits) - used,
        }
    }

    /// Builds the µ-ROM for the µ-coded instruction bodies (C and S classes)
    /// and reports its sharing statistics.
    #[must_use]
    pub fn microcode_stats<'a>(&self, bodies: impl IntoIterator<Item = &'a Function>) -> RomStats {
        let bodies: Vec<&Function> = bodies.into_iter().collect();
        let mut rom = MicroRom::new();
        for f in &bodies {
            rom.add_function(f);
        }
        rom.stats(&bodies)
    }
}

/// The result of encoding an instruction set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Encoding {
    /// Instructions encoded.
    pub used: usize,
    /// Opcode field width in bits.
    pub opcode_bits: usize,
    /// Unused encodings left at this width.
    pub free_slots: usize,
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_mop::{Mop, Reg};

    #[test]
    fn baseline_p_class_always_present() {
        let isa = InstructionSet::with_baseline_p_class();
        assert_eq!(isa.of_class(InstrClass::P).len(), BASELINE_P_CLASS.len());
        assert!(isa.of_class(InstrClass::S).is_empty());
    }

    #[test]
    fn encoding_orders_classes_and_sizes_opcodes() {
        let mut isa = InstructionSet::with_baseline_p_class();
        isa.add(InstrClass::S, "s_fir_if0");
        isa.add(InstrClass::C, "c_mac_loop");
        let enc = isa.encode();
        assert_eq!(enc.used, 20);
        assert_eq!(enc.opcode_bits, 5);
        assert_eq!(enc.free_slots, 12);
        // The C instruction encodes before the S instruction.
        let c_op = isa.of_class(InstrClass::C)[0].opcode.unwrap();
        let s_op = isa.of_class(InstrClass::S)[0].opcode.unwrap();
        assert!(c_op < s_op);
        // Every P opcode precedes both.
        for p in isa.of_class(InstrClass::P) {
            assert!(p.opcode.unwrap() < c_op);
        }
    }

    #[test]
    fn single_instruction_needs_one_bit() {
        let mut isa = InstructionSet::new();
        isa.add(InstrClass::P, "nopish");
        let enc = isa.encode();
        assert_eq!(enc.opcode_bits, 1);
        assert_eq!(enc.free_slots, 1);
        assert!(!isa.is_empty());
    }

    #[test]
    fn microcode_stats_fold_shared_words() {
        let mut body1 = Function::new("s_a");
        let b = body1.add_block();
        body1.push_mop(b, Mop::load_imm(Reg(0), 7));
        body1.compute_edges();
        let mut body2 = Function::new("s_b");
        let b = body2.add_block();
        body2.push_mop(b, Mop::load_imm(Reg(0), 7));
        body2.compute_edges();
        let isa = InstructionSet::new();
        let stats = isa.microcode_stats([&body1, &body2]);
        assert_eq!(stats.total_words, 2);
        assert_eq!(stats.unique_words, 1);
    }
}
