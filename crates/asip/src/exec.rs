//! The µ-program executor.

use partita_mop::{
    pack_words, AluOp, BlockId, Cycles, FuncId, MacOp, MopKind, MopProgram, Operand, SeqOp,
};

use crate::{Agu, ExecError, IpDevice, Kernel, NullDevice};

/// How execution time is accounted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CycleModel {
    /// One cycle per µ-operation (conservative, no field parallelism).
    PerMop,
    /// One cycle per packed µ-code word: independent µ-operations that share
    /// a word (paper Fig. 4 lines 7–8) cost a single cycle.
    #[default]
    PerWord,
}

/// Execution options.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecOptions {
    /// Cycle accounting model.
    pub cycle_model: CycleModel,
    /// Extra cycles charged for every taken control transfer (the pipeline
    /// refill of the paper's pipelined kernel).
    pub branch_penalty: u64,
    /// Runaway-loop protection: maximum µ-operations retired.
    pub max_steps: u64,
    /// Maximum call depth.
    pub max_call_depth: usize,
    /// Register windows: save the register file and AGU on `call` and
    /// restore them on `return`, so callees cannot clobber caller state.
    /// Partita-C functions communicate through their declared memory regions
    /// and rely on this; set to `false` for hand-written µ-code that passes
    /// values in registers.
    pub register_windows: bool,
}

impl Default for ExecOptions {
    fn default() -> Self {
        ExecOptions {
            cycle_model: CycleModel::PerWord,
            branch_penalty: 1,
            max_steps: 50_000_000,
            max_call_depth: 64,
            register_windows: true,
        }
    }
}

/// The result of running a program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecReport {
    /// Total kernel cycles.
    pub cycles: Cycles,
    /// µ-operations retired.
    pub mops_retired: u64,
    /// Taken control transfers.
    pub branches_taken: u64,
    /// Per-function, per-block execution counts (the profile).
    pub block_counts: Vec<Vec<u64>>,
    /// `true` if the program ended via `halt` or returning from `main`.
    pub halted: bool,
}

impl ExecReport {
    /// Execution count of one block.
    #[must_use]
    pub fn block_count(&self, func: FuncId, block: BlockId) -> u64 {
        self.block_counts
            .get(func.index())
            .and_then(|f| f.get(block.index()))
            .copied()
            .unwrap_or(0)
    }

    /// Writes the collected profile back into the program's blocks, making
    /// [`partita_mop::Function::profiled_cycles`] reflect this run.
    ///
    /// # Errors
    ///
    /// Propagates IR lookup failures (which indicate a program/report
    /// mismatch).
    pub fn apply_profile(&self, program: &mut MopProgram) -> Result<(), ExecError> {
        for (fi, counts) in self.block_counts.iter().enumerate() {
            let func = program.function_mut(FuncId::from_index(fi))?;
            for (bi, &count) in counts.iter().enumerate() {
                func.set_exec_count(BlockId::from_index(bi), count)?;
            }
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy)]
struct Frame {
    func: FuncId,
    block: BlockId,
    mop_idx: usize,
}

/// A saved register window (registers + AGU pointers).
#[derive(Debug, Clone)]
struct Window {
    regs: [i32; 16],
    agu: crate::Agu,
}

/// Executes [`MopProgram`]s on a [`Kernel`].
#[derive(Debug)]
pub struct Executor<'p> {
    program: &'p MopProgram,
    /// Per function, per MopId: cycle cost under the per-word model (1 for
    /// the first µ-op of each packed word, 0 for the rest).
    word_costs: Vec<Vec<u8>>,
}

impl<'p> Executor<'p> {
    /// Prepares an executor (packs every function into µ-code words).
    #[must_use]
    pub fn new(program: &'p MopProgram) -> Executor<'p> {
        let word_costs = program
            .functions()
            .iter()
            .map(|f| {
                let mut costs = vec![1u8; f.mop_count()];
                for words in pack_words(f) {
                    for word in words {
                        for (i, (_, mop)) in word.entries().into_iter().enumerate() {
                            costs[mop.index()] = u8::from(i == 0);
                        }
                    }
                }
                costs
            })
            .collect();
        Executor {
            program,
            word_costs,
        }
    }

    /// Runs the program with no IP attached.
    ///
    /// # Errors
    ///
    /// Any [`ExecError`]; IP/buffer µ-operations fail with
    /// [`ExecError::NoDeviceAttached`].
    pub fn run(&self, kernel: &mut Kernel, options: &ExecOptions) -> Result<ExecReport, ExecError> {
        let mut device = NullDevice;
        self.run_with_device(kernel, &mut device, options)
    }

    /// Runs the program with an attached IP device (co-simulation).
    ///
    /// # Errors
    ///
    /// Any [`ExecError`].
    pub fn run_with_device(
        &self,
        kernel: &mut Kernel,
        device: &mut dyn IpDevice,
        options: &ExecOptions,
    ) -> Result<ExecReport, ExecError> {
        let main = self.program.main().ok_or(ExecError::NoMainFunction)?;
        let mut block_counts: Vec<Vec<u64>> = self
            .program
            .functions()
            .iter()
            .map(|f| vec![0u64; f.blocks().len()])
            .collect();

        let mut stack: Vec<(Frame, Option<Window>)> = Vec::new();
        let mut frame = Frame {
            func: main,
            block: self.program.function(main)?.entry(),
            mop_idx: 0,
        };
        let mut report = ExecReport {
            cycles: Cycles::ZERO,
            mops_retired: 0,
            branches_taken: 0,
            block_counts: Vec::new(),
            halted: false,
        };
        if self.program.function(main)?.blocks().is_empty() {
            report.halted = true;
            report.block_counts = block_counts;
            return Ok(report);
        }
        block_counts[frame.func.index()][frame.block.index()] += 1;

        let charge = |report: &mut ExecReport, device: &mut dyn IpDevice, n: u64| {
            report.cycles += Cycles(n);
            for _ in 0..n {
                device.tick();
            }
        };

        'outer: loop {
            if report.mops_retired >= options.max_steps {
                return Err(ExecError::StepLimitExceeded {
                    limit: options.max_steps,
                });
            }
            let func = self.program.function(frame.func)?;
            let block = func.block(frame.block)?;

            let Some(&mop_id) = block.mops().get(frame.mop_idx) else {
                // Block exhausted without a terminator: fall through, or
                // implicitly return from the last block.
                let next_idx = frame.block.index() + 1;
                if next_idx < func.blocks().len() {
                    frame.block = BlockId::from_index(next_idx);
                    frame.mop_idx = 0;
                    block_counts[frame.func.index()][frame.block.index()] += 1;
                    continue;
                }
                match stack.pop() {
                    Some((ret, window)) => {
                        if let Some(w) = window {
                            restore_window(kernel, &w);
                        }
                        frame = ret;
                        continue;
                    }
                    None => {
                        report.halted = true;
                        break 'outer;
                    }
                }
            };

            let mop = func.mop(mop_id)?;
            report.mops_retired += 1;
            let cost = match options.cycle_model {
                CycleModel::PerMop => 1,
                CycleModel::PerWord => {
                    u64::from(self.word_costs[frame.func.index()][mop_id.index()])
                }
            };
            charge(&mut report, device, cost);

            let mut next = frame;
            next.mop_idx += 1;
            let mut transfer: Option<Frame> = None;

            match mop.kind() {
                MopKind::Alu { op, dst, a, b } => {
                    let av = read_operand(kernel, *a);
                    let bv = read_operand(kernel, *b);
                    kernel.set_reg(*dst, alu_eval(*op, av, bv));
                }
                MopKind::Mac { op, acc, a, b } => {
                    let prod = i64::from(kernel.reg(*a)) * i64::from(kernel.reg(*b));
                    let base = i64::from(kernel.reg(*acc));
                    let sum = match op {
                        MacOp::Mac => base + prod,
                        MacOp::Msu => base - prod,
                    };
                    kernel.set_reg(*acc, sum as i32);
                }
                MopKind::Move { dst, src } => {
                    let v = kernel.reg(*src);
                    kernel.set_reg(*dst, v);
                }
                MopKind::LoadImm { dst, imm } => kernel.set_reg(*dst, *imm),
                MopKind::LoadX { dst, agu } => {
                    Agu::require_x(*agu)?;
                    let addr = kernel.agu.ptr(*agu)?;
                    let v = kernel.xdm.read(addr)?;
                    kernel.set_reg(*dst, v);
                }
                MopKind::LoadY { dst, agu } => {
                    Agu::require_y(*agu)?;
                    let addr = kernel.agu.ptr(*agu)?;
                    let v = kernel.ydm.read(addr)?;
                    kernel.set_reg(*dst, v);
                }
                MopKind::StoreX { src, agu } => {
                    Agu::require_x(*agu)?;
                    let addr = kernel.agu.ptr(*agu)?;
                    let v = kernel.reg(*src);
                    kernel.xdm.write(addr, v)?;
                }
                MopKind::StoreY { src, agu } => {
                    Agu::require_y(*agu)?;
                    let addr = kernel.agu.ptr(*agu)?;
                    let v = kernel.reg(*src);
                    kernel.ydm.write(addr, v)?;
                }
                MopKind::AguSet { agu, addr } => kernel.agu.set(*agu, *addr)?,
                MopKind::AguStep { agu, step } => kernel.agu.step(*agu, *step)?,
                MopKind::AguFromReg { agu, src } => {
                    let addr = kernel.reg(*src) as u32;
                    kernel.agu.set(*agu, addr)?;
                }
                MopKind::IpWrite { port, src } => {
                    let v = kernel.reg(*src);
                    device.write_port(*port, v)?;
                }
                MopKind::IpRead { dst, port } => {
                    let v = device.read_port(*port)?;
                    kernel.set_reg(*dst, v);
                }
                MopKind::IpStart => device.start()?,
                MopKind::BufWrite { buf, src } => {
                    let v = kernel.reg(*src);
                    device.write_buffer(*buf, v)?;
                }
                MopKind::BufRead { dst, buf } => {
                    let v = device.read_buffer(*buf)?;
                    kernel.set_reg(*dst, v);
                }
                MopKind::Seq(seq) => match seq {
                    SeqOp::Jump(target) => {
                        transfer = Some(Frame {
                            func: frame.func,
                            block: *target,
                            mop_idx: 0,
                        });
                    }
                    SeqOp::BranchNz {
                        cond,
                        then_block,
                        else_block,
                    } => {
                        let target = if kernel.reg(*cond) != 0 {
                            *then_block
                        } else {
                            *else_block
                        };
                        transfer = Some(Frame {
                            func: frame.func,
                            block: target,
                            mop_idx: 0,
                        });
                    }
                    SeqOp::Call(callee) => {
                        let callee_func = self
                            .program
                            .function(*callee)
                            .map_err(|_| ExecError::UnknownCallee(*callee))?;
                        if stack.len() >= options.max_call_depth {
                            return Err(ExecError::CallDepthExceeded {
                                limit: options.max_call_depth,
                            });
                        }
                        if callee_func.blocks().is_empty() {
                            // Empty callee: a no-op call.
                        } else {
                            let window = options.register_windows.then(|| save_window(kernel));
                            stack.push((next, window));
                            transfer = Some(Frame {
                                func: *callee,
                                block: callee_func.entry(),
                                mop_idx: 0,
                            });
                        }
                    }
                    SeqOp::Return => match stack.pop() {
                        Some((ret, window)) => {
                            report.branches_taken += 1;
                            charge(&mut report, device, options.branch_penalty);
                            if let Some(w) = window {
                                restore_window(kernel, &w);
                            }
                            frame = ret;
                            continue;
                        }
                        None => {
                            report.halted = true;
                            break 'outer;
                        }
                    },
                    SeqOp::Halt => {
                        report.halted = true;
                        break 'outer;
                    }
                },
                MopKind::Nop => {}
            }

            match transfer {
                Some(t) => {
                    report.branches_taken += 1;
                    charge(&mut report, device, options.branch_penalty);
                    block_counts[t.func.index()][t.block.index()] += 1;
                    frame = t;
                }
                None => frame = next,
            }
        }

        report.block_counts = block_counts;
        Ok(report)
    }
}

fn save_window(kernel: &Kernel) -> Window {
    let mut regs = [0i32; 16];
    for (i, r) in regs.iter_mut().enumerate() {
        *r = kernel.reg(partita_mop::Reg(i as u8));
    }
    Window {
        regs,
        agu: kernel.agu,
    }
}

fn restore_window(kernel: &mut Kernel, w: &Window) {
    for (i, &r) in w.regs.iter().enumerate() {
        kernel.set_reg(partita_mop::Reg(i as u8), r);
    }
    kernel.agu = w.agu;
}

fn read_operand(kernel: &Kernel, op: Operand) -> i32 {
    match op {
        Operand::Reg(r) => kernel.reg(r),
        Operand::Imm(v) => v,
    }
}

fn alu_eval(op: AluOp, a: i32, b: i32) -> i32 {
    match op {
        AluOp::Add => a.wrapping_add(b),
        AluOp::Sub => a.wrapping_sub(b),
        AluOp::Mul => a.wrapping_mul(b),
        AluOp::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        AluOp::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        AluOp::And => a & b,
        AluOp::Or => a | b,
        AluOp::Xor => a ^ b,
        AluOp::Shl => a.wrapping_shl(b as u32 & 31),
        AluOp::Shr => a.wrapping_shr(b as u32 & 31),
        AluOp::Min => a.min(b),
        AluOp::Max => a.max(b),
        AluOp::CmpEq => i32::from(a == b),
        AluOp::CmpLt => i32::from(a < b),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_mop::{Function, Mop, Reg};

    use crate::RecordingDevice;

    fn program_of(funcs: Vec<Function>) -> MopProgram {
        let mut p = MopProgram::new();
        let mut main_id = None;
        for f in funcs {
            let is_main = f.name() == "main";
            let id = p.add_function(f).unwrap();
            if is_main {
                main_id = Some(id);
            }
        }
        p.set_main(main_id.expect("main function present")).unwrap();
        p
    }

    #[test]
    fn arithmetic_and_halt() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::load_imm(Reg(0), 6));
        f.push_mop(b, Mop::load_imm(Reg(1), 7));
        f.push_mop(b, Mop::alu(AluOp::Mul, Reg(2), Reg(0), Reg(1)));
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(16, 16);
        let r = Executor::new(&p)
            .run(&mut k, &ExecOptions::default())
            .unwrap();
        assert_eq!(k.reg(Reg(2)), 42);
        assert!(r.halted);
        assert_eq!(r.mops_retired, 4);
    }

    #[test]
    fn loop_executes_and_profiles() {
        // r0 = 5; loop: r0 -= 1; bnz r0 -> loop else exit.
        let mut f = Function::new("main");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        f.push_mop(b0, Mop::load_imm(Reg(0), 5));
        f.push_mop(b1, Mop::alu(AluOp::Sub, Reg(0), Reg(0), 1));
        f.push_mop(b1, Mop::branch_nz(Reg(0), b1, b2));
        f.push_mop(b2, Mop::halt());
        f.compute_edges();
        let mut p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        let r = Executor::new(&p)
            .run(&mut k, &ExecOptions::default())
            .unwrap();
        assert_eq!(k.reg(Reg(0)), 0);
        assert_eq!(r.block_count(FuncId(0), b1), 5);
        assert_eq!(r.block_count(FuncId(0), b2), 1);
        r.apply_profile(&mut p).unwrap();
        assert_eq!(
            p.function(FuncId(0))
                .unwrap()
                .block(b1)
                .unwrap()
                .exec_count(),
            5
        );
    }

    #[test]
    fn memory_and_agu() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::agu_set(0, 3));
        f.push_mop(b, Mop::load_imm(Reg(0), 99));
        f.push_mop(b, Mop::store_x(Reg(0), 0));
        f.push_mop(b, Mop::agu_set(2, 1));
        f.push_mop(b, Mop::load_imm(Reg(1), -5));
        f.push_mop(b, Mop::store_y(Reg(1), 2));
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(8, 8);
        Executor::new(&p)
            .run(&mut k, &ExecOptions::default())
            .unwrap();
        assert_eq!(k.xdm.read(3).unwrap(), 99);
        assert_eq!(k.ydm.read(1).unwrap(), -5);
    }

    #[test]
    fn wrong_agu_side_rejected() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::load_x(Reg(0), 2)); // Y-side pointer on X access
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(8, 8);
        let err = Executor::new(&p).run(&mut k, &ExecOptions::default());
        assert!(matches!(err, Err(ExecError::WrongAguSide { .. })));
    }

    #[test]
    fn calls_pass_registers_without_windows() {
        let mut callee = Function::new("inc");
        let cb = callee.add_block();
        callee.push_mop(cb, Mop::alu(AluOp::Add, Reg(0), Reg(0), 1));
        callee.push_mop(cb, Mop::ret());
        let mut main = Function::new("main");
        let b = main.add_block();
        main.push_mop(b, Mop::load_imm(Reg(0), 0));
        main.push_mop(b, Mop::call(FuncId(1)));
        main.push_mop(b, Mop::call(FuncId(1)));
        main.push_mop(b, Mop::halt());
        main.compute_edges();
        let p = program_of(vec![main, callee]);
        let mut k = Kernel::new(4, 4);
        let opts = ExecOptions {
            register_windows: false,
            ..ExecOptions::default()
        };
        let r = Executor::new(&p).run(&mut k, &opts).unwrap();
        assert_eq!(k.reg(Reg(0)), 2);
        assert_eq!(r.block_count(FuncId(1), BlockId(0)), 2);
    }

    #[test]
    fn register_windows_protect_the_caller() {
        // The callee trashes r0..r3 and an AGU pointer; with windows (the
        // default) the caller's state survives.
        let mut callee = Function::new("clobber");
        let cb = callee.add_block();
        for i in 0..4u8 {
            callee.push_mop(cb, Mop::load_imm(Reg(i), 999));
        }
        callee.push_mop(cb, Mop::agu_set(0, 77));
        callee.push_mop(cb, Mop::ret());
        let mut main = Function::new("main");
        let b = main.add_block();
        main.push_mop(b, Mop::load_imm(Reg(0), 5));
        main.push_mop(b, Mop::agu_set(0, 3));
        main.push_mop(b, Mop::call(FuncId(1)));
        main.push_mop(b, Mop::halt());
        main.compute_edges();
        let p = program_of(vec![main, callee]);
        let mut k = Kernel::new(8, 8);
        Executor::new(&p)
            .run(&mut k, &ExecOptions::default())
            .unwrap();
        assert_eq!(k.reg(Reg(0)), 5);
        assert_eq!(k.agu.ptr(0).unwrap(), 3);
    }

    #[test]
    fn step_limit_stops_infinite_loop() {
        let mut f = Function::new("main");
        let b0 = f.add_block();
        f.push_mop(b0, Mop::jump(b0));
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        let opts = ExecOptions {
            max_steps: 100,
            ..ExecOptions::default()
        };
        assert!(matches!(
            Executor::new(&p).run(&mut k, &opts),
            Err(ExecError::StepLimitExceeded { limit: 100 })
        ));
    }

    #[test]
    fn recursion_depth_guard() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::call(FuncId(0)));
        f.push_mop(b, Mop::ret());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        assert!(matches!(
            Executor::new(&p).run(&mut k, &ExecOptions::default()),
            Err(ExecError::CallDepthExceeded { .. })
        ));
    }

    #[test]
    fn per_word_model_is_cheaper_than_per_mop() {
        // Three independent ops pack into one word.
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::agu_set(0, 0));
        f.push_mop(b, Mop::agu_set(2, 0));
        f.push_mop(b, Mop::load_imm(Reg(2), 1));
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k1 = Kernel::new(4, 4);
        let per_word = Executor::new(&p)
            .run(
                &mut k1,
                &ExecOptions {
                    cycle_model: CycleModel::PerWord,
                    branch_penalty: 0,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        let mut k2 = Kernel::new(4, 4);
        let per_mop = Executor::new(&p)
            .run(
                &mut k2,
                &ExecOptions {
                    cycle_model: CycleModel::PerMop,
                    branch_penalty: 0,
                    ..ExecOptions::default()
                },
            )
            .unwrap();
        assert!(per_word.cycles < per_mop.cycles);
        assert_eq!(per_mop.cycles, Cycles(4));
        // All four ops occupy distinct fields (AguX, AguY, Move, Seq) and
        // pack into a single word.
        assert_eq!(per_word.cycles, Cycles(1));
    }

    #[test]
    fn device_interaction_and_ticks() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::load_imm(Reg(0), 11));
        f.push_mop(b, Mop::ip_write(0, Reg(0)));
        f.push_mop(b, Mop::ip_start());
        f.push_mop(b, Mop::ip_read(Reg(1), 0));
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        let mut dev = RecordingDevice::new(0);
        Executor::new(&p)
            .run_with_device(&mut k, &mut dev, &ExecOptions::default())
            .unwrap();
        assert_eq!(k.reg(Reg(1)), 11);
        assert_eq!(dev.starts, 1);
    }

    #[test]
    fn missing_device_is_an_error() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::ip_start());
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        assert_eq!(
            Executor::new(&p).run(&mut k, &ExecOptions::default()),
            Err(ExecError::NoDeviceAttached)
        );
    }

    #[test]
    fn fallthrough_and_implicit_return() {
        let mut f = Function::new("main");
        let b0 = f.add_block();
        let _b1 = f.add_block();
        f.push_mop(b0, Mop::load_imm(Reg(0), 1));
        // b1 is empty; falls off the end -> implicit halt (main).
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        let r = Executor::new(&p)
            .run(&mut k, &ExecOptions::default())
            .unwrap();
        assert!(r.halted);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(alu_eval(AluOp::Add, i32::MAX, 1), i32::MIN); // wraps
        assert_eq!(alu_eval(AluOp::Sub, 3, 5), -2);
        assert_eq!(alu_eval(AluOp::Div, 7, 2), 3);
        assert_eq!(alu_eval(AluOp::Div, -7, 2), -3);
        assert_eq!(alu_eval(AluOp::Div, 7, 0), 0); // defined, not a trap
        assert_eq!(alu_eval(AluOp::Rem, 7, 2), 1);
        assert_eq!(alu_eval(AluOp::Rem, 7, 0), 0);
        assert_eq!(alu_eval(AluOp::Div, i32::MIN, -1), i32::MIN); // wraps
        assert_eq!(alu_eval(AluOp::And, 0b1100, 0b1010), 0b1000);
        assert_eq!(alu_eval(AluOp::Or, 0b1100, 0b1010), 0b1110);
        assert_eq!(alu_eval(AluOp::Xor, 0b1100, 0b1010), 0b0110);
        assert_eq!(alu_eval(AluOp::Shl, 1, 4), 16);
        assert_eq!(alu_eval(AluOp::Shr, -16, 2), -4); // arithmetic
        assert_eq!(alu_eval(AluOp::Min, -3, 2), -3);
        assert_eq!(alu_eval(AluOp::Max, -3, 2), 2);
        assert_eq!(alu_eval(AluOp::CmpEq, 5, 5), 1);
        assert_eq!(alu_eval(AluOp::CmpLt, 5, 5), 0);
        assert_eq!(alu_eval(AluOp::CmpLt, -1, 0), 1);
    }

    #[test]
    fn mac_accumulates() {
        let mut f = Function::new("main");
        let b = f.add_block();
        f.push_mop(b, Mop::load_imm(Reg(0), 10)); // acc
        f.push_mop(b, Mop::load_imm(Reg(1), 3));
        f.push_mop(b, Mop::load_imm(Reg(2), 4));
        f.push_mop(b, Mop::mac(MacOp::Mac, Reg(0), Reg(1), Reg(2)));
        f.push_mop(b, Mop::mac(MacOp::Msu, Reg(0), Reg(1), Reg(1)));
        f.push_mop(b, Mop::halt());
        f.compute_edges();
        let p = program_of(vec![f]);
        let mut k = Kernel::new(4, 4);
        Executor::new(&p)
            .run(&mut k, &ExecOptions::default())
            .unwrap();
        assert_eq!(k.reg(Reg(0)), 10 + 12 - 9);
    }
}
