//! Cycle-accurate simulator of the paper's target ASIP core ("kernel").
//!
//! The kernel (paper §2) is a pipelined DSP processor controlled by
//! µ-programming: a separate address-generation unit ([`Agu`]), two data
//! memories (XDM and YDM, simultaneously accessible), and µ-code words of
//! eight fields. This crate executes [`partita_mop::MopProgram`]s:
//!
//! * [`Kernel`] — architectural state (registers, memories, AGU);
//! * [`Executor`] — runs a program, counts cycles (per-MOP or per-packed-
//!   µ-word), applies branch penalties, and collects the block-level
//!   execution profile the paper obtains by "sample-execution with typical
//!   input data";
//! * [`IpDevice`] — the hook through which interface templates talk to an
//!   attached IP (implemented by the `partita-interface` co-simulator);
//! * [`MicroRom`] — µ-ROM size accounting with word deduplication;
//! * [`InstructionSet`] — the P/C/S instruction classes and their encoding
//!   into the opcode space.
//!
//! # Example
//!
//! ```
//! use partita_asip::{Executor, ExecOptions, Kernel};
//! use partita_mop::{Function, Mop, MopProgram, AluOp, Reg};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut main = Function::new("main");
//! let b = main.add_block();
//! main.push_mop(b, Mop::load_imm(Reg(0), 21));
//! main.push_mop(b, Mop::alu(AluOp::Add, Reg(0), Reg(0), Reg(0)));
//! main.push_mop(b, Mop::halt());
//! main.compute_edges();
//! let mut p = MopProgram::new();
//! let id = p.add_function(main)?;
//! p.set_main(id)?;
//!
//! let mut kernel = Kernel::new(1024, 1024);
//! let report = Executor::new(&p).run(&mut kernel, &ExecOptions::default())?;
//! assert_eq!(kernel.reg(Reg(0)), 42);
//! assert!(report.cycles.get() >= 2); // hazard splits the two ALU words
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod device;
mod error;
mod exec;
mod isa;
mod kernel;
mod urom;

pub use device::{IpDevice, NullDevice, RecordingDevice};
pub use error::ExecError;
pub use exec::{CycleModel, ExecOptions, ExecReport, Executor};
pub use isa::{Encoding, InstrClass, Instruction, InstructionSet, BASELINE_P_CLASS};
pub use kernel::{Agu, DataMemory, Kernel};
pub use urom::{MicroRom, RomStats};
