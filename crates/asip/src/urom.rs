//! µ-ROM size accounting.
//!
//! After instruction generation the paper "optimises the µ-ROM with
//! including the µ-codes for the C-instructions and S-instructions" (§2).
//! We model the dominant optimisation — sharing identical µ-code words —
//! and report the code-memory footprint that the type-0/1 interface area
//! model charges (`A_CNT` is "the code-memory area needed for storing
//! interface codes").

use std::collections::HashMap;

use partita_mop::{pack_words, Function, MicroWord};

/// Size statistics of a [`MicroRom`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RomStats {
    /// Total µ-code words before sharing.
    pub total_words: usize,
    /// Distinct words after sharing identical entries.
    pub unique_words: usize,
}

impl RomStats {
    /// Words saved by sharing.
    #[must_use]
    pub fn words_saved(&self) -> usize {
        self.total_words - self.unique_words
    }
}

/// A µ-ROM image: the packed µ-code words of a set of functions.
#[derive(Debug, Clone, Default)]
pub struct MicroRom {
    words: Vec<MicroWord>,
}

impl MicroRom {
    /// Creates an empty ROM.
    #[must_use]
    pub fn new() -> MicroRom {
        MicroRom::default()
    }

    /// Packs `func` into µ-code words and appends them.
    pub fn add_function(&mut self, func: &Function) {
        for block in pack_words(func) {
            self.words.extend(block);
        }
    }

    /// Number of words currently stored.
    #[must_use]
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// `true` if the ROM holds no words.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Computes sharing statistics.
    ///
    /// Two words are shareable when their eight fields hold identical
    /// µ-operations (compared structurally, not by arena id), which is how a
    /// real µ-ROM optimiser folds repeated interface-template lines.
    #[must_use]
    pub fn stats(&self, funcs: &[&Function]) -> RomStats {
        // Render each word structurally using the owning function's mops.
        // Words were appended function by function in `add_function` order,
        // so we re-walk the functions to recover ownership.
        let mut rendered: Vec<String> = Vec::with_capacity(self.words.len());
        let mut cursor = 0usize;
        for f in funcs {
            let packed = pack_words(f);
            for block in packed {
                for word in block {
                    let mut s = String::new();
                    for (slot, mop) in word.entries() {
                        let text = f.mop(mop).map(|m| m.to_string()).unwrap_or_default();
                        s.push_str(&format!("{slot:?}:{text};"));
                    }
                    rendered.push(s);
                    cursor += 1;
                }
            }
        }
        debug_assert_eq!(cursor, self.words.len(), "rom/function mismatch");
        let total_words = rendered.len();
        let mut seen: HashMap<&str, usize> = HashMap::new();
        for s in &rendered {
            *seen.entry(s.as_str()).or_insert(0) += 1;
        }
        RomStats {
            total_words,
            unique_words: seen.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_mop::{Mop, Reg};

    #[test]
    fn identical_lines_are_shared() {
        let mut f = Function::new("f");
        let b = f.add_block();
        // Two identical words and one distinct.
        f.push_mop(b, Mop::load_imm(Reg(0), 1));
        f.push_mop(b, Mop::load_imm(Reg(0), 1));
        f.push_mop(b, Mop::load_imm(Reg(1), 2));
        f.compute_edges();
        let mut rom = MicroRom::new();
        rom.add_function(&f);
        // Output-dependency on r0 prevents packing, so 3 words.
        assert_eq!(rom.len(), 3);
        let stats = rom.stats(&[&f]);
        assert_eq!(stats.total_words, 3);
        assert_eq!(stats.unique_words, 2);
        assert_eq!(stats.words_saved(), 1);
    }

    #[test]
    fn empty_rom() {
        let rom = MicroRom::new();
        assert!(rom.is_empty());
        assert_eq!(rom.stats(&[]).total_words, 0);
    }

    #[test]
    fn multiple_functions_accumulate() {
        let mut f1 = Function::new("a");
        let b1 = f1.add_block();
        f1.push_mop(b1, Mop::nop());
        f1.compute_edges();
        let mut f2 = Function::new("b");
        let b2 = f2.add_block();
        f2.push_mop(b2, Mop::nop());
        f2.compute_edges();
        let mut rom = MicroRom::new();
        rom.add_function(&f1);
        rom.add_function(&f2);
        assert_eq!(rom.len(), 2);
        let stats = rom.stats(&[&f1, &f2]);
        assert_eq!(stats.unique_words, 1); // the two nop words fold
    }
}
