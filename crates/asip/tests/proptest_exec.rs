//! Property tests: the executor against a straight-line reference
//! interpreter, plus cycle-model laws.

use proptest::prelude::*;

use partita_asip::{CycleModel, ExecOptions, Executor, Kernel};
use partita_mop::{AluOp, Function, MacOp, Mop, MopKind, MopProgram, Operand, Reg, SeqOp};

#[derive(Debug, Clone)]
enum Op {
    Imm(u8, i32),
    Alu(AluOp, u8, u8, u8),
    Mac(MacOp, u8, u8, u8),
    Mov(u8, u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    let alu = prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Mul),
        Just(AluOp::Div),
        Just(AluOp::Rem),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Min),
        Just(AluOp::Max),
        Just(AluOp::CmpEq),
        Just(AluOp::CmpLt),
    ];
    prop_oneof![
        (0u8..8, -1000i32..1000).prop_map(|(d, v)| Op::Imm(d, v)),
        (alu, 0u8..8, 0u8..8, 0u8..8).prop_map(|(o, d, a, b)| Op::Alu(o, d, a, b)),
        (
            prop_oneof![Just(MacOp::Mac), Just(MacOp::Msu)],
            0u8..8,
            0u8..8,
            0u8..8
        )
            .prop_map(|(o, d, a, b)| Op::Mac(o, d, a, b)),
        (0u8..8, 0u8..8).prop_map(|(d, s)| Op::Mov(d, s)),
    ]
}

/// Straight-line reference semantics over an 8-register file.
fn reference(ops: &[Op]) -> [i32; 8] {
    let mut r = [0i32; 8];
    for op in ops {
        match *op {
            Op::Imm(d, v) => r[d as usize] = v,
            Op::Alu(o, d, a, b) => {
                let (x, y) = (r[a as usize], r[b as usize]);
                r[d as usize] = match o {
                    AluOp::Add => x.wrapping_add(y),
                    AluOp::Sub => x.wrapping_sub(y),
                    AluOp::Mul => x.wrapping_mul(y),
                    AluOp::Div => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_div(y)
                        }
                    }
                    AluOp::Rem => {
                        if y == 0 {
                            0
                        } else {
                            x.wrapping_rem(y)
                        }
                    }
                    AluOp::And => x & y,
                    AluOp::Or => x | y,
                    AluOp::Xor => x ^ y,
                    AluOp::Min => x.min(y),
                    AluOp::Max => x.max(y),
                    AluOp::CmpEq => i32::from(x == y),
                    AluOp::CmpLt => i32::from(x < y),
                    AluOp::Shl => x.wrapping_shl(y as u32 & 31),
                    AluOp::Shr => x.wrapping_shr(y as u32 & 31),
                };
            }
            Op::Mac(o, d, a, b) => {
                let prod = i64::from(r[a as usize]) * i64::from(r[b as usize]);
                let base = i64::from(r[d as usize]);
                r[d as usize] = match o {
                    MacOp::Mac => base + prod,
                    MacOp::Msu => base - prod,
                } as i32;
            }
            Op::Mov(d, s) => r[d as usize] = r[s as usize],
        }
    }
    r
}

fn lower(ops: &[Op]) -> MopProgram {
    let mut f = Function::new("main");
    let b = f.add_block();
    for op in ops {
        let m = match *op {
            Op::Imm(d, v) => Mop::load_imm(Reg(d), v),
            Op::Alu(o, d, a, b2) => Mop::alu(o, Reg(d), Reg(a), Reg(b2)),
            Op::Mac(o, d, a, b2) => Mop::mac(o, Reg(d), Reg(a), Reg(b2)),
            Op::Mov(d, s) => Mop::mov(Reg(d), Reg(s)),
        };
        f.push_mop(b, m);
    }
    f.push_mop(b, Mop::halt());
    f.compute_edges();
    let mut p = MopProgram::new();
    let id = p.add_function(f).unwrap();
    p.set_main(id).unwrap();
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The executor computes the same register file as the reference
    /// interpreter, under both cycle models.
    #[test]
    fn executor_matches_reference(ops in proptest::collection::vec(op_strategy(), 0..48)) {
        let p = lower(&ops);
        let expected = reference(&ops);
        for model in [CycleModel::PerMop, CycleModel::PerWord] {
            let mut k = Kernel::new(16, 16);
            let report = Executor::new(&p)
                .run(&mut k, &ExecOptions { cycle_model: model, ..ExecOptions::default() })
                .expect("straight-line programs execute");
            prop_assert!(report.halted);
            for i in 0..8u8 {
                prop_assert_eq!(k.reg(Reg(i)), expected[i as usize], "r{} under {:?}", i, model);
            }
        }
    }

    /// Word packing never slows a program down, and never reorders effects:
    /// per-word cycles ≤ per-µ-op cycles with identical architectural state.
    #[test]
    fn per_word_is_never_slower(ops in proptest::collection::vec(op_strategy(), 1..48)) {
        let p = lower(&ops);
        let mut k1 = Kernel::new(16, 16);
        let per_mop = Executor::new(&p)
            .run(&mut k1, &ExecOptions { cycle_model: CycleModel::PerMop, ..ExecOptions::default() })
            .unwrap();
        let mut k2 = Kernel::new(16, 16);
        let per_word = Executor::new(&p)
            .run(&mut k2, &ExecOptions { cycle_model: CycleModel::PerWord, ..ExecOptions::default() })
            .unwrap();
        prop_assert!(per_word.cycles <= per_mop.cycles);
        prop_assert_eq!(k1, k2);
    }

    /// Execution is deterministic.
    #[test]
    fn execution_is_deterministic(ops in proptest::collection::vec(op_strategy(), 0..32)) {
        let p = lower(&ops);
        let mut k1 = Kernel::new(8, 8);
        let r1 = Executor::new(&p).run(&mut k1, &ExecOptions::default()).unwrap();
        let mut k2 = Kernel::new(8, 8);
        let r2 = Executor::new(&p).run(&mut k2, &ExecOptions::default()).unwrap();
        prop_assert_eq!(r1, r2);
        prop_assert_eq!(k1, k2);
    }

    /// The MOP kind classification is total: every generated op lands in a
    /// word slot and reports consistent defs/uses.
    #[test]
    fn defs_uses_are_consistent(ops in proptest::collection::vec(op_strategy(), 1..24)) {
        let p = lower(&ops);
        let f = p.function(partita_mop::FuncId(0)).unwrap();
        for m in f.mops() {
            for d in m.defs() {
                prop_assert!(d.0 < 16);
            }
            for u in m.uses() {
                prop_assert!(u.0 < 16);
            }
            if let MopKind::Seq(SeqOp::Halt) = m.kind() {
                prop_assert!(m.is_control());
            }
            // Operand display never panics.
            let _ = format!("{m}");
            let _ = Operand::from(Reg(0)).to_string();
        }
    }
}
