//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every table and figure of the paper's evaluation (§5) has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — GSM encoder RG sweep |
//! | `table2` | Table 2 — GSM decoder RG sweep |
//! | `table3` | Table 3 — JPEG encoder RG sweep |
//! | `fig2_parallel` | Fig. 2 — parallel-execution overlap |
//! | `fig4to7_templates` | Figs 4–7 — the four interface templates |
//! | `fig8_paths` | Fig. 8 — multi-path parallel-code minimum |
//! | `fig9_problem2` | Fig. 9 — Problem 2 beats Problem 1 |
//! | `fig10_common` | Fig. 10 — common s-call across paths |
//! | `fig11_hierarchy` | Fig. 11 — IMP flatten on the JPEG call tree |
//! | `ablation` | extra — ILP vs greedy vs no-interface baselines |
//! | `benchsuite` | the perf trajectory: every workload cold and chained per thread count, written to `BENCH_partita.json` (see [`suite`]) |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod suite;

use partita_core::{
    report::TableRow, Selection, SolveBudget, SolveOptions, SolveTrace, SweepSession, SweepTrace,
};
use partita_mop::Cycles;
use partita_workloads::Workload;

/// Runs a workload's full RG sweep and returns one table row per RG value.
///
/// # Panics
///
/// Panics if any sweep point is infeasible — the calibrated workloads are
/// feasible across their published sweeps by construction.
#[must_use]
pub fn sweep_rows(workload: &Workload) -> Vec<TableRow> {
    sweep_rows_traced(workload)
        .into_iter()
        .map(|(row, _)| row)
        .collect()
}

/// Like [`sweep_rows`], additionally returning each sweep point's
/// [`SolveTrace`]. The sweep runs through a fresh chained [`SweepSession`]
/// (descending-RG warm-start chaining), which never changes any selection —
/// only the branch-and-bound effort recorded in the traces.
///
/// # Panics
///
/// Panics if any sweep point is infeasible (see [`sweep_rows`]).
#[must_use]
pub fn sweep_rows_traced(workload: &Workload) -> Vec<(TableRow, SolveTrace)> {
    let mut session = SweepSession::new();
    sweep_rows_traced_in(workload, &mut session, &SolveOptions::default())
}

/// Runs the workload's published RG sweep through `session` with
/// [`SweepSession::sweep`] chaining, under `base` options (gains are
/// overridden per sweep point).
///
/// # Panics
///
/// Panics if any sweep point is infeasible (see [`sweep_rows`]).
#[must_use]
pub fn sweep_rows_traced_in(
    workload: &Workload,
    session: &mut SweepSession,
    base: &SolveOptions,
) -> Vec<(TableRow, SolveTrace)> {
    session
        .sweep(&workload.instance, &workload.imps, base, &workload.rg_sweep)
        .unwrap_or_else(|e| panic!("{} sweep infeasible: {e}", workload.instance.name))
        .into_iter()
        .zip(&workload.rg_sweep)
        .map(|(sel, &rg)| {
            let trace = sel.trace.clone();
            (
                TableRow::from_selection_with_library(rg, &sel, &workload.instance.library),
                trace,
            )
        })
        .collect()
}

/// Like [`sweep_rows_traced`], forcing the branch-and-bound worker-thread
/// count instead of inheriting the `PARTITA_THREADS` default.
///
/// # Panics
///
/// Panics if any sweep point is infeasible (see [`sweep_rows`]).
#[must_use]
pub fn sweep_rows_traced_threads(
    workload: &Workload,
    threads: usize,
) -> Vec<(TableRow, SolveTrace)> {
    let mut session = SweepSession::new();
    let base = SolveOptions::default().budget(SolveBudget::default().with_threads(threads));
    sweep_rows_traced_in(workload, &mut session, &base)
}

/// Runs the workload's published RG sweep twice — independent cold solves,
/// then descending-RG chained solves — through two fresh sessions, checks
/// that every per-point [`Selection`] is identical, and returns the two
/// [`SweepTrace`]s `(cold, chained)` for reporting.
///
/// # Panics
///
/// Panics if any sweep point is infeasible, or if chaining changes any
/// point's selection (it must not: completed solves are covered by the
/// solver's determinism contract).
#[must_use]
pub fn cold_vs_chained_sweep(workload: &Workload, base: &SolveOptions) -> (SweepTrace, SweepTrace) {
    let mut cold_session = SweepSession::new();
    let cold: Vec<Selection> = cold_session
        .sweep_cold(&workload.instance, &workload.imps, base, &workload.rg_sweep)
        .unwrap_or_else(|e| panic!("{} sweep infeasible: {e}", workload.instance.name));
    let mut chained_session = SweepSession::new();
    let chained: Vec<Selection> = chained_session
        .sweep(&workload.instance, &workload.imps, base, &workload.rg_sweep)
        .unwrap_or_else(|e| panic!("{} sweep infeasible: {e}", workload.instance.name));
    for ((c, f), &rg) in cold.iter().zip(&chained).zip(&workload.rg_sweep) {
        assert!(
            c.chosen() == f.chosen() && c.total_area() == f.total_area() && c.status == f.status,
            "{}: chaining changed the selection at RG {}",
            workload.instance.name,
            rg.get()
        );
    }
    (cold_session.take_trace(), chained_session.take_trace())
}

/// Renders the cold-vs-chained sweep comparison of a workload as JSON lines:
/// one line per chained sweep point, the chained summary, and a final
/// `nodes_saved` comparison line (see [`SweepTrace::compare_json`]).
///
/// # Panics
///
/// Panics as [`cold_vs_chained_sweep`] does.
#[must_use]
pub fn sweep_comparison_lines(label: &str, workload: &Workload) -> Vec<String> {
    let (cold, chained) = cold_vs_chained_sweep(workload, &SolveOptions::default());
    let mut lines = chained.json_lines(label);
    lines.push(SweepTrace::compare_json(label, &cold, &chained));
    lines
}

/// Runs the workload's RG sweep once per thread count and renders one JSON
/// line per (threads, sweep point) — each line's trace carries its
/// `"threads"` and `"solve_us"` fields, so scraping the output yields the
/// parallel-speedup table directly. The final element is a human-readable
/// summary comparing total solve time per thread count.
///
/// # Panics
///
/// Panics if any sweep point is infeasible, or if two thread counts disagree
/// on any sweep point's selection (area or gain): completed solves are
/// covered by the solver's determinism contract, so a mismatch is a bug.
#[must_use]
pub fn thread_scaling_lines(workload: &Workload, thread_counts: &[usize]) -> Vec<String> {
    let mut lines = Vec::new();
    let mut reference: Option<Vec<(Cycles, TableRow)>> = None;
    let mut summary = String::from("thread-scaling total solve time:");
    for &threads in thread_counts {
        let traced = sweep_rows_traced_threads(workload, threads);
        let mut total_us: u128 = 0;
        for (row, trace) in &traced {
            total_us += trace.solve.as_micros();
            lines.push(trace_json_line(row.required_gain, trace));
        }
        summary.push_str(&format!("  {threads} thr {total_us} us;"));
        let rows: Vec<(Cycles, TableRow)> = traced
            .into_iter()
            .map(|(row, _)| (row.required_gain, row))
            .collect();
        match &reference {
            None => reference = Some(rows),
            Some(reference) => {
                for ((rg, base), (_, got)) in reference.iter().zip(&rows) {
                    assert!(
                        base.area == got.area && base.gain == got.gain,
                        "thread count {} diverged from {} at RG {}",
                        threads,
                        thread_counts[0],
                        rg.get()
                    );
                }
            }
        }
    }
    lines.push(summary);
    lines
}

/// Audits every point of a workload's published RG sweep with the
/// independent [`partita_core::SelectionAuditor`] and returns the total
/// violation count (zero for a healthy solver). Each point is solved
/// fresh — no session cache — so the audit covers exactly what
/// [`sweep_rows`] reports.
///
/// # Panics
///
/// Panics if any sweep point is infeasible (see [`sweep_rows`]).
#[must_use]
pub fn audit_sweep(workload: &Workload) -> usize {
    use partita_core::{RequiredGains, SelectionAuditor, Solver};
    let mut violations = 0;
    for &rg in &workload.rg_sweep {
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg));
        let sel = Solver::new(&workload.instance)
            .with_imps(workload.imps.clone())
            .solve(&opts)
            .unwrap_or_else(|e| {
                panic!(
                    "{} sweep point RG {} infeasible: {e}",
                    workload.instance.name,
                    rg.get()
                )
            });
        let report = SelectionAuditor::new(&workload.instance, &workload.imps).audit(&sel, &opts);
        violations += report.violations.len();
    }
    violations
}

/// Renders one sweep point's trace as a JSON line tagged with its RG value:
/// `{"rg":47740,"trace":{...}}`. The table binaries emit one such line per
/// sweep point so runs can be scraped by tooling.
#[must_use]
pub fn trace_json_line(rg: Cycles, trace: &SolveTrace) -> String {
    let event = partita_core::telemetry::Event::SolveFinished {
        trace: trace.clone(),
    };
    format!("{{\"rg\":{},\"trace\":{}}}", rg.get(), event.to_json())
}

/// Formats a paper-vs-measured comparison line.
#[must_use]
pub fn compare_line(label: &str, paper: u64, measured: Cycles) -> String {
    let m = measured.get();
    let delta = if paper == 0 {
        0.0
    } else {
        (m as f64 - paper as f64) / paper as f64 * 100.0
    };
    format!("{label:<28} paper {paper:>12}  measured {m:>12}  ({delta:+.2}%)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_core::{RequiredGains, Solver};
    use partita_workloads::jpeg;

    #[test]
    fn jpeg_sweep_produces_all_rows() {
        let rows = sweep_rows(&jpeg::encoder());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].gain, Cycles(15_040_512));
        assert_eq!(rows[4].gain, Cycles(37_843_712));
    }

    #[test]
    fn traced_sweep_carries_solver_telemetry() {
        let traced = sweep_rows_traced(&jpeg::encoder());
        assert_eq!(traced.len(), 5);
        for (row, trace) in &traced {
            assert!(trace.num_vars > 0, "RG {}", row.required_gain.get());
            assert!(trace.nodes_explored >= 1);
            let line = trace_json_line(row.required_gain, trace);
            assert!(line.starts_with(&format!("{{\"rg\":{}", row.required_gain.get())));
            assert!(line.contains("\"status\":\"optimal\""));
        }
    }

    #[test]
    fn warm_start_reduces_nodes_on_rg_sweep_instance() {
        // Root probing against the greedy incumbent narrows the tree on this
        // seeded synthetic workload's sweep point; the reduction must be
        // strict, and both runs must agree on the optimum.
        let w = partita_workloads::synth::generate(partita_workloads::synth::SynthParams::sized(
            12, 8, 2, 99,
        ));
        let rg = w.rg_sweep[2];
        let solve = |warm: bool| {
            Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)).warm_start(warm))
                .expect("sweep point feasible")
        };
        let cold = solve(false);
        let warm = solve(true);
        assert!(warm.trace.warm_start_accepted);
        assert!(warm.trace.vars_fixed > 0);
        assert_eq!(cold.total_area(), warm.total_area());
        assert!(
            warm.trace.nodes_explored < cold.trace.nodes_explored,
            "warm {} !< cold {}",
            warm.trace.nodes_explored,
            cold.trace.nodes_explored
        );
    }

    #[test]
    fn thread_scaling_lines_tag_thread_count() {
        let lines = thread_scaling_lines(&jpeg::encoder(), &[1, 2]);
        // 5 sweep points x 2 thread counts + 1 summary line.
        assert_eq!(lines.len(), 11);
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"threads\":1")).count(),
            5
        );
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"threads\":2")).count(),
            5
        );
        assert!(lines.last().unwrap().starts_with("thread-scaling"));
    }

    #[test]
    fn compare_line_formats_delta() {
        let line = compare_line("t", 100, Cycles(110));
        assert!(line.contains("+10.00%"));
        assert!(compare_line("z", 0, Cycles(5)).contains("+0.00%"));
    }
}
