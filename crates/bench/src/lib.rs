//! Shared harness code for the table/figure reproduction binaries.
//!
//! Every table and figure of the paper's evaluation (§5) has a binary in
//! `src/bin/` that regenerates it:
//!
//! | binary | reproduces |
//! |--------|------------|
//! | `table1` | Table 1 — GSM encoder RG sweep |
//! | `table2` | Table 2 — GSM decoder RG sweep |
//! | `table3` | Table 3 — JPEG encoder RG sweep |
//! | `fig2_parallel` | Fig. 2 — parallel-execution overlap |
//! | `fig4to7_templates` | Figs 4–7 — the four interface templates |
//! | `fig8_paths` | Fig. 8 — multi-path parallel-code minimum |
//! | `fig9_problem2` | Fig. 9 — Problem 2 beats Problem 1 |
//! | `fig10_common` | Fig. 10 — common s-call across paths |
//! | `fig11_hierarchy` | Fig. 11 — IMP flatten on the JPEG call tree |
//! | `ablation` | extra — ILP vs greedy vs no-interface baselines |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use partita_core::{report::TableRow, RequiredGains, SolveOptions, Solver};
use partita_mop::Cycles;
use partita_workloads::Workload;

/// Runs a workload's full RG sweep and returns one table row per RG value.
///
/// # Panics
///
/// Panics if any sweep point is infeasible — the calibrated workloads are
/// feasible across their published sweeps by construction.
#[must_use]
pub fn sweep_rows(workload: &Workload) -> Vec<TableRow> {
    workload
        .rg_sweep
        .iter()
        .map(|&rg| {
            let sel = Solver::new(&workload.instance)
                .with_imps(workload.imps.clone())
                .solve(&SolveOptions::new(RequiredGains::Uniform(rg)))
                .unwrap_or_else(|e| panic!("RG {} infeasible: {e}", rg.get()));
            TableRow::from_selection_with_library(rg, &sel, &workload.instance.library)
        })
        .collect()
}

/// Formats a paper-vs-measured comparison line.
#[must_use]
pub fn compare_line(label: &str, paper: u64, measured: Cycles) -> String {
    let m = measured.get();
    let delta = if paper == 0 {
        0.0
    } else {
        (m as f64 - paper as f64) / paper as f64 * 100.0
    };
    format!("{label:<28} paper {paper:>12}  measured {m:>12}  ({delta:+.2}%)")
}

#[cfg(test)]
mod tests {
    use super::*;
    use partita_workloads::jpeg;

    #[test]
    fn jpeg_sweep_produces_all_rows() {
        let rows = sweep_rows(&jpeg::encoder());
        assert_eq!(rows.len(), 5);
        assert_eq!(rows[0].gain, Cycles(15_040_512));
        assert_eq!(rows[4].gain, Cycles(37_843_712));
    }

    #[test]
    fn compare_line_formats_delta() {
        let line = compare_line("t", 100, Cycles(110));
        assert!(line.contains("+10.00%"));
        assert!(compare_line("z", 0, Cycles(5)).contains("+0.00%"));
    }
}
