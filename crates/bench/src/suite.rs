//! The benchsuite: one runner that drives every headline workload of the
//! paper's evaluation (Tables 1–3, Fig. 9, Fig. 11) cold and chained at a
//! set of thread counts, and folds the results into a single
//! `BENCH_partita.json` perf-trajectory report.
//!
//! The report separates **portable** results (selection quality, cache
//! behaviour, and — single-threaded — branch-and-bound node counts, all of
//! which must be identical on any machine) from **machine** results (wall
//! times, peak RSS, multi-threaded node counts, which vary with hardware
//! and scheduling). [`compare_reports`] gates on both: any portable drift
//! or single-threaded node-count growth is a regression outright, while
//! wall time gets a relative threshold plus an absolute noise floor.

use std::time::Instant;

use partita_core::delta::{DeltaSession, InstanceDelta};
use partita_core::telemetry::json::JsonValue;
use partita_core::{
    Imp, ImpDb, Instance, ParallelChoice, RequiredGains, SCall, Selection, SelectionAuditor,
    SolveBudget, SolveOptions, Solver, SweepSession, SweepTrace,
};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles};
use partita_service::{ServiceConfig, ServiceCore};
use partita_workloads::{corpus, gsm, jpeg, Workload};

/// Report schema version (independent of the telemetry event schema).
pub const SUITE_SCHEMA: u32 = 1;

/// Default wall-time regression threshold for [`compare_reports`]: 15%.
pub const DEFAULT_WALL_THRESHOLD: f64 = 0.15;

/// Absolute wall-time noise floor in microseconds: a config must regress by
/// at least this much on top of the relative threshold before it counts.
/// Sub-10ms configs are dominated by scheduler noise.
pub const WALL_NOISE_FLOOR_US: u64 = 10_000;

/// The Fig. 9 instance as a reusable workload: three independent `fir()`
/// calls, one FIR IP, and a Problem-2 IMP that runs one call in the kernel
/// as another's parallel code. The sweep covers the published RG = 1500
/// point plus two easier points.
#[must_use]
pub fn fig9_workload() -> Workload {
    let mut inst = Instance::new("fig9");
    let ip = inst.library.add(
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .area(AreaTenths::from_units(3))
            .build(),
    );
    let t_sw = Cycles(1000);
    let mut scs = Vec::new();
    for _ in 0..3 {
        scs.push(inst.add_scall(SCall::new(
            "fir",
            IpFunction::Fir,
            t_sw,
            TransferJob::new(8, 8),
        )));
    }
    inst.add_path(scs.clone());
    let mk = |sc, gain: u64, par| {
        Imp::new(
            sc,
            vec![ip],
            InterfaceKind::Type1,
            Cycles(gain),
            AreaTenths::from_tenths(2),
            par,
        )
    };
    let imps = ImpDb::from_imps(vec![
        mk(scs[0], 600, ParallelChoice::None),
        mk(scs[1], 600, ParallelChoice::None),
        mk(scs[2], 600, ParallelChoice::None),
        mk(scs[1], 900, ParallelChoice::SwScalls(vec![scs[2]])),
    ]);
    Workload {
        instance: inst.into(),
        imps: imps.into(),
        rg_sweep: vec![Cycles(600), Cycles(1200), Cycles(1500)],
    }
}

/// What the suite should run.
#[derive(Debug, Clone)]
pub struct SuiteConfig {
    /// Branch-and-bound thread counts to run every workload at.
    pub threads: Vec<usize>,
    /// Restrict to the two fastest workloads (CI smoke mode).
    pub quick: bool,
}

impl Default for SuiteConfig {
    fn default() -> Self {
        SuiteConfig {
            threads: vec![1, 4],
            quick: false,
        }
    }
}

/// Whether a sweep runs its points independently or chained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Cold,
    Chained,
}

impl Mode {
    fn name(self) -> &'static str {
        match self {
            Mode::Cold => "cold",
            Mode::Chained => "chained",
        }
    }
}

/// One sweep point's portable outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PointResult {
    /// Uniform required gain of the point.
    pub rg: u64,
    /// Total gain of the returned selection.
    pub gain: u64,
    /// Total area of the returned selection, in area tenths.
    pub area_tenths: i64,
    /// Optimality status string (`optimal`, `feasible`, …).
    pub status: String,
}

/// Session cache counters of one config run (portable: cache behaviour is
/// deterministic for a fixed request sequence).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from the solve cache.
    pub cache_hits: u64,
    /// Requests that ran a solver.
    pub cache_misses: u64,
    /// Solver runs that reused a cached model.
    pub model_hits: u64,
    /// Solver runs that built their model.
    pub model_misses: u64,
    /// Points seeded with the previous point's verified optimum.
    pub chained_accepts: u64,
    /// Points whose carry-over candidate was rejected.
    pub chained_rejects: u64,
}

impl CacheStats {
    fn from_trace(t: &SweepTrace) -> CacheStats {
        CacheStats {
            cache_hits: t.cache_hits,
            cache_misses: t.cache_misses,
            model_hits: t.model_hits,
            model_misses: t.model_misses,
            chained_accepts: t.chained_accepts,
            chained_rejects: t.chained_rejects,
        }
    }
}

/// Deterministic simplex per-op counters summed over a config's sweep,
/// from each selection's [`partita_core::SolveTrace`]. Exact operation
/// tallies, so they are portable at one thread (the parallel frontier
/// explores a schedule-dependent node set, hence a schedule-dependent
/// pivot count).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpsCounters {
    /// Phase-1 (feasibility) simplex pivots.
    pub phase1_pivots: u64,
    /// Phase-2 (optimality) simplex pivots.
    pub phase2_pivots: u64,
    /// Dual-simplex repair pivots (warm-basis installs included).
    pub dual_pivots: u64,
    /// Pivots spent lex-canonicalising optimal root vertices.
    pub lex_pivots: u64,
    /// Simplex tableaus built.
    pub tableau_builds: u64,
    /// Tableau builds that reused an already-large-enough scratch buffer.
    pub scratch_reuses: u64,
    /// Dantzig→Bland entering-rule fallbacks inside degenerate stalls.
    pub bland_activations: u64,
}

impl OpsCounters {
    /// Sum of all pivot counters.
    #[must_use]
    pub fn total_pivots(&self) -> u64 {
        self.phase1_pivots + self.phase2_pivots + self.dual_pivots + self.lex_pivots
    }

    /// Tableau builds that had to heap-allocate (cold buffers).
    #[must_use]
    pub fn allocating_builds(&self) -> u64 {
        self.tableau_builds.saturating_sub(self.scratch_reuses)
    }

    fn absorb_trace(&mut self, t: &partita_core::SolveTrace) {
        self.phase1_pivots += t.phase1_pivots as u64;
        self.phase2_pivots += t.phase2_pivots as u64;
        self.dual_pivots += t.dual_pivots as u64;
        self.lex_pivots += t.lex_pivots as u64;
        self.tableau_builds += t.tableau_builds as u64;
        self.scratch_reuses += t.scratch_reuses as u64;
        self.bland_activations += t.bland_activations as u64;
    }
}

/// The full result of one `{workload}:{mode}:t{threads}` config.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfigResult {
    /// Per-point selection outcomes, in sweep order.
    pub points: Vec<PointResult>,
    /// Session cache counters.
    pub cache: CacheStats,
    /// Total branch-and-bound nodes when the search is single-threaded
    /// (deterministic, hence portable); `None` at higher thread counts.
    pub portable_nodes: Option<u64>,
    /// Simplex per-op counters summed over the sweep when single-threaded
    /// (portable); `None` at higher thread counts and in baselines written
    /// before the section existed.
    pub ops: Option<OpsCounters>,
    /// Total wall time of the config, in microseconds.
    pub wall_us: u64,
    /// Total nodes at multi-threaded counts (machine-dependent: the
    /// parallel frontier explores a schedule-dependent node set).
    pub machine_nodes: Option<u64>,
    /// Peak resident set of the process so far, from `/proc/self/status`
    /// `VmHWM` (`None` where unavailable).
    pub peak_rss_kb: Option<u64>,
}

/// One workload's incremental re-solve benchmark: the full published RG
/// sweep walked **descending** as `SetRg` patches through a
/// [`DeltaSession`] (basis repair + incumbent carry), each point compared
/// inline against a cold `Solver::solve` of the identical patched options.
/// The run itself asserts the selections are identical and audit-clean;
/// the report carries the effort numbers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveResult {
    /// Sweep points walked (delta and cold alike).
    pub points: u64,
    /// Total branch-and-bound nodes of the per-point cold solves
    /// (threads = 1, deterministic, hence portable).
    pub cold_nodes: u64,
    /// Total nodes of the delta re-solves over the same points (portable).
    pub delta_nodes: u64,
    /// Points whose re-solve repaired the retained basis (portable).
    pub basis_reused: u64,
    /// p50 of per-point delta re-solve wall latency, microseconds
    /// (machine-dependent).
    pub p50_us: u64,
    /// p99 (nearest-rank) of per-point delta re-solve latency (machine).
    pub p99_us: u64,
    /// p50 of the matching cold solves, for scale (machine).
    pub cold_p50_us: u64,
}

/// One service-mode run: a scripted two-tenant request sequence driven
/// through an in-process [`ServiceCore`], per-request latency measured at
/// the protocol boundary ([`ServiceCore::handle_request`]). The request
/// sequence is derived from the corpus manifest, so the portable tallies
/// (request/ok counts, cross-tenant cache hits, degradations) are exact on
/// any machine; only the latency percentiles are machine-dependent.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceResult {
    /// Requests in the scripted sequence (portable).
    pub requests: u64,
    /// Requests answered `ok` (portable: the corpus is committed).
    pub ok: u64,
    /// Points answered from the shared canonical cache — every second
    /// tenant's pass, so nonzero by construction (portable).
    pub cache_hits: u64,
    /// Points degraded to the greedy backend by admission control
    /// (portable; 0 for the unconstrained benchmark policy).
    pub degraded: u64,
    /// p50 of per-request service latency, microseconds (machine).
    pub p50_us: u64,
    /// p99 (nearest-rank) of per-request service latency (machine).
    pub p99_us: u64,
}

/// One racer's tallies inside a [`PortfolioResult`]: its portable node
/// count summed over the group and the points it won under argmin-nodes
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RacerTally {
    /// Canonical backend name (`Backend::name`).
    pub backend: String,
    /// Total nodes over the group's points, in the backend's own node
    /// currency, at one thread (portable).
    pub nodes: u64,
    /// Points this backend won — fewest nodes, earlier racer on a tie
    /// (portable).
    pub wins: u64,
}

/// One corpus group's portfolio-race benchmark: every entry of the group
/// solved at mid-sweep by each default racer standalone (single-threaded,
/// run to completion — node counts and win attribution are deterministic,
/// hence portable) and once by the actual racing portfolio (wall time
/// only — which racer wins a live race is timing-dependent, so the race
/// contributes nothing portable beyond what the solo runs already pin).
/// The run asserts byte-identical selections across all racers and the
/// race, so the benchmark doubles as a differential gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioResult {
    /// Feasible mid-sweep points raced.
    pub points: u64,
    /// Per-racer tallies, in racer-lineup order (portable).
    pub racers: Vec<RacerTally>,
    /// Sum over points of the *fewest* nodes any racer needed — the node
    /// cost of a portfolio with a perfect oracle scheduler (portable).
    pub best_nodes: u64,
    /// Sum of branch-and-bound nodes — the single-backend baseline the
    /// portfolio is judged against (portable).
    pub bb_nodes: u64,
    /// Total wall of the live `Backend::Portfolio` races (machine).
    pub race_wall_us: u64,
    /// Total wall of the standalone branch-and-bound solves (machine).
    pub solo_wall_us: u64,
}

/// One corpus group's gate run: every manifest entry of a
/// `family[:preset]` group rebuilt through its pinned digest and solved at
/// its mid-sweep requirement (single-threaded branch-and-bound for the
/// optimally-solvable groups, the deterministic greedy baseline for
/// `table`/`x10` scale). The run itself asserts digests and audits; the
/// report carries the portable tallies.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorpusResult {
    /// Manifest entries in the group.
    pub entries: u64,
    /// Entries whose mid-sweep solve produced a selection.
    pub solved: u64,
    /// Entries that reported a typed infeasibility (portable: the corpus
    /// is committed, so this count is exact).
    pub infeasible: u64,
    /// Total gain across solved entries (portable).
    pub gain: u64,
    /// Total area across solved entries, in tenths (portable).
    pub area_tenths: i64,
    /// Total branch-and-bound nodes at one thread (portable; 0 for the
    /// greedy-backed scale groups).
    pub nodes: u64,
    /// Total simplex pivots at one thread (portable; 0 for the greedy-backed
    /// scale groups, which never touch the simplex).
    pub pivots: u64,
    /// Total wall time of the group, microseconds (machine-dependent).
    pub wall_us: u64,
}

/// A full benchsuite run: config keys (sorted) mapped to results, plus the
/// corpus-gate and incremental re-solve sections (both additive: reports
/// written before a section existed parse to an empty one).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SuiteReport {
    /// `(key, result)` pairs, sorted by key.
    pub configs: Vec<(String, ConfigResult)>,
    /// `(corpus group key, gate tallies)` pairs, sorted by key.
    pub corpus: Vec<(String, CorpusResult)>,
    /// `(workload key, resolve benchmark)` pairs, sorted by key.
    pub resolve: Vec<(String, ResolveResult)>,
    /// `(corpus group key, service-mode benchmark)` pairs, sorted by key.
    pub service: Vec<(String, ServiceResult)>,
    /// `(corpus group key, portfolio-race benchmark)` pairs, sorted by key.
    pub portfolio: Vec<(String, PortfolioResult)>,
}

/// Peak resident set size in kB from `/proc/self/status` (`VmHWM`).
#[must_use]
pub fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    parse_vm_hwm_kb(&status)
}

/// Extracts the `VmHWM` value in kB from a `/proc/self/status` document.
///
/// Tolerant of the unit/whitespace variants seen across kernels and
/// containers (tabs vs spaces, `kB`/`KB`/`mB` casing, missing unit), and
/// returns `None` — never a bogus number — on malformed lines: a bare
/// `VmHWM:` with no value, a non-numeric value, an unknown unit, or
/// trailing junk after the unit.
fn parse_vm_hwm_kb(status: &str) -> Option<u64> {
    let line = status
        .lines()
        .map(str::trim_start)
        .find(|l| l.starts_with("VmHWM"))?;
    let rest = line.strip_prefix("VmHWM")?.trim_start().strip_prefix(':')?;
    let mut tokens = rest.split_whitespace();
    let value: u64 = tokens.next()?.parse().ok()?;
    let scaled = match tokens.next() {
        // The kernel always writes kB today, but be liberal in what we
        // accept as long as the meaning is unambiguous.
        None => value,
        Some(unit) => match unit.to_ascii_lowercase().as_str() {
            "kb" => value,
            "mb" => value.checked_mul(1024)?,
            "gb" => value.checked_mul(1024 * 1024)?,
            _ => return None,
        },
    };
    // Anything after the unit means we misread the line; refuse to guess.
    if tokens.next().is_some() {
        return None;
    }
    Some(scaled)
}

/// The workloads the suite drives, as `(key, workload)` pairs.
#[must_use]
pub fn suite_workloads(quick: bool) -> Vec<(&'static str, Workload)> {
    if quick {
        vec![("fig9", fig9_workload()), ("table3", jpeg::encoder())]
    } else {
        vec![
            ("table1", gsm::encoder()),
            ("table2", gsm::decoder()),
            ("table3", jpeg::encoder()),
            ("fig9", fig9_workload()),
            ("fig11", jpeg::encoder_hierarchical()),
        ]
    }
}

fn run_config(w: &Workload, mode: Mode, threads: usize) -> ConfigResult {
    let base = SolveOptions::default().budget(SolveBudget::default().with_threads(threads));
    let mut session = SweepSession::new();
    let started = Instant::now();
    let sels: Vec<Selection> = match mode {
        Mode::Cold => session.sweep_cold(&w.instance, &w.imps, &base, &w.rg_sweep),
        Mode::Chained => session.sweep(&w.instance, &w.imps, &base, &w.rg_sweep),
    }
    .unwrap_or_else(|e| panic!("{} sweep infeasible: {e}", w.instance.name));
    let wall = started.elapsed();
    let trace = session.take_trace();
    let nodes = trace.total_nodes();
    let points = sels
        .iter()
        .zip(&w.rg_sweep)
        .map(|(sel, &rg)| PointResult {
            rg: rg.get(),
            gain: sel.total_gain().get(),
            area_tenths: sel.total_area().tenths(),
            status: sel.status.to_string(),
        })
        .collect();
    let mut ops = OpsCounters::default();
    for sel in &sels {
        ops.absorb_trace(&sel.trace);
    }
    ConfigResult {
        points,
        cache: CacheStats::from_trace(&trace),
        portable_nodes: (threads <= 1).then_some(nodes),
        ops: (threads <= 1).then_some(ops),
        wall_us: u64::try_from(wall.as_micros()).unwrap_or(u64::MAX),
        machine_nodes: (threads > 1).then_some(nodes),
        peak_rss_kb: peak_rss_kb(),
    }
}

/// Repetitions of the descending resolve walk pooled into the latency
/// percentiles (node counts come from the first walk; at one thread the
/// repeats are deterministic replicas).
const RESOLVE_REPS: usize = 3;

/// Nearest-rank percentile of an unsorted latency sample, `p` in percent.
fn percentile_us(samples: &mut [u64], p: f64) -> u64 {
    if samples.is_empty() {
        return 0;
    }
    samples.sort_unstable();
    let rank = ((p / 100.0) * samples.len() as f64).ceil() as usize;
    samples[rank.clamp(1, samples.len()) - 1]
}

fn elapsed_us(started: Instant) -> u64 {
    u64::try_from(started.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// Walks the workload's published RG sweep descending through a
/// [`DeltaSession`] and, per point, a cold solve of the identical patched
/// options. Panics on any divergence or audit violation — the benchmark
/// doubles as an equivalence check.
fn run_resolve(w: &Workload) -> ResolveResult {
    let budget = SolveBudget::default().with_threads(1);
    let name = &w.instance.name;
    let mut points: Vec<Cycles> = w.rg_sweep.clone();
    points.reverse();
    let mut delta_lat = Vec::new();
    let mut cold_lat = Vec::new();
    let (mut cold_nodes, mut delta_nodes, mut basis_reused) = (0u64, 0u64, 0u64);
    for rep in 0..RESOLVE_REPS {
        let opts = SolveOptions::problem2(RequiredGains::uniform(points[0])).budget(budget);
        let mut session = DeltaSession::new(w.instance.clone(), w.imps.clone(), opts)
            .unwrap_or_else(|e| panic!("{name}: resolve-bench formulation failed: {e}"));
        for (i, &rg) in points.iter().enumerate() {
            if i > 0 {
                session
                    .apply(InstanceDelta::SetRg(RequiredGains::uniform(rg)))
                    .expect("SetRg is a pure RHS patch");
            }
            let started = Instant::now();
            let warm = session.resolve().unwrap_or_else(|e| {
                panic!("{name}: delta re-solve failed at RG {}: {e}", rg.get())
            });
            delta_lat.push(elapsed_us(started));
            let started = Instant::now();
            let cold = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(session.options())
                .unwrap_or_else(|e| panic!("{name}: cold solve failed at RG {}: {e}", rg.get()));
            cold_lat.push(elapsed_us(started));
            assert_eq!(
                warm.chosen(),
                cold.chosen(),
                "{name}: delta selection diverged from cold at RG {}",
                rg.get()
            );
            assert_eq!(
                warm.total_area(),
                cold.total_area(),
                "{name}: area diverged"
            );
            assert_eq!(warm.status, cold.status, "{name}: status diverged");
            if rep == 0 {
                let report =
                    SelectionAuditor::new(&w.instance, &w.imps).audit(&warm, session.options());
                assert!(
                    report.is_clean(),
                    "{name}: delta re-solve failed the audit at RG {}: {}",
                    rg.get(),
                    report.to_json()
                );
                delta_nodes += warm.trace.nodes_explored as u64;
                cold_nodes += cold.trace.nodes_explored as u64;
                basis_reused += u64::from(warm.trace.basis_reused);
            }
        }
    }
    ResolveResult {
        points: points.len() as u64,
        cold_nodes,
        delta_nodes,
        basis_reused,
        p50_us: percentile_us(&mut delta_lat, 50.0),
        p99_us: percentile_us(&mut delta_lat, 99.0),
        cold_p50_us: percentile_us(&mut cold_lat, 50.0),
    }
}

/// Corpus groups whose worst-case optimal solve is minutes, not
/// milliseconds: these run the deterministic greedy baseline instead.
fn corpus_group_is_heuristic(group: &str) -> bool {
    matches!(group, "synth:table" | "synth:x10" | "synth:x100")
}

/// The manifest group key of a corpus entry: `synth:<preset>` or the
/// family name.
fn corpus_group(entry: &corpus::ManifestEntry) -> String {
    if entry.preset.is_empty() {
        entry.family.clone()
    } else {
        format!("{}:{}", entry.family, entry.preset)
    }
}

/// Runs the corpus gate section: every ungated manifest entry of the
/// selected groups rebuilt through its digest, solved at mid-sweep and
/// audited. Quick mode keeps the `synth:small` + `synth:table` groups (one
/// optimal, one heuristic); the full run covers every ungated group.
///
/// Panics on a manifest parse failure, digest mismatch, audit violation or
/// unexpected solver error — the benchmark doubles as the corpus gate.
fn run_corpus(quick: bool) -> Vec<(String, CorpusResult)> {
    let entries = corpus::manifest().expect("tests/corpus/manifest.json parses");
    let mut groups: Vec<(String, Vec<corpus::ManifestEntry>)> = Vec::new();
    for entry in entries.into_iter().filter(|e| !e.gated) {
        let key = corpus_group(&entry);
        if quick && key != "synth:small" && key != "synth:table" {
            continue;
        }
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, list)) => list.push(entry),
            None => groups.push((key, vec![entry])),
        }
    }
    let mut out = Vec::new();
    for (key, list) in groups {
        let heuristic = corpus_group_is_heuristic(&key);
        let mut result = CorpusResult {
            entries: list.len() as u64,
            solved: 0,
            infeasible: 0,
            gain: 0,
            area_tenths: 0,
            nodes: 0,
            pivots: 0,
            wall_us: 0,
        };
        let started = Instant::now();
        for entry in &list {
            let w = entry
                .verify()
                .unwrap_or_else(|e| panic!("corpus gate: {e}"));
            let rg = w.rg_sweep[w.rg_sweep.len() / 2];
            let mut opts = SolveOptions::problem2(RequiredGains::uniform(rg))
                .budget(SolveBudget::default().with_threads(1));
            if heuristic {
                opts = opts.backend(partita_core::Backend::Greedy);
            }
            match Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts)
            {
                Ok(sel) => {
                    let report = SelectionAuditor::new(&w.instance, &w.imps).audit(&sel, &opts);
                    assert!(
                        report.is_clean(),
                        "corpus gate: {} failed the audit: {}",
                        entry.id,
                        report.to_json()
                    );
                    result.solved += 1;
                    result.gain += sel.total_gain().get();
                    result.area_tenths += sel.total_area().tenths();
                    result.nodes += sel.trace.nodes_explored as u64;
                    result.pivots += (sel.trace.phase1_pivots
                        + sel.trace.phase2_pivots
                        + sel.trace.dual_pivots
                        + sel.trace.lex_pivots) as u64;
                }
                Err(
                    partita_core::CoreError::Infeasible { .. } | partita_core::CoreError::NoImps,
                ) => result.infeasible += 1,
                Err(e) => panic!("corpus gate: {} unexpected solver error: {e}", entry.id),
            }
        }
        result.wall_us = elapsed_us(started);
        out.push((key, result));
    }
    out
}

/// Runs the service-mode benchmark: for each selected corpus group, two
/// tenants submit every entry's mid-sweep solve (audited) through an
/// in-process daemon core. The first tenant's pass is cold; the second
/// tenant's must be answered entirely from the shared canonical cache, so
/// the benchmark doubles as a cross-tenant sharing gate. Latency is
/// measured per request around [`ServiceCore::handle_request`] — the same
/// boundary every transport (stdio, sockets, replay) crosses.
fn run_service(quick: bool) -> Vec<(String, ServiceResult)> {
    use partita_core::api::{Request, RequestBody, SolveSpec, API_VERSION};
    let presets: &[&str] = if quick {
        &["micro"]
    } else {
        &["micro", "small"]
    };
    let entries = corpus::manifest().expect("tests/corpus/manifest.json parses");
    let mut out = Vec::new();
    for preset in presets {
        let group: Vec<&corpus::ManifestEntry> = entries
            .iter()
            .filter(|e| !e.gated && e.family == "synth" && e.preset == *preset)
            .collect();
        let core = ServiceCore::new(ServiceConfig::default());
        let mut requests = Vec::new();
        for tenant in ["alice", "bob"] {
            for entry in &group {
                let w = entry
                    .verify()
                    .unwrap_or_else(|e| panic!("service bench: {e}"));
                let rg = w.rg_sweep[w.rg_sweep.len() / 2].get();
                requests.push(Request {
                    api_version: API_VERSION,
                    id: format!("{tenant}-{}", entry.id),
                    tenant: tenant.to_string(),
                    body: RequestBody::Solve {
                        instance: entry.id.clone(),
                        spec: SolveSpec {
                            rg,
                            audit: true,
                            ..SolveSpec::default()
                        },
                    },
                });
            }
        }
        let mut lat = Vec::new();
        let mut ok = 0u64;
        for req in &requests {
            let started = Instant::now();
            let resp = core.handle_request(req);
            lat.push(elapsed_us(started));
            assert!(
                resp.result.is_ok(),
                "service bench: {} failed: {resp:?}",
                req.id
            );
            ok += 1;
        }
        let stats = core.stats();
        assert_eq!(
            stats.cache_hits,
            group.len() as u64,
            "service bench: the second tenant's pass must hit the shared cache"
        );
        out.push((
            format!("synth:{preset}"),
            ServiceResult {
                requests: requests.len() as u64,
                ok,
                cache_hits: stats.cache_hits,
                degraded: stats.degraded,
                p50_us: percentile_us(&mut lat, 50.0),
                p99_us: percentile_us(&mut lat, 99.0),
            },
        ));
    }
    out
}

/// The portfolio benchmark's racer line-up, in attribution order (ties go
/// to the earlier racer). Mirrors the portfolio backend's default line-up.
const PORTFOLIO_RACERS: [partita_core::Backend; 3] = [
    partita_core::Backend::BranchBound,
    partita_core::Backend::ConflictEnum,
    partita_core::Backend::Lagrangian,
];

/// Runs the portfolio-race benchmark over the optimally-solvable corpus
/// groups (quick mode keeps `synth:micro`): each entry's mid-sweep point is
/// solved to completion by every default racer standalone at one thread
/// (portable node tallies + argmin-nodes win attribution), then raced live
/// by `Backend::Portfolio` (machine wall only).
///
/// Panics on any byte divergence between racers, on a racer disagreeing
/// about feasibility, or on a raced selection failing the audit — the
/// benchmark doubles as a differential gate for the racing backends.
fn run_portfolio(quick: bool) -> Vec<(String, PortfolioResult)> {
    let entries = corpus::manifest().expect("tests/corpus/manifest.json parses");
    let mut groups: Vec<(String, Vec<corpus::ManifestEntry>)> = Vec::new();
    for entry in entries.into_iter().filter(|e| !e.gated) {
        let key = corpus_group(&entry);
        if corpus_group_is_heuristic(&key) {
            continue; // racing exact backends needs optimally-solvable points
        }
        if quick && key != "synth:micro" {
            continue;
        }
        match groups.iter_mut().find(|(k, _)| *k == key) {
            Some((_, list)) => list.push(entry),
            None => groups.push((key, vec![entry])),
        }
    }
    let budget = SolveBudget::default()
        .with_threads(1)
        .with_max_nodes(usize::MAX)
        .with_fallback(None);
    let mut out = Vec::new();
    for (key, list) in groups {
        let mut result = PortfolioResult {
            points: 0,
            racers: PORTFOLIO_RACERS
                .iter()
                .map(|b| RacerTally {
                    backend: b.name().to_string(),
                    nodes: 0,
                    wins: 0,
                })
                .collect(),
            best_nodes: 0,
            bb_nodes: 0,
            race_wall_us: 0,
            solo_wall_us: 0,
        };
        for entry in &list {
            let w = entry
                .verify()
                .unwrap_or_else(|e| panic!("portfolio bench: {e}"));
            let rg = w.rg_sweep[w.rg_sweep.len() / 2];
            let opts = |backend| {
                SolveOptions::problem2(RequiredGains::uniform(rg))
                    .backend(backend)
                    .budget(budget)
            };
            // Solo runs: portable node tallies, byte-identity asserted
            // against the first racer (branch-and-bound).
            let mut point_nodes: Vec<u64> = Vec::with_capacity(PORTFOLIO_RACERS.len());
            let mut reference: Option<Selection> = None;
            for &backend in &PORTFOLIO_RACERS {
                let started = Instant::now();
                let solved = Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&opts(backend));
                if backend == partita_core::Backend::BranchBound {
                    result.solo_wall_us += elapsed_us(started);
                }
                match (solved, &reference) {
                    (Ok(sel), None) => {
                        point_nodes.push(sel.trace.nodes_explored as u64);
                        reference = Some(sel);
                    }
                    (Ok(sel), Some(base)) => {
                        assert_eq!(
                            sel.chosen(),
                            base.chosen(),
                            "portfolio bench: {} diverged from branch_bound on {}",
                            backend,
                            entry.id
                        );
                        assert_eq!(sel.total_area(), base.total_area());
                        point_nodes.push(sel.trace.nodes_explored as u64);
                    }
                    (Err(partita_core::CoreError::Infeasible { .. }), None)
                        if backend == PORTFOLIO_RACERS[0] =>
                    {
                        point_nodes.clear();
                        break; // infeasible point: nothing to race
                    }
                    (res, _) => panic!(
                        "portfolio bench: {} disagreed about {}: {res:?}",
                        backend, entry.id
                    ),
                }
            }
            if point_nodes.is_empty() {
                continue;
            }
            result.points += 1;
            result.bb_nodes += point_nodes[0];
            let winner = point_nodes
                .iter()
                .enumerate()
                .min_by_key(|&(i, &n)| (n, i))
                .map(|(i, &n)| (i, n))
                .expect("at least one racer");
            result.best_nodes += winner.1;
            result.racers[winner.0].wins += 1;
            for (tally, &n) in result.racers.iter_mut().zip(&point_nodes) {
                tally.nodes += n;
            }
            // The live race: machine wall, byte-identity vs the solo runs.
            let started = Instant::now();
            let raced = Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&opts(partita_core::Backend::Portfolio))
                .unwrap_or_else(|e| panic!("portfolio bench: race failed on {}: {e}", entry.id));
            result.race_wall_us += elapsed_us(started);
            let base = reference.as_ref().expect("feasible reference");
            assert_eq!(
                raced.chosen(),
                base.chosen(),
                "portfolio bench: the race returned a different selection on {}",
                entry.id
            );
        }
        out.push((key, result));
    }
    out
}

/// Runs the whole suite per `config` and returns the report, configs
/// sorted by key.
#[must_use]
pub fn run_suite(config: &SuiteConfig) -> SuiteReport {
    let mut configs = Vec::new();
    let mut resolve = Vec::new();
    for (name, w) in suite_workloads(config.quick) {
        for &threads in &config.threads {
            for mode in [Mode::Cold, Mode::Chained] {
                let key = format!("{name}:{}:t{threads}", mode.name());
                configs.push((key, run_config(&w, mode, threads.max(1))));
            }
        }
        // The incremental re-solve benchmark runs on the published table
        // instances (the paper's interactive-exploration workloads).
        if name.starts_with("table") && w.rg_sweep.len() >= 2 {
            resolve.push((name.to_string(), run_resolve(&w)));
        }
    }
    let mut corpus = run_corpus(config.quick);
    let mut service = run_service(config.quick);
    let mut portfolio = run_portfolio(config.quick);
    configs.sort_by(|a, b| a.0.cmp(&b.0));
    corpus.sort_by(|a, b| a.0.cmp(&b.0));
    resolve.sort_by(|a, b| a.0.cmp(&b.0));
    service.sort_by(|a, b| a.0.cmp(&b.0));
    portfolio.sort_by(|a, b| a.0.cmp(&b.0));
    SuiteReport {
        configs,
        corpus,
        resolve,
        service,
        portfolio,
    }
}

fn opt_u64_json(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

impl SuiteReport {
    /// Serializes the report as one pretty-stable JSON document: keys in a
    /// fixed order, configs sorted, portable and machine sections separated.
    #[must_use]
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "{{\n  \"schema\": {SUITE_SCHEMA},\n  \"suite\": \"partita-benchsuite\",\n  \"configs\": {{\n"
        ));
        let mut sorted: Vec<&(String, ConfigResult)> = self.configs.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (key, c)) in sorted.iter().enumerate() {
            let points: Vec<String> = c
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"rg\":{},\"gain\":{},\"area_tenths\":{},\"status\":\"{}\"}}",
                        p.rg, p.gain, p.area_tenths, p.status
                    )
                })
                .collect();
            let ops = c.ops.map_or_else(
                || "null".to_string(),
                |o| {
                    format!(
                        concat!(
                            "{{\"phase1_pivots\":{},\"phase2_pivots\":{},",
                            "\"dual_pivots\":{},\"lex_pivots\":{},",
                            "\"tableau_builds\":{},\"scratch_reuses\":{},",
                            "\"bland_activations\":{}}}"
                        ),
                        o.phase1_pivots,
                        o.phase2_pivots,
                        o.dual_pivots,
                        o.lex_pivots,
                        o.tableau_builds,
                        o.scratch_reuses,
                        o.bland_activations,
                    )
                },
            );
            out.push_str(&format!(
                concat!(
                    "    \"{}\": {{\n",
                    "      \"portable\": {{\"points\": [{}], ",
                    "\"cache\": {{\"cache_hits\":{},\"cache_misses\":{},",
                    "\"model_hits\":{},\"model_misses\":{},",
                    "\"chained_accepts\":{},\"chained_rejects\":{}}}, ",
                    "\"nodes\": {}, \"ops\": {}}},\n",
                    "      \"machine\": {{\"wall_us\": {}, \"nodes\": {}, ",
                    "\"peak_rss_kb\": {}}}\n",
                    "    }}{}\n"
                ),
                key,
                points.join(","),
                c.cache.cache_hits,
                c.cache.cache_misses,
                c.cache.model_hits,
                c.cache.model_misses,
                c.cache.chained_accepts,
                c.cache.chained_rejects,
                opt_u64_json(c.portable_nodes),
                ops,
                c.wall_us,
                opt_u64_json(c.machine_nodes),
                opt_u64_json(c.peak_rss_kb),
                if i + 1 == sorted.len() { "" } else { "," },
            ));
        }
        out.push_str("  },\n  \"corpus\": {\n");
        let mut sorted: Vec<&(String, CorpusResult)> = self.corpus.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (key, c)) in sorted.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    \"{}\": {{\n",
                    "      \"portable\": {{\"entries\":{},\"solved\":{},",
                    "\"infeasible\":{},\"gain\":{},\"area_tenths\":{},",
                    "\"nodes\":{},\"pivots\":{}}},\n",
                    "      \"machine\": {{\"wall_us\":{}}}\n",
                    "    }}{}\n"
                ),
                key,
                c.entries,
                c.solved,
                c.infeasible,
                c.gain,
                c.area_tenths,
                c.nodes,
                c.pivots,
                c.wall_us,
                if i + 1 == sorted.len() { "" } else { "," },
            ));
        }
        out.push_str("  },\n  \"resolve\": {\n");
        let mut sorted: Vec<&(String, ResolveResult)> = self.resolve.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (key, r)) in sorted.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    \"{}\": {{\n",
                    "      \"portable\": {{\"points\":{},\"cold_nodes\":{},",
                    "\"delta_nodes\":{},\"basis_reused\":{}}},\n",
                    "      \"machine\": {{\"p50_us\":{},\"p99_us\":{},",
                    "\"cold_p50_us\":{}}}\n",
                    "    }}{}\n"
                ),
                key,
                r.points,
                r.cold_nodes,
                r.delta_nodes,
                r.basis_reused,
                r.p50_us,
                r.p99_us,
                r.cold_p50_us,
                if i + 1 == sorted.len() { "" } else { "," },
            ));
        }
        out.push_str("  },\n  \"service\": {\n");
        let mut sorted: Vec<&(String, ServiceResult)> = self.service.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (key, s)) in sorted.iter().enumerate() {
            out.push_str(&format!(
                concat!(
                    "    \"{}\": {{\n",
                    "      \"portable\": {{\"requests\":{},\"ok\":{},",
                    "\"cache_hits\":{},\"degraded\":{}}},\n",
                    "      \"machine\": {{\"p50_us\":{},\"p99_us\":{}}}\n",
                    "    }}{}\n"
                ),
                key,
                s.requests,
                s.ok,
                s.cache_hits,
                s.degraded,
                s.p50_us,
                s.p99_us,
                if i + 1 == sorted.len() { "" } else { "," },
            ));
        }
        out.push_str("  },\n  \"portfolio\": {\n");
        let mut sorted: Vec<&(String, PortfolioResult)> = self.portfolio.iter().collect();
        sorted.sort_by(|a, b| a.0.cmp(&b.0));
        for (i, (key, p)) in sorted.iter().enumerate() {
            let racers: Vec<String> = p
                .racers
                .iter()
                .map(|r| {
                    format!(
                        "\"{}\":{{\"nodes\":{},\"wins\":{}}}",
                        r.backend, r.nodes, r.wins
                    )
                })
                .collect();
            out.push_str(&format!(
                concat!(
                    "    \"{}\": {{\n",
                    "      \"portable\": {{\"points\":{},\"racers\":{{{}}},",
                    "\"best_nodes\":{},\"bb_nodes\":{}}},\n",
                    "      \"machine\": {{\"race_wall_us\":{},\"solo_wall_us\":{}}}\n",
                    "    }}{}\n"
                ),
                key,
                p.points,
                racers.join(","),
                p.best_nodes,
                p.bb_nodes,
                p.race_wall_us,
                p.solo_wall_us,
                if i + 1 == sorted.len() { "" } else { "," },
            ));
        }
        out.push_str("  }\n}\n");
        out
    }

    /// Parses a report serialized by [`SuiteReport::to_json`].
    ///
    /// # Errors
    ///
    /// Returns a message naming the missing or mistyped field.
    pub fn from_json(text: &str) -> Result<SuiteReport, String> {
        let doc = JsonValue::parse(text).map_err(|e| e.to_string())?;
        let schema = doc
            .get("schema")
            .and_then(JsonValue::as_u64)
            .ok_or("missing schema")?;
        if schema != u64::from(SUITE_SCHEMA) {
            return Err(format!("unsupported suite schema {schema}"));
        }
        let configs_obj = doc.get("configs").ok_or("missing configs")?;
        let mut configs = Vec::new();
        for (key, cfg) in configs_obj.entries().ok_or("configs not an object")? {
            let portable = cfg.get("portable").ok_or("missing portable")?;
            let machine = cfg.get("machine").ok_or("missing machine")?;
            let cache = portable.get("cache").ok_or("missing cache")?;
            let get = |obj: &JsonValue, k: &str| -> Result<u64, String> {
                obj.get(k)
                    .and_then(JsonValue::as_u64)
                    .ok_or_else(|| format!("missing {k}"))
            };
            let opt = |obj: &JsonValue, k: &str| -> Option<u64> {
                obj.get(k).and_then(JsonValue::as_u64)
            };
            let mut points = Vec::new();
            for p in portable
                .get("points")
                .and_then(JsonValue::as_array)
                .ok_or("missing points")?
            {
                points.push(PointResult {
                    rg: get(p, "rg")?,
                    gain: get(p, "gain")?,
                    area_tenths: get(p, "area_tenths")? as i64,
                    status: p
                        .get("status")
                        .and_then(JsonValue::as_str)
                        .ok_or("missing status")?
                        .to_string(),
                });
            }
            configs.push((
                key.clone(),
                ConfigResult {
                    points,
                    cache: CacheStats {
                        cache_hits: get(cache, "cache_hits")?,
                        cache_misses: get(cache, "cache_misses")?,
                        model_hits: get(cache, "model_hits")?,
                        model_misses: get(cache, "model_misses")?,
                        chained_accepts: get(cache, "chained_accepts")?,
                        chained_rejects: get(cache, "chained_rejects")?,
                    },
                    portable_nodes: opt(portable, "nodes"),
                    // Additive: baselines written before the ops section
                    // existed (and `null` at multi-thread configs) parse to
                    // `None` and skip the ops gates.
                    ops: portable
                        .get("ops")
                        .filter(|o| !matches!(o, JsonValue::Null))
                        .map(|o| OpsCounters {
                            phase1_pivots: opt(o, "phase1_pivots").unwrap_or(0),
                            phase2_pivots: opt(o, "phase2_pivots").unwrap_or(0),
                            dual_pivots: opt(o, "dual_pivots").unwrap_or(0),
                            lex_pivots: opt(o, "lex_pivots").unwrap_or(0),
                            tableau_builds: opt(o, "tableau_builds").unwrap_or(0),
                            scratch_reuses: opt(o, "scratch_reuses").unwrap_or(0),
                            bland_activations: opt(o, "bland_activations").unwrap_or(0),
                        }),
                    wall_us: get(machine, "wall_us")?,
                    machine_nodes: opt(machine, "nodes"),
                    peak_rss_kb: opt(machine, "peak_rss_kb"),
                },
            ));
        }
        configs.sort_by(|a, b| a.0.cmp(&b.0));
        // The corpus section is additive: reports written before it existed
        // parse to an empty section.
        let mut corpus = Vec::new();
        if let Some(corpus_obj) = doc.get("corpus") {
            for (key, c) in corpus_obj.entries().ok_or("corpus not an object")? {
                let portable = c.get("portable").ok_or("missing corpus portable")?;
                let machine = c.get("machine").ok_or("missing corpus machine")?;
                let get = |obj: &JsonValue, k: &str| -> Result<u64, String> {
                    obj.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("missing corpus {k}"))
                };
                corpus.push((
                    key.clone(),
                    CorpusResult {
                        entries: get(portable, "entries")?,
                        solved: get(portable, "solved")?,
                        infeasible: get(portable, "infeasible")?,
                        gain: get(portable, "gain")?,
                        area_tenths: get(portable, "area_tenths")? as i64,
                        nodes: get(portable, "nodes")?,
                        // Additive: absent in pre-ops baselines.
                        pivots: portable
                            .get("pivots")
                            .and_then(JsonValue::as_u64)
                            .unwrap_or(0),
                        wall_us: get(machine, "wall_us")?,
                    },
                ));
            }
        }
        corpus.sort_by(|a, b| a.0.cmp(&b.0));
        // The resolve section is additive: reports written before it
        // existed parse to an empty section.
        let mut resolve = Vec::new();
        if let Some(resolve_obj) = doc.get("resolve") {
            for (key, r) in resolve_obj.entries().ok_or("resolve not an object")? {
                let portable = r.get("portable").ok_or("missing resolve portable")?;
                let machine = r.get("machine").ok_or("missing resolve machine")?;
                let get = |obj: &JsonValue, k: &str| -> Result<u64, String> {
                    obj.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("missing resolve {k}"))
                };
                resolve.push((
                    key.clone(),
                    ResolveResult {
                        points: get(portable, "points")?,
                        cold_nodes: get(portable, "cold_nodes")?,
                        delta_nodes: get(portable, "delta_nodes")?,
                        basis_reused: get(portable, "basis_reused")?,
                        p50_us: get(machine, "p50_us")?,
                        p99_us: get(machine, "p99_us")?,
                        cold_p50_us: get(machine, "cold_p50_us")?,
                    },
                ));
            }
        }
        resolve.sort_by(|a, b| a.0.cmp(&b.0));
        // The service section is additive: reports written before the
        // daemon existed parse to an empty section.
        let mut service = Vec::new();
        if let Some(service_obj) = doc.get("service") {
            for (key, s) in service_obj.entries().ok_or("service not an object")? {
                let portable = s.get("portable").ok_or("missing service portable")?;
                let machine = s.get("machine").ok_or("missing service machine")?;
                let get = |obj: &JsonValue, k: &str| -> Result<u64, String> {
                    obj.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("missing service {k}"))
                };
                service.push((
                    key.clone(),
                    ServiceResult {
                        requests: get(portable, "requests")?,
                        ok: get(portable, "ok")?,
                        cache_hits: get(portable, "cache_hits")?,
                        degraded: get(portable, "degraded")?,
                        p50_us: get(machine, "p50_us")?,
                        p99_us: get(machine, "p99_us")?,
                    },
                ));
            }
        }
        service.sort_by(|a, b| a.0.cmp(&b.0));
        // The portfolio section is additive: reports written before the
        // racing backends existed parse to an empty section.
        let mut portfolio = Vec::new();
        if let Some(portfolio_obj) = doc.get("portfolio") {
            for (key, p) in portfolio_obj.entries().ok_or("portfolio not an object")? {
                let portable = p.get("portable").ok_or("missing portfolio portable")?;
                let machine = p.get("machine").ok_or("missing portfolio machine")?;
                let get = |obj: &JsonValue, k: &str| -> Result<u64, String> {
                    obj.get(k)
                        .and_then(JsonValue::as_u64)
                        .ok_or_else(|| format!("missing portfolio {k}"))
                };
                let mut racers = Vec::new();
                for (backend, tally) in portable
                    .get("racers")
                    .and_then(JsonValue::entries)
                    .ok_or("missing portfolio racers")?
                {
                    racers.push(RacerTally {
                        backend: backend.clone(),
                        nodes: get(tally, "nodes")?,
                        wins: get(tally, "wins")?,
                    });
                }
                portfolio.push((
                    key.clone(),
                    PortfolioResult {
                        points: get(portable, "points")?,
                        racers,
                        best_nodes: get(portable, "best_nodes")?,
                        bb_nodes: get(portable, "bb_nodes")?,
                        race_wall_us: get(machine, "race_wall_us")?,
                        solo_wall_us: get(machine, "solo_wall_us")?,
                    },
                ));
            }
        }
        portfolio.sort_by(|a, b| a.0.cmp(&b.0));
        Ok(SuiteReport {
            configs,
            corpus,
            resolve,
            service,
            portfolio,
        })
    }
}

/// Compares `current` against `baseline` and returns one message per
/// regression (empty = pass):
///
/// * a config present in the baseline but missing from the current run;
/// * any **portable** drift — per-point gain, area, or status changed, or
///   cache counters changed;
/// * any single-threaded **node-count** growth (strict: the search is
///   deterministic at one thread, so even +1 node is a real change);
/// * any single-threaded **simplex ops** growth — total pivots or
///   allocating tableau builds — when both reports carry an ops section;
/// * **wall time** beyond `baseline * (1 + wall_threshold)` *and* beyond
///   an absolute [`WALL_NOISE_FLOOR_US`] above the baseline;
/// * a **corpus group** missing from the current run, or any drift in its
///   portable tallies (entry/feasibility counts, total gain/area, or
///   node-count growth);
/// * a **portfolio group** missing, per-racer or best-racer node growth,
///   or win attribution drifting while the node tallies stood still.
#[must_use]
pub fn compare_reports(
    baseline: &SuiteReport,
    current: &SuiteReport,
    wall_threshold: f64,
) -> Vec<String> {
    let mut regressions = Vec::new();
    for (key, base) in &baseline.configs {
        let Some((_, cur)) = current.configs.iter().find(|(k, _)| k == key) else {
            regressions.push(format!("{key}: config missing from current run"));
            continue;
        };
        if cur.points != base.points {
            regressions.push(format!("{key}: portable selection results drifted"));
        }
        if cur.cache != base.cache {
            regressions.push(format!("{key}: portable cache counters drifted"));
        }
        if let (Some(b), Some(c)) = (base.portable_nodes, cur.portable_nodes) {
            if c > b {
                regressions.push(format!("{key}: node count regressed {b} -> {c}"));
            }
        }
        // Ops gates (single-threaded configs, skipped against pre-ops
        // baselines): the simplex must not spend more pivots in total, and
        // must not heap-allocate more tableaus, than the baseline.
        if let (Some(b), Some(c)) = (base.ops, cur.ops) {
            if c.total_pivots() > b.total_pivots() {
                regressions.push(format!(
                    "{key}: simplex pivot count regressed {} -> {}",
                    b.total_pivots(),
                    c.total_pivots()
                ));
            }
            if c.allocating_builds() > b.allocating_builds() {
                regressions.push(format!(
                    "{key}: allocating tableau builds regressed {} -> {}",
                    b.allocating_builds(),
                    c.allocating_builds()
                ));
            }
        }
        let allowed = (base.wall_us as f64 * (1.0 + wall_threshold)) as u64;
        let allowed = allowed.max(base.wall_us.saturating_add(WALL_NOISE_FLOOR_US));
        if cur.wall_us > allowed {
            regressions.push(format!(
                "{key}: wall time regressed {} us -> {} us (allowed {} us)",
                base.wall_us, cur.wall_us, allowed
            ));
        }
    }
    // Corpus gates: the corpus is committed (manifest-pinned digests), so
    // every portable tally is exact — group membership, feasibility split,
    // total gain/area and single-threaded node counts must all reproduce.
    for (key, base) in &baseline.corpus {
        let Some((_, cur)) = current.corpus.iter().find(|(k, _)| k == key) else {
            regressions.push(format!("corpus/{key}: group missing from current run"));
            continue;
        };
        if (cur.entries, cur.solved, cur.infeasible) != (base.entries, base.solved, base.infeasible)
        {
            regressions.push(format!("corpus/{key}: entry/feasibility tallies drifted"));
        }
        if (cur.gain, cur.area_tenths) != (base.gain, base.area_tenths) {
            regressions.push(format!("corpus/{key}: portable selection quality drifted"));
        }
        if cur.nodes > base.nodes {
            regressions.push(format!(
                "corpus/{key}: node count regressed {} -> {}",
                base.nodes, cur.nodes
            ));
        }
        // Pivot gate, skipped against pre-ops baselines (which carry 0) and
        // for greedy-backed groups that never touch the simplex.
        if base.pivots > 0 && cur.pivots > base.pivots {
            regressions.push(format!(
                "corpus/{key}: simplex pivot count regressed {} -> {}",
                base.pivots, cur.pivots
            ));
        }
    }
    // Incremental re-solve gates. Portable drift is measured against the
    // baseline (when it has a resolve section); the node-saving property is
    // self-contained, so it gates the *current* run outright: per workload
    // the delta walk must never cost nodes, and across the section it must
    // save strictly (matching the chained-sweep regression lock).
    for (key, base) in &baseline.resolve {
        let Some((_, cur)) = current.resolve.iter().find(|(k, _)| k == key) else {
            regressions.push(format!("resolve/{key}: missing from current run"));
            continue;
        };
        if (
            cur.points,
            cur.cold_nodes,
            cur.delta_nodes,
            cur.basis_reused,
        ) != (
            base.points,
            base.cold_nodes,
            base.delta_nodes,
            base.basis_reused,
        ) {
            regressions.push(format!("resolve/{key}: portable resolve counters drifted"));
        }
    }
    let mut delta_total = 0u64;
    let mut cold_total = 0u64;
    for (key, cur) in &current.resolve {
        if cur.delta_nodes > cur.cold_nodes {
            regressions.push(format!(
                "resolve/{key}: delta re-solve cost nodes ({} > {})",
                cur.delta_nodes, cur.cold_nodes
            ));
        }
        delta_total += cur.delta_nodes;
        cold_total += cur.cold_nodes;
    }
    if !current.resolve.is_empty() && delta_total >= cold_total {
        regressions.push(format!(
            "resolve: delta re-solves must explore strictly fewer nodes in aggregate \
             (delta {delta_total} !< cold {cold_total})"
        ));
    }
    // Service gates: the scripted two-tenant sequence is derived from the
    // committed corpus, so every portable tally must reproduce exactly;
    // latency percentiles are machine-dependent and not gated.
    for (key, base) in &baseline.service {
        let Some((_, cur)) = current.service.iter().find(|(k, _)| k == key) else {
            regressions.push(format!("service/{key}: group missing from current run"));
            continue;
        };
        if (cur.requests, cur.ok, cur.cache_hits, cur.degraded)
            != (base.requests, base.ok, base.cache_hits, base.degraded)
        {
            regressions.push(format!(
                "service/{key}: portable service tallies drifted \
                 (requests/ok/cache_hits/degraded {}/{}/{}/{} -> {}/{}/{}/{})",
                base.requests,
                base.ok,
                base.cache_hits,
                base.degraded,
                cur.requests,
                cur.ok,
                cur.cache_hits,
                cur.degraded
            ));
        }
    }
    // Portfolio gates: solo racer runs are single-threaded and run to
    // completion, so node tallies and argmin-win attribution are exact on
    // any machine. Per-racer node growth is a regression like any other
    // node gate; points and win attribution must reproduce whenever the
    // node tallies do. Race wall is machine-dependent and not gated.
    for (key, base) in &baseline.portfolio {
        let Some((_, cur)) = current.portfolio.iter().find(|(k, _)| k == key) else {
            regressions.push(format!("portfolio/{key}: group missing from current run"));
            continue;
        };
        if cur.points != base.points {
            regressions.push(format!(
                "portfolio/{key}: raced point count drifted {} -> {}",
                base.points, cur.points
            ));
        }
        let mut nodes_changed = false;
        for b in &base.racers {
            let Some(c) = cur.racers.iter().find(|c| c.backend == b.backend) else {
                regressions.push(format!(
                    "portfolio/{key}: racer {} missing from current run",
                    b.backend
                ));
                continue;
            };
            nodes_changed |= c.nodes != b.nodes;
            if c.nodes > b.nodes {
                regressions.push(format!(
                    "portfolio/{key}: {} node count regressed {} -> {}",
                    b.backend, b.nodes, c.nodes
                ));
            }
        }
        if cur.best_nodes > base.best_nodes {
            regressions.push(format!(
                "portfolio/{key}: best-racer node count regressed {} -> {}",
                base.best_nodes, cur.best_nodes
            ));
        }
        // Win attribution is a pure function of the node tallies: drift
        // without a node change means the attribution itself broke.
        if !nodes_changed && cur.points == base.points && cur.racers != base.racers {
            regressions.push(format!(
                "portfolio/{key}: win attribution drifted with unchanged node tallies"
            ));
        }
    }
    regressions
}

#[cfg(test)]
mod tests {
    use super::*;

    // --- peak RSS parsing -------------------------------------------------

    #[test]
    fn vm_hwm_parses_the_kernel_format() {
        let status = "VmPeak:\t  200000 kB\nVmHWM:\t  123456 kB\nVmRSS:\t  100 kB\n";
        assert_eq!(parse_vm_hwm_kb(status), Some(123_456));
    }

    #[test]
    fn vm_hwm_tolerates_whitespace_and_unit_variants() {
        assert_eq!(parse_vm_hwm_kb("VmHWM:     42 kB"), Some(42));
        assert_eq!(parse_vm_hwm_kb("VmHWM:\t42\tkB"), Some(42));
        assert_eq!(parse_vm_hwm_kb("  VmHWM:  42 KB"), Some(42));
        assert_eq!(parse_vm_hwm_kb("VmHWM : 42 kB"), Some(42));
        assert_eq!(parse_vm_hwm_kb("VmHWM: 42"), Some(42));
        assert_eq!(parse_vm_hwm_kb("VmHWM: 2 MB"), Some(2048));
        assert_eq!(parse_vm_hwm_kb("VmHWM: 1 gB"), Some(1_048_576));
    }

    #[test]
    fn vm_hwm_returns_none_on_malformed_lines() {
        assert_eq!(parse_vm_hwm_kb(""), None);
        assert_eq!(parse_vm_hwm_kb("VmRSS: 42 kB"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM:"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM: lots kB"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM: -1 kB"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM: 42 pages"), None);
        assert_eq!(parse_vm_hwm_kb("VmHWM: 42 kB extra"), None);
        // A u64 overflow while scaling must refuse, not wrap.
        assert_eq!(parse_vm_hwm_kb(&format!("VmHWM: {} MB", u64::MAX)), None);
    }

    // --- ops section round-trip and compare gates -------------------------

    fn config(nodes: Option<u64>, ops: Option<OpsCounters>) -> ConfigResult {
        ConfigResult {
            points: vec![PointResult {
                rg: 90,
                gain: 95,
                area_tenths: 120,
                status: "Optimal".to_string(),
            }],
            cache: CacheStats::default(),
            portable_nodes: nodes,
            ops,
            wall_us: 1000,
            machine_nodes: nodes.is_none().then_some(7),
            peak_rss_kb: Some(4096),
        }
    }

    fn corpus_result(nodes: u64, pivots: u64) -> CorpusResult {
        CorpusResult {
            entries: 3,
            solved: 2,
            infeasible: 1,
            gain: 200,
            area_tenths: 450,
            nodes,
            pivots,
            wall_us: 900,
        }
    }

    fn sample_ops() -> OpsCounters {
        OpsCounters {
            phase1_pivots: 10,
            phase2_pivots: 20,
            dual_pivots: 3,
            lex_pivots: 2,
            tableau_builds: 8,
            scratch_reuses: 6,
            bland_activations: 1,
        }
    }

    fn report(configs: Vec<(String, ConfigResult)>) -> SuiteReport {
        SuiteReport {
            configs,
            corpus: vec![("synth:small".to_string(), corpus_result(40, 150))],
            resolve: Vec::new(),
            service: Vec::new(),
            portfolio: Vec::new(),
        }
    }

    fn portfolio_result() -> PortfolioResult {
        PortfolioResult {
            points: 5,
            racers: vec![
                RacerTally {
                    backend: "branch_bound".to_string(),
                    nodes: 50,
                    wins: 3,
                },
                RacerTally {
                    backend: "conflict_enum".to_string(),
                    nodes: 44,
                    wins: 2,
                },
            ],
            best_nodes: 40,
            bb_nodes: 50,
            race_wall_us: 1234,
            solo_wall_us: 2345,
        }
    }

    #[test]
    fn ops_and_pivots_survive_a_json_round_trip() {
        let r = report(vec![
            ("t1".to_string(), config(Some(12), Some(sample_ops()))),
            ("t4".to_string(), config(None, None)),
        ]);
        let parsed = SuiteReport::from_json(&r.to_json()).expect("round-trip parses");
        assert_eq!(parsed, r);
        assert_eq!(parsed.configs[0].1.ops, Some(sample_ops()));
        assert_eq!(parsed.configs[1].1.ops, None);
        assert_eq!(parsed.corpus[0].1.pivots, 150);
    }

    #[test]
    fn pre_ops_baselines_parse_and_skip_the_ops_gates() {
        // A baseline written before the ops section existed: no "ops" key in
        // the config portable block, no "pivots" in the corpus block.
        let old = format!(
            concat!(
                "{{\"schema\": {}, \"suite\": \"partita-benchsuite\", \"configs\": {{\n",
                "  \"t1\": {{\"portable\": {{\"points\": [], \"cache\": {{",
                "\"cache_hits\":0,\"cache_misses\":0,\"model_hits\":0,",
                "\"model_misses\":0,\"chained_accepts\":0,\"chained_rejects\":0}}, ",
                "\"nodes\": 12}},\n",
                "  \"machine\": {{\"wall_us\": 1000, \"nodes\": null, ",
                "\"peak_rss_kb\": null}}}}\n",
                "}}, \"corpus\": {{\n",
                "  \"synth:small\": {{\"portable\": {{\"entries\":3,\"solved\":2,",
                "\"infeasible\":1,\"gain\":200,\"area_tenths\":450,\"nodes\":40}},\n",
                "  \"machine\": {{\"wall_us\":900}}}}\n",
                "}}}}"
            ),
            SUITE_SCHEMA
        );
        let baseline = SuiteReport::from_json(&old).expect("pre-ops baseline parses");
        assert_eq!(baseline.configs[0].1.ops, None);
        assert_eq!(baseline.corpus[0].1.pivots, 0);
        // A current run that *does* carry ops must not be flagged against it.
        let mut cur_cfg = config(Some(12), Some(sample_ops()));
        cur_cfg.points.clear();
        let current = report(vec![("t1".to_string(), cur_cfg)]);
        let regressions = compare_reports(&baseline, &current, 10.0);
        assert!(
            regressions.is_empty(),
            "pre-ops baseline must skip ops gates: {regressions:?}"
        );
    }

    #[test]
    fn pivot_growth_is_a_regression() {
        let baseline = report(vec![(
            "t1".to_string(),
            config(Some(12), Some(sample_ops())),
        )]);
        let mut worse = sample_ops();
        worse.phase2_pivots += 1;
        let current = report(vec![("t1".to_string(), config(Some(12), Some(worse)))]);
        let regressions = compare_reports(&baseline, &current, 10.0);
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("pivot count regressed")),
            "expected a pivot regression, got {regressions:?}"
        );
    }

    #[test]
    fn allocating_build_growth_is_a_regression_but_fewer_reuses_alone_is_not() {
        let baseline = report(vec![(
            "t1".to_string(),
            config(Some(12), Some(sample_ops())),
        )]);
        let mut worse = sample_ops();
        worse.scratch_reuses -= 1; // builds constant => one more cold allocation
        let current = report(vec![("t1".to_string(), config(Some(12), Some(worse)))]);
        let regressions = compare_reports(&baseline, &current, 10.0);
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("allocating tableau builds regressed")),
            "expected an allocation regression, got {regressions:?}"
        );
        // Fewer builds *and* fewer reuses (a shorter solve) is fine.
        let mut better = sample_ops();
        better.phase2_pivots -= 5;
        better.tableau_builds -= 2;
        better.scratch_reuses -= 2;
        let current = report(vec![("t1".to_string(), config(Some(12), Some(better)))]);
        assert!(compare_reports(&baseline, &current, 10.0).is_empty());
    }

    #[test]
    fn portfolio_section_survives_a_json_round_trip_and_is_additive() {
        let mut r = report(Vec::new());
        r.portfolio = vec![("synth:micro".to_string(), portfolio_result())];
        let parsed = SuiteReport::from_json(&r.to_json()).expect("round-trip parses");
        assert_eq!(parsed, r);
        // A baseline without the section parses to an empty one and gates
        // nothing against a current run that has it.
        let pre = report(Vec::new());
        let pre_parsed = SuiteReport::from_json(&pre.to_json()).expect("empty section parses");
        assert!(pre_parsed.portfolio.is_empty());
        assert!(compare_reports(&pre, &r, 10.0).is_empty());
    }

    #[test]
    fn portfolio_node_growth_and_attribution_drift_are_regressions() {
        let mut baseline = report(Vec::new());
        baseline.portfolio = vec![("synth:micro".to_string(), portfolio_result())];
        // Per-racer node growth.
        let mut cur = baseline.clone();
        cur.portfolio[0].1.racers[1].nodes += 1;
        assert!(
            compare_reports(&baseline, &cur, 10.0)
                .iter()
                .any(|r| r.contains("conflict_enum node count regressed")),
            "expected a racer node regression"
        );
        // Best-racer growth (a racer improved but the min got worse).
        let mut cur = baseline.clone();
        cur.portfolio[0].1.best_nodes += 2;
        assert!(
            compare_reports(&baseline, &cur, 10.0)
                .iter()
                .any(|r| r.contains("best-racer node count regressed")),
            "expected a best-nodes regression"
        );
        // Win drift with identical node tallies = broken attribution.
        let mut cur = baseline.clone();
        cur.portfolio[0].1.racers[0].wins += 1;
        cur.portfolio[0].1.racers[1].wins -= 1;
        assert!(
            compare_reports(&baseline, &cur, 10.0)
                .iter()
                .any(|r| r.contains("win attribution drifted")),
            "expected an attribution regression"
        );
        // Fewer nodes (and the wins following them) is an improvement.
        let mut cur = baseline.clone();
        cur.portfolio[0].1.racers[1].nodes -= 10;
        cur.portfolio[0].1.racers[0].wins -= 1;
        cur.portfolio[0].1.racers[1].wins += 1;
        cur.portfolio[0].1.best_nodes -= 5;
        assert!(compare_reports(&baseline, &cur, 10.0).is_empty());
        // Machine wall drift alone is never a portfolio regression.
        let mut cur = baseline.clone();
        cur.portfolio[0].1.race_wall_us *= 100;
        assert!(compare_reports(&baseline, &cur, 10.0).is_empty());
    }

    #[test]
    fn corpus_pivot_growth_is_a_regression_unless_baseline_is_preops() {
        let base = report(Vec::new());
        let mut cur = report(Vec::new());
        cur.corpus[0].1.pivots = 151;
        let regressions = compare_reports(&base, &cur, 10.0);
        assert!(
            regressions
                .iter()
                .any(|r| r.contains("corpus/synth:small: simplex pivot count regressed")),
            "expected a corpus pivot regression, got {regressions:?}"
        );
        // Greedy-backed / pre-ops baselines carry 0 pivots: gate skipped.
        let mut preops = report(Vec::new());
        preops.corpus[0].1.pivots = 0;
        assert!(compare_reports(&preops, &cur, 10.0).is_empty());
        // Fewer pivots than baseline is an improvement, not a regression.
        let mut fewer = report(Vec::new());
        fewer.corpus[0].1.pivots = 100;
        assert!(compare_reports(&base, &fewer, 10.0).is_empty());
    }
}
