//! Reproduces **Table 3**: JPEG encoder selections across the RG sweep
//! (IP1: 2D-DCT, IP2: 1D-DCT, IP3: FFT, IP4: C-MUL, IP5: ZIG_ZAG).

use partita_bench::{
    compare_line, sweep_comparison_lines, sweep_rows_traced, thread_scaling_lines, trace_json_line,
};
use partita_core::report::render_table;
use partita_workloads::jpeg;

/// Published (RG, G, A-in-tenths) triples of Table 3.
const PAPER: [(u64, u64, i64); 5] = [
    (12_157_384, 15_040_512, 40),
    (20_262_307, 37_081_088, 110),
    (37_195_000, 37_195_072, 165),
    (37_282_645, 37_717_440, 270),
    (37_843_700, 37_843_712, 330),
];

fn main() {
    let w = jpeg::encoder();
    println!(
        "JPEG encoder: {} IPs, {} IMPs ({} for 2D-DCT via hierarchy, 2 for zig_zag)",
        w.instance.library.len(),
        w.imps.len(),
        w.imps.len() - 2
    );
    let traced = sweep_rows_traced(&w);
    let rows: Vec<_> = traced.iter().map(|(row, _)| row.clone()).collect();
    println!("{}", render_table("Table 3: JPEG encoder", &rows));

    println!("paper-vs-measured:");
    let mut exact = 0;
    for (row, &(rg, g, a_tenths)) in rows.iter().zip(&PAPER) {
        assert_eq!(row.required_gain.get(), rg, "sweep order");
        println!("{}", compare_line(&format!("RG={rg}"), g, row.gain));
        println!(
            "    area: paper {}  measured {}",
            a_tenths as f64 / 10.0,
            row.area
        );
        if row.gain.get() == g {
            exact += 1;
        }
    }
    println!("{exact}/5 rows reproduce the published G exactly");

    println!("\nsolve traces (one JSON line per sweep point):");
    for (row, trace) in &traced {
        println!("{}", trace_json_line(row.required_gain, trace));
    }

    println!("\nthread scaling (1 vs 4 workers, one JSON line per point):");
    for line in thread_scaling_lines(&w, &[1, 4]) {
        println!("{line}");
    }

    println!("\nsweep orchestration (cold vs descending-RG chained, one JSON line per point):");
    for line in sweep_comparison_lines("table3", &w) {
        println!("{line}");
    }
}
