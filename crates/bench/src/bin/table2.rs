//! Reproduces **Table 2**: GSM decoder selections across the RG sweep.

use partita_bench::{
    compare_line, sweep_comparison_lines, sweep_rows_traced, thread_scaling_lines, trace_json_line,
};
use partita_core::report::render_table;
use partita_workloads::gsm;

/// Published (RG, G, A-in-tenths) triples of Table 2.
const PAPER: [(u64, u64, i64); 8] = [
    (22_240, 28_524, 40),
    (44_481, 126_087, 40),
    (111_203, 126_087, 40),
    (133_444, 139_824, 40),
    (155_684, 168_348, 40),
    (177_925, 182_892, 70),
    (200_166, 200_488, 150),
    (211_286, 211_432, 450),
];

fn main() {
    let w = gsm::decoder();
    println!(
        "GSM(TDMA) decoder: {} s-calls, {} IPs, {} IMPs",
        w.instance.scalls.len() - 1,
        w.instance.library.len(),
        w.imps.len()
    );
    let traced = sweep_rows_traced(&w);
    let rows: Vec<_> = traced.iter().map(|(row, _)| row.clone()).collect();
    println!("{}", render_table("Table 2: GSM decoder", &rows));

    println!("paper-vs-measured (G column; ties at equal area overshoot, see EXPERIMENTS.md):");
    for (row, &(rg, g, a_tenths)) in rows.iter().zip(&PAPER) {
        assert_eq!(row.required_gain.get(), rg, "sweep order");
        println!("{}", compare_line(&format!("RG={rg}"), g, row.gain));
        println!(
            "    area: paper {}  measured {} ",
            a_tenths as f64 / 10.0,
            row.area
        );
    }

    println!("\nsolve traces (one JSON line per sweep point):");
    for (row, trace) in &traced {
        println!("{}", trace_json_line(row.required_gain, trace));
    }

    println!("\nthread scaling (1 vs 4 workers, one JSON line per point):");
    for line in thread_scaling_lines(&w, &[1, 4]) {
        println!("{line}");
    }

    println!("\nsweep orchestration (cold vs descending-RG chained, one JSON line per point):");
    for line in sweep_comparison_lines("table2", &w) {
        println!("{line}");
    }
}
