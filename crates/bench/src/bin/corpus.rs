//! Corpus-manifest maintenance: rebuilds the population defined by
//! `partita_workloads::corpus::population()`, computes fresh content
//! digests and either checks them against the committed manifest (default)
//! or rewrites it (`--write`).
//!
//! ```text
//! cargo run --release -p partita-bench --bin corpus            # check
//! cargo run --release -p partita-bench --bin corpus -- --write # regenerate
//! ```
//!
//! The check mode exits nonzero on any drift, mirroring what the corpus
//! gate in `tests/corpus_gate.rs` asserts — run `--write` and review the
//! manifest diff whenever a generator or family change is intended.

use std::path::PathBuf;
use std::process::ExitCode;

use partita_workloads::corpus;

fn manifest_path() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/corpus/manifest.json")
}

fn main() -> ExitCode {
    let write = std::env::args().any(|a| a == "--write");
    let fresh = corpus::regenerate();
    let rendered = corpus::render_manifest(&fresh);
    let path = manifest_path();

    let gated = fresh.iter().filter(|e| e.gated).count();
    println!(
        "corpus population: {} entries ({} ungated, {} gated)",
        fresh.len(),
        fresh.len() - gated,
        gated
    );

    if write {
        if let Err(e) = std::fs::write(&path, &rendered) {
            eprintln!("cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
        return ExitCode::SUCCESS;
    }

    let committed = match corpus::manifest() {
        Ok(entries) => entries,
        Err(e) => {
            eprintln!("committed manifest is unreadable: {e}");
            eprintln!("run with --write to regenerate it");
            return ExitCode::FAILURE;
        }
    };
    let mut drift = 0usize;
    for f in &fresh {
        match committed.iter().find(|c| c.id == f.id) {
            None => {
                println!("  missing from manifest: {}", f.id);
                drift += 1;
            }
            Some(c) if c != f => {
                println!(
                    "  drift: {} (manifest {:016x}, rebuilt {:016x})",
                    f.id, c.digest, f.digest
                );
                drift += 1;
            }
            Some(_) => {}
        }
    }
    for c in &committed {
        if !fresh.iter().any(|f| f.id == c.id) {
            println!("  stale manifest entry: {}", c.id);
            drift += 1;
        }
    }
    if drift > 0 {
        eprintln!("{drift} entries drifted; run with --write and review the diff");
        return ExitCode::FAILURE;
    }
    println!("manifest is in sync");
    ExitCode::SUCCESS
}
