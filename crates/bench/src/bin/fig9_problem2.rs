//! Reproduces **Fig. 9**: with three independent `fir()` calls and one FIR
//! IP, Problem 1's best plan maps all three into the IP (total time = IP
//! time), while Problem 2 runs one `fir()` in the kernel as the parallel
//! code of another — finishing earlier and/or cheaper.
//!
//! The instance lives in [`partita_bench::suite::fig9_workload`] so the
//! benchsuite sweeps the same structure this figure demonstrates.

use partita_bench::suite::fig9_workload;
use partita_core::{BatchJob, ProblemKind, RequiredGains, SolveOptions, SweepSession};
use partita_mop::Cycles;

fn main() {
    let w = fig9_workload();
    let (inst, db) = (&w.instance, &w.imps);

    let rg = RequiredGains::uniform(Cycles(1500));
    println!("Fig. 9 — three fir() calls, RG = 1500\n");
    // Both problem variants go through one batched session: two jobs, one
    // shared worker pool, the selections memoized for the re-solve below.
    let labels = ["Problem 1 (all-in-IP)", "Problem 2 (one fir in kernel)"];
    let jobs: Vec<BatchJob<'_>> = [ProblemKind::Problem1, ProblemKind::Problem2]
        .iter()
        .map(|&problem| BatchJob {
            instance: inst,
            db,
            options: SolveOptions::for_problem(problem, rg.clone()),
        })
        .collect();
    let mut session = SweepSession::new();
    let mut results = session.solve_batch(&jobs, 2).into_iter();
    let p1 = results.next().expect("two jobs").expect("p1 feasible");
    let p2 = results.next().expect("two jobs").expect("p2 feasible");
    for (name, sel) in labels.iter().zip([&p1, &p2]) {
        println!(
            "{name:<32} selected {} IMP(s), gain {}, area {}",
            sel.chosen().len(),
            sel.total_gain().get(),
            sel.total_area()
        );
        for impsel in sel.chosen() {
            println!("    {impsel}  [{:?}]", impsel.parallel);
        }
    }
    let p2_again = session
        .solve(inst, db, &jobs[1].options)
        .expect("cached p2");
    assert_eq!(p2_again, p2, "session cache must replay the batch job");
    assert!(p2.total_area() < p1.total_area());
    println!(
        "\nProblem 2 meets the constraint with area {} vs Problem 1's {} — the Fig. 9 effect",
        p2.total_area(),
        p1.total_area()
    );
}
