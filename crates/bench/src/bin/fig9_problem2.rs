//! Reproduces **Fig. 9**: with three independent `fir()` calls and one FIR
//! IP, Problem 1's best plan maps all three into the IP (total time = IP
//! time), while Problem 2 runs one `fir()` in the kernel as the parallel
//! code of another — finishing earlier and/or cheaper.

use partita_core::{
    BatchJob, Imp, ImpDb, Instance, ParallelChoice, ProblemKind, RequiredGains, SCall,
    SolveOptions, SweepSession,
};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles};

fn main() {
    let mut inst = Instance::new("fig9");
    let ip = inst.library.add(
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .area(AreaTenths::from_units(3))
            .build(),
    );
    let t_sw = Cycles(1000);
    let a = inst.add_scall(SCall::new(
        "fir",
        IpFunction::Fir,
        t_sw,
        TransferJob::new(8, 8),
    ));
    let b = inst.add_scall(SCall::new(
        "fir",
        IpFunction::Fir,
        t_sw,
        TransferJob::new(8, 8),
    ));
    let c = inst.add_scall(SCall::new(
        "fir",
        IpFunction::Fir,
        t_sw,
        TransferJob::new(8, 8),
    ));
    inst.add_path(vec![a, b, c]);

    let mk = |sc, gain: u64, par| {
        Imp::new(
            sc,
            vec![ip],
            InterfaceKind::Type1,
            Cycles(gain),
            AreaTenths::from_tenths(2),
            par,
        )
    };
    // Plain IP gains 600 per call; overlapping c's software run with b's IP
    // run recovers c's 300-cycle hardware-visible share -> gain 900.
    let db = ImpDb::from_imps(vec![
        mk(a, 600, ParallelChoice::None),
        mk(b, 600, ParallelChoice::None),
        mk(c, 600, ParallelChoice::None),
        mk(b, 900, ParallelChoice::SwScalls(vec![c])),
    ]);

    let rg = RequiredGains::uniform(Cycles(1500));
    println!("Fig. 9 — three fir() calls, RG = 1500\n");
    // Both problem variants go through one batched session: two jobs, one
    // shared worker pool, the selections memoized for the re-solve below.
    let labels = ["Problem 1 (all-in-IP)", "Problem 2 (one fir in kernel)"];
    let jobs: Vec<BatchJob<'_>> = [ProblemKind::Problem1, ProblemKind::Problem2]
        .iter()
        .map(|&problem| BatchJob {
            instance: &inst,
            db: &db,
            options: SolveOptions::for_problem(problem, rg.clone()),
        })
        .collect();
    let mut session = SweepSession::new();
    let mut results = session.solve_batch(&jobs, 2).into_iter();
    let p1 = results.next().expect("two jobs").expect("p1 feasible");
    let p2 = results.next().expect("two jobs").expect("p2 feasible");
    for (name, sel) in labels.iter().zip([&p1, &p2]) {
        println!(
            "{name:<32} selected {} IMP(s), gain {}, area {}",
            sel.chosen().len(),
            sel.total_gain().get(),
            sel.total_area()
        );
        for impsel in sel.chosen() {
            println!("    {impsel}  [{:?}]", impsel.parallel);
        }
    }
    let p2_again = session
        .solve(&inst, &db, &jobs[1].options)
        .expect("cached p2");
    assert_eq!(p2_again, p2, "session cache must replay the batch job");
    assert!(p2.total_area() < p1.total_area());
    println!(
        "\nProblem 2 meets the constraint with area {} vs Problem 1's {} — the Fig. 9 effect",
        p2.total_area(),
        p1.total_area()
    );
}
