//! Reproduces **Fig. 10**: a common s-call shared by two execution paths.
//!
//! P1 has enough margin to leave one of its three `fir()` calls in software;
//! P2 can only meet its constraint when the common `fir()` serves as the
//! parallel code of `dct()`. The only solution implements the common call in
//! software — legal in Problem 2, impossible in Problem 1.

use partita_core::{
    CoreError, Imp, ImpDb, Instance, ParallelChoice, RequiredGains, SCall, SolveOptions, Solver,
};
use partita_interface::{InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AreaTenths, Cycles, PathId};

fn main() {
    let mut inst = Instance::new("fig10");
    let fir_ip = inst.library.add(
        IpBlock::builder("fir")
            .function(IpFunction::Fir)
            .area(AreaTenths::from_units(3))
            .build(),
    );
    let dct_ip = inst.library.add(
        IpBlock::builder("dct")
            .function(IpFunction::Dct1d)
            .area(AreaTenths::from_units(8))
            .build(),
    );
    let job = TransferJob::new(8, 8);
    let f1 = inst.add_scall(SCall::new("fir", IpFunction::Fir, Cycles(900), job));
    let f2 = inst.add_scall(SCall::new("fir", IpFunction::Fir, Cycles(900), job));
    let fc = inst.add_scall(SCall::new("fir", IpFunction::Fir, Cycles(900), job)); // common
    let iir = inst.add_scall(SCall::new("iir", IpFunction::Iir, Cycles(400), job));
    let dct = inst.add_scall(SCall::new("dct", IpFunction::Dct1d, Cycles(1500), job));
    let p1 = inst.add_path(vec![f1, f2, fc, iir]);
    let p2 = inst.add_path(vec![dct, fc]);

    let mk = |sc, ip, gain: u64, par| {
        Imp::new(
            sc,
            vec![ip],
            InterfaceKind::Type1,
            Cycles(gain),
            AreaTenths::from_tenths(2),
            par,
        )
    };
    let db = ImpDb::from_imps(vec![
        mk(f1, fir_ip, 500, ParallelChoice::None),
        mk(f2, fir_ip, 500, ParallelChoice::None),
        mk(fc, fir_ip, 250, ParallelChoice::None),
        mk(iir, fir_ip, 200, ParallelChoice::None),
        mk(dct, dct_ip, 800, ParallelChoice::None),
        // dct() with the software fir() as its parallel code.
        mk(dct, dct_ip, 1100, ParallelChoice::SwScalls(vec![fc])),
    ]);

    // P1 needs 1200 (met by f1+f2+iir without the common fir); P2 needs
    // 1100 (met only by dct-with-software-fir: 800 + 250 = 1050 < 1100).
    let gains = RequiredGains::per_path(vec![
        (PathId(p1.0), Cycles(1200)),
        (PathId(p2.0), Cycles(1100)),
    ]);

    println!("Fig. 10 — common s-call on paths P1 and P2\n");
    let p1_result = Solver::new(&inst)
        .with_imps(db.clone())
        .solve(&SolveOptions::problem1(gains.clone()));
    match p1_result {
        Err(CoreError::Infeasible { .. }) => {
            println!("Problem 1: infeasible (as the paper observes)")
        }
        other => panic!("Problem 1 should be infeasible, got {other:?}"),
    }

    let sel = Solver::new(&inst)
        .with_imps(db)
        .solve(&SolveOptions::problem2(gains))
        .expect("Problem 2 solves the Fig. 10 instance");
    println!("Problem 2: area {}, selections:", sel.total_area());
    for imp in sel.chosen() {
        println!("    {imp}  [{:?}]", imp.parallel);
    }
    // The common fir is in software: no chosen IMP implements it.
    assert!(sel.chosen().iter().all(|i| i.scall != fc));
    // dct consumes it as parallel code.
    assert!(sel
        .chosen()
        .iter()
        .any(|i| i.scall == dct && i.parallel == ParallelChoice::SwScalls(vec![fc])));
    println!("\nthe common fir() runs in software as dct()'s parallel code — the Fig. 10 solution");
}
