//! Reproduces **Figs 4–7**: the four interface templates, validated against
//! the analytic timing model.
//!
//! Types 0/1 are emitted as µ-code and executed on the kernel simulator with
//! a co-simulated FIR behind the ports/buffers; types 2/3 run the DMA FSM
//! simulation. Each line compares the analytic `T` with the observed cycles.

use partita_asip::{CycleModel, ExecOptions, Executor, Kernel};
use partita_interface::cosim::{BufferedIpDevice, StreamIpDevice};
use partita_interface::fsm::run_dma;
use partita_interface::template::{emit_type0, emit_type1, DataLayout};
use partita_interface::{check_feasibility, timing, InterfaceKind, TransferJob};
use partita_ip::func::FirFilter;
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{Cycles, MopProgram};

fn run(template: partita_mop::Function, device: &mut dyn partita_asip::IpDevice) -> Cycles {
    let mut program = MopProgram::new();
    let id = program.add_function(template).expect("fresh program");
    program.set_main(id).expect("id valid");
    let mut kernel = Kernel::new(1024, 1024);
    kernel
        .xdm
        .load(0, &(0..64).map(|i| i * 3 - 20).collect::<Vec<_>>())
        .expect("fits");
    kernel
        .ydm
        .load(0, &(0..64).map(|i| 40 - i).collect::<Vec<_>>())
        .expect("fits");
    let report = Executor::new(&program)
        .run_with_device(
            &mut kernel,
            device,
            &ExecOptions {
                cycle_model: CycleModel::PerWord,
                branch_penalty: 0,
                ..ExecOptions::default()
            },
        )
        .expect("template executes");
    report.cycles - Cycles(1) // exclude the halt word
}

fn main() {
    let ip = IpBlock::builder("fir16")
        .function(IpFunction::Fir)
        .ports(2, 2)
        .rates(4, 4)
        .latency(8)
        .build();
    let job = TransferJob::new(64, 64);
    let layout = DataLayout {
        in_x: 0,
        in_y: 0,
        out_x: 200,
        out_y: 200,
    };

    println!("Figs 4–7 — interface templates vs the analytic model\n");

    // Fig. 4: type 0.
    let t0 = emit_type0(&ip, job, layout).expect("type 0 feasible");
    let profile = check_feasibility(&ip, InterfaceKind::Type0).expect("feasible");
    let mut fx = FirFilter::new(vec![1, 1]);
    let mut fy = FirFilter::new(vec![1, -1]);
    let mut dev0 = StreamIpDevice::new(
        &ip,
        profile.slow_clock_factor,
        Box::new(move |s| {
            vec![
                fx.step(s[0]) as i32,
                fy.step(*s.get(1).unwrap_or(&0)) as i32,
            ]
        }),
    );
    let got0 = run(t0.function.clone(), &mut dev0);
    let analytic0 = timing(&ip, InterfaceKind::Type0, job).expect("feasible");
    println!(
        "type 0 (Fig. 4): analytic T_IF = {:>5}, template predicted = {:>5}, executed = {:>5}",
        analytic0.t_if.get(),
        t0.predicted_cycles.get(),
        got0.get()
    );
    assert_eq!(got0, t0.predicted_cycles);
    assert_eq!(analytic0.t_if, t0.predicted_cycles);

    // Fig. 5: type 1.
    let t1 = emit_type1(&ip, job, layout, &[]).expect("type 1 feasible");
    let mut dev1 = BufferedIpDevice::new(&ip, job, Box::new(|i| i.to_vec()));
    let got1 = run(t1.function.clone(), &mut dev1);
    let analytic1 = timing(&ip, InterfaceKind::Type1, job).expect("feasible");
    println!(
        "type 1 (Fig. 5): analytic total = {:>5}, template predicted = {:>5}, executed = {:>5}",
        analytic1.total(None).get(),
        t1.predicted_cycles.get(),
        got1.get()
    );
    assert_eq!(got1, t1.predicted_cycles);

    // Figs 6/7: types 2 and 3 (DMA FSMs).
    for kind in [InterfaceKind::Type2, InterfaceKind::Type3] {
        let mut kernel = Kernel::new(1024, 1024);
        kernel
            .xdm
            .load(0, &(0..32).collect::<Vec<_>>())
            .expect("fits");
        kernel
            .ydm
            .load(0, &(0..32).map(|i| -i).collect::<Vec<_>>())
            .expect("fits");
        let mut id_fn = |i: &[i32]| i.to_vec();
        let report = run_dma(&ip, kind, job, layout, &mut kernel, &mut id_fn).expect("dma runs");
        let analytic = timing(&ip, kind, job).expect("feasible").total(None);
        let fig = if kind == InterfaceKind::Type2 { 6 } else { 7 };
        println!(
            "type {} (Fig. {fig}): analytic total = {:>5}, simulated = {:>5} (skew {:+})",
            kind.index(),
            analytic.get(),
            report.cycles.get(),
            report.cycles.get() as i64 - analytic.get() as i64
        );
        assert!(report.cycles.get().abs_diff(analytic.get()) <= 4);
    }
    println!("\nall templates match their analytic cycle counts");
}
