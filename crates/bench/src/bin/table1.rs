//! Reproduces **Table 1**: GSM encoder selections across the RG sweep.

use partita_bench::{
    compare_line, sweep_comparison_lines, sweep_rows_traced, thread_scaling_lines, trace_json_line,
};
use partita_core::report::render_table;
use partita_workloads::gsm;

/// Published (RG, G, A-in-tenths) triples of Table 1.
const PAPER: [(u64, u64, i64); 8] = [
    (47_740, 115_037, 30),
    (95_480, 115_037, 30),
    (143_221, 153_588, 30),
    (190_961, 195_258, 170),
    (238_702, 316_200, 180),
    (286_442, 316_200, 180),
    (334_182, 335_976, 240),
    (381_923, 382_500, 410),
];

fn main() {
    let w = gsm::encoder();
    println!(
        "GSM(TDMA) encoder: {} s-calls, {} IPs, {} IMPs",
        w.instance.scalls.len() - 1,
        w.instance.library.len(),
        w.imps.len()
    );
    let traced = sweep_rows_traced(&w);
    let rows: Vec<_> = traced.iter().map(|(row, _)| row.clone()).collect();
    println!("{}", render_table("Table 1: GSM encoder", &rows));

    println!("paper-vs-measured (G column; ties at equal area overshoot, see EXPERIMENTS.md):");
    for (row, &(rg, g, a_tenths)) in rows.iter().zip(&PAPER) {
        assert_eq!(row.required_gain.get(), rg, "sweep order");
        println!("{}", compare_line(&format!("RG={rg}"), g, row.gain));
        println!(
            "    area: paper {}  measured {} ",
            a_tenths as f64 / 10.0,
            row.area
        );
    }

    println!("\nsolve traces (one JSON line per sweep point):");
    for (row, trace) in &traced {
        println!("{}", trace_json_line(row.required_gain, trace));
    }

    println!("\nthread scaling (1 vs 4 workers, one JSON line per point):");
    for line in thread_scaling_lines(&w, &[1, 4]) {
        println!("{line}");
    }

    println!("\nsweep orchestration (cold vs descending-RG chained, one JSON line per point):");
    for line in sweep_comparison_lines("table1", &w) {
        println!("{line}");
    }
}
