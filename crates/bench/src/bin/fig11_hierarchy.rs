//! Reproduces **Fig. 11**: the hierarchical JPEG application and IMP
//! flatten — IMPs of `dct1d` are folded into `dct2d`'s alternatives, which
//! in turn absorb the `fft` and complex-multiply levels.

use partita_core::{RequiredGains, SolveOptions, Solver};
use partita_mop::{CallSiteId, Cycles};
use partita_workloads::jpeg;

fn main() {
    let w = jpeg::encoder_hierarchical();
    println!("Fig. 11 — hierarchical JPEG (main → jpeg → dct2d → dct1d → fft → cmul)\n");

    let top = w.imps.for_scall(CallSiteId(1));
    println!("2D-DCT alternatives after IMP flatten ({}):", top.len());
    for imp in &top {
        println!("    {imp}");
    }
    for child in 3..=8u32 {
        assert!(
            w.imps.for_scall(CallSiteId(child)).is_empty(),
            "child sc{child} must be folded away"
        );
    }

    // Sweep: watch the selection climb the hierarchy as RG grows.
    println!("\nselection vs required gain:");
    for &rg in &w.rg_sweep {
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::new(RequiredGains::Uniform(rg)))
            .expect("hierarchical sweep feasible");
        let picks: Vec<String> = sel.chosen().iter().map(|i| format!("{i}")).collect();
        println!(
            "    RG {:>10}: gain {:>10}, area {:>6} -> {}",
            rg.get(),
            sel.total_gain().get(),
            sel.total_area(),
            picks.join(" | ")
        );
    }

    // The low requirement is met by a deep-level composite (cheap C-MUL),
    // the high one by shallower, more powerful engines.
    let low = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&SolveOptions::new(RequiredGains::Uniform(w.rg_sweep[0])))
        .expect("low RG feasible");
    let high = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&SolveOptions::new(RequiredGains::Uniform(
            *w.rg_sweep.last().expect("sweep non-empty"),
        )))
        .expect("high RG feasible");
    assert!(high.total_area() >= low.total_area());
    assert!(high.total_gain() > Cycles(30_000_000));
    println!("\nthe selection escalates through the hierarchy as RG grows");
}
