//! Reproduces **Fig. 11**: the hierarchical JPEG application and IMP
//! flatten — IMPs of `dct1d` are folded into `dct2d`'s alternatives, which
//! in turn absorb the `fft` and complex-multiply levels.

use partita_core::{SolveOptions, SweepSession};
use partita_mop::{CallSiteId, Cycles};
use partita_workloads::jpeg;

fn main() {
    let w = jpeg::encoder_hierarchical();
    println!("Fig. 11 — hierarchical JPEG (main → jpeg → dct2d → dct1d → fft → cmul)\n");

    let top = w.imps.for_scall(CallSiteId(1));
    println!("2D-DCT alternatives after IMP flatten ({}):", top.len());
    for imp in &top {
        println!("    {imp}");
    }
    for child in 3..=8u32 {
        assert!(
            w.imps.for_scall(CallSiteId(child)).is_empty(),
            "child sc{child} must be folded away"
        );
    }

    // Sweep: watch the selection climb the hierarchy as RG grows. The
    // chained session solves high-RG first and reuses each optimum as the
    // next point's incumbent.
    println!("\nselection vs required gain:");
    let mut session = SweepSession::new();
    let sweep = session
        .sweep(&w.instance, &w.imps, &SolveOptions::default(), &w.rg_sweep)
        .expect("hierarchical sweep feasible");
    for (sel, &rg) in sweep.iter().zip(&w.rg_sweep) {
        let picks: Vec<String> = sel.chosen().iter().map(|i| format!("{i}")).collect();
        println!(
            "    RG {:>10}: gain {:>10}, area {:>6} -> {}",
            rg.get(),
            sel.total_gain().get(),
            sel.total_area(),
            picks.join(" | ")
        );
    }

    // The low requirement is met by a deep-level composite (cheap C-MUL),
    // the high one by shallower, more powerful engines. Replaying the sweep
    // is answered entirely from the session's solve cache.
    let low = sweep.first().expect("sweep non-empty");
    let high = sweep.last().expect("sweep non-empty");
    assert!(high.total_area() >= low.total_area());
    assert!(high.total_gain() > Cycles(30_000_000));
    let again = session
        .sweep(&w.instance, &w.imps, &SolveOptions::default(), &w.rg_sweep)
        .expect("cached replay");
    assert_eq!(
        again, sweep,
        "session cache must replay the sweep byte-identically"
    );
    println!("\nthe selection escalates through the hierarchy as RG grows");
    println!("{}", session.take_trace().to_json("fig11"));
}
