//! Reproduces **Fig. 2**: parallel execution of kernel and IP reduces the
//! total execution time on buffered interfaces.
//!
//! The analytic model and the cycle-accurate co-simulation are shown side by
//! side for a FIR job on all four interface types, with and without a
//! parallel code.

use partita_asip::{CycleModel, ExecOptions, Executor, Kernel};
use partita_interface::cosim::BufferedIpDevice;
use partita_interface::template::{emit_type1, DataLayout};
use partita_interface::{execution_time, InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction};
use partita_mop::{AluOp, Cycles, Mop, MopProgram, Reg};

fn main() {
    let ip = IpBlock::builder("fir16")
        .function(IpFunction::Fir)
        .ports(2, 2)
        .rates(4, 4)
        .latency(400)
        .build();
    let job = TransferJob::new(160, 160);
    let t_sw = Cycles(6000);
    let pc = Cycles(300);

    println!("Fig. 2 — concurrent kernel/IP execution (T_SW = {t_sw})");
    println!(
        "{:<8} {:>14} {:>18} {:>10}",
        "type", "no parallel", "with parallel code", "saved"
    );
    for kind in InterfaceKind::ALL {
        let base = execution_time(&ip, kind, job, None).expect("feasible");
        let with_pc = execution_time(&ip, kind, job, Some(pc)).expect("feasible");
        println!(
            "{:<8} {:>14} {:>18} {:>10}",
            kind.to_string(),
            base.get(),
            with_pc.get(),
            (base - with_pc).get()
        );
    }

    // Co-simulate the type-1 template: the parallel code physically executes
    // in the wait region while the IP runs.
    let pc_mops: Vec<Mop> = (0..pc.get())
        .map(|_| Mop::alu(AluOp::Add, Reg(5), Reg(5), 1))
        .collect();
    let t = emit_type1(
        &ip,
        job,
        DataLayout {
            in_x: 0,
            in_y: 0,
            out_x: 100,
            out_y: 100,
        },
        &pc_mops,
    )
    .expect("type 1 feasible");
    let mut program = MopProgram::new();
    let id = program.add_function(t.function).expect("fresh program");
    program.set_main(id).expect("id valid");
    let mut kernel = Kernel::new(512, 512);
    let mut device = BufferedIpDevice::new(&ip, job, Box::new(|i| i.to_vec()));
    let report = Executor::new(&program)
        .run_with_device(
            &mut kernel,
            &mut device,
            &ExecOptions {
                cycle_model: CycleModel::PerWord,
                branch_penalty: 0,
                ..ExecOptions::default()
            },
        )
        .expect("template runs");
    println!();
    println!(
        "type-1 co-simulation: predicted {} cycles, executed {} cycles, \
         parallel code retired {} additions while the IP ran",
        t.predicted_cycles.get(),
        (report.cycles - Cycles(1)).get(),
        kernel.reg(Reg(5))
    );
    assert_eq!(report.cycles - Cycles(1), t.predicted_cycles);
    assert_eq!(kernel.reg(Reg(5)) as u64, pc.get());
}
