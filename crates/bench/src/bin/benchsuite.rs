//! The benchsuite runner: drives every headline workload (Tables 1–3,
//! Fig. 9, Fig. 11) cold and chained at each requested thread count and
//! writes the perf-trajectory report to `BENCH_partita.json`.
//!
//! ```text
//! benchsuite [--out PATH] [--compare BASELINE] [--threads 1,4]
//!            [--quick] [--threshold 0.15]
//! ```
//!
//! With `--compare`, the fresh run is gated against the baseline report:
//! any portable drift, any single-threaded node-count or simplex-ops
//! growth (total pivots, allocating tableau builds), or a wall time
//! regression beyond the threshold (15% by default, with a 10ms absolute
//! noise floor) exits nonzero. Runs also self-check that every
//! single-threaded config carries the portable ops section.

use std::process::ExitCode;

use partita_bench::suite::{
    compare_reports, run_suite, SuiteConfig, SuiteReport, DEFAULT_WALL_THRESHOLD,
};

struct Args {
    out: String,
    compare: Option<String>,
    config: SuiteConfig,
    threshold: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: benchsuite [--out PATH] [--compare BASELINE] \
         [--threads N,N,...] [--quick] [--threshold FRAC]"
    );
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        out: "BENCH_partita.json".to_string(),
        compare: None,
        config: SuiteConfig::default(),
        threshold: DEFAULT_WALL_THRESHOLD,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut value = |flag: &str| it.next().unwrap_or_else(|| usage_for(flag));
        fn usage_for(flag: &str) -> String {
            eprintln!("missing value for {flag}");
            usage()
        }
        match flag.as_str() {
            "--out" => args.out = value("--out"),
            "--compare" => args.compare = Some(value("--compare")),
            "--threads" => {
                args.config.threads = value("--threads")
                    .split(',')
                    .map(|t| t.trim().parse().unwrap_or_else(|_| usage()))
                    .collect();
                if args.config.threads.is_empty() {
                    usage();
                }
            }
            "--quick" => args.config.quick = true,
            "--threshold" => {
                args.threshold = value("--threshold").parse().unwrap_or_else(|_| usage());
                if !(args.threshold.is_finite() && args.threshold >= 0.0) {
                    usage();
                }
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
    }
    args
}

fn main() -> ExitCode {
    let args = parse_args();
    eprintln!(
        "benchsuite: running {} workloads at threads {:?}",
        if args.config.quick { "quick" } else { "all" },
        args.config.threads
    );
    let report = run_suite(&args.config);
    // Every single-threaded config must carry the portable simplex ops
    // section — a missing one means the counters stopped being threaded
    // through the solver, which would silently disable the ops gates.
    let missing_ops: Vec<&str> = report
        .configs
        .iter()
        .filter(|(k, c)| k.ends_with(":t1") && c.ops.is_none())
        .map(|(k, _)| k.as_str())
        .collect();
    if !missing_ops.is_empty() {
        eprintln!(
            "benchsuite: single-threaded config(s) missing the ops section: {}",
            missing_ops.join(", ")
        );
        return ExitCode::FAILURE;
    }
    let rendered = report.to_json();
    if let Err(e) = std::fs::write(&args.out, &rendered) {
        eprintln!("benchsuite: cannot write {}: {e}", args.out);
        return ExitCode::from(2);
    }
    eprintln!(
        "benchsuite: wrote {} ({} configs)",
        args.out,
        report.configs.len()
    );
    let Some(baseline_path) = args.compare else {
        return ExitCode::SUCCESS;
    };
    let baseline_text = match std::fs::read_to_string(&baseline_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("benchsuite: cannot read baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let baseline = match SuiteReport::from_json(&baseline_text) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("benchsuite: bad baseline {baseline_path}: {e}");
            return ExitCode::from(2);
        }
    };
    let regressions = compare_reports(&baseline, &report, args.threshold);
    if regressions.is_empty() {
        eprintln!("benchsuite: no regressions against {baseline_path}");
        ExitCode::SUCCESS
    } else {
        for r in &regressions {
            eprintln!("REGRESSION {r}");
        }
        eprintln!(
            "benchsuite: {} regression(s) against {baseline_path}",
            regressions.len()
        );
        ExitCode::FAILURE
    }
}
