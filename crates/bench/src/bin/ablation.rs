//! Ablation study (beyond the paper's tables): the exact ILP selector vs
//! the greedy heuristic vs the no-interface prior approach \[8\], over random
//! instances and the calibrated workloads.

use std::time::Instant;

use partita_core::{baseline, RequiredGains, SolveOptions, Solver};
use partita_mop::Cycles;
use partita_workloads::{gsm, jpeg, synth, Workload};

fn run_one(name: &str, w: &Workload, rg: Cycles) {
    let gains = RequiredGains::Uniform(rg);
    let t0 = Instant::now();
    let ilp = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&SolveOptions::new(gains.clone()));
    let ilp_time = t0.elapsed();
    let greedy = baseline::solve_greedy(&w.instance, &w.imps, &gains);
    let noif = baseline::solve_no_interface(&w.instance, &w.imps, &gains);

    let fmt = |r: &Result<partita_core::Selection, partita_core::CoreError>| match r {
        Ok(s) => format!("area {:>7}, gain {:>10}", s.total_area().to_string(), s.total_gain().get()),
        Err(_) => "infeasible".to_owned(),
    };
    println!("{name} @ RG {}", rg.get());
    println!("    ilp          {} ({:.1?})", fmt(&ilp), ilp_time);
    println!("    greedy       {}", fmt(&greedy));
    println!("    no-interface {}", fmt(&noif));

    if let (Ok(i), Ok(g)) = (&ilp, &greedy) {
        assert!(i.total_area() <= g.total_area(), "ILP must dominate greedy");
    }
}

fn main() {
    println!("Ablation: ILP vs greedy vs no-interface baseline\n");

    let enc = gsm::encoder();
    run_one("gsm_encoder", &enc, enc.rg_sweep[4]);
    run_one("gsm_encoder", &enc, *enc.rg_sweep.last().expect("sweep"));
    let dec = gsm::decoder();
    run_one("gsm_decoder", &dec, *dec.rg_sweep.last().expect("sweep"));
    let jp = jpeg::encoder();
    run_one("jpeg_encoder", &jp, jp.rg_sweep[2]);

    println!("\nrandom instances (seeded):");
    for seed in [1u64, 2, 3] {
        let w = synth::generate(synth::SynthParams {
            scalls: 14,
            ips: 10,
            paths: 2,
            seed,
        });
        let rg = w.rg_sweep[1];
        run_one(&format!("synth(seed={seed})"), &w, rg);
    }

    println!("\nsolver scaling (s-calls -> solve time):");
    for n in [8usize, 12, 16, 20, 24] {
        let w = synth::generate(synth::SynthParams {
            scalls: n,
            ips: n / 2,
            paths: 2,
            seed: 99,
        });
        let t0 = Instant::now();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::new(RequiredGains::Uniform(w.rg_sweep[1])));
        println!(
            "    {n:>3} s-calls, {:>4} IMPs: {:>9.2?} ({})",
            w.imps.len(),
            t0.elapsed(),
            sel.map(|s| format!("nodes {}", s.nodes_explored))
                .unwrap_or_else(|e| e.to_string())
        );
    }
}
