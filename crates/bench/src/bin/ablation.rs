//! Ablation study (beyond the paper's tables): the exact ILP selector vs
//! the greedy heuristic vs the no-interface prior approach \[8\], over random
//! instances and the calibrated workloads.

use std::time::{Duration, Instant};

use partita_bench::cold_vs_chained_sweep;
use partita_core::{
    baseline, BatchJob, RequiredGains, SolveBudget, SolveOptions, Solver, SweepSession, SweepTrace,
};
use partita_mop::Cycles;
use partita_workloads::{gsm, jpeg, synth, Workload};

fn run_one(name: &str, w: &Workload, rg: Cycles) {
    let gains = RequiredGains::uniform(rg);
    let t0 = Instant::now();
    let ilp = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&SolveOptions::problem2(gains.clone()));
    let ilp_time = t0.elapsed();
    let greedy = baseline::solve_greedy(&w.instance, &w.imps, &gains);
    let noif = baseline::solve_no_interface(&w.instance, &w.imps, &gains);

    let fmt = |r: &Result<partita_core::Selection, partita_core::CoreError>| match r {
        Ok(s) => format!(
            "area {:>7}, gain {:>10}",
            s.total_area().to_string(),
            s.total_gain().get()
        ),
        Err(_) => "infeasible".to_owned(),
    };
    println!("{name} @ RG {}", rg.get());
    println!("    ilp          {} ({:.1?})", fmt(&ilp), ilp_time);
    println!("    greedy       {}", fmt(&greedy));
    println!("    no-interface {}", fmt(&noif));

    if let (Ok(i), Ok(g)) = (&ilp, &greedy) {
        assert!(i.total_area() <= g.total_area(), "ILP must dominate greedy");
    }
}

fn main() {
    println!("Ablation: ILP vs greedy vs no-interface baseline\n");

    let enc = gsm::encoder();
    run_one("gsm_encoder", &enc, enc.rg_sweep[4]);
    run_one("gsm_encoder", &enc, *enc.rg_sweep.last().expect("sweep"));
    let dec = gsm::decoder();
    run_one("gsm_decoder", &dec, *dec.rg_sweep.last().expect("sweep"));
    let jp = jpeg::encoder();
    run_one("jpeg_encoder", &jp, jp.rg_sweep[2]);

    println!("\nrandom instances (seeded):");
    for seed in [1u64, 2, 3] {
        let w = synth::generate(synth::SynthParams::sized(14, 10, 2, seed));
        let rg = w.rg_sweep[1];
        run_one(&format!("synth(seed={seed})"), &w, rg);
    }

    println!("\nsolver scaling (s-calls -> solve time, 5 s deadline per point):");
    for n in [8usize, 12, 16, 20, 24] {
        let w = synth::generate(synth::SynthParams::sized(n, n / 2, 2, 99));
        let opts = SolveOptions::problem2(RequiredGains::uniform(w.rg_sweep[1]))
            .budget(SolveBudget::default().with_deadline(Duration::from_secs(5)));
        let t0 = Instant::now();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&opts);
        println!(
            "    {n:>3} s-calls, {:>4} IMPs: {:>9.2?} ({})",
            w.imps.len(),
            t0.elapsed(),
            sel.map(|s| format!("nodes {}, {}", s.trace.nodes_explored, s.status))
                .unwrap_or_else(|e| e.to_string())
        );
    }

    warm_start_sweep("GSM encoder", &gsm::encoder());
    let synth3 = synth::generate(synth::SynthParams::sized(14, 10, 2, 3));
    warm_start_sweep("synth(seed=3)", &synth3);

    thread_scaling();
    sweep_orchestration();
}

/// Cold vs descending-RG chained sweeps on the three published tables, plus
/// a batched solve of the whole JPEG sweep. Chaining must never change a
/// selection; the node savings are the point of the sweep layer.
fn sweep_orchestration() {
    println!("\nsweep orchestration (independent cold solves vs chained sweep, B&B nodes):");
    let mut cold_total = 0u64;
    let mut chained_total = 0u64;
    for (label, w) in [
        ("gsm_encoder", gsm::encoder()),
        ("gsm_decoder", gsm::decoder()),
        ("jpeg_encoder", jpeg::encoder()),
    ] {
        let (cold, chained) = cold_vs_chained_sweep(&w, &SolveOptions::default());
        cold_total += cold.total_nodes();
        chained_total += chained.total_nodes();
        println!("{}", SweepTrace::compare_json(label, &cold, &chained));
    }
    println!(
        "    total: cold {cold_total} nodes, chained {chained_total} nodes, saved {}",
        cold_total as i64 - chained_total as i64
    );

    println!("\nbatched sweep (JPEG encoder, 4-thread pool, shared solve cache):");
    let w = jpeg::encoder();
    let jobs: Vec<BatchJob<'_>> = w
        .rg_sweep
        .iter()
        .map(|&rg| BatchJob {
            instance: &w.instance,
            db: &w.imps,
            options: SolveOptions::problem2(RequiredGains::uniform(rg)),
        })
        .collect();
    let mut session = SweepSession::new();
    let t0 = Instant::now();
    let first = session.solve_batch(&jobs, 4);
    let first_wall = t0.elapsed();
    let t1 = Instant::now();
    let second = session.solve_batch(&jobs, 4);
    let second_wall = t1.elapsed();
    for (a, b) in first.iter().zip(&second) {
        let (a, b) = (a.as_ref().expect("feasible"), b.as_ref().expect("feasible"));
        assert_eq!(a, b, "cached batch must be byte-identical");
    }
    let trace = session.take_trace();
    println!(
        "    {} jobs: first batch {first_wall:.2?}, cached batch {second_wall:.2?} \
         ({} cache hits / {} misses)",
        jobs.len(),
        trace.cache_hits,
        trace.cache_misses
    );
    println!("{}", trace.to_json("jpeg_batch"));
}

/// Solves one synthetic instance at growing worker-thread counts and prints
/// wall time plus node throughput; the selection must be identical at every
/// thread count (determinism contract). Speedup is hardware-dependent —
/// on a single-core container expect ~1x with a small scheduling overhead;
/// the invariant this section enforces is identical results, not a ratio.
fn thread_scaling() {
    println!("\nthread scaling (synth 16 s-calls, area at every count must match):");
    let w = synth::generate(synth::SynthParams::sized(16, 8, 2, 99));
    let rg = w.rg_sweep[1];
    let mut base: Option<(partita_mop::AreaTenths, Duration)> = None;
    for threads in [1usize, 2, 4, 8] {
        let opts = SolveOptions::problem2(RequiredGains::uniform(rg))
            .budget(SolveBudget::default().with_threads(threads));
        let t0 = Instant::now();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&opts)
            .expect("sweep point feasible");
        let wall = t0.elapsed();
        let speedup = match &base {
            None => {
                base = Some((sel.total_area(), wall));
                1.0
            }
            Some((area, serial_wall)) => {
                assert_eq!(
                    *area,
                    sel.total_area(),
                    "selection diverged at {threads} threads"
                );
                serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9)
            }
        };
        println!(
            "    {threads} thr: {wall:>9.2?}  nodes {:>6}  per-worker {:?}  speedup x{speedup:.2}",
            sel.trace.nodes_explored, sel.trace.worker_nodes
        );
    }
}

/// Solves every RG-sweep point of `w` twice — with and without the greedy
/// warm start — and prints the branch-and-bound effort side by side.
fn warm_start_sweep(name: &str, w: &Workload) {
    println!("\nwarm-start ablation ({name} RG sweep, B&B nodes explored):");
    for &rg in &w.rg_sweep {
        let solve = |warm: bool| {
            Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)).warm_start(warm))
        };
        let (Ok(cold), Ok(warm)) = (solve(false), solve(true)) else {
            println!("    RG {:>8}: infeasible", rg.get());
            continue;
        };
        println!(
            "    RG {:>8}: cold {:>5} nodes / {:>6} pivots, warm {:>5} nodes / {:>6} pivots{}",
            rg.get(),
            cold.trace.nodes_explored,
            cold.trace.simplex_iterations,
            warm.trace.nodes_explored,
            warm.trace.simplex_iterations,
            if warm.trace.warm_start_accepted {
                ""
            } else {
                "  (warm start rejected)"
            }
        );
    }
}
