//! Ablation study (beyond the paper's tables): the exact ILP selector vs
//! the greedy heuristic vs the no-interface prior approach \[8\], over random
//! instances and the calibrated workloads.

use std::time::{Duration, Instant};

use partita_core::{baseline, RequiredGains, SolveBudget, SolveOptions, Solver};
use partita_mop::Cycles;
use partita_workloads::{gsm, jpeg, synth, Workload};

fn run_one(name: &str, w: &Workload, rg: Cycles) {
    let gains = RequiredGains::Uniform(rg);
    let t0 = Instant::now();
    let ilp = Solver::new(&w.instance)
        .with_imps(w.imps.clone())
        .solve(&SolveOptions::new(gains.clone()));
    let ilp_time = t0.elapsed();
    let greedy = baseline::solve_greedy(&w.instance, &w.imps, &gains);
    let noif = baseline::solve_no_interface(&w.instance, &w.imps, &gains);

    let fmt = |r: &Result<partita_core::Selection, partita_core::CoreError>| match r {
        Ok(s) => format!(
            "area {:>7}, gain {:>10}",
            s.total_area().to_string(),
            s.total_gain().get()
        ),
        Err(_) => "infeasible".to_owned(),
    };
    println!("{name} @ RG {}", rg.get());
    println!("    ilp          {} ({:.1?})", fmt(&ilp), ilp_time);
    println!("    greedy       {}", fmt(&greedy));
    println!("    no-interface {}", fmt(&noif));

    if let (Ok(i), Ok(g)) = (&ilp, &greedy) {
        assert!(i.total_area() <= g.total_area(), "ILP must dominate greedy");
    }
}

fn main() {
    println!("Ablation: ILP vs greedy vs no-interface baseline\n");

    let enc = gsm::encoder();
    run_one("gsm_encoder", &enc, enc.rg_sweep[4]);
    run_one("gsm_encoder", &enc, *enc.rg_sweep.last().expect("sweep"));
    let dec = gsm::decoder();
    run_one("gsm_decoder", &dec, *dec.rg_sweep.last().expect("sweep"));
    let jp = jpeg::encoder();
    run_one("jpeg_encoder", &jp, jp.rg_sweep[2]);

    println!("\nrandom instances (seeded):");
    for seed in [1u64, 2, 3] {
        let w = synth::generate(synth::SynthParams {
            scalls: 14,
            ips: 10,
            paths: 2,
            seed,
        });
        let rg = w.rg_sweep[1];
        run_one(&format!("synth(seed={seed})"), &w, rg);
    }

    println!("\nsolver scaling (s-calls -> solve time, 5 s deadline per point):");
    for n in [8usize, 12, 16, 20, 24] {
        let w = synth::generate(synth::SynthParams {
            scalls: n,
            ips: n / 2,
            paths: 2,
            seed: 99,
        });
        let opts = SolveOptions::new(RequiredGains::Uniform(w.rg_sweep[1]))
            .with_budget(SolveBudget::default().with_deadline(Duration::from_secs(5)));
        let t0 = Instant::now();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&opts);
        println!(
            "    {n:>3} s-calls, {:>4} IMPs: {:>9.2?} ({})",
            w.imps.len(),
            t0.elapsed(),
            sel.map(|s| format!("nodes {}, {}", s.trace.nodes_explored, s.status))
                .unwrap_or_else(|e| e.to_string())
        );
    }

    warm_start_sweep("GSM encoder", &gsm::encoder());
    let synth3 = synth::generate(synth::SynthParams {
        scalls: 14,
        ips: 10,
        paths: 2,
        seed: 3,
    });
    warm_start_sweep("synth(seed=3)", &synth3);

    thread_scaling();
}

/// Solves one synthetic instance at growing worker-thread counts and prints
/// wall time plus node throughput; the selection must be identical at every
/// thread count (determinism contract). Speedup is hardware-dependent —
/// on a single-core container expect ~1x with a small scheduling overhead;
/// the invariant this section enforces is identical results, not a ratio.
fn thread_scaling() {
    println!("\nthread scaling (synth 16 s-calls, area at every count must match):");
    let w = synth::generate(synth::SynthParams {
        scalls: 16,
        ips: 8,
        paths: 2,
        seed: 99,
    });
    let rg = w.rg_sweep[1];
    let mut base: Option<(partita_mop::AreaTenths, Duration)> = None;
    for threads in [1usize, 2, 4, 8] {
        let opts = SolveOptions::new(RequiredGains::Uniform(rg))
            .with_budget(SolveBudget::default().with_threads(threads));
        let t0 = Instant::now();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&opts)
            .expect("sweep point feasible");
        let wall = t0.elapsed();
        let speedup = match &base {
            None => {
                base = Some((sel.total_area(), wall));
                1.0
            }
            Some((area, serial_wall)) => {
                assert_eq!(
                    *area,
                    sel.total_area(),
                    "selection diverged at {threads} threads"
                );
                serial_wall.as_secs_f64() / wall.as_secs_f64().max(1e-9)
            }
        };
        println!(
            "    {threads} thr: {wall:>9.2?}  nodes {:>6}  per-worker {:?}  speedup x{speedup:.2}",
            sel.trace.nodes_explored, sel.trace.worker_nodes
        );
    }
}

/// Solves every RG-sweep point of `w` twice — with and without the greedy
/// warm start — and prints the branch-and-bound effort side by side.
fn warm_start_sweep(name: &str, w: &Workload) {
    println!("\nwarm-start ablation ({name} RG sweep, B&B nodes explored):");
    for &rg in &w.rg_sweep {
        let solve = |warm: bool| {
            Solver::new(&w.instance)
                .with_imps(w.imps.clone())
                .solve(&SolveOptions::new(RequiredGains::Uniform(rg)).with_warm_start(warm))
        };
        let (Ok(cold), Ok(warm)) = (solve(false), solve(true)) else {
            println!("    RG {:>8}: infeasible", rg.get());
            continue;
        };
        println!(
            "    RG {:>8}: cold {:>5} nodes / {:>6} pivots, warm {:>5} nodes / {:>6} pivots{}",
            rg.get(),
            cold.trace.nodes_explored,
            cold.trace.simplex_iterations,
            warm.trace.nodes_explored,
            warm.trace.simplex_iterations,
            if warm.trace.warm_start_accepted {
                ""
            } else {
                "  (warm start rejected)"
            }
        );
    }
}
