//! Reproduces **Fig. 8**: multiple execution paths after an s-call; the
//! parallel code is the *shortest* of the per-path maxima (Definition 5).
//!
//! A Partita-C program places four different-length independent code
//! segments after `fir()` on four branch combinations; the analysis must
//! return the minimum.

use partita_core::parallel_code;
use partita_frontend::compile;
use partita_mop::{enumerate_paths, PathEnumLimits};

fn main() {
    // Two nested ifs after fir() -> four execution paths (P1..P4 of Fig. 8)
    // with independent segment lengths that differ per path.
    let src = "
        xmem a[16] @ 0;  ymem b[16] @ 0;  xmem t[16] @ 32;
        fn fir() reads a writes b { let i = 0; while (i < 16) { b[i] = a[i]; i = i + 1; } }
        fn dct() reads b writes b { }
        fn main() {
            fir();
            let c1 = t[0];
            let c2 = t[1];
            if (c1 < 4) {
                t[2] = 1; t[3] = 2; t[4] = 3; t[5] = 4;   // long segment
            } else {
                t[2] = 9;                                   // short segment
            }
            if (c2 < 4) {
                t[6] = 1; t[7] = 2;
            } else {
                t[8] = 1; t[9] = 2; t[10] = 3;
            }
            dct();
        }
    ";
    let compiled = compile(src).expect("fig8 source compiles");
    let main_id = compiled.program.function_by_name("main").expect("main");
    let func = compiled.program.function(main_id).expect("main exists");
    let paths = enumerate_paths(func, PathEnumLimits::default()).expect("paths enumerate");
    println!("Fig. 8 — {} execution paths after fir()", paths.len());

    let infos = parallel_code::analyze_function(&compiled, main_id).expect("analysis");
    let (_, fir_info) = &infos[0];
    println!(
        "fir(): PC = {} µ-operations (minimum over all paths), {} independent s-call(s)",
        fir_info.cycles.get(),
        fir_info.sw_candidate_mops.len()
    );
    // dct() reads fir's output region -> it is NOT independent of fir.
    assert!(fir_info.sw_candidate_mops.is_empty());
    // The binding path is the one with the short `else` segment; the PC must
    // be far smaller than the long-branch segment.
    assert!(fir_info.cycles.get() > 0);
    // The long branch alone holds a 4-store (20 µ-op) independent run; the
    // reported PC must be bounded by the *shortest* path's best segment.
    assert!(
        fir_info.cycles.get() < 20,
        "PC {} should be bounded by the shortest path",
        fir_info.cycles.get()
    );
    println!("PC is bounded by the shortest execution path, as Definition 5 requires");
}
