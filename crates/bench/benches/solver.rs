//! Criterion benches: ILP stack scaling — simplex, branch-and-bound, and
//! the full selector over growing random instances, plus the greedy and
//! no-interface ablation baselines.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use partita_core::{baseline, RequiredGains, SolveOptions, Solver};
use partita_ilp::{simplex, BranchBound, Model, Relation, Sense};
use partita_workloads::synth::{generate, SynthParams};

fn knapsack_model(n: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..n).map(|i| m.add_binary(format!("x{i}"))).collect();
    m.set_objective(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, (3 + (i * 7) % 13) as f64)),
    );
    m.add_constraint(
        vars.iter()
            .enumerate()
            .map(|(i, &v)| (v, (2 + (i * 5) % 11) as f64)),
        Relation::Le,
        (n * 3) as f64,
    )
    .expect("constraint valid");
    m
}

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("ilp_stack");
    group.sample_size(10);
    for n in [10usize, 20, 40] {
        let model = knapsack_model(n);
        group.bench_with_input(BenchmarkId::new("simplex_relaxation", n), &model, |b, m| {
            b.iter(|| simplex::solve_relaxation(m, simplex::SimplexOptions::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("branch_bound", n), &model, |b, m| {
            b.iter(|| BranchBound::new().solve(m).unwrap());
        });
    }
    group.finish();

    let mut group = c.benchmark_group("selector_scaling");
    group.sample_size(10);
    for scalls in [8usize, 16, 24] {
        let w = generate(SynthParams::sized(scalls, scalls / 2, 2, 99));
        let rg = w.rg_sweep[1];
        group.bench_with_input(BenchmarkId::new("ilp", scalls), &w, |b, w| {
            b.iter(|| {
                Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))
            });
        });
        group.bench_with_input(BenchmarkId::new("greedy", scalls), &w, |b, w| {
            b.iter(|| baseline::solve_greedy(&w.instance, &w.imps, &RequiredGains::uniform(rg)));
        });
        group.bench_with_input(BenchmarkId::new("no_interface", scalls), &w, |b, w| {
            b.iter(|| {
                baseline::solve_no_interface(&w.instance, &w.imps, &RequiredGains::uniform(rg))
            });
        });
    }
    group.finish();
}

criterion_group!(solver, benches);
criterion_main!(solver);
