//! Criterion benches: end-to-end solve time for every table of the paper
//! (the paper ran on a SPARC-20; these timings are our equivalent of its
//! implicit runtime claim that the ILP is practical).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use partita_core::{RequiredGains, SolveOptions, Solver};
use partita_workloads::{gsm, jpeg, Workload};

fn bench_workload(c: &mut Criterion, name: &str, w: &Workload) {
    let mut group = c.benchmark_group(name);
    group.sample_size(10);
    for (i, &rg) in w.rg_sweep.iter().enumerate() {
        group.bench_with_input(BenchmarkId::new("row", i + 1), &rg, |b, &rg| {
            b.iter(|| {
                Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&SolveOptions::problem2(RequiredGains::uniform(rg)))
                    .expect("sweep point feasible")
            });
        });
    }
    group.finish();
}

fn benches(c: &mut Criterion) {
    bench_workload(c, "table1_gsm_encoder", &gsm::encoder());
    bench_workload(c, "table2_gsm_decoder", &gsm::decoder());
    bench_workload(c, "table3_jpeg_encoder", &jpeg::encoder());
}

criterion_group!(tables, benches);
criterion_main!(tables);
