//! Criterion benches: the functional DSP kernels behind the IP library
//! (the workloads the paper's applications spend their cycles in).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use partita_ip::func::{
    cross_correlate, dct2d, fft, fir_direct, iir_df1, interpolate, quantize_uniform, zigzag_scan,
    Complex,
};

fn benches(c: &mut Criterion) {
    let mut group = c.benchmark_group("dsp_kernels");

    let x: Vec<i32> = (0..1024).map(|i| (i * 37 % 255) - 128).collect();
    let taps: Vec<i32> = (0..16).map(|i| i - 8).collect();
    group.bench_function("fir_1024x16", |b| {
        b.iter(|| fir_direct(&x, &taps));
    });
    group.bench_function("iir_1024_biquad", |b| {
        let q = partita_ip::func::Biquad::Q;
        b.iter(|| iir_df1(&x, &[q / 4, q / 2, q / 4], &[q, -q / 3, q / 8]));
    });
    group.bench_function("correlate_1024x64", |b| {
        b.iter(|| cross_correlate(&x, &x, 64));
    });
    group.bench_function("quantize_1024", |b| {
        b.iter(|| quantize_uniform(&x, 8, 127));
    });
    group.bench_function("interpolate_256x4", |b| {
        b.iter(|| interpolate(&x[..256], 4, &[1, 3, 3, 1]));
    });

    for n in [256usize, 1024] {
        let data: Vec<Complex> = (0..n)
            .map(|i| Complex::new((i as f64 * 0.37).sin(), (i as f64 * 0.11).cos()))
            .collect();
        group.bench_with_input(BenchmarkId::new("fft", n), &data, |b, data| {
            b.iter(|| {
                let mut d = data.clone();
                fft(&mut d).unwrap();
                d
            });
        });
    }

    let block: Vec<f64> = (0..64).map(|i| f64::from((i * 31) % 17)).collect();
    group.bench_function("dct2d_8x8", |b| {
        b.iter(|| dct2d(&block, 8, 8));
    });
    let zz: Vec<i32> = (0..64).collect();
    group.bench_function("zigzag_8x8", |b| {
        b.iter(|| zigzag_scan(&zz, 8));
    });
    group.finish();
}

criterion_group!(kernels, benches);
criterion_main!(kernels);
