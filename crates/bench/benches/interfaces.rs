//! Criterion benches: interface-layer costs — timing-model evaluation, IMP
//! database generation, template emission and template co-simulation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use partita_asip::{CycleModel, ExecOptions, Executor, Kernel};
use partita_core::ImpDb;
use partita_interface::cosim::StreamIpDevice;
use partita_interface::template::{emit_type0, emit_type1, DataLayout};
use partita_interface::{execution_time, InterfaceKind, TransferJob};
use partita_ip::{IpBlock, IpFunction};
use partita_mop::MopProgram;
use partita_workloads::gsm;

fn fir_ip() -> IpBlock {
    IpBlock::builder("fir")
        .function(IpFunction::Fir)
        .ports(2, 2)
        .rates(4, 4)
        .latency(8)
        .build()
}

fn benches(c: &mut Criterion) {
    let ip = fir_ip();
    let job = TransferJob::new(320, 320);

    let mut group = c.benchmark_group("interface_layer");
    group.bench_function("timing_model_all_kinds", |b| {
        b.iter(|| {
            InterfaceKind::ALL
                .iter()
                .map(|&k| execution_time(&ip, k, job, None).unwrap())
                .collect::<Vec<_>>()
        });
    });
    group.bench_function("impdb_generate_gsm_encoder", |b| {
        let w = gsm::encoder();
        b.iter(|| ImpDb::generate(&w.instance));
    });
    for words in [64u64, 256] {
        let job = TransferJob::new(words, words);
        group.bench_with_input(BenchmarkId::new("emit_type0", words), &job, |b, &job| {
            b.iter(|| emit_type0(&ip, job, DataLayout::default()).unwrap());
        });
        group.bench_with_input(BenchmarkId::new("emit_type1", words), &job, |b, &job| {
            b.iter(|| emit_type1(&ip, job, DataLayout::default(), &[]).unwrap());
        });
    }
    group.bench_function("cosim_type0_64words", |b| {
        let job = TransferJob::new(64, 64);
        let layout = DataLayout {
            in_x: 0,
            in_y: 0,
            out_x: 200,
            out_y: 200,
        };
        let template = emit_type0(&ip, job, layout).unwrap();
        b.iter(|| {
            let mut program = MopProgram::new();
            let id = program.add_function(template.function.clone()).unwrap();
            program.set_main(id).unwrap();
            let mut kernel = Kernel::new(512, 512);
            let mut dev = StreamIpDevice::new(&ip, 1, Box::new(|s| s.to_vec()));
            Executor::new(&program)
                .run_with_device(
                    &mut kernel,
                    &mut dev,
                    &ExecOptions {
                        cycle_model: CycleModel::PerWord,
                        branch_penalty: 0,
                        ..ExecOptions::default()
                    },
                )
                .unwrap()
        });
    });
    group.finish();
}

criterion_group!(interfaces, benches);
criterion_main!(interfaces);
