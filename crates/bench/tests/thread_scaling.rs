//! Smoke test for the ablation binary's thread-scaling section: the
//! instance it times must complete unbudgeted in reasonable time and give
//! identical selections at every thread count.

use std::time::Instant;

use partita_core::{RequiredGains, SolveBudget, SolveOptions, Solver};
use partita_workloads::synth;

#[test]
fn thread_scaling_instance_completes_and_is_deterministic() {
    let w = synth::generate(synth::SynthParams::sized(16, 8, 2, 99));
    let rg = w.rg_sweep[1];
    let mut area = None;
    for threads in [1usize, 4] {
        let t0 = Instant::now();
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(
                &SolveOptions::problem2(RequiredGains::uniform(rg))
                    .budget(SolveBudget::default().with_threads(threads)),
            )
            .expect("feasible");
        println!(
            "threads {threads}: {:?}, nodes {}, status {}",
            t0.elapsed(),
            sel.trace.nodes_explored,
            sel.status
        );
        assert!(sel.status.is_optimal());
        match area {
            None => area = Some(sel.total_area()),
            Some(a) => assert_eq!(a, sel.total_area()),
        }
    }
}
