//! Contracts of the benchsuite report: stable serialization, lossless
//! round-trips, and a compare gate that passes on itself and fails on
//! injected regressions.

use partita_bench::suite::{
    compare_reports, fig9_workload, run_suite, SuiteConfig, SuiteReport, DEFAULT_WALL_THRESHOLD,
    WALL_NOISE_FLOOR_US,
};
use partita_core::telemetry::json::JsonValue;

fn quick_report() -> SuiteReport {
    run_suite(&SuiteConfig {
        threads: vec![1],
        quick: true,
    })
}

#[test]
fn quick_suite_report_parses_with_sorted_keys() {
    let report = quick_report();
    let rendered = report.to_json();
    let doc = JsonValue::parse(&rendered).expect("report is valid JSON");
    assert_eq!(doc.get("schema").and_then(JsonValue::as_u64), Some(1));
    assert_eq!(
        doc.get("suite").and_then(JsonValue::as_str),
        Some("partita-benchsuite")
    );
    let keys = doc
        .get("configs")
        .and_then(JsonValue::keys)
        .expect("configs object");
    assert_eq!(keys.len(), 4, "2 quick workloads x cold/chained x t1");
    let mut sorted = keys.clone();
    sorted.sort_unstable();
    assert_eq!(keys, sorted, "config keys must serialize sorted");
    for key in keys {
        let cfg = doc.get("configs").unwrap().get(key).unwrap();
        assert!(cfg.get("portable").is_some(), "{key}: portable section");
        assert!(cfg.get("machine").is_some(), "{key}: machine section");
        let nodes = cfg.get("portable").unwrap().get("nodes").unwrap();
        assert!(
            nodes.as_u64().is_some(),
            "{key}: single-threaded nodes are portable"
        );
    }
}

#[test]
fn report_round_trips_through_json() {
    let report = quick_report();
    let parsed = SuiteReport::from_json(&report.to_json()).expect("round-trip parses");
    assert_eq!(parsed, report);
}

#[test]
fn compare_passes_against_itself() {
    let report = quick_report();
    assert_eq!(
        compare_reports(&report, &report, DEFAULT_WALL_THRESHOLD),
        Vec::<String>::new()
    );
}

#[test]
fn compare_flags_injected_regressions() {
    let baseline = quick_report();
    // Node regression: the current run explores one more node than baseline.
    let mut current = baseline.clone();
    let key = current.configs[0].0.clone();
    current.configs[0].1.portable_nodes = baseline.configs[0].1.portable_nodes.map(|n| n + 1);
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert_eq!(regressions.len(), 1, "{regressions:?}");
    assert!(regressions[0].starts_with(&key));
    assert!(regressions[0].contains("node count regressed"));

    // Wall regression: beyond both the 15% threshold and the noise floor.
    let mut current = baseline.clone();
    current.configs[1].1.wall_us = baseline.configs[1]
        .1
        .wall_us
        .saturating_mul(2)
        .saturating_add(2 * WALL_NOISE_FLOOR_US);
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert_eq!(regressions.len(), 1, "{regressions:?}");
    assert!(regressions[0].contains("wall time regressed"));

    // Sub-noise-floor wall growth is NOT a regression.
    let mut current = baseline.clone();
    current.configs[1].1.wall_us += WALL_NOISE_FLOOR_US / 2;
    assert!(compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD).is_empty());

    // Portable drift: a selection changed area.
    let mut current = baseline.clone();
    current.configs[2].1.points[0].area_tenths += 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert_eq!(regressions.len(), 1, "{regressions:?}");
    assert!(regressions[0].contains("portable selection results drifted"));

    // Missing config.
    let mut current = baseline.clone();
    current.configs.remove(3);
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert_eq!(regressions.len(), 1, "{regressions:?}");
    assert!(regressions[0].contains("config missing"));
}

#[test]
fn resolve_section_saves_nodes_and_gates_regressions() {
    let baseline = quick_report();
    // Quick mode still benches the incremental layer on table3.
    assert_eq!(baseline.resolve.len(), 1, "quick mode benches table3");
    assert_eq!(baseline.resolve[0].0, "table3");
    let r = &baseline.resolve[0].1;
    assert!(
        r.delta_nodes < r.cold_nodes,
        "delta walk must save nodes on table3 ({} !< {})",
        r.delta_nodes,
        r.cold_nodes
    );
    assert!(
        r.basis_reused >= 1,
        "descending SetRg patches must repair the retained basis"
    );

    // Portable drift in the resolve section is a regression.
    let mut current = baseline.clone();
    current.resolve[0].1.basis_reused += 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("portable resolve counters drifted")),
        "{regressions:?}"
    );

    // A delta walk that costs nodes fails the self-contained gate even if
    // the baseline agreed.
    let mut current = baseline.clone();
    current.resolve[0].1.delta_nodes = current.resolve[0].1.cold_nodes + 1;
    let mut drifted = baseline.clone();
    drifted.resolve[0].1.delta_nodes = current.resolve[0].1.delta_nodes;
    let regressions = compare_reports(&drifted, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions.iter().any(|m| m.contains("cost nodes")),
        "{regressions:?}"
    );

    // A resolve entry the baseline had must not vanish.
    let mut current = baseline.clone();
    current.resolve.clear();
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("missing from current run")),
        "{regressions:?}"
    );
}

#[test]
fn corpus_section_covers_quick_groups_and_gates_regressions() {
    let baseline = quick_report();
    // Quick mode runs one optimal group and one heuristic group.
    let keys: Vec<&str> = baseline.corpus.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["synth:small", "synth:table"]);
    for (key, c) in &baseline.corpus {
        assert!(c.entries > 0, "{key}: empty corpus group");
        assert_eq!(
            c.solved + c.infeasible,
            c.entries,
            "{key}: every entry is either solved or typed-infeasible"
        );
        assert!(c.solved > 0, "{key}: no entry solved at mid-sweep");
    }
    let small = &baseline.corpus[0].1;
    let table = &baseline.corpus[1].1;
    assert!(
        small.nodes > 0,
        "synth:small runs branch-and-bound, so nodes are counted"
    );
    assert_eq!(
        table.nodes, 0,
        "synth:table runs greedy, which explores no nodes"
    );

    // A corpus group the baseline had must not vanish.
    let mut current = baseline.clone();
    current.corpus.remove(1);
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("corpus/synth:table") && m.contains("missing")),
        "{regressions:?}"
    );

    // Feasibility split drift is a regression.
    let mut current = baseline.clone();
    current.corpus[0].1.solved -= 1;
    current.corpus[0].1.infeasible += 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("entry/feasibility tallies drifted")),
        "{regressions:?}"
    );

    // Selection-quality drift is a regression.
    let mut current = baseline.clone();
    current.corpus[0].1.gain += 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("portable selection quality drifted")),
        "{regressions:?}"
    );

    // Node growth is a regression; node savings are not.
    let mut current = baseline.clone();
    current.corpus[0].1.nodes += 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("corpus/synth:small") && m.contains("node count regressed")),
        "{regressions:?}"
    );
    let mut current = baseline.clone();
    current.corpus[0].1.nodes = current.corpus[0].1.nodes.saturating_sub(1);
    assert!(compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD).is_empty());
}

#[test]
fn reports_without_a_corpus_section_still_parse() {
    let baseline = quick_report();
    let rendered = baseline.to_json();
    let idx = rendered
        .find(",\n  \"corpus\"")
        .expect("rendered report has a corpus section");
    let legacy = format!("{}\n}}\n", &rendered[..idx]);
    let parsed = SuiteReport::from_json(&legacy).expect("pre-corpus reports parse");
    assert!(parsed.corpus.is_empty());
    assert!(parsed.resolve.is_empty());
    assert_eq!(parsed.configs, baseline.configs);
}

#[test]
fn reports_without_a_resolve_section_still_parse() {
    let baseline = quick_report();
    let rendered = baseline.to_json();
    let idx = rendered
        .find(",\n  \"resolve\"")
        .expect("rendered report has a resolve section");
    let legacy = format!("{}\n}}\n", &rendered[..idx]);
    let parsed = SuiteReport::from_json(&legacy).expect("pre-resolve reports parse");
    assert!(parsed.resolve.is_empty());
    assert_eq!(parsed.configs, baseline.configs);
}

#[test]
fn portfolio_section_races_micro_and_gates_regressions() {
    let baseline = quick_report();
    // Quick mode races the micro group.
    let keys: Vec<&str> = baseline.portfolio.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["synth:micro"]);
    let p = &baseline.portfolio[0].1;
    assert!(p.points > 0, "no feasible point was raced");
    assert_eq!(
        p.racers.iter().map(|r| r.wins).sum::<u64>(),
        p.points,
        "every raced point is attributed to exactly one racer"
    );
    assert!(
        p.racers.iter().map(|r| r.backend.as_str()).eq([
            "branch_bound",
            "conflict_enum",
            "lagrangian"
        ]),
        "racer line-up must match the portfolio default"
    );
    let bb = &p.racers[0];
    assert_eq!(bb.nodes, p.bb_nodes, "bb_nodes mirrors the first racer");
    assert!(
        p.best_nodes <= p.bb_nodes,
        "the per-point best racer can never cost more than branch-and-bound alone"
    );

    // Per-racer node growth is a regression.
    let mut current = baseline.clone();
    current.portfolio[0].1.racers[1].nodes += 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("portfolio/synth:micro") && m.contains("node count regressed")),
        "{regressions:?}"
    );

    // Race wall is machine-dependent and must NOT gate.
    let mut current = baseline.clone();
    current.portfolio[0].1.race_wall_us = current.portfolio[0].1.race_wall_us.saturating_mul(100);
    assert!(
        compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD).is_empty(),
        "race wall is not a portable gate"
    );

    // A portfolio group the baseline had must not vanish.
    let mut current = baseline.clone();
    current.portfolio.clear();
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("portfolio/synth:micro: group missing")),
        "{regressions:?}"
    );
}

#[test]
fn fig9_workload_reproduces_the_problem2_advantage() {
    use partita_core::{ProblemKind, RequiredGains, SolveOptions, Solver};
    use partita_mop::Cycles;
    let w = fig9_workload();
    let rg = RequiredGains::uniform(Cycles(1500));
    let solve = |problem| {
        Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&SolveOptions::for_problem(problem, rg.clone()))
            .expect("fig9 feasible")
    };
    let p1 = solve(ProblemKind::Problem1);
    let p2 = solve(ProblemKind::Problem2);
    assert!(
        p2.total_area() < p1.total_area(),
        "Problem 2 must beat Problem 1 on the Fig. 9 instance"
    );
}

#[test]
fn service_section_shares_the_cache_and_gates_regressions() {
    let baseline = quick_report();
    // Quick mode drives the micro group through the daemon core.
    let keys: Vec<&str> = baseline.service.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(keys, ["synth:micro"]);
    let s = &baseline.service[0].1;
    assert_eq!(s.ok, s.requests, "every scripted request must succeed");
    assert_eq!(
        s.cache_hits * 2,
        s.requests,
        "the second tenant's pass must be answered from the shared cache"
    );
    assert_eq!(s.degraded, 0, "the benchmark policy never degrades");

    // Portable drift in the service section is a regression.
    let mut current = baseline.clone();
    current.service[0].1.cache_hits -= 1;
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("portable service tallies drifted")),
        "{regressions:?}"
    );

    // Latency percentiles are machine-dependent and must NOT gate.
    let mut current = baseline.clone();
    current.service[0].1.p99_us = current.service[0].1.p99_us.saturating_mul(100) + 1_000_000;
    assert!(
        compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD).is_empty(),
        "latency is not a portable gate"
    );

    // A service group the baseline had must not vanish.
    let mut current = baseline.clone();
    current.service.clear();
    let regressions = compare_reports(&baseline, &current, DEFAULT_WALL_THRESHOLD);
    assert!(
        regressions
            .iter()
            .any(|m| m.contains("service/synth:micro: group missing")),
        "{regressions:?}"
    );
}
