//! The hot-path profiling probe behind `docs/PROFILING.md`: per headline
//! workload, one cold sweep at a single thread, printing total simplex
//! iterations, node count and wall time. Run with `--nocapture` to see the
//! numbers; the assertions only pin what must never regress structurally
//! (every sweep solves, every trace carries the per-op counters).
//!
//! ```text
//! cargo test --release -p partita-bench --test probe -- --nocapture
//! ```

use std::time::Instant;

use partita_bench::suite::suite_workloads;
use partita_core::{SolveBudget, SolveOptions, SweepSession};

#[test]
fn probe() {
    for (key, w) in suite_workloads(false) {
        let base = SolveOptions::default().budget(SolveBudget::default().with_threads(1));
        let mut session = SweepSession::new();
        let started = Instant::now();
        let sels = session
            .sweep_cold(&w.instance, &w.imps, &base, &w.rg_sweep)
            .expect("headline sweeps are feasible by construction");
        let wall = started.elapsed().as_micros();
        let iters: usize = sels.iter().map(|s| s.trace.simplex_iterations).sum();
        let pivots: usize = sels
            .iter()
            .map(|s| {
                s.trace.phase1_pivots
                    + s.trace.phase2_pivots
                    + s.trace.dual_pivots
                    + s.trace.lex_pivots
            })
            .sum();
        let builds: usize = sels.iter().map(|s| s.trace.tableau_builds).sum();
        let reuses: usize = sels.iter().map(|s| s.trace.scratch_reuses).sum();
        let nodes: usize = sels.iter().map(|s| s.trace.nodes_explored).sum();
        println!(
            "PROBE {key} iters={iters} pivots={pivots} builds={builds} \
             reuses={reuses} nodes={nodes} wall_us={wall}"
        );
        assert!(iters > 0, "{key}: sweep must exercise the simplex");
        assert!(
            pivots > 0 && builds > 0,
            "{key}: per-op counters must be threaded through the sweep"
        );
        assert!(
            reuses > 0,
            "{key}: a multi-node sweep must reuse the solve scratch"
        );
    }
}
