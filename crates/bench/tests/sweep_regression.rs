//! Regression gate for the sweep orchestration layer: on the published
//! table sweeps, descending-RG chained sweeps must (a) return exactly the
//! selections of independent cold solves and (b) explore fewer total
//! branch-and-bound nodes. Node counts are compared at one worker thread so
//! the totals are deterministic run to run.

use partita_bench::{audit_sweep, cold_vs_chained_sweep};
use partita_core::{SolveBudget, SolveOptions};
use partita_workloads::{gsm, jpeg};

#[test]
fn chained_sweeps_save_nodes_on_published_tables() {
    let base = SolveOptions::default().budget(SolveBudget::default().with_threads(1));
    let mut cold_total = 0u64;
    let mut chained_total = 0u64;
    for (label, w) in [
        ("table1", gsm::encoder()),
        ("table2", gsm::decoder()),
        ("table3", jpeg::encoder()),
    ] {
        // cold_vs_chained_sweep panics if any per-point selection differs.
        let (cold, chained) = cold_vs_chained_sweep(&w, &base);
        assert_eq!(cold.points.len(), w.rg_sweep.len(), "{label}");
        assert_eq!(chained.points.len(), w.rg_sweep.len(), "{label}");
        // Every point below the top of the sweep chains its predecessor's
        // optimum (the monotone-feasibility argument never rejects it).
        assert_eq!(
            chained.chained_accepts,
            w.rg_sweep.len() as u64 - 1,
            "{label}"
        );
        assert_eq!(cold.chained_accepts, 0, "{label}");
        assert!(
            chained.total_nodes() <= cold.total_nodes(),
            "{label}: chaining must never cost nodes ({} > {})",
            chained.total_nodes(),
            cold.total_nodes()
        );
        cold_total += cold.total_nodes();
        chained_total += chained.total_nodes();
    }
    assert!(
        chained_total < cold_total,
        "chained sweeps must explore strictly fewer nodes across Tables 1-3 \
         (chained {chained_total} !< cold {cold_total})"
    );
}

/// Every selection behind the published Tables 1–3 must survive the
/// independent auditor — per-path gains, IP/interface area accounting,
/// conflict and parallel-code legality all re-derived from the raw
/// calibrated workloads.
#[test]
fn published_tables_are_audit_clean() {
    for (label, w) in [
        ("table1", gsm::encoder()),
        ("table2", gsm::decoder()),
        ("table3", jpeg::encoder()),
    ] {
        assert_eq!(audit_sweep(&w), 0, "{label} has audit violations");
    }
}
