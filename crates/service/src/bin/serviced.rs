//! `serviced` — the partita solve daemon.
//!
//! ```text
//! serviced [--stdio] [--workers N]          serve stdin/stdout (default)
//! serviced --unix PATH [--workers N]        listen on a Unix socket
//! serviced --tcp ADDR [--workers N]         listen on a TCP address
//! serviced --replay FILE [--check FILE]     scripted replay; with --check,
//!                                           diff against a golden log and
//!                                           exit nonzero on any mismatch
//! serviced --replay FILE --write FILE       regenerate a golden log
//! ```
//!
//! The protocol is one JSON request envelope per line (see
//! `docs/SERVICE.md`). Telemetry follows the usual `PARTITA_TRACE` /
//! `PARTITA_TRACE_PATH` environment switches.

use std::io::Write as _;
use std::process::ExitCode;
use std::sync::Arc;

use partita_service::{replay, server, ServiceConfig, ServiceCore};

fn fail(msg: &str) -> ExitCode {
    eprintln!("serviced: {msg}");
    ExitCode::FAILURE
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut workers: Option<usize> = None;
    let mut unix: Option<String> = None;
    let mut tcp: Option<String> = None;
    let mut replay_path: Option<String> = None;
    let mut check_path: Option<String> = None;
    let mut write_path: Option<String> = None;
    let mut stdio = false;

    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next()
                .cloned()
                .ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--stdio" => stdio = true,
            "--workers" => match value("--workers").map(|v| v.parse::<usize>()) {
                Ok(Ok(n)) => workers = Some(n.max(1)),
                _ => return fail("--workers needs a positive integer"),
            },
            "--unix" => match value("--unix") {
                Ok(v) => unix = Some(v),
                Err(e) => return fail(&e),
            },
            "--tcp" => match value("--tcp") {
                Ok(v) => tcp = Some(v),
                Err(e) => return fail(&e),
            },
            "--replay" => match value("--replay") {
                Ok(v) => replay_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--check" => match value("--check") {
                Ok(v) => check_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--write" => match value("--write") {
                Ok(v) => write_path = Some(v),
                Err(e) => return fail(&e),
            },
            "--help" | "-h" => {
                println!(
                    "usage: serviced [--stdio] [--unix PATH] [--tcp ADDR] [--workers N]\n\
                     \x20      serviced --replay FILE [--check FILE | --write FILE]"
                );
                return ExitCode::SUCCESS;
            }
            other => return fail(&format!("unknown argument {other}")),
        }
    }

    let mut config = ServiceConfig::default();
    if let Some(w) = workers {
        config.workers = w;
    }
    let core = Arc::new(ServiceCore::new(config));

    if let Some(path) = replay_path {
        let requests = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) => return fail(&format!("cannot read {path}: {e}")),
        };
        let responses = replay::replay(&core, &requests);
        if let Some(out) = write_path {
            let mut rendered = responses.join("\n");
            rendered.push('\n');
            if let Err(e) = std::fs::write(&out, rendered) {
                return fail(&format!("cannot write {out}: {e}"));
            }
            eprintln!("serviced: wrote {} responses to {out}", responses.len());
            return ExitCode::SUCCESS;
        }
        if let Some(golden_path) = check_path {
            let golden = match std::fs::read_to_string(&golden_path) {
                Ok(text) => text,
                Err(e) => return fail(&format!("cannot read {golden_path}: {e}")),
            };
            let mismatches = replay::diff_golden(&responses, &golden);
            if mismatches.is_empty() {
                eprintln!(
                    "serviced: {} responses match {golden_path}",
                    responses.len()
                );
                return ExitCode::SUCCESS;
            }
            for m in &mismatches {
                eprintln!("{m}");
            }
            return fail(&format!(
                "{} mismatch(es) against {golden_path}",
                mismatches.len()
            ));
        }
        let stdout = std::io::stdout();
        let mut out = stdout.lock();
        for line in &responses {
            if writeln!(out, "{line}").is_err() {
                return ExitCode::FAILURE;
            }
        }
        return ExitCode::SUCCESS;
    }

    let workers = core.config().workers;
    let served = if let Some(path) = unix {
        server::serve_unix(core, std::path::Path::new(&path), workers)
    } else if let Some(addr) = tcp {
        server::serve_tcp(core, addr.as_str(), workers)
    } else {
        // Default mode, also selected by --stdio.
        let _ = stdio;
        server::serve_stdio(&core, workers)
    };
    match served {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => fail(&format!("transport error: {e}")),
    }
}
