//! Per-tenant admission control.
//!
//! A tenant's policy reuses [`SolveBudget`] as the per-request effort cap
//! and adds the daemon-level knobs: how many of the tenant's jobs may run
//! at once, how many may wait, and a cumulative node budget after which
//! the tenant is degraded to the greedy backend instead of being starved
//! or silently throttled.

use partita_core::api::SolveSpec;
use partita_core::SolveBudget;

/// Admission policy for one tenant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantPolicy {
    /// Jobs of this tenant that may run concurrently, counted across
    /// every served connection; beyond this, jobs wait in the tenant's
    /// FIFO while other tenants' jobs run (the fair scheduler's cap — see
    /// [`crate::server`]). A value of 0 is enforced as 1: a zero cap
    /// would leave queued jobs permanently unrunnable, and the daemon's
    /// contract is that every admitted job is answered.
    pub max_inflight: usize,
    /// Jobs that may wait in the tenant's FIFOs, counted across every
    /// served connection; beyond this, requests are refused outright with
    /// [`partita_core::api::ApiError::Overloaded`] (code 429).
    pub max_queued: usize,
    /// Cumulative branch-and-bound nodes the tenant may spend on exact
    /// solves. Once exhausted, further points degrade to the greedy
    /// backend — honestly labelled, never starved: degraded requests
    /// still complete, and other tenants keep their exact service.
    pub node_budget: u64,
    /// Per-request effort cap. A request's own `max_nodes` / `deadline_ms`
    /// / `threads` are honoured only *up to* these values; the fallback
    /// backend is always the policy's.
    pub budget: SolveBudget,
}

impl Default for TenantPolicy {
    fn default() -> TenantPolicy {
        TenantPolicy {
            max_inflight: 4,
            max_queued: 1024,
            node_budget: u64::MAX,
            // threads pinned to 1: canonical cache keys include the budget,
            // so a deterministic default keeps every default-spec request
            // on one shared entry regardless of PARTITA_THREADS.
            budget: SolveBudget::default().with_threads(1),
        }
    }
}

impl TenantPolicy {
    /// The effective per-request budget: the spec's asks clamped by this
    /// policy's caps.
    #[must_use]
    pub fn clamp(&self, spec: &SolveSpec) -> SolveBudget {
        let mut budget = self.budget;
        if let Some(n) = spec.max_nodes {
            budget.max_nodes = n.min(self.budget.max_nodes);
        }
        budget.deadline = match (
            spec.deadline_ms.map(std::time::Duration::from_millis),
            self.budget.deadline,
        ) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (Some(a), None) => Some(a),
            (None, cap) => cap,
        };
        budget.threads = spec.threads.clamp(1, self.budget.threads.max(1));
        budget
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clamp_caps_spec_asks() {
        let policy = TenantPolicy {
            budget: SolveBudget::default()
                .with_max_nodes(10_000)
                .with_deadline(std::time::Duration::from_millis(100))
                .with_threads(2),
            ..TenantPolicy::default()
        };
        let spec = SolveSpec {
            max_nodes: Some(50_000),
            deadline_ms: Some(5),
            threads: 8,
            ..SolveSpec::default()
        };
        let budget = policy.clamp(&spec);
        assert_eq!(budget.max_nodes, 10_000, "node ask capped by policy");
        assert_eq!(
            budget.deadline,
            Some(std::time::Duration::from_millis(5)),
            "tighter caller deadline wins"
        );
        assert_eq!(budget.threads, 2, "thread ask capped by policy");
        // A modest ask passes through.
        let modest = SolveSpec {
            max_nodes: Some(5),
            ..SolveSpec::default()
        };
        assert_eq!(policy.clamp(&modest).max_nodes, 5);
        assert_eq!(policy.clamp(&modest).threads, 1);
    }
}
