//! Sweep-as-a-service: a concurrent multi-tenant solve daemon.
//!
//! The paper's workflow (§5) is interactive design-space exploration — a
//! designer nudges required gains and re-solves. This crate is the
//! long-lived process that serves that loop to many tenants at once,
//! exploiting two properties the lower layers were built for:
//!
//! * **Canonical content keys** ([`partita_core::sweep::canonical_solve_key`])
//!   exclude display names and effort-only knobs, so isomorphic instances
//!   from *different tenants* produce byte-identical keys and share one
//!   entry in the process-wide sharded cache
//!   ([`partita_core::cache::ShardedLru`]).
//! * **`Arc`-shared zero-copy state** — resolved workloads hold
//!   `Arc<Instance>` / `Arc<ImpDb>`, so fanning a corpus entry across
//!   tenants copies pointers, never problem data.
//!
//! # Shape
//!
//! * [`ServiceCore`] — the daemon state: sharded canonical cache, resolved
//!   corpus workloads, per-tenant accounting, counters. Protocol handling
//!   is [`ServiceCore::handle_request`]; everything else (stdio pump,
//!   socket listeners, scripted replay) funnels into it.
//! * [`TenantPolicy`] — admission control, built on
//!   [`partita_core::SolveBudget`]: per-request node/deadline caps, a
//!   cumulative node budget after which the tenant degrades to the greedy
//!   backend (honestly reported as [`partita_core::OptimalityStatus::Heuristic`]), an
//!   in-flight cap and a queue cap enforced by the fair scheduler.
//! * [`server`] — thread-per-core worker pool with a fair per-tenant FIFO
//!   (round-robin across tenants, FIFO within one), serving stdin/stdout
//!   and Unix/TCP socket listeners speaking newline-delimited JSON.
//! * [`replay`] — deterministic scripted-replay of a request log, used by
//!   the golden-diff CI leg and the benchsuite latency section.
//!
//! Requests and responses are the versioned envelopes of
//! [`partita_core::api`]; instances are named by corpus-manifest ids
//! (e.g. `viterbi-0003`), digest-verified on first resolve.
//!
//! # Example
//!
//! ```
//! use partita_service::{ServiceConfig, ServiceCore};
//!
//! let core = ServiceCore::new(ServiceConfig::default());
//! let reply = core.handle_line(
//!     r#"{"api_version":1,"id":"r1","tenant":"alice","method":"ping"}"#,
//! );
//! assert!(reply.contains("\"pong\":true"));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod replay;
pub mod server;
mod tenant;

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

use partita_core::api::{
    ApiError, Payload, Request, RequestBody, Response, SolveResult, SolveSpec, StatsSnapshot,
};
use partita_core::cache::ShardedLru;
use partita_core::delta::{DeltaSession, InstanceDelta};
use partita_core::sweep::canonical_solve_key;
use partita_core::telemetry::{self, CacheKind, Event, TelemetrySink};
use partita_core::verify::SelectionAuditor;
use partita_core::{Backend, Redaction, RequiredGains, Selection, SolveOptions};
use partita_mop::Cycles;
use partita_workloads::corpus::{self, ManifestEntry};
use partita_workloads::Workload;

pub use tenant::TenantPolicy;

/// Daemon-wide knobs. Everything is overridable per deployment; the
/// defaults suit tests and single-host serving.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Worker threads per served stream (default: one per core).
    pub workers: usize,
    /// Shards of the process-wide canonical cache. More shards, less lock
    /// contention; the full-string keys keep hits collision-free
    /// regardless.
    pub cache_shards: usize,
    /// Entries per cache shard (LRU beyond that).
    pub shard_capacity: usize,
    /// When the number of admitted-but-unfinished jobs exceeds this, new
    /// points degrade to the greedy backend until the backlog drains
    /// (graceful degradation under load; never silent — results say
    /// `degraded` and carry [`partita_core::OptimalityStatus::Heuristic`]).
    pub degrade_load: usize,
    /// Admission policy applied to tenants without an explicit override.
    pub default_policy: TenantPolicy,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_shards: 16,
            shard_capacity: 512,
            degrade_load: 64,
            default_policy: TenantPolicy::default(),
        }
    }
}

/// Per-tenant live accounting.
#[derive(Debug)]
struct TenantState {
    policy: TenantPolicy,
    /// Cumulative branch-and-bound nodes this tenant's solves explored.
    nodes_spent: u64,
}

/// Process-wide per-tenant admission counters. Shared by every served
/// connection, so [`TenantPolicy::max_inflight`] / `max_queued` cannot be
/// multiplied by opening more connections.
#[derive(Debug, Default)]
struct TenantLoad {
    inflight: usize,
    queued: usize,
}

/// The daemon state shared by every listener, worker and replay driver.
///
/// See the crate docs; the one-line summary is: parse the envelope, admit
/// it against the tenant's [`TenantPolicy`], answer points from the
/// sharded canonical cache when byte-identical work was already done for
/// *any* tenant, solve (or greedy-degrade) otherwise, and account the
/// spent nodes back to the tenant.
pub struct ServiceCore {
    config: ServiceConfig,
    cache: ShardedLru<Selection>,
    workloads: Mutex<HashMap<String, Arc<Workload>>>,
    manifest: OnceLock<Result<HashMap<String, ManifestEntry>, String>>,
    tenants: Mutex<HashMap<String, TenantState>>,
    /// Per-tenant queued/in-flight counts across every served connection.
    admission: Mutex<HashMap<String, TenantLoad>>,
    /// Jobs admitted by a server loop and not yet answered (load signal
    /// for graceful degradation).
    load: AtomicUsize,
    served: AtomicU64,
    cache_hits: AtomicU64,
    degraded: AtomicU64,
    rejected: AtomicU64,
    sink: Option<Arc<dyn TelemetrySink>>,
}

impl std::fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("config", &self.config)
            .field("cache_entries", &self.cache.len())
            .finish_non_exhaustive()
    }
}

impl ServiceCore {
    /// Creates a daemon core with the given configuration.
    #[must_use]
    pub fn new(config: ServiceConfig) -> ServiceCore {
        ServiceCore {
            cache: ShardedLru::new(config.cache_shards, config.shard_capacity),
            workloads: Mutex::new(HashMap::new()),
            manifest: OnceLock::new(),
            tenants: Mutex::new(HashMap::new()),
            admission: Mutex::new(HashMap::new()),
            load: AtomicUsize::new(0),
            served: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            degraded: AtomicU64::new(0),
            rejected: AtomicU64::new(0),
            sink: None,
            config,
        }
    }

    /// Routes this core's telemetry to `sink` instead of the process-wide
    /// default ([`telemetry::global`]).
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TelemetrySink>) -> ServiceCore {
        self.sink = Some(sink);
        self
    }

    /// Overrides the admission policy for one tenant (new tenants get
    /// [`ServiceConfig::default_policy`]).
    pub fn set_policy(&self, tenant: &str, policy: TenantPolicy) {
        let mut tenants = self.tenants.lock().expect("tenant table lock");
        tenants
            .entry(tenant.to_string())
            .and_modify(|s| s.policy = policy.clone())
            .or_insert(TenantState {
                policy,
                nodes_spent: 0,
            });
    }

    /// The admission policy currently applied to `tenant`.
    #[must_use]
    pub fn policy(&self, tenant: &str) -> TenantPolicy {
        let tenants = self.tenants.lock().expect("tenant table lock");
        tenants
            .get(tenant)
            .map(|s| s.policy.clone())
            .unwrap_or_else(|| self.config.default_policy.clone())
    }

    /// This core's configuration.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    fn sink(&self) -> &dyn TelemetrySink {
        match &self.sink {
            Some(s) => s.as_ref(),
            None => telemetry::global(),
        }
    }

    /// Current counter snapshot (the `stats` method's payload).
    #[must_use]
    pub fn stats(&self) -> StatsSnapshot {
        StatsSnapshot {
            served: self.served.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            cache_entries: self.cache.len() as u64,
        }
    }

    pub(crate) fn load_enter(&self) {
        self.load.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn load_exit(&self) {
        self.load.fetch_sub(1, Ordering::Relaxed);
    }

    pub(crate) fn note_rejected(&self) {
        self.rejected.fetch_add(1, Ordering::Relaxed);
    }

    /// Claims one slot of `tenant`'s process-wide queue allowance
    /// ([`TenantPolicy::max_queued`]); `false` refuses the request. Every
    /// `true` must be reversed by exactly one later [`Self::try_start`]
    /// (the job ran) or [`Self::drop_queued`] (dropped at shutdown).
    pub(crate) fn try_admit(&self, tenant: &str) -> bool {
        let max_queued = self.policy(tenant).max_queued;
        let mut admission = self.admission.lock().expect("admission lock");
        let load = admission.entry(tenant.to_string()).or_default();
        if load.queued >= max_queued {
            if load.queued == 0 && load.inflight == 0 {
                admission.remove(tenant);
            }
            return false;
        }
        load.queued += 1;
        true
    }

    /// Moves one of `tenant`'s queued jobs into its in-flight allowance
    /// ([`TenantPolicy::max_inflight`], clamped to at least 1 — a zero cap
    /// would leave queued jobs permanently unrunnable). `false` leaves the
    /// job queued for a later scheduling step.
    pub(crate) fn try_start(&self, tenant: &str) -> bool {
        let max_inflight = self.policy(tenant).max_inflight.max(1);
        let mut admission = self.admission.lock().expect("admission lock");
        let load = admission.entry(tenant.to_string()).or_default();
        if load.inflight >= max_inflight {
            return false;
        }
        load.queued = load.queued.saturating_sub(1);
        load.inflight += 1;
        true
    }

    /// Releases the in-flight slot claimed by [`Self::try_start`].
    pub(crate) fn finish_job(&self, tenant: &str) {
        let mut admission = self.admission.lock().expect("admission lock");
        if let Some(load) = admission.get_mut(tenant) {
            load.inflight = load.inflight.saturating_sub(1);
            if load.inflight == 0 && load.queued == 0 {
                admission.remove(tenant);
            }
        }
    }

    /// Releases a queue slot claimed by [`Self::try_admit`] for a job
    /// that will never run (dropped while draining at shutdown).
    pub(crate) fn drop_queued(&self, tenant: &str) {
        let mut admission = self.admission.lock().expect("admission lock");
        if let Some(load) = admission.get_mut(tenant) {
            load.queued = load.queued.saturating_sub(1);
            if load.inflight == 0 && load.queued == 0 {
                admission.remove(tenant);
            }
        }
    }

    /// Jobs currently admitted and unfinished (test hook for the load
    /// accounting invariants).
    #[cfg(test)]
    pub(crate) fn current_load(&self) -> usize {
        self.load.load(Ordering::Relaxed)
    }

    /// Parses one NDJSON request line and answers it, rendering the reply
    /// with `redaction` (scripted-replay goldens use
    /// [`Redaction::Timing`]; live serving uses [`Redaction::None`]).
    #[must_use]
    pub fn handle_line_redacted(&self, line: &str, redaction: Redaction) -> String {
        match Request::parse(line) {
            Ok(req) => self.handle_request(&req).to_json(redaction),
            Err(err) => {
                let (id, tenant) = best_effort_ids(line);
                self.served.fetch_add(1, Ordering::Relaxed);
                Response::error(&id, &tenant, err).to_json(redaction)
            }
        }
    }

    /// [`ServiceCore::handle_line_redacted`] with full (unredacted)
    /// timing.
    #[must_use]
    pub fn handle_line(&self, line: &str) -> String {
        self.handle_line_redacted(line, Redaction::None)
    }

    /// Answers one parsed request. This is the whole protocol: every
    /// transport (stdio, sockets, replay, tests) funnels here.
    #[must_use]
    pub fn handle_request(&self, req: &Request) -> Response {
        self.served.fetch_add(1, Ordering::Relaxed);
        let result = match &req.body {
            RequestBody::Ping => Ok(Payload::Pong),
            RequestBody::Stats => Ok(Payload::Stats(self.stats())),
            RequestBody::Solve { instance, spec } => self
                .resolve_workload(instance)
                .and_then(|w| self.solve_point(&req.tenant, &w, spec, spec.rg))
                .map(Payload::Solve),
            RequestBody::Sweep {
                instance,
                spec,
                rgs,
            } => self
                .resolve_workload(instance)
                .and_then(|w| self.serve_sweep(&req.tenant, &w, spec, rgs))
                .map(Payload::Points),
            RequestBody::Delta {
                instance,
                spec,
                rgs,
            } => self
                .resolve_workload(instance)
                .and_then(|w| self.serve_delta(&req.tenant, &w, spec, rgs))
                .map(Payload::Points),
            RequestBody::Batch { jobs } => {
                let results = jobs
                    .iter()
                    .map(|job| {
                        self.resolve_workload(&job.instance)
                            .and_then(|w| self.solve_point(&req.tenant, &w, &job.spec, job.spec.rg))
                    })
                    .collect();
                Ok(Payload::Batch(results))
            }
            // `RequestBody` is non_exhaustive: a newer core may define
            // methods this daemon build does not serve yet.
            other => Err(ApiError::UnknownMethod(other.method().to_string())),
        };
        Response {
            id: req.id.clone(),
            tenant: req.tenant.clone(),
            result,
        }
    }

    /// Resolves a corpus-manifest id to its (digest-verified, `Arc`-shared)
    /// workload, building it on first use.
    fn resolve_workload(&self, id: &str) -> Result<Arc<Workload>, ApiError> {
        if let Some(w) = self
            .workloads
            .lock()
            .expect("workload table lock")
            .get(id)
            .cloned()
        {
            return Ok(w);
        }
        let manifest = self
            .manifest
            .get_or_init(|| {
                corpus::manifest().map(|entries| {
                    entries
                        .into_iter()
                        .map(|e| (e.id.clone(), e))
                        .collect::<HashMap<_, _>>()
                })
            })
            .as_ref()
            .map_err(|e| ApiError::Internal(format!("corpus manifest unreadable: {e}")))?;
        let entry = manifest
            .get(id)
            .ok_or_else(|| ApiError::UnknownInstance(id.to_string()))?;
        // verify() rebuilds the workload and checks the pinned content
        // digest, so a drifted generator can never silently serve wrong
        // instances to tenants.
        let workload = Arc::new(entry.verify().map_err(ApiError::Workload)?);
        self.workloads
            .lock()
            .expect("workload table lock")
            .insert(id.to_string(), workload.clone());
        Ok(workload)
    }

    /// Whether this point must degrade to the greedy backend, and the
    /// budget-clamped options to solve it with.
    fn admit(&self, tenant: &str, spec: &SolveSpec, rg: u64) -> (SolveOptions, bool) {
        let policy = self.policy(tenant);
        let over_budget = {
            let tenants = self.tenants.lock().expect("tenant table lock");
            tenants
                .get(tenant)
                .map(|s| s.nodes_spent >= s.policy.node_budget)
                .unwrap_or(false)
        };
        let overloaded = self.load.load(Ordering::Relaxed) > self.config.degrade_load;
        let degrade = over_budget || overloaded;
        let mut options = spec
            .to_options_at(rg)
            .budget(policy.clamp(spec))
            .audit(spec.audit);
        if degrade {
            options = options.backend(Backend::Greedy);
        }
        (options, degrade)
    }

    fn account_nodes(&self, tenant: &str, nodes: u64) {
        let mut tenants = self.tenants.lock().expect("tenant table lock");
        let state = tenants
            .entry(tenant.to_string())
            .or_insert_with(|| TenantState {
                policy: self.config.default_policy.clone(),
                nodes_spent: 0,
            });
        state.nodes_spent = state.nodes_spent.saturating_add(nodes);
    }

    /// Solves one (instance, spec, rg) point through the shared canonical
    /// cache.
    fn solve_point(
        &self,
        tenant: &str,
        w: &Workload,
        spec: &SolveSpec,
        rg: u64,
    ) -> Result<SolveResult, ApiError> {
        let start = Instant::now();
        let (options, degraded) = self.admit(tenant, spec, rg);
        if degraded {
            self.degraded.fetch_add(1, Ordering::Relaxed);
        }
        let key = canonical_solve_key(&w.instance, &w.imps, &options);
        let cached = self.cache.get(&key);
        let hit = cached.is_some();
        let sink = self.sink();
        if sink.enabled() {
            sink.emit(&Event::CacheLookup {
                cache: CacheKind::Service,
                hit,
                digest: fnv1a64(&key),
            });
        }
        let selection = match cached {
            Some(sel) => {
                self.cache_hits.fetch_add(1, Ordering::Relaxed);
                // The audit flag is excluded from the canonical key, so a
                // hit must run its own audit when this request asked for
                // one — a cached answer is only as trustworthy as the
                // checks *this* caller requested.
                if spec.audit {
                    SelectionAuditor::new(&w.instance, &w.imps)
                        .audit(&sel, &options)
                        .into_result()
                        .map_err(ApiError::Core)?;
                }
                sel
            }
            None => {
                let sel = partita_core::Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&options)
                    .map_err(ApiError::Core)?;
                self.account_nodes(tenant, sel.trace.nodes_explored as u64);
                self.cache.insert(key, sel.clone());
                sel
            }
        };
        let mut result = SolveResult::from_selection(rg, &selection);
        result.cache_hit = hit;
        result.degraded = degraded;
        result.wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
        Ok(result)
    }

    /// Serves a sweep: points are solved in descending-RG order (matching
    /// [`partita_core::sweep::SweepSession`]'s cache-friendly order) and
    /// returned in the caller's requested order.
    fn serve_sweep(
        &self,
        tenant: &str,
        w: &Workload,
        spec: &SolveSpec,
        rgs: &[u64],
    ) -> Result<Vec<SolveResult>, ApiError> {
        let mut order: Vec<u64> = rgs.to_vec();
        order.sort_unstable_by(|a, b| b.cmp(a));
        order.dedup();
        let mut solved: HashMap<u64, SolveResult> = HashMap::new();
        for rg in order {
            let result = self.solve_point(tenant, w, spec, rg)?;
            solved.insert(rg, result);
        }
        Ok(rgs
            .iter()
            .map(|rg| solved.get(rg).cloned().expect("every point solved"))
            .collect())
    }

    /// Serves a delta walk: one incremental [`DeltaSession`] applies each
    /// RG as a `SetRg` right-hand-side patch (basis repair + incumbent
    /// seeding) instead of solving cold. Results feed the shared cache
    /// under their *cold* canonical keys — sound because a delta resolve
    /// returns the identical selection a cold solve would (the PR 6
    /// equivalence contract).
    fn serve_delta(
        &self,
        tenant: &str,
        w: &Workload,
        spec: &SolveSpec,
        rgs: &[u64],
    ) -> Result<Vec<SolveResult>, ApiError> {
        let policy = self.policy(tenant);
        let base = spec
            .to_options_at(spec.rg)
            .budget(policy.clamp(spec))
            .audit(spec.audit);
        let mut session =
            DeltaSession::new(w.instance.clone(), w.imps.clone(), base).map_err(ApiError::Core)?;
        let mut results = Vec::with_capacity(rgs.len());
        for &rg in rgs {
            let start = Instant::now();
            let (options, degraded) = self.admit(tenant, spec, rg);
            session
                .apply(InstanceDelta::SetRg(RequiredGains::uniform(Cycles(rg))))
                .map_err(ApiError::Core)?;
            let selection = if degraded {
                // Over-budget tenants leave the incremental path too: a
                // greedy solve of the patched point, honestly labelled.
                self.degraded.fetch_add(1, Ordering::Relaxed);
                partita_core::Solver::new(&w.instance)
                    .with_imps(w.imps.clone())
                    .solve(&options)
                    .map_err(ApiError::Core)?
            } else {
                let sel = session.resolve().map_err(ApiError::Core)?;
                self.account_nodes(tenant, sel.trace.nodes_explored as u64);
                self.cache.insert(
                    canonical_solve_key(&w.instance, &w.imps, &options),
                    sel.clone(),
                );
                sel
            };
            let mut result = SolveResult::from_selection(rg, &selection);
            result.degraded = degraded;
            result.wall_us = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
            results.push(result);
        }
        Ok(results)
    }
}

/// Pulls `id`/`tenant` out of a line that failed full envelope parsing,
/// so even error replies can be matched to their request when possible.
pub(crate) fn best_effort_ids(line: &str) -> (String, String) {
    match telemetry::json::JsonValue::parse(line) {
        Ok(doc) => (
            doc.get("id")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
            doc.get("tenant")
                .and_then(|v| v.as_str())
                .unwrap_or("")
                .to_string(),
        ),
        Err(_) => (String::new(), String::new()),
    }
}

/// FNV-1a 64 (the digest reported in `cache_lookup` telemetry; full keys
/// never leave the process).
fn fnv1a64(s: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

// Compile-time audit that everything a worker thread shares is actually
// shareable: the service hands `Arc<ServiceCore>` (holding Selections,
// workloads and the cache) across its pool.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<ServiceCore>();
    assert_send_sync::<ShardedLru<Selection>>();
    assert_send_sync::<Workload>();
};

#[cfg(test)]
mod tests {
    use super::*;

    fn core() -> ServiceCore {
        ServiceCore::new(ServiceConfig::default())
    }

    #[test]
    fn ping_round_trips() {
        let reply =
            core().handle_line(r#"{"api_version":1,"id":"p","tenant":"t","method":"ping"}"#);
        assert!(reply.contains("\"ok\":true"), "{reply}");
        assert!(reply.contains("\"pong\":true"), "{reply}");
        assert!(reply.contains("\"id\":\"p\""), "{reply}");
    }

    #[test]
    fn malformed_line_answers_code_100_with_best_effort_ids() {
        let reply = core().handle_line(r#"{"id":"x","tenant":"t","method":"ping"}"#);
        assert!(reply.contains("\"ok\":false"), "{reply}");
        assert!(reply.contains("\"code\":100"), "{reply}");
        assert!(reply.contains("\"id\":\"x\""), "{reply}");
        let garbage = core().handle_line("not json at all");
        assert!(garbage.contains("\"code\":100"), "{garbage}");
    }

    #[test]
    fn unknown_instance_answers_code_103() {
        let reply = core().handle_line(
            r#"{"api_version":1,"id":"s","tenant":"t","method":"solve","instance":"no-such-id","rg":100}"#,
        );
        assert!(reply.contains("\"code\":103"), "{reply}");
    }

    #[test]
    fn admission_counters_are_process_wide() {
        let core = core();
        core.set_policy(
            "t",
            TenantPolicy {
                max_inflight: 1,
                max_queued: 2,
                ..TenantPolicy::default()
            },
        );
        // Queue allowance spans every admitter, not one connection.
        assert!(core.try_admit("t"));
        assert!(core.try_admit("t"));
        assert!(!core.try_admit("t"), "third admit must hit the queue cap");
        // In-flight allowance likewise.
        assert!(core.try_start("t"));
        assert!(!core.try_start("t"), "second start must hit max_inflight");
        core.finish_job("t");
        assert!(core.try_start("t"), "finish frees the in-flight slot");
        core.finish_job("t");
        // Both counters back to zero: the tenant's entry is gone and a
        // fresh admit succeeds.
        assert!(core.try_admit("t"));
        core.drop_queued("t");
    }

    #[test]
    fn zero_max_inflight_is_clamped_to_one() {
        let core = core();
        core.set_policy(
            "z",
            TenantPolicy {
                max_inflight: 0,
                ..TenantPolicy::default()
            },
        );
        assert!(core.try_admit("z"));
        assert!(
            core.try_start("z"),
            "a zero in-flight cap must not make queued jobs unrunnable"
        );
        core.finish_job("z");
    }

    #[test]
    fn solve_then_resolve_hits_shared_cache() {
        let core = core();
        let line = r#"{"api_version":1,"id":"s1","tenant":"alice","method":"solve","instance":"synth-micro-0000","rg":1}"#;
        let cold = core.handle_line(line);
        assert!(cold.contains("\"cache_hit\":false"), "{cold}");
        // Different tenant, different request id, same canonical problem.
        let warm = core.handle_line(
            r#"{"api_version":1,"id":"s2","tenant":"bob","method":"solve","instance":"synth-micro-0000","rg":1}"#,
        );
        assert!(warm.contains("\"cache_hit\":true"), "{warm}");
        let stats = core.stats();
        assert_eq!(stats.cache_hits, 1);
        assert!(stats.cache_entries >= 1);
    }
}
