//! Deterministic scripted replay: drive a request log through a
//! [`ServiceCore`] single-threaded and in order, rendering replies under
//! [`Redaction::Timing`] so the output is byte-stable across hosts.
//!
//! This is the golden-diff contract of the CI service smoke leg: the
//! committed request log (`tests/service/requests.jsonl`, built from
//! corpus-manifest ids) must replay to the committed response log
//! (`tests/service/golden.jsonl`) on every machine. Everything in a
//! redacted response is deterministic at one worker: gains, areas,
//! statuses, chosen IMP ids, selection digests, node counts (threads are
//! pinned to 1 by the default [`crate::TenantPolicy`]) and cache-hit
//! flags (replay order is the log order).

use partita_core::Redaction;

use crate::ServiceCore;

/// Replays `requests` (one envelope per line; blank lines skipped)
/// through `core` in order, returning one redacted response line per
/// request.
#[must_use]
pub fn replay(core: &ServiceCore, requests: &str) -> Vec<String> {
    requests
        .lines()
        .filter(|line| !line.trim().is_empty())
        .map(|line| core.handle_line_redacted(line, Redaction::Timing))
        .collect()
}

/// Diffs replayed `responses` against a committed `golden` log. Returns
/// every mismatch as a human-readable block; empty means byte-identical.
#[must_use]
pub fn diff_golden(responses: &[String], golden: &str) -> Vec<String> {
    let expected: Vec<&str> = golden
        .lines()
        .filter(|line| !line.trim().is_empty())
        .collect();
    let mut mismatches = Vec::new();
    if responses.len() != expected.len() {
        mismatches.push(format!(
            "response count mismatch: replay produced {}, golden has {}",
            responses.len(),
            expected.len()
        ));
    }
    for (i, (got, want)) in responses.iter().zip(expected.iter()).enumerate() {
        if got != want {
            mismatches.push(format!(
                "line {}: mismatch\n  replay: {}\n  golden: {}",
                i + 1,
                got,
                want
            ));
        }
    }
    mismatches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    #[test]
    fn replay_is_order_stable_and_redacted() {
        let core = ServiceCore::new(ServiceConfig::default());
        let log = concat!(
            r#"{"api_version":1,"id":"a","tenant":"t","method":"ping"}"#,
            "\n\n",
            r#"{"api_version":1,"id":"b","tenant":"t","method":"ping"}"#,
            "\n",
        );
        let out = replay(&core, log);
        assert_eq!(out.len(), 2);
        assert!(out[0].contains("\"id\":\"a\""));
        assert!(out[1].contains("\"id\":\"b\""));
        assert!(diff_golden(&out, &out.join("\n")).is_empty());
        let tampered = out.join("\n").replace("\"id\":\"b\"", "\"id\":\"c\"");
        assert_eq!(diff_golden(&out, &tampered).len(), 1);
    }
}
