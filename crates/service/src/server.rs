//! NDJSON transports: a thread-per-core worker pool with a fair
//! per-tenant FIFO, pumping any `BufRead`/`Write` pair — stdin/stdout,
//! a Unix socket connection, or a TCP connection.
//!
//! Scheduling is round-robin across tenants and FIFO within one: a tenant
//! that floods the daemon fills only its own queue, and each scheduling
//! step offers the next *tenant* (not the next request) a worker, capped
//! by its [`TenantPolicy::max_inflight`](crate::TenantPolicy). Queue
//! overflow is refused immediately with error code 429 rather than
//! buffered without bound.
//!
//! Both caps are accounted on [`ServiceCore`], shared by every served
//! connection — opening more connections does not multiply a tenant's
//! allowance. Because a slot freed on one connection's pool only notifies
//! that pool's condvar, parked workers use a short timed wait to observe
//! cross-connection frees.
//!
//! Responses are written in completion order, one line per request; the
//! envelope's echoed `id` is what correlates them. Callers that need
//! request-order replies (scripted replay, goldens) use
//! [`crate::replay`], which is single-threaded by construction.

use std::collections::{HashMap, VecDeque};
use std::io::{BufRead, BufReader, Write};
use std::net::{TcpListener, ToSocketAddrs};
use std::os::unix::net::UnixListener;
use std::path::Path;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Duration;

use partita_core::api::{ApiError, Request, Response};
use partita_core::Redaction;

use crate::ServiceCore;

/// Per-tenant FIFOs plus the round-robin ring the workers pull from.
/// In-flight and queue *counts* live on [`ServiceCore`], shared across
/// connections; this holds only this connection's pending requests.
struct Sched {
    queues: HashMap<String, VecDeque<Request>>,
    /// Tenants in arrival order; the rotating cursor makes the scan fair.
    ring: Vec<String>,
    cursor: usize,
    /// Whether the reader is still producing lines.
    open: bool,
}

impl Sched {
    fn new() -> Sched {
        Sched {
            queues: HashMap::new(),
            ring: Vec::new(),
            cursor: 0,
            open: true,
        }
    }

    fn queued_total(&self) -> usize {
        self.queues.values().map(VecDeque::len).sum()
    }

    fn enqueue(&mut self, req: Request) {
        if !self.queues.contains_key(&req.tenant) {
            self.ring.push(req.tenant.clone());
        }
        self.queues
            .entry(req.tenant.clone())
            .or_default()
            .push_back(req);
    }

    /// The next runnable job under the fair policy: starting at the
    /// cursor, the first tenant with queued work and spare process-wide
    /// in-flight allowance ([`ServiceCore::try_start`]). Advancing the
    /// cursor past the chosen tenant is what prevents one tenant with a
    /// deep queue from monopolising workers.
    fn pick(&mut self, core: &ServiceCore) -> Option<Request> {
        let n = self.ring.len();
        for step in 0..n {
            let idx = (self.cursor + step) % n;
            let tenant = &self.ring[idx];
            let has_work = self.queues.get(tenant).is_some_and(|q| !q.is_empty());
            if !has_work || !core.try_start(tenant) {
                continue;
            }
            let req = self
                .queues
                .get_mut(tenant)
                .and_then(VecDeque::pop_front)
                .expect("non-empty under the scheduler lock");
            self.cursor = (idx + 1) % n;
            return Some(req);
        }
        None
    }
}

/// Reverses one picked job's accounting when it leaves scope — the
/// process-wide in-flight slot, the load counter, and a wake-up for
/// parked local workers — so it runs on every worker exit path,
/// including `?` early returns on a write error.
struct JobGuard<'a> {
    core: &'a Arc<ServiceCore>,
    cvar: &'a Condvar,
    tenant: &'a str,
}

impl Drop for JobGuard<'_> {
    fn drop(&mut self) {
        self.core.finish_job(self.tenant);
        self.core.load_exit();
        self.cvar.notify_all();
    }
}

/// Pumps `input` through `core` onto `output` with `workers` solver
/// threads (clamped to at least 1), returning when `input` reaches EOF
/// and every queued job is answered.
///
/// The caller's thread runs the reader (parse, admission, enqueue);
/// workers run [`ServiceCore::handle_request`] and write completed
/// response lines through a shared mutex, one `write_all` per line so
/// concurrent completions never tear.
pub fn serve<R, W>(
    core: &Arc<ServiceCore>,
    input: R,
    output: W,
    workers: usize,
    redaction: Redaction,
) -> std::io::Result<()>
where
    R: BufRead,
    W: Write + Send,
{
    let sched = Mutex::new(Sched::new());
    let cvar = Condvar::new();
    let output = Mutex::new(output);
    let workers = workers.max(1);

    std::thread::scope(|scope| -> std::io::Result<()> {
        let mut pool = Vec::with_capacity(workers);
        for _ in 0..workers {
            pool.push(scope.spawn(|| -> std::io::Result<()> {
                loop {
                    let job = {
                        let mut guard = sched.lock().expect("scheduler lock");
                        loop {
                            if let Some(req) = guard.pick(core) {
                                break Some(req);
                            }
                            if !guard.open {
                                break None;
                            }
                            // Timed: a slot freed on another connection's
                            // pool notifies that pool's condvar, not ours.
                            let (g, _) = cvar
                                .wait_timeout(guard, Duration::from_millis(25))
                                .expect("scheduler lock");
                            guard = g;
                        }
                    };
                    let Some(req) = job else { return Ok(()) };
                    let _done = JobGuard {
                        core,
                        cvar: &cvar,
                        tenant: &req.tenant,
                    };
                    let line = core.handle_request(&req).to_json(redaction);
                    let mut out = output.lock().expect("output lock");
                    out.write_all(line.as_bytes())?;
                    out.write_all(b"\n")?;
                    out.flush()?;
                }
            }));
        }

        // Reader: this thread. Errors (a connection reset mid-stream, a
        // failed error-reply write) must not return before the shutdown
        // path below — parked workers wait on `open`, and `thread::scope`
        // would block on them forever.
        let read_result = (|| -> std::io::Result<()> {
            for line in input.lines() {
                let line = line?;
                if line.trim().is_empty() {
                    continue;
                }
                match Request::parse(&line) {
                    Ok(req) => {
                        if !core.try_admit(&req.tenant) {
                            core.note_rejected();
                            let resp = Response::error(
                                &req.id,
                                &req.tenant,
                                ApiError::Overloaded {
                                    tenant: req.tenant.clone(),
                                    detail: "queue full".into(),
                                },
                            );
                            let mut out = output.lock().expect("output lock");
                            out.write_all(resp.to_json(redaction).as_bytes())?;
                            out.write_all(b"\n")?;
                            out.flush()?;
                            continue;
                        }
                        core.load_enter();
                        sched.lock().expect("scheduler lock").enqueue(req);
                        cvar.notify_all();
                    }
                    Err(err) => {
                        // Answer protocol errors inline; they never occupy
                        // a worker.
                        let (id, tenant) = crate::best_effort_ids(&line);
                        let resp = Response::error(&id, &tenant, err);
                        let mut out = output.lock().expect("output lock");
                        out.write_all(resp.to_json(redaction).as_bytes())?;
                        out.write_all(b"\n")?;
                        out.flush()?;
                    }
                }
            }
            Ok(())
        })();

        // Shutdown — reached on EOF *and* on reader error: close the
        // scheduler, wake and join the workers, then reverse the
        // accounting of any job admitted but never served (reader error
        // above, or the pool dying on a write error).
        sched.lock().expect("scheduler lock").open = false;
        cvar.notify_all();
        let mut worker_result: std::io::Result<()> = Ok(());
        for worker in pool {
            let joined = worker.join().expect("worker panicked");
            if worker_result.is_ok() {
                worker_result = joined;
            }
        }
        {
            let mut guard = sched.lock().expect("scheduler lock");
            debug_assert!(
                read_result.is_err() || worker_result.is_err() || guard.queued_total() == 0,
                "clean shutdown left unserved jobs"
            );
            for (tenant, queue) in &mut guard.queues {
                while queue.pop_front().is_some() {
                    core.drop_queued(tenant);
                    core.load_exit();
                }
            }
        }
        read_result.and(worker_result)
    })
}

/// Serves stdin → stdout until EOF. The interactive / piped mode of the
/// `serviced` binary.
pub fn serve_stdio(core: &Arc<ServiceCore>, workers: usize) -> std::io::Result<()> {
    let stdin = std::io::stdin();
    serve(
        core,
        stdin.lock(),
        std::io::stdout(),
        workers,
        Redaction::None,
    )
}

/// Accepts connections on an already-bound Unix listener forever, one
/// serving thread per connection (each with its own worker pool over the
/// shared core — the cache, tenant accounting, and the
/// `max_inflight`/`max_queued` admission counters are all process-wide).
pub fn serve_unix_listener(
    core: Arc<ServiceCore>,
    listener: UnixListener,
    workers: usize,
) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let conn = conn?;
        let core = core.clone();
        std::thread::spawn(move || {
            let reader = match conn.try_clone() {
                Ok(c) => BufReader::new(c),
                Err(_) => return,
            };
            let _ = serve(&core, reader, conn, workers, Redaction::None);
        });
    }
    Ok(())
}

/// Binds `path` and serves it forever (see [`serve_unix_listener`]).
pub fn serve_unix(core: Arc<ServiceCore>, path: &Path, workers: usize) -> std::io::Result<()> {
    serve_unix_listener(core, UnixListener::bind(path)?, workers)
}

/// Accepts connections on an already-bound TCP listener forever (see
/// [`serve_unix_listener`]; same per-connection model).
pub fn serve_tcp_listener(
    core: Arc<ServiceCore>,
    listener: TcpListener,
    workers: usize,
) -> std::io::Result<()> {
    for conn in listener.incoming() {
        let conn = conn?;
        let core = core.clone();
        std::thread::spawn(move || {
            let reader = match conn.try_clone() {
                Ok(c) => BufReader::new(c),
                Err(_) => return,
            };
            let _ = serve(&core, reader, conn, workers, Redaction::None);
        });
    }
    Ok(())
}

/// Binds `addr` (e.g. `127.0.0.1:7414`) and serves it forever.
pub fn serve_tcp<A: ToSocketAddrs>(
    core: Arc<ServiceCore>,
    addr: A,
    workers: usize,
) -> std::io::Result<()> {
    serve_tcp_listener(core, TcpListener::bind(addr)?, workers)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ServiceConfig;

    #[test]
    fn serve_answers_every_line_and_drains() {
        let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
        let input = concat!(
            r#"{"api_version":1,"id":"a","tenant":"t1","method":"ping"}"#,
            "\n",
            "\n", // blank lines are skipped
            r#"{"api_version":1,"id":"b","tenant":"t2","method":"ping"}"#,
            "\n",
            "garbage\n",
        );
        let mut out: Vec<u8> = Vec::new();
        serve(&core, input.as_bytes(), &mut out, 4, Redaction::None).expect("serve ok");
        let text = String::from_utf8(out).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"pong\":true")).count(),
            2
        );
        assert_eq!(
            lines.iter().filter(|l| l.contains("\"code\":100")).count(),
            1
        );
    }

    #[test]
    fn queue_cap_rejects_with_429() {
        let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
        core.set_policy(
            "greedy-tenant",
            crate::TenantPolicy {
                max_queued: 0,
                ..crate::TenantPolicy::default()
            },
        );
        let input = r#"{"api_version":1,"id":"a","tenant":"greedy-tenant","method":"ping"}"#
            .to_string()
            + "\n";
        let mut out: Vec<u8> = Vec::new();
        serve(&core, input.as_bytes(), &mut out, 1, Redaction::None).expect("serve ok");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"code\":429"), "{text}");
        assert_eq!(core.stats().rejected, 1);
    }

    /// Yields its data, then fails the next read — a TCP peer resetting
    /// mid-stream.
    struct FailAfter {
        data: &'static [u8],
        pos: usize,
    }

    impl std::io::Read for FailAfter {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.pos < self.data.len() {
                let n = buf.len().min(self.data.len() - self.pos);
                buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
                self.pos += n;
                Ok(n)
            } else {
                Err(std::io::Error::new(
                    std::io::ErrorKind::ConnectionReset,
                    "peer reset",
                ))
            }
        }
    }

    #[test]
    fn reader_error_shuts_down_instead_of_hanging() {
        let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
        let input = BufReader::new(FailAfter {
            data: b"{\"api_version\":1,\"id\":\"a\",\"tenant\":\"t\",\"method\":\"ping\"}\n",
            pos: 0,
        });
        let mut out: Vec<u8> = Vec::new();
        let err = serve(&core, input, &mut out, 2, Redaction::None)
            .expect_err("reader error must propagate");
        assert_eq!(err.kind(), std::io::ErrorKind::ConnectionReset);
        // The line read before the reset was still answered, and no load
        // accounting leaked.
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"pong\":true"), "{text}");
        assert_eq!(core.current_load(), 0);
    }

    struct FailingWriter;

    impl Write for FailingWriter {
        fn write(&mut self, _: &[u8]) -> std::io::Result<usize> {
            Err(std::io::Error::new(std::io::ErrorKind::BrokenPipe, "gone"))
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    #[test]
    fn write_error_releases_accounting_and_reports() {
        let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
        let ping = |id: &str| {
            format!("{{\"api_version\":1,\"id\":\"{id}\",\"tenant\":\"t\",\"method\":\"ping\"}}\n")
        };
        let input: String = ["a", "b", "c", "d"].iter().map(|id| ping(id)).collect();
        let err = serve(&core, input.as_bytes(), FailingWriter, 1, Redaction::None)
            .expect_err("write error must propagate");
        assert_eq!(err.kind(), std::io::ErrorKind::BrokenPipe);
        // Picked and drained jobs alike released their load entries and
        // the tenant's in-flight slot: a later stream still serves it.
        assert_eq!(core.current_load(), 0);
        let mut out: Vec<u8> = Vec::new();
        serve(&core, ping("e").as_bytes(), &mut out, 1, Redaction::None).expect("healthy stream");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"pong\":true"), "{text}");
    }

    #[test]
    fn zero_max_inflight_still_serves() {
        let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
        core.set_policy(
            "z",
            crate::TenantPolicy {
                max_inflight: 0,
                ..crate::TenantPolicy::default()
            },
        );
        let input = r#"{"api_version":1,"id":"a","tenant":"z","method":"ping"}"#.to_string() + "\n";
        let mut out: Vec<u8> = Vec::new();
        serve(&core, input.as_bytes(), &mut out, 2, Redaction::None).expect("serve ok");
        let text = String::from_utf8(out).expect("utf8");
        assert!(text.contains("\"pong\":true"), "{text}");
        assert_eq!(core.current_load(), 0);
    }

    #[test]
    fn tcp_round_trip() {
        use std::io::{BufRead, BufReader, Write};
        let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
        let addr = listener.local_addr().expect("addr");
        std::thread::spawn(move || {
            let _ = serve_tcp_listener(core, listener, 2);
        });
        let mut conn = std::net::TcpStream::connect(addr).expect("connect");
        conn.write_all(b"{\"api_version\":1,\"id\":\"n\",\"tenant\":\"t\",\"method\":\"ping\"}\n")
            .expect("send");
        let mut reply = String::new();
        BufReader::new(conn.try_clone().expect("clone"))
            .read_line(&mut reply)
            .expect("reply");
        assert!(reply.contains("\"pong\":true"), "{reply}");
    }
}
