//! The scripted-replay golden gate, as a plain test (the CI smoke leg
//! runs the same contract through the `serviced` binary's
//! `--replay/--check` mode).
//!
//! The committed request log exercises every method plus the error paths;
//! the committed golden log is what a fresh daemon must answer, byte for
//! byte, under [`Redaction::Timing`] on any machine. If a solver or
//! protocol change legitimately moves an answer, regenerate with:
//!
//! ```text
//! cargo run -p partita-service --bin serviced -- \
//!     --replay tests/service/requests.jsonl --write tests/service/golden.jsonl
//! ```
//!
//! and review the diff like any other golden.

use partita_service::{replay, ServiceConfig, ServiceCore};

const REQUESTS: &str = include_str!("../../../tests/service/requests.jsonl");
const GOLDEN: &str = include_str!("../../../tests/service/golden.jsonl");

#[test]
fn scripted_replay_matches_committed_golden() {
    let core = ServiceCore::new(ServiceConfig::default());
    let responses = replay::replay(&core, REQUESTS);
    let mismatches = replay::diff_golden(&responses, GOLDEN);
    assert!(
        mismatches.is_empty(),
        "replay drifted from tests/service/golden.jsonl \
         (regenerate + review if intended):\n{}",
        mismatches.join("\n")
    );
}

#[test]
fn golden_log_covers_the_protocol() {
    // Guard the request log itself: if someone trims it, the golden gate
    // silently weakens. Every method and the three protocol error codes
    // must stay represented.
    for needle in [
        "\"method\":\"ping\"",
        "\"method\":\"solve\"",
        "\"method\":\"sweep\"",
        "\"method\":\"delta\"",
        "\"method\":\"batch\"",
        "\"method\":\"stats\"",
    ] {
        assert!(REQUESTS.contains(needle), "request log lost {needle}");
    }
    for needle in [
        "\"code\":100",
        "\"code\":101,",
        "\"code\":102,",
        "\"code\":103,",
        "\"cache_hit\":true",
    ] {
        assert!(GOLDEN.contains(needle), "golden log lost {needle}");
    }
}
