//! Multi-tenant integration gates for the solve daemon.
//!
//! The two contracts under test:
//!
//! 1. **Cross-tenant canonical-cache sharing** — isomorphic corpus
//!    instances submitted by different tenants share cache entries; hits
//!    are observable in telemetry, byte-identical to cold library solves
//!    of the same points, and audit-clean.
//! 2. **Admission control degrades, never starves** — a tenant over its
//!    cumulative node budget is served by the greedy backend (honestly
//!    labelled [`OptimalityStatus::Heuristic`]) while other tenants keep
//!    their exact service.

use std::sync::Arc;

use partita_core::api::{selection_digest, Payload, Request, RequestBody, SolveResult, SolveSpec};
use partita_core::telemetry::{CacheKind, Event, RecordingSink};
use partita_core::{OptimalityStatus, Solver};
use partita_service::{ServiceConfig, ServiceCore, TenantPolicy};
use partita_workloads::corpus;

/// The corpus points exercised: small enough to solve exactly in
/// milliseconds, varied enough to fill several cache shards.
const INSTANCES: [&str; 3] = ["synth-micro-0000", "synth-micro-0001", "synth-micro-0002"];

fn solve_request(tenant: &str, id: &str, instance: &str, rg: u64) -> Request {
    Request {
        api_version: partita_core::api::API_VERSION,
        id: id.to_string(),
        tenant: tenant.to_string(),
        body: RequestBody::Solve {
            instance: instance.to_string(),
            spec: SolveSpec {
                rg,
                audit: true,
                ..SolveSpec::default()
            },
        },
    }
}

fn expect_solve(core: &ServiceCore, req: &Request) -> SolveResult {
    let resp = core.handle_request(req);
    match resp.result {
        Ok(Payload::Solve(result)) => result,
        other => panic!("request {} failed: {other:?}", req.id),
    }
}

/// The mid-sweep RG of each exercised instance, from the digest-verified
/// corpus build — the same points the daemon will be asked to solve.
fn corpus_points() -> Vec<(String, u64)> {
    let manifest = corpus::manifest().expect("corpus manifest parses");
    INSTANCES
        .iter()
        .map(|id| {
            let entry = manifest
                .iter()
                .find(|e| e.id == *id)
                .unwrap_or_else(|| panic!("{id} missing from corpus manifest"));
            let w = entry.verify().expect("corpus entry verifies");
            let rg = w.rg_sweep[w.rg_sweep.len() / 2].get();
            (id.to_string(), rg)
        })
        .collect()
}

#[test]
fn cross_tenant_cache_hits_are_byte_identical_and_audited() {
    let sink = Arc::new(RecordingSink::new());
    let core = Arc::new(ServiceCore::new(ServiceConfig::default()).with_sink(sink.clone()));
    let points = corpus_points();

    // Tenant alice warms every point cold.
    let mut cold: Vec<SolveResult> = Vec::new();
    for (i, (instance, rg)) in points.iter().enumerate() {
        let result = expect_solve(
            &core,
            &solve_request("alice", &format!("a{i}"), instance, *rg),
        );
        assert!(!result.cache_hit, "{instance}: first solve must be cold");
        assert_eq!(result.status, OptimalityStatus::Optimal);
        cold.push(result);
    }

    // Tenants bob and carol hit the same points concurrently; every
    // answer must come from the shared cache, byte-identical to alice's.
    let handles: Vec<_> = ["bob", "carol"]
        .into_iter()
        .map(|tenant| {
            let core = core.clone();
            let points = points.clone();
            std::thread::spawn(move || {
                points
                    .iter()
                    .enumerate()
                    .map(|(i, (instance, rg))| {
                        expect_solve(
                            &core,
                            &solve_request(tenant, &format!("{tenant}{i}"), instance, *rg),
                        )
                    })
                    .collect::<Vec<SolveResult>>()
            })
        })
        .collect();
    for handle in handles {
        let results = handle.join().expect("tenant thread");
        for (warm, cold) in results.iter().zip(cold.iter()) {
            assert!(
                warm.cache_hit,
                "rg {}: expected a cross-tenant hit",
                warm.rg
            );
            assert_eq!(warm.digest, cold.digest, "selection drifted across tenants");
            assert_eq!(warm.chosen, cold.chosen);
            assert_eq!(warm.status, OptimalityStatus::Optimal);
        }
    }

    // The cached answers equal cold *library* solves of the same points,
    // digest for digest (the admission path must not change the answer).
    let manifest = corpus::manifest().expect("corpus manifest parses");
    for ((instance, rg), served) in points.iter().zip(cold.iter()) {
        let entry = manifest.iter().find(|e| e.id == *instance).expect("entry");
        let w = entry.verify().expect("verifies");
        let spec = SolveSpec {
            rg: *rg,
            audit: true,
            ..SolveSpec::default()
        };
        let options = spec
            .to_options_at(*rg)
            .budget(TenantPolicy::default().clamp(&spec))
            .audit(spec.audit);
        let sel = Solver::new(&w.instance)
            .with_imps(w.imps.clone())
            .solve(&options)
            .expect("cold library solve");
        assert_eq!(
            selection_digest(&sel),
            served.digest,
            "{instance}: daemon answer differs from a cold library solve"
        );
    }

    // Telemetry observed the sharing: one service-cache hit per warm
    // request, misses only for alice's cold pass.
    let lookups: Vec<(bool, u64)> = sink
        .events()
        .iter()
        .filter_map(|e| match e {
            Event::CacheLookup {
                cache: CacheKind::Service,
                hit,
                digest,
            } => Some((*hit, *digest)),
            _ => None,
        })
        .collect();
    let hits = lookups.iter().filter(|(hit, _)| *hit).count();
    let misses = lookups.iter().filter(|(hit, _)| !*hit).count();
    assert_eq!(misses, points.len(), "only alice's pass may miss");
    assert_eq!(hits, 2 * points.len(), "every bob/carol point must hit");

    let stats = core.stats();
    assert_eq!(stats.cache_hits, 2 * points.len() as u64);
    assert_eq!(stats.cache_entries, points.len() as u64);
    assert_eq!(stats.degraded, 0);
    assert_eq!(stats.rejected, 0);
}

#[test]
fn over_budget_tenant_degrades_to_greedy_without_starving_the_other() {
    let core = Arc::new(ServiceCore::new(ServiceConfig::default()));
    // miser has no node budget left before its first request; flush is
    // unconstrained.
    core.set_policy(
        "miser",
        TenantPolicy {
            node_budget: 0,
            ..TenantPolicy::default()
        },
    );
    let (instance, rg) = corpus_points().remove(0);

    // Interleave the two tenants through the concurrent server loop so
    // degradation is exercised under the same scheduler as production.
    let mut log = String::new();
    for i in 0..3 {
        log.push_str(&solve_request("miser", &format!("m{i}"), &instance, rg).to_json());
        log.push('\n');
        log.push_str(&solve_request("flush", &format!("f{i}"), &instance, rg).to_json());
        log.push('\n');
    }
    let mut out: Vec<u8> = Vec::new();
    partita_service::server::serve(
        &core,
        log.as_bytes(),
        &mut out,
        4,
        partita_core::Redaction::None,
    )
    .expect("serve ok");
    let text = String::from_utf8(out).expect("utf8");

    let mut miser_lines = 0;
    let mut flush_lines = 0;
    for line in text.lines() {
        assert!(line.contains("\"ok\":true"), "no request may fail: {line}");
        if line.contains("\"tenant\":\"miser\"") {
            miser_lines += 1;
            assert!(
                line.contains("\"status\":\"heuristic\"") && line.contains("\"degraded\":true"),
                "miser must be honestly degraded: {line}"
            );
        } else if line.contains("\"tenant\":\"flush\"") {
            flush_lines += 1;
            assert!(
                line.contains("\"status\":\"optimal\"") && line.contains("\"degraded\":false"),
                "flush must keep exact service: {line}"
            );
        } else {
            panic!("unexpected tenant in {line}");
        }
    }
    assert_eq!(miser_lines, 3, "miser must be served, not starved: {text}");
    assert_eq!(flush_lines, 3);
    assert_eq!(core.stats().degraded, 3);
    assert_eq!(core.stats().rejected, 0);
}
