//! Property tests over the IR: CDFG closure laws, word-packing safety and
//! path-enumeration invariants.

use proptest::prelude::*;

use partita_mop::{
    enumerate_paths, pack_words, AluOp, Cdfg, CdfgOptions, Function, Mop, PathEnumLimits, Reg,
};

fn mop_strategy() -> impl Strategy<Value = Mop> {
    prop_oneof![
        (0u8..8, 0u8..8, 0u8..8).prop_map(|(d, a, b)| Mop::alu(AluOp::Add, Reg(d), Reg(a), Reg(b))),
        (0u8..8, -50i32..50).prop_map(|(d, v)| Mop::load_imm(Reg(d), v)),
        (0u8..8, 0u8..2).prop_map(|(d, g)| Mop::load_x(Reg(d), g)),
        (0u8..8, 2u8..4).prop_map(|(d, g)| Mop::load_y(Reg(d), g)),
        (0u8..8, 0u8..2).prop_map(|(s, g)| Mop::store_x(Reg(s), g)),
        (0u8..4, 1i32..3).prop_map(|(g, s)| Mop::agu_step(g, s)),
        Just(Mop::nop()),
    ]
}

fn straight_function(mops: Vec<Mop>) -> Function {
    let mut f = Function::new("prop");
    let b = f.add_block();
    for m in mops {
        f.push_mop(b, m);
    }
    f.compute_edges();
    f
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// `related` is symmetric, and the independent set is exactly its
    /// complement (minus the query µ-op itself).
    #[test]
    fn closure_symmetry_and_complement(mops in proptest::collection::vec(mop_strategy(), 1..24)) {
        let f = straight_function(mops);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        let order = g.order().to_vec();
        for &a in &order {
            let independent = g.independent_mops(a);
            for &b in &order {
                if a == b { continue; }
                prop_assert_eq!(g.related(a, b), g.related(b, a));
                prop_assert_eq!(independent.contains(&b), !g.related(a, b));
            }
        }
    }

    /// Direct edges imply relatedness (closure is a superset of the edges).
    #[test]
    fn edges_are_in_the_closure(mops in proptest::collection::vec(mop_strategy(), 1..24)) {
        let f = straight_function(mops);
        let g = Cdfg::build(&f, &CdfgOptions::default());
        let order = g.order().to_vec();
        for &(from, to, _) in g.direct_edges() {
            prop_assert!(g.related(order[from], order[to]));
        }
    }

    /// Word packing is a permutation-free partition: every µ-op lands in
    /// exactly one slot of one word, never two ops in one slot, and no word
    /// contains a read of a register defined earlier in the same word.
    #[test]
    fn packing_partitions_safely(mops in proptest::collection::vec(mop_strategy(), 1..32)) {
        let f = straight_function(mops);
        let packed = pack_words(&f);
        let mut seen = vec![false; f.mop_count()];
        for block in &packed {
            for word in block {
                // Check hazards in program order (entries() reports slot
                // order, which is not the issue order within the word).
                let mut entries = word.entries();
                entries.sort_by_key(|(_, mid)| *mid);
                let mut defined: Vec<Reg> = Vec::new();
                for (_, mid) in &entries {
                    prop_assert!(!seen[mid.index()], "duplicate {mid}");
                    seen[mid.index()] = true;
                    let m = f.mop(*mid).unwrap();
                    for u in m.uses() {
                        prop_assert!(!defined.contains(&u),
                            "raw hazard inside a word on {u}");
                    }
                    defined.extend(m.defs());
                }
            }
        }
        prop_assert!(seen.iter().all(|&s| s), "a µ-op was dropped by packing");
    }

    /// Every enumerated path starts at the entry and is acyclic.
    #[test]
    fn paths_start_at_entry_and_are_acyclic(
        mops in proptest::collection::vec(mop_strategy(), 1..12),
        split in 0usize..12,
    ) {
        // Two blocks with a conditional between them.
        let mut f = Function::new("prop");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let split = split.min(mops.len());
        for m in &mops[..split] {
            f.push_mop(b0, m.clone());
        }
        f.push_mop(b0, Mop::branch_nz(Reg(0), b1, b2));
        for m in &mops[split..] {
            f.push_mop(b1, m.clone());
        }
        f.push_mop(b1, Mop::jump(b2));
        f.push_mop(b2, Mop::ret());
        f.compute_edges();
        let paths = enumerate_paths(&f, PathEnumLimits::default()).unwrap();
        prop_assert!(!paths.is_empty());
        for p in &paths {
            prop_assert_eq!(p.blocks[0], f.entry());
            let mut sorted = p.blocks.clone();
            sorted.sort_unstable();
            sorted.dedup();
            prop_assert_eq!(sorted.len(), p.blocks.len(), "cycle in path");
        }
    }
}
