//! Strongly-typed identifiers used throughout the IR.

use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(pub u32);

        impl $name {
            /// Returns the raw index value.
            #[must_use]
            pub fn index(self) -> usize {
                self.0 as usize
            }

            /// Creates an identifier from a raw `usize` index.
            ///
            /// # Panics
            ///
            /// Panics if `index` does not fit in `u32`.
            #[must_use]
            pub fn from_index(index: usize) -> Self {
                Self(u32::try_from(index).expect("id index overflows u32"))
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<$name> for usize {
            fn from(id: $name) -> usize {
                id.index()
            }
        }
    };
}

id_type!(
    /// Identifier of a single µ-operation inside a [`crate::Function`].
    MopId,
    "m"
);
id_type!(
    /// Identifier of a [`crate::BasicBlock`] inside a [`crate::Function`].
    BlockId,
    "b"
);
id_type!(
    /// Identifier of a [`crate::Function`] inside a [`crate::MopProgram`].
    FuncId,
    "f"
);
id_type!(
    /// Identifier of an execution path (see [`crate::ExecPath`]).
    PathId,
    "P"
);
id_type!(
    /// Identifier of a call site (a potential *s-call*).
    CallSiteId,
    "sc"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_index() {
        let id = MopId::from_index(42);
        assert_eq!(id.index(), 42);
        assert_eq!(usize::from(id), 42);
    }

    #[test]
    fn display_uses_prefix() {
        assert_eq!(MopId(3).to_string(), "m3");
        assert_eq!(BlockId(0).to_string(), "b0");
        assert_eq!(FuncId(7).to_string(), "f7");
        assert_eq!(PathId(1).to_string(), "P1");
        assert_eq!(CallSiteId(13).to_string(), "sc13");
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(MopId(1) < MopId(2));
        assert_eq!(BlockId::default(), BlockId(0));
    }

    #[test]
    #[should_panic(expected = "overflows u32")]
    fn from_index_overflow_panics() {
        let _ = MopId::from_index(usize::MAX);
    }
}
