//! Functions and whole-program containers.

use std::collections::BTreeMap;

use crate::{
    BasicBlock, BlockId, CallSiteId, Cycles, FuncId, Mop, MopError, MopId, MopKind, SeqOp,
};

/// A call site inside a function: a potential *s-call* (Definition 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CallSite {
    /// Identifier of the call site within its program.
    pub id: CallSiteId,
    /// Function containing the call.
    pub caller: FuncId,
    /// Block containing the call µ-operation.
    pub block: BlockId,
    /// The call µ-operation itself.
    pub mop: MopId,
    /// Callee function.
    pub callee: FuncId,
}

/// A function: an arena of µ-operations organised into basic blocks.
///
/// # Example
///
/// ```
/// use partita_mop::{Function, Mop, AluOp, Reg};
/// let mut f = Function::new("dot");
/// let entry = f.add_block();
/// f.push_mop(entry, Mop::load_imm(Reg(0), 0));
/// f.push_mop(entry, Mop::ret());
/// f.compute_edges();
/// assert_eq!(f.entry(), entry);
/// assert!(f.block(entry).unwrap().succs().is_empty());
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Function {
    id: FuncId,
    name: String,
    mops: Vec<Mop>,
    blocks: Vec<BasicBlock>,
    entry: BlockId,
}

impl Function {
    /// Creates an empty function with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Function {
        Function {
            id: FuncId(0),
            name: name.into(),
            mops: Vec::new(),
            blocks: Vec::new(),
            entry: BlockId(0),
        }
    }

    /// The function's identifier within its [`MopProgram`] (0 until added).
    #[must_use]
    pub fn id(&self) -> FuncId {
        self.id
    }

    pub(crate) fn set_id(&mut self, id: FuncId) {
        self.id = id;
    }

    /// The function's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The entry block (the first block added).
    #[must_use]
    pub fn entry(&self) -> BlockId {
        self.entry
    }

    /// Appends a new empty basic block and returns its id.
    pub fn add_block(&mut self) -> BlockId {
        let id = BlockId::from_index(self.blocks.len());
        self.blocks.push(BasicBlock::new(id));
        id
    }

    /// Appends a µ-operation to `block` and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if `block` does not exist; blocks are created by
    /// [`Function::add_block`] so a bad id is a programming error.
    pub fn push_mop(&mut self, block: BlockId, mop: Mop) -> MopId {
        let id = MopId::from_index(self.mops.len());
        self.mops.push(mop);
        self.blocks
            .get_mut(block.index())
            .expect("push_mop: unknown block")
            .push_mop(id);
        id
    }

    /// Looks up a µ-operation.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::UnknownMop`] for out-of-range ids.
    pub fn mop(&self, id: MopId) -> Result<&Mop, MopError> {
        self.mops.get(id.index()).ok_or(MopError::UnknownMop(id))
    }

    /// Looks up a basic block.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::UnknownBlock`] for out-of-range ids.
    pub fn block(&self, id: BlockId) -> Result<&BasicBlock, MopError> {
        self.blocks
            .get(id.index())
            .ok_or(MopError::UnknownBlock(id))
    }

    /// All blocks in creation order.
    #[must_use]
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// All µ-operations in arena order.
    #[must_use]
    pub fn mops(&self) -> &[Mop] {
        &self.mops
    }

    /// Total number of µ-operations.
    #[must_use]
    pub fn mop_count(&self) -> usize {
        self.mops.len()
    }

    /// Static software execution time: one cycle per µ-operation, ignoring
    /// profiling (each MOP occupies one µ-code word field issue slot).
    #[must_use]
    pub fn software_cycles(&self) -> Cycles {
        Cycles(self.mops.len() as u64)
    }

    /// Profiled software execution time: per-block MOP counts weighted by the
    /// block execution counts recorded by the profiler.
    #[must_use]
    pub fn profiled_cycles(&self) -> Cycles {
        self.blocks
            .iter()
            .map(|b| Cycles(b.mops().len() as u64).scaled(b.exec_count()))
            .sum()
    }

    /// Records a profiled execution count for `block`.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::UnknownBlock`] for out-of-range ids.
    pub fn set_exec_count(&mut self, block: BlockId, count: u64) -> Result<(), MopError> {
        self.blocks
            .get_mut(block.index())
            .ok_or(MopError::UnknownBlock(block))?
            .set_exec_count(count);
        Ok(())
    }

    /// Recomputes predecessor/successor edges from block terminators.
    ///
    /// A block's terminator is its last µ-operation when that operation is a
    /// sequencer op; a block whose last operation is not control falls
    /// through to the next block in creation order.
    pub fn compute_edges(&mut self) {
        for b in &mut self.blocks {
            b.clear_edges();
        }
        let mut edges: Vec<(BlockId, BlockId)> = Vec::new();
        for (i, b) in self.blocks.iter().enumerate() {
            let this = b.id();
            let term = b.mops().last().map(|m| &self.mops[m.index()]);
            match term.map(Mop::kind) {
                Some(MopKind::Seq(SeqOp::Jump(t))) => edges.push((this, *t)),
                Some(MopKind::Seq(SeqOp::BranchNz {
                    then_block,
                    else_block,
                    ..
                })) => {
                    edges.push((this, *then_block));
                    edges.push((this, *else_block));
                }
                Some(MopKind::Seq(SeqOp::Return | SeqOp::Halt)) => {}
                _ => {
                    // Fall through (including calls, which return inline).
                    if i + 1 < self.blocks.len() {
                        edges.push((this, BlockId::from_index(i + 1)));
                    }
                }
            }
        }
        for (from, to) in edges {
            if to.index() < self.blocks.len() {
                self.blocks[from.index()].add_succ(to);
                self.blocks[to.index()].add_pred(from);
            }
        }
    }

    /// Iterates over all call µ-operations as `(block, mop, callee)` triples
    /// in program order.
    #[must_use]
    pub fn call_mops(&self) -> Vec<(BlockId, MopId, FuncId)> {
        let mut out = Vec::new();
        for b in &self.blocks {
            for &m in b.mops() {
                if let Some(callee) = self.mops[m.index()].callee() {
                    out.push((b.id(), m, callee));
                }
            }
        }
        out
    }
}

impl std::fmt::Display for Function {
    /// Renders an assembly-style listing, one block per paragraph:
    ///
    /// ```text
    /// fn fir:
    ///   b0:
    ///     ldi r0, #0
    ///     jmp b1
    /// ```
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(f, "fn {}:", self.name)?;
        for b in &self.blocks {
            writeln!(f, "  {}:", b.id())?;
            for &m in b.mops() {
                writeln!(f, "    {}", self.mops[m.index()])?;
            }
        }
        Ok(())
    }
}

/// A whole program: a set of functions with a designated `main`.
///
/// # Example
///
/// ```
/// use partita_mop::{MopProgram, Function, Mop};
/// let mut p = MopProgram::new();
/// let mut main = Function::new("main");
/// let b = main.add_block();
/// main.push_mop(b, Mop::halt());
/// let main_id = p.add_function(main)?;
/// p.set_main(main_id)?;
/// assert_eq!(p.function(main_id)?.name(), "main");
/// # Ok::<(), partita_mop::MopError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MopProgram {
    functions: Vec<Function>,
    by_name: BTreeMap<String, FuncId>,
    main: Option<FuncId>,
}

impl MopProgram {
    /// Creates an empty program.
    #[must_use]
    pub fn new() -> MopProgram {
        MopProgram::default()
    }

    /// Adds a function and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::DuplicateFunction`] if a function of the same name
    /// is already present.
    pub fn add_function(&mut self, mut f: Function) -> Result<FuncId, MopError> {
        if self.by_name.contains_key(f.name()) {
            return Err(MopError::DuplicateFunction(f.name().to_owned()));
        }
        let id = FuncId::from_index(self.functions.len());
        f.set_id(id);
        self.by_name.insert(f.name().to_owned(), id);
        self.functions.push(f);
        Ok(id)
    }

    /// Marks `id` as the program entry function.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::UnknownFunction`] for out-of-range ids.
    pub fn set_main(&mut self, id: FuncId) -> Result<(), MopError> {
        if id.index() >= self.functions.len() {
            return Err(MopError::UnknownFunction(id));
        }
        self.main = Some(id);
        Ok(())
    }

    /// The entry function, if set.
    #[must_use]
    pub fn main(&self) -> Option<FuncId> {
        self.main
    }

    /// Looks up a function by id.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::UnknownFunction`] for out-of-range ids.
    pub fn function(&self, id: FuncId) -> Result<&Function, MopError> {
        self.functions
            .get(id.index())
            .ok_or(MopError::UnknownFunction(id))
    }

    /// Mutable lookup.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::UnknownFunction`] for out-of-range ids.
    pub fn function_mut(&mut self, id: FuncId) -> Result<&mut Function, MopError> {
        self.functions
            .get_mut(id.index())
            .ok_or(MopError::UnknownFunction(id))
    }

    /// Looks up a function id by name.
    #[must_use]
    pub fn function_by_name(&self, name: &str) -> Option<FuncId> {
        self.by_name.get(name).copied()
    }

    /// All functions in id order.
    #[must_use]
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// Collects every call site in the program, numbered in
    /// (function, program-order) order; these are the *s-call candidates*.
    #[must_use]
    pub fn call_sites(&self) -> Vec<CallSite> {
        let mut out = Vec::new();
        for f in &self.functions {
            for (block, mop, callee) in f.call_mops() {
                out.push(CallSite {
                    id: CallSiteId::from_index(out.len()),
                    caller: f.id(),
                    block,
                    mop,
                    callee,
                });
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Reg};

    fn diamond() -> Function {
        // b0 -> b1 / b2 -> b3
        let mut f = Function::new("diamond");
        let b0 = f.add_block();
        let b1 = f.add_block();
        let b2 = f.add_block();
        let b3 = f.add_block();
        f.push_mop(b0, Mop::load_imm(Reg(0), 1));
        f.push_mop(b0, Mop::branch_nz(Reg(0), b1, b2));
        f.push_mop(b1, Mop::alu(AluOp::Add, Reg(1), Reg(1), 1));
        f.push_mop(b1, Mop::jump(b3));
        f.push_mop(b2, Mop::alu(AluOp::Sub, Reg(1), Reg(1), 1));
        f.push_mop(b2, Mop::jump(b3));
        f.push_mop(b3, Mop::ret());
        f.compute_edges();
        f
    }

    #[test]
    fn edges_of_diamond() {
        let f = diamond();
        let b0 = f.block(BlockId(0)).unwrap();
        assert_eq!(b0.succs(), &[BlockId(1), BlockId(2)]);
        let b3 = f.block(BlockId(3)).unwrap();
        assert_eq!(b3.preds(), &[BlockId(1), BlockId(2)]);
        assert!(b3.succs().is_empty());
    }

    #[test]
    fn fallthrough_edge() {
        let mut f = Function::new("ft");
        let b0 = f.add_block();
        let b1 = f.add_block();
        f.push_mop(b0, Mop::nop());
        f.push_mop(b1, Mop::ret());
        f.compute_edges();
        assert_eq!(f.block(b0).unwrap().succs(), &[b1]);
    }

    #[test]
    fn software_cycles_counts_mops() {
        let f = diamond();
        assert_eq!(f.software_cycles(), Cycles(7));
    }

    #[test]
    fn profiled_cycles_uses_counts() {
        let mut f = diamond();
        f.set_exec_count(BlockId(1), 10).unwrap();
        f.set_exec_count(BlockId(2), 0).unwrap();
        // b0: 2 mops * 1, b1: 2 * 10, b2: 2 * 0, b3: 1 * 1
        assert_eq!(f.profiled_cycles(), Cycles((2 + 20) + 1));
    }

    #[test]
    fn duplicate_function_rejected() {
        let mut p = MopProgram::new();
        p.add_function(Function::new("f")).unwrap();
        assert_eq!(
            p.add_function(Function::new("f")),
            Err(MopError::DuplicateFunction("f".into()))
        );
    }

    #[test]
    fn listing_shows_blocks_and_mops() {
        let f = diamond();
        let listing = f.to_string();
        assert!(listing.starts_with("fn diamond:"));
        assert!(listing.contains("  b0:"));
        assert!(listing.contains("    bnz r0, b1, b2"));
        assert!(listing.contains("    ret"));
    }

    #[test]
    fn call_sites_are_numbered_in_order() {
        let mut p = MopProgram::new();
        let mut main = Function::new("main");
        let b = main.add_block();
        main.push_mop(b, Mop::call(FuncId(1)));
        main.push_mop(b, Mop::call(FuncId(1)));
        main.push_mop(b, Mop::halt());
        let m = p.add_function(main).unwrap();
        p.add_function(Function::new("fir")).unwrap();
        p.set_main(m).unwrap();
        let scs = p.call_sites();
        assert_eq!(scs.len(), 2);
        assert_eq!(scs[0].id, CallSiteId(0));
        assert_eq!(scs[1].id, CallSiteId(1));
        assert_eq!(scs[0].callee, FuncId(1));
    }

    #[test]
    fn unknown_lookups_error() {
        let p = MopProgram::new();
        assert_eq!(
            p.function(FuncId(0)).unwrap_err(),
            MopError::UnknownFunction(FuncId(0))
        );
        let f = Function::new("g");
        assert_eq!(f.mop(MopId(0)).unwrap_err(), MopError::UnknownMop(MopId(0)));
        assert_eq!(
            f.block(BlockId(9)).unwrap_err(),
            MopError::UnknownBlock(BlockId(9))
        );
    }
}
