//! µ-code words: eight parallel fields per word (paper §2) and a greedy
//! packer that bundles independent µ-operations into one word.

use crate::{Function, Mop, MopId, MopKind, Reg};

/// The eight µ-code word fields of the target ASIP.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FieldSlot {
    /// ALU operation field.
    Alu,
    /// MAC operation field.
    Mac,
    /// X data-memory access field.
    XMem,
    /// Y data-memory access field.
    YMem,
    /// X-side AGU update field.
    AguX,
    /// Y-side AGU update field.
    AguY,
    /// Register move field.
    Move,
    /// Sequencer (control) field.
    Seq,
}

impl FieldSlot {
    /// All slots in field order.
    pub const ALL: [FieldSlot; 8] = [
        FieldSlot::Alu,
        FieldSlot::Mac,
        FieldSlot::XMem,
        FieldSlot::YMem,
        FieldSlot::AguX,
        FieldSlot::AguY,
        FieldSlot::Move,
        FieldSlot::Seq,
    ];

    /// Index of the slot inside a [`MicroWord`].
    #[must_use]
    pub fn index(self) -> usize {
        match self {
            FieldSlot::Alu => 0,
            FieldSlot::Mac => 1,
            FieldSlot::XMem => 2,
            FieldSlot::YMem => 3,
            FieldSlot::AguX => 4,
            FieldSlot::AguY => 5,
            FieldSlot::Move => 6,
            FieldSlot::Seq => 7,
        }
    }

    /// The field a µ-operation occupies.
    #[must_use]
    pub fn of(mop: &Mop) -> FieldSlot {
        match mop.kind() {
            MopKind::Alu { .. } => FieldSlot::Alu,
            MopKind::Mac { .. } => FieldSlot::Mac,
            MopKind::LoadX { .. } | MopKind::StoreX { .. } => FieldSlot::XMem,
            MopKind::LoadY { .. } | MopKind::StoreY { .. } => FieldSlot::YMem,
            MopKind::AguSet { agu, .. }
            | MopKind::AguStep { agu, .. }
            | MopKind::AguFromReg { agu, .. } => {
                if *agu < 2 {
                    FieldSlot::AguX
                } else {
                    FieldSlot::AguY
                }
            }
            MopKind::Move { .. } | MopKind::LoadImm { .. } => FieldSlot::Move,
            // IP and buffer transfers ride the X/Y data buses: even ports
            // and buffers use the X side, odd ones the Y side, so a paired
            // transfer (paper Fig. 4 line 7) shares one word.
            MopKind::IpWrite { port, .. } | MopKind::IpRead { port, .. } => {
                if port % 2 == 0 {
                    FieldSlot::XMem
                } else {
                    FieldSlot::YMem
                }
            }
            MopKind::BufWrite { buf, .. } | MopKind::BufRead { buf, .. } => {
                if buf % 2 == 0 {
                    FieldSlot::XMem
                } else {
                    FieldSlot::YMem
                }
            }
            MopKind::IpStart => FieldSlot::Move,
            MopKind::Seq(_) => FieldSlot::Seq,
            MopKind::Nop => FieldSlot::Move,
        }
    }
}

/// One µ-code word: up to eight µ-operations issued in the same cycle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MicroWord {
    slots: [Option<MopId>; 8],
}

impl MicroWord {
    /// Creates an empty word.
    #[must_use]
    pub fn new() -> MicroWord {
        MicroWord::default()
    }

    /// The µ-operation in `slot`, if any.
    #[must_use]
    pub fn slot(&self, slot: FieldSlot) -> Option<MopId> {
        self.slots[slot.index()]
    }

    /// Number of occupied fields.
    #[must_use]
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// All occupied `(slot, mop)` pairs.
    #[must_use]
    pub fn entries(&self) -> Vec<(FieldSlot, MopId)> {
        FieldSlot::ALL
            .iter()
            .filter_map(|&s| self.slots[s.index()].map(|m| (s, m)))
            .collect()
    }

    fn try_place(&mut self, slot: FieldSlot, mop: MopId) -> bool {
        let cell = &mut self.slots[slot.index()];
        if cell.is_none() {
            *cell = Some(mop);
            true
        } else {
            false
        }
    }
}

/// Greedily packs the µ-operations of `func` into µ-code words.
///
/// A µ-operation joins the current word when its field is free and it does
/// not read a register defined earlier in the same word; sequencer operations
/// close their word. This mirrors the paper's observation that "in lines 7
/// and 8 several operations are processed in a cycle, since the kernel has
/// enough resources and the µ-codes can utilize them" (Fig. 4).
///
/// Returns one `Vec<MicroWord>` per basic block, in block order.
#[must_use]
pub fn pack_words(func: &Function) -> Vec<Vec<MicroWord>> {
    let mut out = Vec::with_capacity(func.blocks().len());
    for block in func.blocks() {
        let mut words: Vec<MicroWord> = Vec::new();
        let mut cur = MicroWord::new();
        let mut defined: Vec<Reg> = Vec::new();

        let flush = |words: &mut Vec<MicroWord>, cur: &mut MicroWord, defined: &mut Vec<Reg>| {
            if cur.occupancy() > 0 {
                words.push(std::mem::take(cur));
            }
            defined.clear();
        };

        for &mid in block.mops() {
            let mop = func.mop(mid).expect("block mop exists");
            // A Nop is a full idle µ-word (rate padding in the interface
            // templates): it never shares a word with other operations.
            if matches!(mop.kind(), MopKind::Nop) {
                flush(&mut words, &mut cur, &mut defined);
                let mut w = MicroWord::new();
                let placed = w.try_place(FieldSlot::Move, mid);
                debug_assert!(placed);
                words.push(w);
                continue;
            }
            let slot = FieldSlot::of(mop);
            let hazard = mop.uses().iter().any(|u| defined.contains(u));
            if hazard || cur.slot(slot).is_some() {
                flush(&mut words, &mut cur, &mut defined);
            }
            let placed = cur.try_place(slot, mid);
            debug_assert!(placed, "slot must be free after flush");
            defined.extend(mop.defs());
            if mop.is_control() {
                flush(&mut words, &mut cur, &mut defined);
            }
        }
        flush(&mut words, &mut cur, &mut defined);
        out.push(words);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AluOp, Function, Mop};

    #[test]
    fn independent_ops_share_a_word() {
        let mut f = Function::new("p");
        let b = f.add_block();
        f.push_mop(b, Mop::load_x(Reg(0), 0)); // XMem
        f.push_mop(b, Mop::load_y(Reg(1), 2)); // YMem
        f.push_mop(b, Mop::alu(AluOp::Add, Reg(2), Reg(3), Reg(4))); // Alu
        f.compute_edges();
        let words = pack_words(&f);
        assert_eq!(words[0].len(), 1);
        assert_eq!(words[0][0].occupancy(), 3);
    }

    #[test]
    fn raw_hazard_splits_words() {
        let mut f = Function::new("h");
        let b = f.add_block();
        f.push_mop(b, Mop::load_x(Reg(0), 0));
        f.push_mop(b, Mop::alu(AluOp::Add, Reg(1), Reg(0), 1)); // uses r0
        f.compute_edges();
        let words = pack_words(&f);
        assert_eq!(words[0].len(), 2);
    }

    #[test]
    fn same_slot_splits_words() {
        let mut f = Function::new("s");
        let b = f.add_block();
        f.push_mop(b, Mop::load_x(Reg(0), 0));
        f.push_mop(b, Mop::load_x(Reg(1), 1));
        f.compute_edges();
        let words = pack_words(&f);
        assert_eq!(words[0].len(), 2);
    }

    #[test]
    fn control_closes_word() {
        let mut f = Function::new("c");
        let b = f.add_block();
        f.push_mop(b, Mop::ret());
        f.push_mop(b, Mop::nop());
        f.compute_edges();
        let words = pack_words(&f);
        assert_eq!(words[0].len(), 2);
        assert_eq!(words[0][0].slot(FieldSlot::Seq), Some(crate::MopId(0)));
    }

    #[test]
    fn slot_assignment_matches_kind() {
        assert_eq!(FieldSlot::of(&Mop::load_x(Reg(0), 0)), FieldSlot::XMem);
        assert_eq!(FieldSlot::of(&Mop::agu_step(3, 1)), FieldSlot::AguY);
        assert_eq!(FieldSlot::of(&Mop::agu_step(0, 1)), FieldSlot::AguX);
        assert_eq!(FieldSlot::of(&Mop::mov(Reg(0), Reg(1))), FieldSlot::Move);
        assert_eq!(FieldSlot::of(&Mop::halt()), FieldSlot::Seq);
    }

    #[test]
    fn entries_report_occupied_slots() {
        let mut f = Function::new("e");
        let b = f.add_block();
        f.push_mop(b, Mop::load_x(Reg(0), 0));
        f.compute_edges();
        let words = pack_words(&f);
        let entries = words[0][0].entries();
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].0, FieldSlot::XMem);
    }
}
