//! Micro-operation (MOP) intermediate representation for the Partita ASIP
//! synthesis flow.
//!
//! This crate is the foundation of the DAC'99 reproduction: every other crate
//! speaks in terms of the types defined here.
//!
//! The paper's target ASIP executes *µ-code words* of eight fields; each
//! operation in a field is a **MOP** (µ-operation). An application program is
//! transformed into a MOP list, grouped into [`BasicBlock`]s inside
//! [`Function`]s, and analysed through:
//!
//! * a [`Cdfg`] (control/data flow graph) whose transitive closure drives the
//!   *parallel code* definitions (Definitions 3–5 of the paper),
//! * [`ExecPath`] enumeration (per-path required performance gains, Eq. 2),
//! * a [`CallGraph`] with topological levels for hierarchical *IMP flatten*.
//!
//! # Example
//!
//! ```
//! use partita_mop::{Function, Mop, AluOp, Reg, Cycles};
//!
//! let mut f = Function::new("fir");
//! let b = f.add_block();
//! f.push_mop(b, Mop::alu(AluOp::Add, Reg(0), Reg(1), Reg(2)));
//! f.push_mop(b, Mop::nop());
//! assert_eq!(f.mop_count(), 2);
//! assert_eq!(f.software_cycles(), Cycles(2));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod block;
mod cdfg;
mod cost;
mod error;
mod hierarchy;
mod ids;
mod op;
mod paths;
mod program;
mod word;

pub use block::BasicBlock;
pub use cdfg::{CallEffects, Cdfg, CdfgOptions, DepKind, MemRegion, MemSpace};
pub use cost::{AreaTenths, Cycles};
pub use error::MopError;
pub use hierarchy::{CallGraph, CallGraphNode, HierarchyLevels};
pub use ids::{BlockId, CallSiteId, FuncId, MopId, PathId};
pub use op::{AluOp, MacOp, Mop, MopKind, Operand, Reg, SeqOp};
pub use paths::{enumerate_paths, ExecPath, PathEnumLimits};
pub use program::{CallSite, Function, MopProgram};
pub use word::{pack_words, FieldSlot, MicroWord};
