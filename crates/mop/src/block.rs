//! Basic blocks of µ-operations.

use crate::{BlockId, MopId};

/// A maximal straight-line sequence of µ-operations.
///
/// Blocks carry an execution count filled in by the profiler (the paper's
/// "sample-execution with typical input data", §2); analyses that predate
/// profiling see a count of `1`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BasicBlock {
    id: BlockId,
    mops: Vec<MopId>,
    preds: Vec<BlockId>,
    succs: Vec<BlockId>,
    exec_count: u64,
}

impl BasicBlock {
    pub(crate) fn new(id: BlockId) -> BasicBlock {
        BasicBlock {
            id,
            mops: Vec::new(),
            preds: Vec::new(),
            succs: Vec::new(),
            exec_count: 1,
        }
    }

    /// The block's identifier.
    #[must_use]
    pub fn id(&self) -> BlockId {
        self.id
    }

    /// µ-operations of the block, in program order.
    #[must_use]
    pub fn mops(&self) -> &[MopId] {
        &self.mops
    }

    /// Predecessor blocks (filled by [`crate::Function::compute_edges`]).
    #[must_use]
    pub fn preds(&self) -> &[BlockId] {
        &self.preds
    }

    /// Successor blocks (filled by [`crate::Function::compute_edges`]).
    #[must_use]
    pub fn succs(&self) -> &[BlockId] {
        &self.succs
    }

    /// Profiled execution count of this block.
    #[must_use]
    pub fn exec_count(&self) -> u64 {
        self.exec_count
    }

    pub(crate) fn push_mop(&mut self, mop: MopId) {
        self.mops.push(mop);
    }

    pub(crate) fn set_exec_count(&mut self, count: u64) {
        self.exec_count = count;
    }

    pub(crate) fn clear_edges(&mut self) {
        self.preds.clear();
        self.succs.clear();
    }

    pub(crate) fn add_succ(&mut self, succ: BlockId) {
        if !self.succs.contains(&succ) {
            self.succs.push(succ);
        }
    }

    pub(crate) fn add_pred(&mut self, pred: BlockId) {
        if !self.preds.contains(&pred) {
            self.preds.push(pred);
        }
    }
}
