//! Call graph and hierarchy levels for *IMP flatten* (paper §4, Fig. 11).
//!
//! The paper handles hierarchical applications (main → jpeg → dct2d → dct1d)
//! by computing IMPs bottom-up: "IMPs of dct1d() at level 0 are considered in
//! computing those of dct2d() at level 1", and so on. [`HierarchyLevels`]
//! provides exactly that bottom-up order.

use std::collections::BTreeMap;

use crate::{FuncId, MopError, MopProgram};

/// A node of the call graph: one function and its callees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraphNode {
    /// The function.
    pub func: FuncId,
    /// Distinct callees with static call-site counts.
    pub callees: BTreeMap<FuncId, usize>,
}

/// The static call graph of a [`MopProgram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CallGraph {
    nodes: Vec<CallGraphNode>,
}

impl CallGraph {
    /// Builds the call graph from every call µ-operation in the program.
    #[must_use]
    pub fn build(program: &MopProgram) -> CallGraph {
        let nodes = program
            .functions()
            .iter()
            .map(|f| {
                let mut callees: BTreeMap<FuncId, usize> = BTreeMap::new();
                for (_, _, callee) in f.call_mops() {
                    *callees.entry(callee).or_insert(0) += 1;
                }
                CallGraphNode {
                    func: f.id(),
                    callees,
                }
            })
            .collect();
        CallGraph { nodes }
    }

    /// The nodes, indexed by function id.
    #[must_use]
    pub fn nodes(&self) -> &[CallGraphNode] {
        &self.nodes
    }

    /// Direct callees of `func` (empty for unknown ids).
    #[must_use]
    pub fn callees(&self, func: FuncId) -> Vec<FuncId> {
        self.nodes
            .get(func.index())
            .map(|n| n.callees.keys().copied().collect())
            .unwrap_or_default()
    }

    /// Computes hierarchy levels: leaves are level 0; a caller's level is
    /// `1 + max(level of callees)`.
    ///
    /// # Errors
    ///
    /// Returns [`MopError::RecursiveCallGraph`] if the graph has a cycle —
    /// the paper's IMP flatten requires a DAG.
    pub fn levels(&self, program: &MopProgram) -> Result<HierarchyLevels, MopError> {
        let n = self.nodes.len();
        let mut level = vec![usize::MAX; n];
        let mut state = vec![0u8; n]; // 0 unvisited, 1 in-stack, 2 done

        fn visit(
            g: &CallGraph,
            program: &MopProgram,
            f: usize,
            level: &mut [usize],
            state: &mut [u8],
        ) -> Result<usize, MopError> {
            if state[f] == 2 {
                return Ok(level[f]);
            }
            if state[f] == 1 {
                let name = program
                    .function(FuncId::from_index(f))
                    .map(|func| func.name().to_owned())
                    .unwrap_or_else(|_| format!("f{f}"));
                return Err(MopError::RecursiveCallGraph(name));
            }
            state[f] = 1;
            let mut lv = 0usize;
            for &callee in g.nodes[f].callees.keys() {
                if callee.index() < g.nodes.len() {
                    lv = lv.max(1 + visit(g, program, callee.index(), level, state)?);
                }
            }
            state[f] = 2;
            level[f] = lv;
            Ok(lv)
        }

        for f in 0..n {
            visit(self, program, f, &mut level, &mut state)?;
        }

        let max_level = level.iter().copied().max().unwrap_or(0);
        let mut by_level: Vec<Vec<FuncId>> =
            vec![Vec::new(); if n == 0 { 0 } else { max_level + 1 }];
        for (f, &lv) in level.iter().enumerate() {
            by_level[lv].push(FuncId::from_index(f));
        }
        Ok(HierarchyLevels { level, by_level })
    }
}

/// Bottom-up hierarchy levels of a call graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HierarchyLevels {
    level: Vec<usize>,
    by_level: Vec<Vec<FuncId>>,
}

impl HierarchyLevels {
    /// Level of a function (0 = leaf). `None` for unknown ids.
    #[must_use]
    pub fn level(&self, func: FuncId) -> Option<usize> {
        self.level.get(func.index()).copied()
    }

    /// Functions grouped by level, level 0 first — the IMP-flatten order.
    #[must_use]
    pub fn by_level(&self) -> &[Vec<FuncId>] {
        &self.by_level
    }

    /// Functions in strict bottom-up order (all of level 0, then 1, …).
    #[must_use]
    pub fn bottom_up(&self) -> Vec<FuncId> {
        self.by_level.iter().flatten().copied().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Function, Mop};

    /// Builds the paper's Fig. 11 hierarchy:
    /// main → jpeg → dct2d → dct1d → fft; jpeg → zigzag.
    fn jpeg_program() -> MopProgram {
        let mut p = MopProgram::new();
        let names = ["main", "jpeg", "dct2d", "dct1d", "fft", "zigzag"];
        let calls: &[(usize, usize)] = &[(0, 1), (1, 2), (1, 5), (2, 3), (3, 4)];
        let mut funcs = Vec::new();
        for name in names {
            funcs.push(Function::new(name));
        }
        for (i, f) in funcs.iter_mut().enumerate() {
            let b = f.add_block();
            for &(caller, callee) in calls {
                if caller == i {
                    f.push_mop(b, Mop::call(FuncId::from_index(callee)));
                }
            }
            f.push_mop(b, Mop::ret());
        }
        for f in funcs {
            p.add_function(f).unwrap();
        }
        p
    }

    #[test]
    fn fig11_levels() {
        let p = jpeg_program();
        let g = CallGraph::build(&p);
        let levels = g.levels(&p).unwrap();
        let id = |name: &str| p.function_by_name(name).unwrap();
        assert_eq!(levels.level(id("fft")), Some(0));
        assert_eq!(levels.level(id("zigzag")), Some(0));
        assert_eq!(levels.level(id("dct1d")), Some(1));
        assert_eq!(levels.level(id("dct2d")), Some(2));
        assert_eq!(levels.level(id("jpeg")), Some(3));
        assert_eq!(levels.level(id("main")), Some(4));
    }

    #[test]
    fn bottom_up_order_respects_levels() {
        let p = jpeg_program();
        let g = CallGraph::build(&p);
        let levels = g.levels(&p).unwrap();
        let order = levels.bottom_up();
        let pos = |f: FuncId| order.iter().position(|&x| x == f).unwrap();
        let id = |name: &str| p.function_by_name(name).unwrap();
        assert!(pos(id("fft")) < pos(id("dct1d")));
        assert!(pos(id("dct1d")) < pos(id("dct2d")));
        assert!(pos(id("dct2d")) < pos(id("jpeg")));
    }

    #[test]
    fn callee_counts() {
        let p = jpeg_program();
        let g = CallGraph::build(&p);
        let jpeg = p.function_by_name("jpeg").unwrap();
        assert_eq!(g.callees(jpeg).len(), 2);
    }

    #[test]
    fn recursion_detected() {
        let mut p = MopProgram::new();
        let mut a = Function::new("a");
        let b = a.add_block();
        a.push_mop(b, Mop::call(FuncId(1)));
        a.push_mop(b, Mop::ret());
        let mut c = Function::new("b");
        let bb = c.add_block();
        c.push_mop(bb, Mop::call(FuncId(0)));
        c.push_mop(bb, Mop::ret());
        p.add_function(a).unwrap();
        p.add_function(c).unwrap();
        let g = CallGraph::build(&p);
        assert!(matches!(g.levels(&p), Err(MopError::RecursiveCallGraph(_))));
    }

    #[test]
    fn empty_program_has_no_levels() {
        let p = MopProgram::new();
        let g = CallGraph::build(&p);
        let levels = g.levels(&p).unwrap();
        assert!(levels.by_level().is_empty());
        assert!(levels.bottom_up().is_empty());
    }
}
