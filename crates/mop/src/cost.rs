//! Cost newtypes: execution cycles and silicon area.
//!
//! The paper reports performance gains in kernel clock cycles and areas in
//! relative units that may be fractional (e.g. `15.5` for IP13 with a type-3
//! interface in Table 1). We keep cycles as `u64` and areas as **tenths** in
//! an `i64` so that every ILP coefficient is exact.

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Mul, Sub, SubAssign};

/// A number of kernel clock cycles.
///
/// Arithmetic saturates rather than wrapping: cycle budgets in the paper reach
/// tens of millions (Table 3) and overflow would silently corrupt gains.
///
/// # Example
///
/// ```
/// use partita_mop::Cycles;
/// let t_ip = Cycles(120);
/// let t_if = Cycles(80);
/// assert_eq!(t_ip.max(t_if), Cycles(120));
/// assert_eq!(t_ip + t_if, Cycles(200));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(pub u64);

impl Cycles {
    /// Zero cycles.
    pub const ZERO: Cycles = Cycles(0);

    /// Returns the raw cycle count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction; the paper's gain formulas never go negative.
    #[must_use]
    pub fn saturating_sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(rhs.0))
    }

    /// The larger of two durations (`MAX(T_IP, T_IF)` in the paper).
    #[must_use]
    pub fn max(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.max(rhs.0))
    }

    /// The smaller of two durations (`MIN(T_IP, T_C)` in the paper).
    #[must_use]
    pub fn min(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.min(rhs.0))
    }

    /// Multiplies by an execution frequency (profile count).
    #[must_use]
    pub fn scaled(self, times: u64) -> Cycles {
        Cycles(self.0.saturating_mul(times))
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        *self = *self + rhs;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    fn sub(self, rhs: Cycles) -> Cycles {
        self.saturating_sub(rhs)
    }
}

impl SubAssign for Cycles {
    fn sub_assign(&mut self, rhs: Cycles) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for Cycles {
    type Output = Cycles;
    fn mul(self, rhs: u64) -> Cycles {
        self.scaled(rhs)
    }
}

impl Sum for Cycles {
    fn sum<I: Iterator<Item = Cycles>>(iter: I) -> Cycles {
        iter.fold(Cycles::ZERO, Add::add)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} cyc", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(v: u64) -> Cycles {
        Cycles(v)
    }
}

/// A silicon area expressed in **tenths of a relative area unit**.
///
/// The paper's area column mixes integers (`3`, `14`) and halves (`15.5`,
/// `27.5`); storing tenths keeps all ILP objective coefficients integral.
///
/// # Example
///
/// ```
/// use partita_mop::AreaTenths;
/// let a = AreaTenths::from_units(15) + AreaTenths::from_tenths(5);
/// assert_eq!(a.to_string(), "15.5");
/// assert_eq!(a.as_f64(), 15.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct AreaTenths(pub i64);

impl AreaTenths {
    /// Zero area.
    pub const ZERO: AreaTenths = AreaTenths(0);

    /// Creates an area from whole relative units.
    #[must_use]
    pub fn from_units(units: i64) -> AreaTenths {
        AreaTenths(units * 10)
    }

    /// Creates an area from tenths of a unit.
    #[must_use]
    pub fn from_tenths(tenths: i64) -> AreaTenths {
        AreaTenths(tenths)
    }

    /// Returns the raw value in tenths.
    #[must_use]
    pub fn tenths(self) -> i64 {
        self.0
    }

    /// Converts to floating point units (lossless: tenths / 10).
    #[must_use]
    pub fn as_f64(self) -> f64 {
        self.0 as f64 / 10.0
    }
}

impl Add for AreaTenths {
    type Output = AreaTenths;
    fn add(self, rhs: AreaTenths) -> AreaTenths {
        AreaTenths(self.0 + rhs.0)
    }
}

impl AddAssign for AreaTenths {
    fn add_assign(&mut self, rhs: AreaTenths) {
        self.0 += rhs.0;
    }
}

impl Sub for AreaTenths {
    type Output = AreaTenths;
    fn sub(self, rhs: AreaTenths) -> AreaTenths {
        AreaTenths(self.0 - rhs.0)
    }
}

impl Sum for AreaTenths {
    fn sum<I: Iterator<Item = AreaTenths>>(iter: I) -> AreaTenths {
        iter.fold(AreaTenths::ZERO, Add::add)
    }
}

impl fmt::Display for AreaTenths {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 % 10 == 0 {
            write!(f, "{}", self.0 / 10)
        } else {
            write!(f, "{}.{}", self.0 / 10, (self.0 % 10).abs())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_saturate() {
        assert_eq!(Cycles(3) - Cycles(5), Cycles::ZERO);
        assert_eq!(Cycles(u64::MAX) + Cycles(1), Cycles(u64::MAX));
        assert_eq!(Cycles(u64::MAX).scaled(2), Cycles(u64::MAX));
    }

    #[test]
    fn cycles_minmax_match_paper_formulas() {
        // MAX(T_IP, T_IF) from section 3.
        assert_eq!(Cycles(120).max(Cycles(80)), Cycles(120));
        assert_eq!(Cycles(120).min(Cycles(80)), Cycles(80));
    }

    #[test]
    fn cycles_sum_and_display() {
        let total: Cycles = [Cycles(1), Cycles(2), Cycles(3)].into_iter().sum();
        assert_eq!(total, Cycles(6));
        assert_eq!(total.to_string(), "6 cyc");
        assert_eq!(Cycles::from(9u64), Cycles(9));
    }

    #[test]
    fn area_display_matches_paper_style() {
        assert_eq!(AreaTenths::from_units(3).to_string(), "3");
        assert_eq!(AreaTenths::from_tenths(155).to_string(), "15.5");
        assert_eq!(AreaTenths::from_tenths(275).to_string(), "27.5");
    }

    #[test]
    fn area_arithmetic() {
        let total: AreaTenths = [AreaTenths::from_units(3), AreaTenths::from_tenths(155)]
            .into_iter()
            .sum();
        assert_eq!(total, AreaTenths::from_tenths(185));
        assert_eq!((total - AreaTenths::from_units(3)).as_f64(), 15.5);
    }
}
