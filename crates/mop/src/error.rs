//! Error type for IR construction and analysis.

use std::error::Error;
use std::fmt;

use crate::{BlockId, FuncId, MopId};

/// Errors raised while building or analysing MOP programs.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MopError {
    /// A referenced block does not exist in the function.
    UnknownBlock(BlockId),
    /// A referenced µ-operation does not exist in the function.
    UnknownMop(MopId),
    /// A referenced function does not exist in the program.
    UnknownFunction(FuncId),
    /// A function with the same name was already registered.
    DuplicateFunction(String),
    /// The call graph is recursive; hierarchy levelling requires a DAG.
    RecursiveCallGraph(String),
    /// Path enumeration exceeded the configured limits.
    PathLimitExceeded {
        /// Function whose block graph was being enumerated.
        func: FuncId,
        /// Configured maximum number of paths.
        max_paths: usize,
    },
}

impl fmt::Display for MopError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MopError::UnknownBlock(b) => write!(f, "unknown basic block {b}"),
            MopError::UnknownMop(m) => write!(f, "unknown micro-operation {m}"),
            MopError::UnknownFunction(func) => write!(f, "unknown function {func}"),
            MopError::DuplicateFunction(name) => {
                write!(f, "function `{name}` registered twice")
            }
            MopError::RecursiveCallGraph(name) => {
                write!(f, "call graph is recursive at function `{name}`")
            }
            MopError::PathLimitExceeded { func, max_paths } => write!(
                f,
                "path enumeration in {func} exceeded the limit of {max_paths} paths"
            ),
        }
    }
}

impl Error for MopError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_are_lowercase_and_specific() {
        let e = MopError::UnknownBlock(BlockId(4));
        assert_eq!(e.to_string(), "unknown basic block b4");
        let e = MopError::PathLimitExceeded {
            func: FuncId(0),
            max_paths: 64,
        };
        assert!(e.to_string().contains("limit of 64"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_err<E: Error + Send + Sync + 'static>() {}
        assert_err::<MopError>();
    }
}
