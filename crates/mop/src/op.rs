//! µ-operation (MOP) definitions.
//!
//! The target ASIP core (paper §2) is a pipelined DSP processor controlled by
//! µ-programming: it has a separate address-generation unit (AGU) and two
//! data memories (XDM and YDM) that can be accessed in the same cycle. Each
//! operation placed in a field of a µ-code word is a MOP.

use std::fmt;

use crate::{BlockId, FuncId};

/// A general-purpose kernel register.
///
/// The reproduction models a 16-entry register file; `Reg(0)`..`Reg(15)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Reg(pub u8);

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A source operand: register or immediate.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// A register operand.
    Reg(Reg),
    /// A signed immediate.
    Imm(i32),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Reg(r) => write!(f, "{r}"),
            Operand::Imm(v) => write!(f, "#{v}"),
        }
    }
}

impl From<Reg> for Operand {
    fn from(r: Reg) -> Operand {
        Operand::Reg(r)
    }
}

impl From<i32> for Operand {
    fn from(v: i32) -> Operand {
        Operand::Imm(v)
    }
}

/// Arithmetic/logic operations executed by the kernel ALU.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Two's-complement addition.
    Add,
    /// Two's-complement subtraction.
    Sub,
    /// Single-cycle multiply (DSP datapath).
    Mul,
    /// Signed division (`0` when dividing by zero, like a saturating DSP).
    Div,
    /// Signed remainder (`0` when dividing by zero).
    Rem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Arithmetic shift left by `b` bits.
    Shl,
    /// Arithmetic shift right by `b` bits.
    Shr,
    /// Minimum of the two operands.
    Min,
    /// Maximum of the two operands.
    Max,
    /// `1` if `a == b` else `0`.
    CmpEq,
    /// `1` if `a < b` (signed) else `0`.
    CmpLt,
}

impl fmt::Display for AluOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Mul => "mul",
            AluOp::Div => "div",
            AluOp::Rem => "rem",
            AluOp::And => "and",
            AluOp::Or => "or",
            AluOp::Xor => "xor",
            AluOp::Shl => "shl",
            AluOp::Shr => "shr",
            AluOp::Min => "min",
            AluOp::Max => "max",
            AluOp::CmpEq => "cmpeq",
            AluOp::CmpLt => "cmplt",
        };
        f.write_str(s)
    }
}

/// Multiply-accumulate unit operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MacOp {
    /// `acc += a * b`.
    Mac,
    /// `acc -= a * b`.
    Msu,
}

impl fmt::Display for MacOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            MacOp::Mac => "mac",
            MacOp::Msu => "msu",
        })
    }
}

/// Sequencer operations (the control field of the µ-code word).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum SeqOp {
    /// Unconditional jump to a block in the same function.
    Jump(BlockId),
    /// Branch: if `cond != 0` go to `then_block` else `else_block`.
    BranchNz {
        /// Condition register.
        cond: Reg,
        /// Target when the condition is non-zero.
        then_block: BlockId,
        /// Target when the condition is zero.
        else_block: BlockId,
    },
    /// Call another function (a potential *s-call* when IP-implementable).
    Call(FuncId),
    /// Return from the current function.
    Return,
    /// Stop the kernel (end of program).
    Halt,
}

impl fmt::Display for SeqOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SeqOp::Jump(b) => write!(f, "jmp {b}"),
            SeqOp::BranchNz {
                cond,
                then_block,
                else_block,
            } => write!(f, "bnz {cond}, {then_block}, {else_block}"),
            SeqOp::Call(func) => write!(f, "call {func}"),
            SeqOp::Return => f.write_str("ret"),
            SeqOp::Halt => f.write_str("halt"),
        }
    }
}

/// The kind of a µ-operation, one per µ-code word field class.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum MopKind {
    /// ALU operation `dst = a <op> b`.
    Alu {
        /// The operation.
        op: AluOp,
        /// Destination register.
        dst: Reg,
        /// First source.
        a: Operand,
        /// Second source.
        b: Operand,
    },
    /// MAC operation `acc (+|-)= a * b`.
    Mac {
        /// The operation.
        op: MacOp,
        /// Accumulator register (read-modify-write).
        acc: Reg,
        /// First multiplicand.
        a: Reg,
        /// Second multiplicand.
        b: Reg,
    },
    /// Register/immediate move `dst = src`.
    Move {
        /// Destination register.
        dst: Reg,
        /// Source operand.
        src: Reg,
    },
    /// Load an immediate into a register.
    LoadImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: i32,
    },
    /// Load from X data memory at the address held by AGU pointer `agu`.
    LoadX {
        /// Destination register.
        dst: Reg,
        /// AGU pointer index (X side: 0 or 1).
        agu: u8,
    },
    /// Load from Y data memory.
    LoadY {
        /// Destination register.
        dst: Reg,
        /// AGU pointer index (Y side: 2 or 3).
        agu: u8,
    },
    /// Store to X data memory.
    StoreX {
        /// Source register.
        src: Reg,
        /// AGU pointer index (X side: 0 or 1).
        agu: u8,
    },
    /// Store to Y data memory.
    StoreY {
        /// Source register.
        src: Reg,
        /// AGU pointer index (Y side: 2 or 3).
        agu: u8,
    },
    /// Set an AGU pointer to an absolute address.
    AguSet {
        /// AGU pointer index (0..4).
        agu: u8,
        /// Absolute address.
        addr: u32,
    },
    /// Post-modify an AGU pointer by a signed step.
    AguStep {
        /// AGU pointer index (0..4).
        agu: u8,
        /// Signed step added to the pointer.
        step: i32,
    },
    /// Load an AGU pointer from a register (dynamic array indexing).
    AguFromReg {
        /// AGU pointer index (0..4).
        agu: u8,
        /// Register holding the address.
        src: Reg,
    },
    /// Write a register to an IP input port (interface templates, Figs 4–7).
    IpWrite {
        /// IP input port index.
        port: u8,
        /// Source register.
        src: Reg,
    },
    /// Read an IP output port into a register.
    IpRead {
        /// Destination register.
        dst: Reg,
        /// IP output port index.
        port: u8,
    },
    /// Assert the IP start strobe (`IP_start = 1` in Fig. 5).
    IpStart,
    /// Write a register into an interface buffer word.
    BufWrite {
        /// Buffer index.
        buf: u8,
        /// Source register.
        src: Reg,
    },
    /// Read an interface buffer word into a register.
    BufRead {
        /// Destination register.
        dst: Reg,
        /// Buffer index.
        buf: u8,
    },
    /// Sequencer (control) operation.
    Seq(SeqOp),
    /// No operation (used to pad rate-mismatched type-0 templates).
    Nop,
}

/// A single µ-operation.
///
/// # Example
///
/// ```
/// use partita_mop::{Mop, AluOp, Reg};
/// let m = Mop::alu(AluOp::Add, Reg(0), Reg(1), Reg(2));
/// assert_eq!(m.defs(), vec![Reg(0)]);
/// assert_eq!(m.uses(), vec![Reg(1), Reg(2)]);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Mop {
    kind: MopKind,
}

impl Mop {
    /// Creates a MOP from a raw [`MopKind`].
    #[must_use]
    pub fn new(kind: MopKind) -> Mop {
        Mop { kind }
    }

    /// The kind of this µ-operation.
    #[must_use]
    pub fn kind(&self) -> &MopKind {
        &self.kind
    }

    /// ALU operation `dst = a <op> b`.
    #[must_use]
    pub fn alu(op: AluOp, dst: Reg, a: impl Into<Operand>, b: impl Into<Operand>) -> Mop {
        Mop::new(MopKind::Alu {
            op,
            dst,
            a: a.into(),
            b: b.into(),
        })
    }

    /// MAC operation.
    #[must_use]
    pub fn mac(op: MacOp, acc: Reg, a: Reg, b: Reg) -> Mop {
        Mop::new(MopKind::Mac { op, acc, a, b })
    }

    /// Register move.
    #[must_use]
    pub fn mov(dst: Reg, src: Reg) -> Mop {
        Mop::new(MopKind::Move { dst, src })
    }

    /// Immediate load.
    #[must_use]
    pub fn load_imm(dst: Reg, imm: i32) -> Mop {
        Mop::new(MopKind::LoadImm { dst, imm })
    }

    /// X-memory load through AGU pointer `agu`.
    #[must_use]
    pub fn load_x(dst: Reg, agu: u8) -> Mop {
        Mop::new(MopKind::LoadX { dst, agu })
    }

    /// Y-memory load through AGU pointer `agu`.
    #[must_use]
    pub fn load_y(dst: Reg, agu: u8) -> Mop {
        Mop::new(MopKind::LoadY { dst, agu })
    }

    /// X-memory store through AGU pointer `agu`.
    #[must_use]
    pub fn store_x(src: Reg, agu: u8) -> Mop {
        Mop::new(MopKind::StoreX { src, agu })
    }

    /// Y-memory store through AGU pointer `agu`.
    #[must_use]
    pub fn store_y(src: Reg, agu: u8) -> Mop {
        Mop::new(MopKind::StoreY { src, agu })
    }

    /// Sets AGU pointer `agu` to `addr`.
    #[must_use]
    pub fn agu_set(agu: u8, addr: u32) -> Mop {
        Mop::new(MopKind::AguSet { agu, addr })
    }

    /// Post-modifies AGU pointer `agu` by `step`.
    #[must_use]
    pub fn agu_step(agu: u8, step: i32) -> Mop {
        Mop::new(MopKind::AguStep { agu, step })
    }

    /// Loads AGU pointer `agu` from register `src`.
    #[must_use]
    pub fn agu_from_reg(agu: u8, src: Reg) -> Mop {
        Mop::new(MopKind::AguFromReg { agu, src })
    }

    /// Writes `src` to IP input port `port`.
    #[must_use]
    pub fn ip_write(port: u8, src: Reg) -> Mop {
        Mop::new(MopKind::IpWrite { port, src })
    }

    /// Reads IP output port `port` into `dst`.
    #[must_use]
    pub fn ip_read(dst: Reg, port: u8) -> Mop {
        Mop::new(MopKind::IpRead { dst, port })
    }

    /// Asserts the IP start strobe.
    #[must_use]
    pub fn ip_start() -> Mop {
        Mop::new(MopKind::IpStart)
    }

    /// Writes `src` into interface buffer `buf`.
    #[must_use]
    pub fn buf_write(buf: u8, src: Reg) -> Mop {
        Mop::new(MopKind::BufWrite { buf, src })
    }

    /// Reads interface buffer `buf` into `dst`.
    #[must_use]
    pub fn buf_read(dst: Reg, buf: u8) -> Mop {
        Mop::new(MopKind::BufRead { dst, buf })
    }

    /// Unconditional jump.
    #[must_use]
    pub fn jump(target: BlockId) -> Mop {
        Mop::new(MopKind::Seq(SeqOp::Jump(target)))
    }

    /// Conditional branch on `cond != 0`.
    #[must_use]
    pub fn branch_nz(cond: Reg, then_block: BlockId, else_block: BlockId) -> Mop {
        Mop::new(MopKind::Seq(SeqOp::BranchNz {
            cond,
            then_block,
            else_block,
        }))
    }

    /// Function call.
    #[must_use]
    pub fn call(callee: FuncId) -> Mop {
        Mop::new(MopKind::Seq(SeqOp::Call(callee)))
    }

    /// Function return.
    #[must_use]
    pub fn ret() -> Mop {
        Mop::new(MopKind::Seq(SeqOp::Return))
    }

    /// Kernel halt.
    #[must_use]
    pub fn halt() -> Mop {
        Mop::new(MopKind::Seq(SeqOp::Halt))
    }

    /// No-operation.
    #[must_use]
    pub fn nop() -> Mop {
        Mop::new(MopKind::Nop)
    }

    /// Registers written by this MOP.
    #[must_use]
    pub fn defs(&self) -> Vec<Reg> {
        match &self.kind {
            MopKind::Alu { dst, .. }
            | MopKind::Move { dst, .. }
            | MopKind::LoadImm { dst, .. }
            | MopKind::LoadX { dst, .. }
            | MopKind::LoadY { dst, .. }
            | MopKind::IpRead { dst, .. }
            | MopKind::BufRead { dst, .. } => vec![*dst],
            MopKind::Mac { acc, .. } => vec![*acc],
            _ => Vec::new(),
        }
    }

    /// Registers read by this MOP.
    #[must_use]
    pub fn uses(&self) -> Vec<Reg> {
        fn push_operand(out: &mut Vec<Reg>, op: Operand) {
            if let Operand::Reg(r) = op {
                out.push(r);
            }
        }
        let mut out = Vec::new();
        match &self.kind {
            MopKind::Alu { a, b, .. } => {
                push_operand(&mut out, *a);
                push_operand(&mut out, *b);
            }
            MopKind::Mac { acc, a, b, .. } => {
                out.push(*acc);
                out.push(*a);
                out.push(*b);
            }
            MopKind::Move { src, .. } => out.push(*src),
            MopKind::StoreX { src, .. }
            | MopKind::StoreY { src, .. }
            | MopKind::IpWrite { src, .. }
            | MopKind::BufWrite { src, .. }
            | MopKind::AguFromReg { src, .. } => out.push(*src),
            MopKind::Seq(SeqOp::BranchNz { cond, .. }) => out.push(*cond),
            _ => {}
        }
        out
    }

    /// `true` if this MOP reads X data memory.
    #[must_use]
    pub fn reads_xmem(&self) -> bool {
        matches!(self.kind, MopKind::LoadX { .. })
    }

    /// `true` if this MOP writes X data memory.
    #[must_use]
    pub fn writes_xmem(&self) -> bool {
        matches!(self.kind, MopKind::StoreX { .. })
    }

    /// `true` if this MOP reads Y data memory.
    #[must_use]
    pub fn reads_ymem(&self) -> bool {
        matches!(self.kind, MopKind::LoadY { .. })
    }

    /// `true` if this MOP writes Y data memory.
    #[must_use]
    pub fn writes_ymem(&self) -> bool {
        matches!(self.kind, MopKind::StoreY { .. })
    }

    /// `true` if this MOP reads or writes an AGU pointer.
    #[must_use]
    pub fn touches_agu(&self, agu: u8) -> bool {
        match self.kind {
            MopKind::LoadX { agu: a, .. }
            | MopKind::LoadY { agu: a, .. }
            | MopKind::StoreX { agu: a, .. }
            | MopKind::StoreY { agu: a, .. }
            | MopKind::AguSet { agu: a, .. }
            | MopKind::AguStep { agu: a, .. }
            | MopKind::AguFromReg { agu: a, .. } => a == agu,
            _ => false,
        }
    }

    /// `true` if this MOP writes an AGU pointer.
    #[must_use]
    pub fn writes_agu(&self, agu: u8) -> bool {
        match self.kind {
            MopKind::AguSet { agu: a, .. }
            | MopKind::AguStep { agu: a, .. }
            | MopKind::AguFromReg { agu: a, .. } => a == agu,
            _ => false,
        }
    }

    /// `true` if this MOP interacts with the IP or interface buffers; such
    /// operations must keep their mutual program order.
    #[must_use]
    pub fn has_ip_side_effect(&self) -> bool {
        matches!(
            self.kind,
            MopKind::IpWrite { .. }
                | MopKind::IpRead { .. }
                | MopKind::IpStart
                | MopKind::BufWrite { .. }
                | MopKind::BufRead { .. }
        )
    }

    /// `true` if this MOP is a sequencer (control) operation.
    #[must_use]
    pub fn is_control(&self) -> bool {
        matches!(self.kind, MopKind::Seq(_))
    }

    /// Returns the callee if this MOP is a call.
    #[must_use]
    pub fn callee(&self) -> Option<FuncId> {
        match self.kind {
            MopKind::Seq(SeqOp::Call(func)) => Some(func),
            _ => None,
        }
    }
}

impl fmt::Display for Mop {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            MopKind::Alu { op, dst, a, b } => write!(f, "{op} {dst}, {a}, {b}"),
            MopKind::Mac { op, acc, a, b } => write!(f, "{op} {acc}, {a}, {b}"),
            MopKind::Move { dst, src } => write!(f, "mov {dst}, {src}"),
            MopKind::LoadImm { dst, imm } => write!(f, "ldi {dst}, #{imm}"),
            MopKind::LoadX { dst, agu } => write!(f, "ldx {dst}, [ax{agu}]"),
            MopKind::LoadY { dst, agu } => write!(f, "ldy {dst}, [ay{agu}]"),
            MopKind::StoreX { src, agu } => write!(f, "stx [ax{agu}], {src}"),
            MopKind::StoreY { src, agu } => write!(f, "sty [ay{agu}], {src}"),
            MopKind::AguSet { agu, addr } => write!(f, "aset a{agu}, {addr}"),
            MopKind::AguStep { agu, step } => write!(f, "astep a{agu}, {step}"),
            MopKind::AguFromReg { agu, src } => write!(f, "aldr a{agu}, {src}"),
            MopKind::IpWrite { port, src } => write!(f, "ipw p{port}, {src}"),
            MopKind::IpRead { dst, port } => write!(f, "ipr {dst}, p{port}"),
            MopKind::IpStart => f.write_str("ipstart"),
            MopKind::BufWrite { buf, src } => write!(f, "bufw b{buf}, {src}"),
            MopKind::BufRead { dst, buf } => write!(f, "bufr {dst}, b{buf}"),
            MopKind::Seq(op) => write!(f, "{op}"),
            MopKind::Nop => f.write_str("nop"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defs_and_uses_cover_alu() {
        let m = Mop::alu(AluOp::Sub, Reg(3), Reg(1), 5);
        assert_eq!(m.defs(), vec![Reg(3)]);
        assert_eq!(m.uses(), vec![Reg(1)]);
    }

    #[test]
    fn mac_reads_and_writes_accumulator() {
        let m = Mop::mac(MacOp::Mac, Reg(7), Reg(1), Reg(2));
        assert_eq!(m.defs(), vec![Reg(7)]);
        assert!(m.uses().contains(&Reg(7)));
    }

    #[test]
    fn memory_effect_flags() {
        assert!(Mop::load_x(Reg(0), 0).reads_xmem());
        assert!(Mop::store_y(Reg(0), 2).writes_ymem());
        assert!(!Mop::load_x(Reg(0), 0).writes_xmem());
    }

    #[test]
    fn agu_dependency_tracking() {
        let step = Mop::agu_step(1, 1);
        assert!(step.touches_agu(1));
        assert!(step.writes_agu(1));
        assert!(!step.touches_agu(0));
        let ld = Mop::load_x(Reg(0), 1);
        assert!(ld.touches_agu(1));
        assert!(!ld.writes_agu(1));
    }

    #[test]
    fn ip_ops_are_side_effecting() {
        assert!(Mop::ip_start().has_ip_side_effect());
        assert!(Mop::buf_read(Reg(1), 0).has_ip_side_effect());
        assert!(!Mop::nop().has_ip_side_effect());
    }

    #[test]
    fn callee_extraction() {
        assert_eq!(Mop::call(FuncId(3)).callee(), Some(FuncId(3)));
        assert_eq!(Mop::ret().callee(), None);
    }

    #[test]
    fn display_is_assembly_like() {
        assert_eq!(
            Mop::alu(AluOp::Add, Reg(0), Reg(1), 2).to_string(),
            "add r0, r1, #2"
        );
        assert_eq!(Mop::load_x(Reg(4), 1).to_string(), "ldx r4, [ax1]");
        assert_eq!(
            Mop::branch_nz(Reg(2), BlockId(1), BlockId(2)).to_string(),
            "bnz r2, b1, b2"
        );
    }
}
